//! Property-based tests for the structured tier: ring ownership, version
//! ordering, cache bounds, metadata reconstruction.

use dd_dht::{HashRing, Metadata, TupleCache, Version, VersionAuthority};
use dd_sim::NodeId;
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Owners are always distinct and exactly `min(r, n)` of them exist.
    #[test]
    fn owners_distinct_and_complete(
        n in 1u64..40,
        r in 1usize..8,
        key in any::<u64>(),
    ) {
        let ring = HashRing::dense(n, 8);
        let owners = ring.owners(key, r);
        let set: HashSet<NodeId> = owners.iter().copied().collect();
        prop_assert_eq!(set.len(), owners.len(), "distinct owners");
        prop_assert_eq!(owners.len() as u64, (r as u64).min(n));
    }

    /// Removing a node only reassigns keys it owned; all other primaries
    /// are untouched (the minimal-disruption property of consistent
    /// hashing the paper's baseline relies on).
    #[test]
    fn removal_moves_only_victim_keys(
        n in 2u64..24,
        victim in 0u64..24,
        keys in prop::collection::vec(any::<u64>(), 1..60),
    ) {
        let victim = victim % n;
        let mut ring = HashRing::dense(n, 16);
        let before: Vec<Option<NodeId>> = keys.iter().map(|&k| ring.primary(k)).collect();
        ring.remove(NodeId(victim));
        for (i, &k) in keys.iter().enumerate() {
            let after = ring.primary(k);
            if before[i] != Some(NodeId(victim)) {
                prop_assert_eq!(after, before[i], "unaffected key moved");
            } else {
                prop_assert_ne!(after, Some(NodeId(victim)));
            }
        }
    }

    /// Versions from an authority are strictly increasing per key for any
    /// interleaving of keys.
    #[test]
    fn versions_strictly_increase(ops in prop::collection::vec(0u64..8, 1..100)) {
        let mut auth = VersionAuthority::new();
        let mut last: std::collections::HashMap<u64, Version> = Default::default();
        for key in ops {
            let v = auth.assign(key);
            if let Some(&prev) = last.get(&key) {
                prop_assert!(v > prev, "version not increasing for key {}", key);
            }
            last.insert(key, v);
        }
    }

    /// The cache never exceeds its capacity and never serves a version
    /// older than required, for arbitrary operation sequences.
    #[test]
    fn cache_capacity_and_freshness(
        cap in 1usize..16,
        ops in prop::collection::vec((0u64..32, 1u64..20, any::<bool>()), 1..200),
    ) {
        let mut cache: TupleCache<u64> = TupleCache::new(cap);
        for (key, ver, is_put) in ops {
            if is_put {
                cache.put(key, Version(ver), ver);
            } else if let Some(value) = cache.get(key, Version(ver)) {
                prop_assert!(value >= ver, "cache served version {} below required {}", value, ver);
            }
            prop_assert!(cache.len() <= cap, "cache over capacity");
        }
    }

    /// Metadata rebuilt from a scan reports exactly the per-key maximum
    /// version present in the scan.
    #[test]
    fn rebuild_reports_max_versions(
        scan in prop::collection::vec((0u64..16, 1u64..10, 0u64..8), 1..120),
    ) {
        let triples: Vec<(u64, Version, NodeId)> =
            scan.iter().map(|&(k, v, h)| (k, Version(v), NodeId(h))).collect();
        let meta = Metadata::rebuild(4, triples.iter().copied());
        for &(k, _, _) in &triples {
            let max = triples
                .iter()
                .filter(|&&(k2, _, _)| k2 == k)
                .map(|&(_, v, _)| v)
                .max()
                .unwrap();
            prop_assert_eq!(meta.latest(k), max);
            prop_assert!(!meta.holders(k).is_empty(), "latest version has a holder");
        }
    }

    /// Observing any set of versions then assigning yields a version above
    /// all observed ones (safety of coordinator takeover).
    #[test]
    fn observe_then_assign_is_fresh(
        observed in prop::collection::vec(0u64..1000, 0..30),
        key in any::<u64>(),
    ) {
        let mut auth = VersionAuthority::new();
        for &v in &observed {
            auth.observe(key, Version(v));
        }
        let next = auth.assign(key);
        for &v in &observed {
            prop_assert!(next > Version(v));
        }
    }
}
