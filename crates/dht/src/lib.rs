//! # dd-dht — the structured tier: soft-state layer machinery and the
//! Cassandra-style baseline
//!
//! The paper's architecture (§II) keeps a *structured* DHT-governed
//! soft-state layer on top of the epidemic persistent layer: requests
//! "require a careful ordering … which is best achieved by a structured
//! DHT-based approach where nodes partition the key-space among themselves"
//! — and that layer is expected to be "moderately sized and thus manageable
//! with a structured approach". This crate provides:
//!
//! * [`ring`] — consistent hashing with virtual nodes and successor lists.
//! * [`ordering`] — per-key version assignment ("write operations are
//!   correctly ordered by the soft-state layer", §II).
//! * [`cache`] — the tuple cache: "we take advantage of spare capacity to
//!   serve as a tuple cache … as the soft-layer always knows the most
//!   recent version of an item, cache inconsistency issues are eliminated".
//! * [`metadata`] — per-key latest version + location hints, and its
//!   reconstruction from the persistent layer ("on the event of a
//!   catastrophic failure … metadata can be reconstructed from the data
//!   reliably stored at the underlying persistent-state layer").
//! * [`baseline`] — the incumbent the paper argues against (§I): a
//!   Dynamo/Cassandra-style store replicating at ring successors with
//!   heartbeat failure detection and *reactive* repair, whose churn cost
//!   experiment E11 measures against the epidemic substrate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cache;
pub mod metadata;
pub mod ordering;
pub mod ring;

pub use baseline::{BaselineConfig, BaselineMsg, BaselineNode};
pub use cache::TupleCache;
pub use metadata::{MetaEntry, Metadata};
pub use ordering::{Version, VersionAuthority};
pub use ring::HashRing;
