//! Request ordering: per-key version assignment.
//!
//! §II: the soft-state layer resolves write conflicts by "a careful
//! ordering of requests", and the persistent layer's *only* assumption is
//! "that write operations are correctly ordered by the soft-state layer"
//! (§II). The coordinator (primary ring owner of a key) runs a
//! [`VersionAuthority`] assigning strictly increasing versions.

use std::collections::HashMap;

/// A per-key, totally ordered write version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Version(pub u64);

impl Version {
    /// The version before any write.
    pub const ZERO: Version = Version(0);

    /// The next version.
    #[must_use]
    pub fn next(self) -> Version {
        Version(self.0 + 1)
    }
}

impl std::fmt::Display for Version {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Assigns strictly increasing versions per key hash.
#[derive(Debug, Clone, Default)]
pub struct VersionAuthority {
    next: HashMap<u64, Version>,
}

impl VersionAuthority {
    /// Empty authority.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns the next version for `key_hash`.
    pub fn assign(&mut self, key_hash: u64) -> Version {
        let v = self.next.entry(key_hash).or_insert(Version::ZERO);
        *v = v.next();
        *v
    }

    /// The latest assigned version for `key_hash` (`Version::ZERO` before
    /// the first write).
    #[must_use]
    pub fn latest(&self, key_hash: u64) -> Version {
        self.next.get(&key_hash).copied().unwrap_or(Version::ZERO)
    }

    /// Fast-forwards the counter to at least `v` — used when a coordinator
    /// takes over a key after reconstruction (it must never re-issue an
    /// existing version).
    pub fn observe(&mut self, key_hash: u64, v: Version) {
        let e = self.next.entry(key_hash).or_insert(Version::ZERO);
        if v > *e {
            *e = v;
        }
    }

    /// Number of keys with assigned versions.
    #[must_use]
    pub fn key_count(&self) -> usize {
        self.next.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_increase_per_key() {
        let mut a = VersionAuthority::new();
        assert_eq!(a.assign(1), Version(1));
        assert_eq!(a.assign(1), Version(2));
        assert_eq!(a.assign(2), Version(1), "keys are independent");
        assert_eq!(a.latest(1), Version(2));
        assert_eq!(a.latest(9), Version::ZERO);
    }

    #[test]
    fn observe_fast_forwards_but_never_rewinds() {
        let mut a = VersionAuthority::new();
        a.observe(5, Version(10));
        assert_eq!(a.assign(5), Version(11));
        a.observe(5, Version(3));
        assert_eq!(a.assign(5), Version(12), "observe must not rewind");
    }

    #[test]
    fn reconstruction_scenario_issues_fresh_versions() {
        // Coordinator dies; replacement scans the persistent layer and
        // observes the highest stored versions, then continues the stream.
        let mut original = VersionAuthority::new();
        for _ in 0..7 {
            original.assign(42);
        }
        let mut replacement = VersionAuthority::new();
        replacement.observe(42, original.latest(42));
        assert_eq!(replacement.assign(42), Version(8));
    }

    #[test]
    fn version_ordering_and_display() {
        assert!(Version(2) > Version(1));
        assert_eq!(Version(1).next(), Version(2));
        assert_eq!(Version(3).to_string(), "v3");
    }

    #[test]
    fn key_count_tracks_distinct_keys() {
        let mut a = VersionAuthority::new();
        a.assign(1);
        a.assign(1);
        a.assign(2);
        assert_eq!(a.key_count(), 2);
    }
}
