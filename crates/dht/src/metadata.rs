//! Soft-state metadata: latest version + location hints, reconstructible
//! from the persistent layer.
//!
//! §II: *"Maintaining knowledge of some of the nodes that store the data in
//! the persistent-state layer is also a straightforward technique to
//! improve operation performance"*, and *"on the event of a catastrophic
//! failure, or when a new node joins this layer, metadata can be
//! reconstructed from the data reliably stored at the underlying
//! persistent-state layer"* — [`Metadata::rebuild`] implements that
//! reconstruction from a scan of `(key, version, holder)` triples.

use crate::ordering::Version;
use dd_sim::NodeId;
use std::collections::HashMap;

/// Metadata for one key: the latest version and up to `hint_cap` nodes
/// known to hold it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetaEntry {
    /// Latest version written.
    pub version: Version,
    /// Persistent-layer nodes believed to hold that version.
    pub holders: Vec<NodeId>,
}

/// The soft-state layer's per-key knowledge.
#[derive(Debug, Clone)]
pub struct Metadata {
    entries: HashMap<u64, MetaEntry>,
    hint_cap: usize,
}

impl Metadata {
    /// Empty metadata keeping at most `hint_cap` location hints per key.
    ///
    /// # Panics
    /// Panics if `hint_cap == 0`.
    #[must_use]
    pub fn new(hint_cap: usize) -> Self {
        assert!(hint_cap > 0, "need at least one hint slot");
        Metadata { entries: HashMap::new(), hint_cap }
    }

    /// Records a write of `key_hash` at `version`, initially hinted at
    /// `holders`.
    pub fn record_write(&mut self, key_hash: u64, version: Version, holders: &[NodeId]) {
        let e = self.entries.entry(key_hash).or_default();
        if version >= e.version {
            e.version = version;
            e.holders.clear();
            e.holders.extend(holders.iter().take(self.hint_cap));
        }
    }

    /// Adds a holder hint for the current version (e.g. learned from a
    /// sieve-acceptance ack).
    pub fn add_holder(&mut self, key_hash: u64, version: Version, holder: NodeId) {
        let e = self.entries.entry(key_hash).or_default();
        if version == e.version && !e.holders.contains(&holder) && e.holders.len() < self.hint_cap {
            e.holders.push(holder);
        }
    }

    /// Removes a node from all hints (failure detected).
    pub fn forget_node(&mut self, node: NodeId) {
        for e in self.entries.values_mut() {
            e.holders.retain(|&h| h != node);
        }
    }

    /// Latest version of a key (`Version::ZERO` when unknown).
    #[must_use]
    pub fn latest(&self, key_hash: u64) -> Version {
        self.entries.get(&key_hash).map_or(Version::ZERO, |e| e.version)
    }

    /// Location hints for a key.
    #[must_use]
    pub fn holders(&self, key_hash: u64) -> &[NodeId] {
        self.entries.get(&key_hash).map_or(&[], |e| e.holders.as_slice())
    }

    /// Number of known keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no keys are known.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Rebuilds metadata from a persistent-layer scan of
    /// `(key_hash, version, holder)` triples — keeps the highest version
    /// per key and the holders that reported it.
    #[must_use]
    pub fn rebuild(
        hint_cap: usize,
        scan: impl IntoIterator<Item = (u64, Version, NodeId)>,
    ) -> Self {
        let mut meta = Metadata::new(hint_cap);
        for (key, version, holder) in scan {
            let e = meta.entries.entry(key).or_default();
            match version.cmp(&e.version) {
                std::cmp::Ordering::Greater => {
                    e.version = version;
                    e.holders.clear();
                    e.holders.push(holder);
                }
                std::cmp::Ordering::Equal => {
                    if !e.holders.contains(&holder) && e.holders.len() < hint_cap {
                        e.holders.push(holder);
                    }
                }
                std::cmp::Ordering::Less => {}
            }
        }
        meta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_write_tracks_latest_version() {
        let mut m = Metadata::new(3);
        m.record_write(1, Version(1), &[NodeId(10)]);
        m.record_write(1, Version(3), &[NodeId(11), NodeId(12)]);
        m.record_write(1, Version(2), &[NodeId(13)]); // stale, ignored
        assert_eq!(m.latest(1), Version(3));
        assert_eq!(m.holders(1), &[NodeId(11), NodeId(12)]);
    }

    #[test]
    fn hints_are_capped_and_deduplicated() {
        let mut m = Metadata::new(2);
        m.record_write(1, Version(1), &[]);
        m.add_holder(1, Version(1), NodeId(1));
        m.add_holder(1, Version(1), NodeId(1));
        m.add_holder(1, Version(1), NodeId(2));
        m.add_holder(1, Version(1), NodeId(3)); // over cap
        assert_eq!(m.holders(1), &[NodeId(1), NodeId(2)]);
    }

    #[test]
    fn stale_holder_hints_are_rejected() {
        let mut m = Metadata::new(4);
        m.record_write(1, Version(2), &[]);
        m.add_holder(1, Version(1), NodeId(9));
        assert!(m.holders(1).is_empty());
    }

    #[test]
    fn forget_node_purges_hints() {
        let mut m = Metadata::new(4);
        m.record_write(1, Version(1), &[NodeId(5), NodeId(6)]);
        m.record_write(2, Version(1), &[NodeId(5)]);
        m.forget_node(NodeId(5));
        assert_eq!(m.holders(1), &[NodeId(6)]);
        assert!(m.holders(2).is_empty());
    }

    #[test]
    fn rebuild_recovers_latest_versions_and_holders() {
        // Persistent-layer scan with mixed versions and duplicate holders.
        let scan = vec![
            (1u64, Version(1), NodeId(10)),
            (1, Version(2), NodeId(11)),
            (1, Version(2), NodeId(12)),
            (1, Version(1), NodeId(13)), // stale replica still out there
            (2, Version(5), NodeId(20)),
        ];
        let m = Metadata::rebuild(4, scan);
        assert_eq!(m.latest(1), Version(2));
        assert_eq!(m.holders(1), &[NodeId(11), NodeId(12)]);
        assert_eq!(m.latest(2), Version(5));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn rebuild_equals_incremental_knowledge() {
        // The reconstruction invariant: rebuilding from the persistent
        // layer yields the same latest versions as the lost soft state.
        let mut live = Metadata::new(3);
        let mut scan = Vec::new();
        for k in 0..50u64 {
            for v in 1..=(k % 4 + 1) {
                let holder = NodeId(k % 7);
                live.record_write(k, Version(v), &[holder]);
                scan.push((k, Version(v), holder));
            }
        }
        let rebuilt = Metadata::rebuild(3, scan);
        for k in 0..50u64 {
            assert_eq!(rebuilt.latest(k), live.latest(k), "key {k}");
        }
    }

    #[test]
    fn unknown_key_defaults() {
        let m = Metadata::new(1);
        assert_eq!(m.latest(99), Version::ZERO);
        assert!(m.holders(99).is_empty());
        assert!(m.is_empty());
    }
}
