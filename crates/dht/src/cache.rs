//! The soft-state tuple cache.
//!
//! §II: *"We take advantage of spare capacity to serve as a tuple cache,
//! thus avoiding unnecessary operations at the persistent-state layer. As
//! the soft-layer always knows the most recent version of an item, cache
//! inconsistency issues are eliminated."*
//!
//! The cache is an LRU keyed by key hash; every entry carries the version
//! it was cached at, and lookups state the version they require (the
//! metadata's latest), so a stale entry can never be returned.

use crate::ordering::Version;
use std::collections::HashMap;

/// LRU tuple cache with version-checked lookups.
#[derive(Debug, Clone)]
pub struct TupleCache<V> {
    capacity: usize,
    clock: u64,
    entries: HashMap<u64, Entry<V>>,
    hits: u64,
    misses: u64,
}

#[derive(Debug, Clone)]
struct Entry<V> {
    value: V,
    version: Version,
    used: u64,
}

impl<V: Clone> TupleCache<V> {
    /// Cache holding at most `capacity` tuples.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        TupleCache { capacity, clock: 0, entries: HashMap::new(), hits: 0, misses: 0 }
    }

    /// Number of cached tuples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` counters.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Inserts/refreshes a tuple cached at `version`, evicting the least
    /// recently used entry when full. An insert with an *older* version
    /// than the cached one is ignored (the cache only moves forward).
    pub fn put(&mut self, key_hash: u64, version: Version, value: V) {
        self.clock += 1;
        if let Some(e) = self.entries.get_mut(&key_hash) {
            if version >= e.version {
                e.value = value;
                e.version = version;
                e.used = self.clock;
            }
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some((&lru, _)) = self.entries.iter().min_by_key(|(_, e)| e.used) {
                self.entries.remove(&lru);
            }
        }
        self.entries.insert(key_hash, Entry { value, version, used: self.clock });
    }

    /// Looks up `key_hash` requiring at least `required` (the latest
    /// version per the metadata). A cached entry older than `required` is
    /// treated as a miss and evicted — it can never become valid again.
    pub fn get(&mut self, key_hash: u64, required: Version) -> Option<V> {
        self.clock += 1;
        match self.entries.get_mut(&key_hash) {
            Some(e) if e.version >= required => {
                e.used = self.clock;
                self.hits += 1;
                Some(e.value.clone())
            }
            Some(_) => {
                self.entries.remove(&key_hash);
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Drops a key (e.g. on delete).
    pub fn invalidate(&mut self, key_hash: u64) {
        self.entries.remove(&key_hash);
    }

    /// Clears everything (soft-state loss).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_requires_sufficient_version() {
        let mut c: TupleCache<&str> = TupleCache::new(4);
        c.put(1, Version(3), "v3");
        assert_eq!(c.get(1, Version(3)), Some("v3"));
        assert_eq!(c.get(1, Version(2)), Some("v3"), "newer than required is fine");
        assert_eq!(c.get(1, Version(4)), None, "stale entry is a miss");
        assert_eq!(c.get(1, Version(3)), None, "stale entry was evicted");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c: TupleCache<u32> = TupleCache::new(2);
        c.put(1, Version(1), 10);
        c.put(2, Version(1), 20);
        let _ = c.get(1, Version(1)); // touch 1 → 2 is LRU
        c.put(3, Version(1), 30);
        assert_eq!(c.get(2, Version(1)), None, "2 evicted");
        assert_eq!(c.get(1, Version(1)), Some(10));
        assert_eq!(c.get(3, Version(1)), Some(30));
    }

    #[test]
    fn put_with_older_version_is_ignored() {
        let mut c: TupleCache<&str> = TupleCache::new(2);
        c.put(1, Version(5), "new");
        c.put(1, Version(2), "old");
        assert_eq!(c.get(1, Version(5)), Some("new"));
    }

    #[test]
    fn refresh_updates_value_and_version() {
        let mut c: TupleCache<&str> = TupleCache::new(2);
        c.put(1, Version(1), "a");
        c.put(1, Version(2), "b");
        assert_eq!(c.get(1, Version(2)), Some("b"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c: TupleCache<u32> = TupleCache::new(2);
        c.put(1, Version(1), 1);
        let _ = c.get(1, Version(1));
        let _ = c.get(9, Version(1));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn invalidate_and_clear() {
        let mut c: TupleCache<u32> = TupleCache::new(4);
        c.put(1, Version(1), 1);
        c.put(2, Version(1), 2);
        c.invalidate(1);
        assert_eq!(c.get(1, Version(1)), None);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _: TupleCache<u8> = TupleCache::new(0);
    }
}
