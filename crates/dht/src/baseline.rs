//! The structured (Dynamo/Cassandra-style) baseline store.
//!
//! This is the incumbent design the paper's introduction critiques:
//! *"Structure maintenance in a dynamic environment is hard because several
//! invariants need to be observed and costly as repair mechanisms are
//! reactive and thus induce an overhead proportional to churn"* (§I).
//!
//! Every node keeps a full ring view (the soft-state tier is "moderately
//! sized", §II, so this is the realistic design point), replicates each key
//! on its `r` ring successors, detects failures by heartbeat timeout, and
//! *reacts*: when a peer is declared dead it is dropped from the ring and
//! every key whose owner set changed is re-replicated. Experiment E11
//! measures exactly that reactive overhead against the epidemic substrate.

use crate::ordering::Version;
use crate::ring::HashRing;
use dd_membership::HeartbeatDetector;
use dd_sim::{Ctx, Duration, NodeId, Process, TimerTag};
use rand::Rng;
use std::collections::HashMap;

/// Timer for heartbeat emission.
pub const HEARTBEAT_TIMER: TimerTag = TimerTag(0xB417);
/// Timer for suspicion checks.
pub const CHECK_TIMER: TimerTag = TimerTag(0xB418);

/// Baseline store parameters.
#[derive(Debug, Clone, Copy)]
pub struct BaselineConfig {
    /// Replication degree (successor-list length).
    pub replication: usize,
    /// Virtual nodes per physical node.
    pub vnodes: u32,
    /// Ticks between heartbeats.
    pub heartbeat_period: Duration,
    /// Silence after which a peer is declared dead.
    pub suspect_timeout: Duration,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            replication: 3,
            vnodes: 16,
            heartbeat_period: Duration(500),
            suspect_timeout: Duration(2_000),
        }
    }
}

/// Baseline protocol messages.
#[derive(Debug, Clone)]
pub enum BaselineMsg {
    /// Client write entering at any node.
    Put {
        /// Hashed key.
        key: u64,
        /// Version assigned upstream.
        version: Version,
        /// Payload.
        value: u64,
    },
    /// Replica transfer (write path or repair).
    Replicate {
        /// Hashed key.
        key: u64,
        /// Version.
        version: Version,
        /// Payload.
        value: u64,
    },
    /// Client read entering at `origin` (which also collects the answer).
    Get {
        /// Hashed key.
        key: u64,
        /// Request id, unique per origin.
        req: u64,
        /// Node that owns the request state.
        origin: NodeId,
    },
    /// Answer to a [`BaselineMsg::Get`].
    GetReply {
        /// Request id.
        req: u64,
        /// Found tuple, if any.
        found: Option<(Version, u64)>,
    },
    /// Liveness beacon.
    Heartbeat,
}

/// One node of the baseline store.
#[derive(Debug, Clone)]
pub struct BaselineNode {
    config: BaselineConfig,
    /// This node's current ring view.
    pub ring: HashRing,
    detector: HeartbeatDetector,
    /// Local replicas: key → (version, value).
    pub store: HashMap<u64, (Version, u64)>,
    /// Completed reads issued through this node: req → result.
    pub completed: HashMap<u64, Option<(Version, u64)>>,
}

impl BaselineNode {
    /// Creates a node with an initial ring over `members`.
    #[must_use]
    pub fn new(config: BaselineConfig, members: impl IntoIterator<Item = NodeId>) -> Self {
        let mut ring = HashRing::new();
        for m in members {
            ring.add(m, config.vnodes);
        }
        BaselineNode {
            config,
            ring,
            detector: HeartbeatDetector::new(config.suspect_timeout),
            store: HashMap::new(),
            completed: HashMap::new(),
        }
    }

    fn owners(&self, key: u64) -> Vec<NodeId> {
        self.ring.owners(key, self.config.replication)
    }

    fn store_if_newer(&mut self, key: u64, version: Version, value: u64) -> bool {
        match self.store.get(&key) {
            Some(&(v, _)) if v >= version => false,
            _ => {
                self.store.insert(key, (version, value));
                true
            }
        }
    }

    /// Declares `dead` failed: drops it from the ring and re-replicates
    /// every locally stored key whose owner set this node now leads.
    fn react_to_failure(&mut self, ctx: &mut Ctx<'_, BaselineMsg>, dead: NodeId) {
        self.ring.remove(dead);
        self.detector.forget(dead);
        ctx.metrics().incr("baseline.failures_detected");
        // Reactive repair: for each key we hold, if we are now the primary,
        // push the replica to the new owner set.
        let me = ctx.id();
        let work: Vec<(u64, Version, u64)> = self
            .store
            .iter()
            .filter(|(&k, _)| self.owners(k).first() == Some(&me))
            .map(|(&k, &(v, val))| (k, v, val))
            .collect();
        for (k, v, val) in work {
            for owner in self.owners(k) {
                if owner != me {
                    ctx.metrics().incr("baseline.repair_sent");
                    ctx.send(owner, BaselineMsg::Replicate { key: k, version: v, value: val });
                }
            }
        }
    }
}

impl Process for BaselineNode {
    type Msg = BaselineMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, BaselineMsg>) {
        let now = ctx.now();
        let me = ctx.id();
        for m in self.ring.members().collect::<Vec<_>>() {
            if m != me {
                self.detector.monitor(m, now);
            }
        }
        let jitter = ctx.rng().gen_range(0..self.config.heartbeat_period.0.max(1));
        ctx.set_timer(Duration(jitter), HEARTBEAT_TIMER);
        ctx.set_timer(self.config.suspect_timeout, CHECK_TIMER);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, BaselineMsg>, from: NodeId, msg: BaselineMsg) {
        self.detector.heard_from(from, ctx.now());
        match msg {
            BaselineMsg::Put { key, version, value } => {
                let me = ctx.id();
                for owner in self.owners(key) {
                    if owner == me {
                        self.store_if_newer(key, version, value);
                    } else {
                        ctx.send(owner, BaselineMsg::Replicate { key, version, value });
                    }
                }
                ctx.metrics().incr("baseline.puts");
            }
            BaselineMsg::Replicate { key, version, value } => {
                if self.store_if_newer(key, version, value) {
                    ctx.metrics().incr("baseline.replicas_stored");
                }
            }
            BaselineMsg::Get { key, req, origin } => {
                let me = ctx.id();
                if let Some(&(v, val)) = self.store.get(&key) {
                    if origin == me {
                        self.completed.insert(req, Some((v, val)));
                    } else {
                        ctx.send(origin, BaselineMsg::GetReply { req, found: Some((v, val)) });
                    }
                    return;
                }
                // Not local: forward to the primary owner (if that is us,
                // the key is simply absent).
                match self.owners(key).into_iter().find(|&o| o != me) {
                    Some(primary) if !self.store.contains_key(&key) && primary != origin => {
                        ctx.send(primary, BaselineMsg::Get { key, req, origin });
                    }
                    _ => {
                        if origin == me {
                            self.completed.insert(req, None);
                        } else {
                            ctx.send(origin, BaselineMsg::GetReply { req, found: None });
                        }
                    }
                }
            }
            BaselineMsg::GetReply { req, found } => {
                self.completed.insert(req, found);
            }
            BaselineMsg::Heartbeat => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, BaselineMsg>, tag: TimerTag) {
        match tag {
            HEARTBEAT_TIMER => {
                let me = ctx.id();
                for m in self.ring.members().collect::<Vec<_>>() {
                    if m != me {
                        ctx.send(m, BaselineMsg::Heartbeat);
                        ctx.metrics().incr("baseline.heartbeats");
                    }
                }
                ctx.set_timer(self.config.heartbeat_period, HEARTBEAT_TIMER);
            }
            CHECK_TIMER => {
                for dead in self.detector.suspects(ctx.now()) {
                    self.react_to_failure(ctx, dead);
                }
                ctx.set_timer(self.config.suspect_timeout, CHECK_TIMER);
            }
            _ => {}
        }
    }

    fn on_up(&mut self, ctx: &mut Ctx<'_, BaselineMsg>) {
        // After downtime, refresh suspicion clocks so the node does not
        // instantly declare everyone dead.
        let now = ctx.now();
        let me = ctx.id();
        for m in self.ring.members().collect::<Vec<_>>() {
            if m != me {
                self.detector.heard_from(m, now);
            }
        }
        ctx.set_timer(self.config.heartbeat_period, HEARTBEAT_TIMER);
        ctx.set_timer(self.config.suspect_timeout, CHECK_TIMER);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_sim::rng::fnv1a;
    use dd_sim::{Sim, SimConfig, Time};

    fn build(n: u64, config: BaselineConfig, seed: u64) -> Sim<BaselineNode> {
        let mut sim = Sim::new(SimConfig::default().seed(seed));
        let members: Vec<NodeId> = (0..n).map(NodeId).collect();
        for &m in &members {
            sim.add_node(m, BaselineNode::new(config, members.iter().copied()));
        }
        sim
    }

    #[test]
    fn put_replicates_to_r_owners() {
        let mut sim = build(10, BaselineConfig::default(), 1);
        let key = fnv1a(b"alpha");
        sim.inject(NodeId(0), NodeId(0), BaselineMsg::Put { key, version: Version(1), value: 7 });
        sim.run_until(Time(1_000));
        let holders =
            (0..10).filter(|&i| sim.node(NodeId(i)).unwrap().store.contains_key(&key)).count();
        assert_eq!(holders, 3, "replication degree respected");
    }

    #[test]
    fn get_routes_to_owner_and_returns_value() {
        let mut sim = build(10, BaselineConfig::default(), 2);
        let key = fnv1a(b"beta");
        sim.inject(NodeId(0), NodeId(0), BaselineMsg::Put { key, version: Version(1), value: 42 });
        sim.run_until(Time(1_000));
        // Issue the read through a node that is (very likely) not an owner.
        let owners = sim.node(NodeId(0)).unwrap().owners(key);
        let reader = (0..10).map(NodeId).find(|n| !owners.contains(n)).unwrap();
        sim.inject(reader, reader, BaselineMsg::Get { key, req: 1, origin: reader });
        sim.run_until(Time(2_000));
        let got = sim.node(reader).unwrap().completed.get(&1).copied().flatten();
        assert_eq!(got, Some((Version(1), 42)));
    }

    #[test]
    fn missing_key_returns_none() {
        let mut sim = build(6, BaselineConfig::default(), 3);
        let key = fnv1a(b"ghost");
        sim.inject(NodeId(2), NodeId(2), BaselineMsg::Get { key, req: 9, origin: NodeId(2) });
        sim.run_until(Time(2_000));
        let entry = sim.node(NodeId(2)).unwrap().completed.get(&9).copied();
        assert_eq!(entry, Some(None), "read completed with no value");
    }

    #[test]
    fn newer_version_wins_older_is_ignored() {
        let mut sim = build(5, BaselineConfig::default(), 4);
        let key = fnv1a(b"ver");
        sim.inject(NodeId(0), NodeId(0), BaselineMsg::Put { key, version: Version(2), value: 2 });
        sim.run_until(Time(500));
        sim.inject(NodeId(1), NodeId(1), BaselineMsg::Put { key, version: Version(1), value: 1 });
        sim.run_until(Time(1_500));
        for i in 0..5 {
            if let Some(&(v, val)) = sim.node(NodeId(i)).unwrap().store.get(&key) {
                assert_eq!((v, val), (Version(2), 2), "node {i} kept stale write");
            }
        }
    }

    #[test]
    fn reactive_repair_restores_replication_after_permanent_failure() {
        let config = BaselineConfig::default();
        let mut sim = build(10, config, 5);
        let key = fnv1a(b"survivor");
        sim.inject(NodeId(0), NodeId(0), BaselineMsg::Put { key, version: Version(1), value: 9 });
        sim.run_until(Time(1_000));
        let owners = sim.node(NodeId(0)).unwrap().owners(key);
        // Permanently remove the primary owner.
        sim.remove(owners[0]);
        // Give detectors time to fire (suspect_timeout + slack) and repair.
        sim.run_until(Time(10_000));
        let holders = (0..10)
            .filter(|&i| sim.node(NodeId(i)).is_some_and(|n| n.store.contains_key(&key)))
            .count();
        assert!(holders >= 3, "replication restored, got {holders}");
        assert!(sim.metrics().counter("baseline.repair_sent") > 0);
        assert!(sim.metrics().counter("baseline.failures_detected") > 0);
    }

    #[test]
    fn repair_traffic_grows_with_churn() {
        let config = BaselineConfig::default();
        let run = |kills: u64, seed: u64| {
            let mut sim = build(20, config, seed);
            for k in 0..200u64 {
                let key = fnv1a(format!("k{k}").as_bytes());
                sim.inject(
                    NodeId(k % 20),
                    NodeId(k % 20),
                    BaselineMsg::Put { key, version: Version(1), value: k },
                );
            }
            sim.run_until(Time(2_000));
            for i in 0..kills {
                sim.remove(NodeId(i));
            }
            sim.run_until(Time(20_000));
            sim.metrics().counter("baseline.repair_sent")
        };
        let calm = run(1, 7);
        let stormy = run(6, 7);
        assert!(stormy > 2 * calm, "repair should scale with churn: calm {calm}, stormy {stormy}");
    }

    #[test]
    fn transient_downtime_does_not_lose_local_data() {
        let mut sim = build(8, BaselineConfig::default(), 8);
        let key = fnv1a(b"transient");
        sim.inject(NodeId(0), NodeId(0), BaselineMsg::Put { key, version: Version(1), value: 5 });
        sim.run_until(Time(1_000));
        let owner = sim.node(NodeId(0)).unwrap().owners(key)[0];
        sim.kill(owner);
        sim.run_until(Time(3_000));
        sim.revive(owner);
        sim.run_until(Time(6_000));
        assert!(
            sim.node(owner).unwrap().store.contains_key(&key),
            "transient failure keeps on-disk state"
        );
    }
}
