//! Consistent hashing with virtual nodes.

use dd_sim::rng::mix;
use dd_sim::NodeId;
use std::collections::BTreeMap;

/// A consistent-hash ring mapping the `u64` key space onto nodes via
/// virtual nodes (Cassandra/Dynamo style).
#[derive(Debug, Clone, Default)]
pub struct HashRing {
    /// vnode position → physical node.
    vnodes: BTreeMap<u64, NodeId>,
    /// physical node → vnode count (for membership queries/removal).
    members: BTreeMap<NodeId, u32>,
}

impl HashRing {
    /// Empty ring.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Ring with `vnodes` virtual nodes for each of `0..n`.
    #[must_use]
    pub fn dense(n: u64, vnodes: u32) -> Self {
        let mut ring = Self::new();
        for i in 0..n {
            ring.add(NodeId(i), vnodes);
        }
        ring
    }

    /// Adds a node with `vnodes` virtual positions (deterministic from the
    /// node id). Re-adding is a no-op.
    ///
    /// # Panics
    /// Panics if `vnodes == 0`.
    pub fn add(&mut self, node: NodeId, vnodes: u32) {
        assert!(vnodes > 0, "need at least one virtual node");
        if self.members.contains_key(&node) {
            return;
        }
        for v in 0..u64::from(vnodes) {
            let pos = mix(node.0 ^ 0xD47, v.wrapping_mul(0x9E37_79B9) ^ v);
            self.vnodes.insert(pos, node);
        }
        self.members.insert(node, vnodes);
    }

    /// Removes a node and all its virtual positions.
    pub fn remove(&mut self, node: NodeId) {
        if self.members.remove(&node).is_some() {
            self.vnodes.retain(|_, n| *n != node);
        }
    }

    /// Whether the node is on the ring.
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.contains_key(&node)
    }

    /// Number of physical nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the ring has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Physical members, in id order.
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.members.keys().copied()
    }

    /// The primary owner of `key_hash`: the first vnode clockwise.
    #[must_use]
    pub fn primary(&self, key_hash: u64) -> Option<NodeId> {
        self.vnodes.range(key_hash..).next().or_else(|| self.vnodes.iter().next()).map(|(_, &n)| n)
    }

    /// The `r` distinct physical owners of `key_hash`, clockwise from its
    /// position (successor-list replication). Returns fewer when the ring
    /// has fewer than `r` nodes.
    #[must_use]
    pub fn owners(&self, key_hash: u64, r: usize) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(r);
        if self.vnodes.is_empty() {
            return out;
        }
        for (_, &n) in self.vnodes.range(key_hash..).chain(self.vnodes.iter()) {
            if !out.contains(&n) {
                out.push(n);
                if out.len() == r {
                    break;
                }
            }
        }
        out
    }

    /// Whether `node` is among the `r` owners of `key_hash`.
    #[must_use]
    pub fn is_owner(&self, node: NodeId, key_hash: u64, r: usize) -> bool {
        self.owners(key_hash, r).contains(&node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_sim::rng::fnv1a;
    use std::collections::HashMap;

    #[test]
    fn primary_is_deterministic() {
        let ring = HashRing::dense(10, 16);
        let k = fnv1a(b"some-key");
        assert_eq!(ring.primary(k), ring.primary(k));
    }

    #[test]
    fn owners_are_distinct_and_bounded() {
        let ring = HashRing::dense(8, 8);
        let owners = ring.owners(fnv1a(b"k"), 3);
        assert_eq!(owners.len(), 3);
        let mut d = owners.clone();
        d.sort();
        d.dedup();
        assert_eq!(d.len(), 3);
        // r beyond population:
        assert_eq!(ring.owners(fnv1a(b"k"), 20).len(), 8);
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = HashRing::new();
        assert_eq!(ring.primary(7), None);
        assert!(ring.owners(7, 3).is_empty());
        assert!(ring.is_empty());
    }

    #[test]
    fn load_is_roughly_balanced_with_vnodes() {
        let n = 20u64;
        let ring = HashRing::dense(n, 64);
        let mut load: HashMap<NodeId, u32> = HashMap::new();
        for i in 0..40_000u64 {
            let k = mix_key(i);
            *load.entry(ring.primary(k).unwrap()).or_insert(0) += 1;
        }
        let mean = 40_000.0 / n as f64;
        for (node, l) in load {
            let ratio = f64::from(l) / mean;
            assert!((0.5..2.0).contains(&ratio), "node {node} load ratio {ratio}");
        }
    }

    fn mix_key(i: u64) -> u64 {
        dd_sim::rng::mix(0xBEEF, i)
    }

    #[test]
    fn removal_transfers_ownership_to_successors() {
        let mut ring = HashRing::dense(6, 16);
        let k = fnv1a(b"moving-key");
        let before = ring.owners(k, 3);
        ring.remove(before[0]);
        let after = ring.owners(k, 3);
        assert!(!after.contains(&before[0]));
        // The old second owner becomes primary.
        assert_eq!(after[0], before[1]);
        assert_eq!(after.len(), 3);
    }

    #[test]
    fn only_affected_keys_move_on_removal() {
        let mut ring = HashRing::dense(12, 32);
        let keys: Vec<u64> = (0..2_000).map(mix_key).collect();
        let before: Vec<Option<NodeId>> = keys.iter().map(|&k| ring.primary(k)).collect();
        let victim = NodeId(5);
        ring.remove(victim);
        let mut moved = 0;
        for (i, &k) in keys.iter().enumerate() {
            let now = ring.primary(k);
            if now != before[i] {
                moved += 1;
                assert_eq!(before[i], Some(victim), "key moved without its owner dying");
            }
        }
        // Expect ≈ 1/12 of keys to move.
        let frac = f64::from(moved) / keys.len() as f64;
        assert!((0.02..0.2).contains(&frac), "moved fraction {frac}");
    }

    #[test]
    fn re_adding_is_idempotent() {
        let mut ring = HashRing::dense(3, 8);
        let snapshot = ring.owners(99, 3);
        ring.add(NodeId(1), 8);
        assert_eq!(ring.owners(99, 3), snapshot);
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn is_owner_matches_owner_list() {
        let ring = HashRing::dense(10, 16);
        let k = fnv1a(b"check");
        let owners = ring.owners(k, 3);
        for n in ring.members() {
            assert_eq!(ring.is_owner(n, k, 3), owners.contains(&n));
        }
    }

    #[test]
    #[should_panic(expected = "virtual node")]
    fn zero_vnodes_panics() {
        let mut ring = HashRing::new();
        ring.add(NodeId(0), 0);
    }
}
