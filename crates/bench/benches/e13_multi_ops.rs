//! E13 — Multi-tuple operations (paper §III-B-1): with tag-collocation
//! sieves, a tag-scoped `multi_get` is answered by the tag's `r`
//! slot-owners; random (uniform) placement forces the coordinator to fan
//! out across the whole persistent layer for the same tuple set. Prints
//! the per-placement accounting table and emits a machine-readable
//! summary to `BENCH_multi_ops.json` at the workspace root so the perf
//! trajectory accumulates across runs.

use criterion::{criterion_group, criterion_main, Criterion};
use dd_bench::{f, n, table_header, table_row};
use dd_core::{Cluster, ClusterConfig, OpMix, Phase, Placement, Scenario, WorkloadKind};

const FEEDS: u64 = 10;
const BATCHES: u64 = 20;
const BATCH: usize = 5;
const MGETS: u64 = 20;

struct Row {
    placement: &'static str,
    multi_puts: u64,
    multi_gets: u64,
    tuples_read: u64,
    contacts_mean: f64,
    contacts_max: f64,
    msgs_per_get: f64,
}

fn run(placement: &'static str, config: ClusterConfig, seed: u64) -> Row {
    let mut c = Cluster::new(config, seed);
    c.settle();
    // One scenario per placement, same seed: identical batches and
    // identical feed reads, so the tuple sets are comparable and only
    // the routing differs.
    let scenario = Scenario::new("feeds", WorkloadKind::SocialFeed { users: FEEDS }, 5)
        .phase(
            Phase::new("mput", 8_000)
                .mix(OpMix::multi_puts(BATCH))
                .sessions(1)
                .depth(1)
                .ops(BATCHES),
        )
        .phase(Phase::new("settle", 6_000))
        .phase(Phase::new("mget", 8_000).mix(OpMix::multi_gets()).sessions(1).depth(1).ops(MGETS));
    let report = c.run_scenario(&scenario);
    let mget = &report.phases[2];
    let m = c.sim.metrics();
    let gets = m.counter("soft.multi_gets");
    Row {
        placement,
        multi_puts: m.counter("soft.multi_puts"),
        multi_gets: gets,
        tuples_read: mget.tuples_read,
        contacts_mean: mget.contacts_mean,
        contacts_max: mget.contacts_max,
        msgs_per_get: m.counter("multi_get.msgs") as f64 / gets.max(1) as f64,
    }
}

fn rows() -> Vec<Row> {
    let config = ClusterConfig::small().persist_n(40).replication(3);
    vec![
        run("tag", config.clone().placement(Placement::TagCollocation), 9),
        run("uniform", config.clone().placement(Placement::Uniform), 9),
        run("range", config, 9),
    ]
}

/// Writes the summary JSON (hand-rolled: the workspace has no serde) for
/// trend tracking; one object per placement, stable field names.
fn write_summary(rows: &[Row]) {
    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"placement\": \"{}\", \"multi_puts\": {}, \"multi_gets\": {}, \
                 \"tuples_read\": {}, \"mean_contacted_nodes\": {:.3}, \
                 \"max_contacted_nodes\": {:.3}, \"msgs_per_multi_get\": {:.3}}}",
                dd_sim::json_escape(r.placement),
                r.multi_puts,
                r.multi_gets,
                r.tuples_read,
                r.contacts_mean,
                r.contacts_max,
                r.msgs_per_get
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"e13_multi_ops\",\n  \"workload\": {{\"feeds\": {FEEDS}, \
         \"batches\": {BATCHES}, \"batch\": {BATCH}}},\n  \"placements\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_multi_ops.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("e13: could not write {path}: {e}");
    } else {
        println!("\nwrote machine-readable summary to BENCH_multi_ops.json");
    }
}

fn experiment() {
    let rows = rows();
    table_header(
        "E13: multi-tuple ops — contacted nodes per tag-scoped read",
        &["placement", "mputs", "mgets", "tuples", "mean_nodes", "max_nodes", "msgs/mget"],
    );
    for r in &rows {
        table_row(&[
            r.placement.to_owned(),
            n(r.multi_puts),
            n(r.multi_gets),
            n(r.tuples_read),
            f(r.contacts_mean),
            f(r.contacts_max),
            f(r.msgs_per_get),
        ]);
    }
    write_summary(&rows);
}

fn bench(c: &mut Criterion) {
    experiment();
    let mut g = c.benchmark_group("e13");
    // The multi-get hot path on a persist node: secondary-index lookup of
    // one tag among many.
    use dd_core::{SieveSpec, StoredTuple};
    let mut node = dd_core::persist::PersistNode::new(
        SieveSpec::Range { index: 0, of: 1, r: 1 },
        2,
        vec![],
        None,
    );
    for i in 0..10_000u64 {
        let tag = format!("feed:{}", i % 200);
        node.apply(StoredTuple::new(
            format!("post:{i}").into(),
            dd_dht::Version(1),
            b"body".to_vec(),
            Some(i as f64),
            Some(&tag),
        ));
    }
    let th = dd_sim::rng::stable_hash(b"feed:42");
    g.bench_function("by_tag_lookup_10k_store", |b| {
        b.iter(|| node.by_tag(th).len());
    });
    g.bench_function("tag_slot_routing", |b| {
        b.iter(|| {
            (0..64u64).map(|t| dd_sieve::TagSieve::tag_slots(t, 1_024, 3).len()).sum::<usize>()
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
