//! E17 — Message amplification of the write/repair plane: msgs per
//! operation across the E15 dependability matrix (placement × {calm,
//! churn-storm, partition+heal, cascading-crash}).
//!
//! The blind anti-entropy protocol shipped whole digests and re-pushed
//! every rumor epidemically; the digest-first protocol (constant-size
//! summary → bucket pull → delta items) plus sieve-routed batched
//! delivery and adaptive fanout must cut the per-operation message cost
//! by at least [`REDUCTION_GATE`]× in every cell, *without* giving back
//! availability. The baseline numbers are the measured matrix of the
//! pre-digest-first tree (seed 2026, issued 860 ops per cell); they are
//! frozen here so a regression in message cost fails the bench (and the
//! CI bench-smoke step) loudly. Emits `BENCH_msgs.json` at the workspace
//! root for trend tracking.

use criterion::{criterion_group, criterion_main, Criterion};
use dd_bench::{f, n, table_header, table_row};
use dd_core::scenario::library;
use dd_core::{Cluster, ClusterConfig, Placement, Scenario, ScenarioReport};

const PERSIST_N: u64 = 36;
const REPLICATION: u32 = 3;
const SEED: u64 = 2_026;

/// Minimum msgs/op improvement over the blind-exchange baseline.
const REDUCTION_GATE: f64 = 5.0;

/// Storm availability may trail calm by at most this much (the same
/// margin E15 enforces): the message savings must not cost dependability.
const AVAILABILITY_MARGIN: f64 = 0.10;

/// Measured msgs for the blind-exchange protocol, per (placement,
/// scenario) cell — 860 issued ops each.
const BASELINE: &[(&str, &str, u64)] = &[
    ("range", "calm", 198_717),
    ("range", "churn-storm", 195_800),
    ("range", "partition-heal", 185_976),
    ("range", "cascading-crash", 199_498),
    ("tag", "calm", 192_233),
    ("tag", "churn-storm", 190_915),
    ("tag", "partition-heal", 180_262),
    ("tag", "cascading-crash", 192_862),
];
const BASELINE_ISSUED: u64 = 860;

struct Cell {
    placement: &'static str,
    report: ScenarioReport,
    baseline_per_op: f64,
    reduction: f64,
}

fn run(placement: Placement, scenario: &Scenario) -> ScenarioReport {
    let config =
        ClusterConfig::small().persist_n(PERSIST_N).replication(REPLICATION).placement(placement);
    let mut c = Cluster::new(config, SEED);
    c.settle();
    c.run_scenario(scenario)
}

fn matrix() -> Vec<Cell> {
    let scenarios = [
        library::calm(SEED),
        library::churn_storm(SEED),
        library::partition_heal(SEED),
        library::cascading_crash(SEED),
    ];
    let mut cells = Vec::new();
    for (placement, name) in
        [(Placement::RangePartition, "range"), (Placement::TagCollocation, "tag")]
    {
        for scenario in &scenarios {
            let report = run(placement, scenario);
            let baseline = BASELINE
                .iter()
                .find(|(p, s, _)| *p == name && *s == report.name)
                .map(|(_, _, m)| *m)
                .expect("baseline cell present");
            let baseline_per_op = baseline as f64 / BASELINE_ISSUED as f64;
            let per_op = report.msgs as f64 / report.issued() as f64;
            cells.push(Cell {
                placement: name,
                baseline_per_op,
                reduction: baseline_per_op / per_op,
                report,
            });
        }
    }
    cells
}

/// Writes the summary JSON (hand-rolled: the workspace has no serde);
/// one object per (scenario, placement) cell.
fn write_summary(cells: &[Cell]) {
    let entries: Vec<String> = cells
        .iter()
        .map(|c| {
            let r = &c.report;
            format!(
                "    {{\"scenario\": \"{}\", \"placement\": \"{}\", \"issued\": {}, \
                 \"msgs\": {}, \"msgs_per_op\": {:.1}, \"baseline_msgs_per_op\": {:.1}, \
                 \"reduction\": {:.1}, \"availability\": {:.4}, \"staleness\": {:.4}}}",
                dd_sim::json_escape(&r.name),
                dd_sim::json_escape(c.placement),
                r.issued(),
                r.msgs,
                r.msgs as f64 / r.issued() as f64,
                c.baseline_per_op,
                c.reduction,
                r.availability(),
                r.staleness(),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"e17_msgs\",\n  \"gate\": {REDUCTION_GATE},\n  \"cluster\": \
         {{\"persist_n\": {PERSIST_N}, \"replication\": {REPLICATION}, \"seed\": {SEED}}},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_msgs.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("e17: could not write {path}: {e}");
    } else {
        println!("\nwrote machine-readable summary to BENCH_msgs.json");
    }
}

fn experiment() {
    let cells = matrix();
    table_header(
        "E17: message amplification — msgs/op vs blind-exchange baseline",
        &["scenario", "placement", "issued", "msgs", "msgs/op", "base/op", "x-cut", "avail"],
    );
    for c in &cells {
        let r = &c.report;
        table_row(&[
            r.name.clone(),
            c.placement.to_owned(),
            n(r.issued()),
            n(r.msgs),
            f(r.msgs as f64 / r.issued() as f64),
            f(c.baseline_per_op),
            f(c.reduction),
            f(r.availability()),
        ]);
    }
    for placement in ["range", "tag"] {
        let calm = cells
            .iter()
            .find(|c| c.placement == placement && c.report.name == "calm")
            .map(|c| c.report.availability())
            .expect("calm cell present");
        assert!(calm >= 0.99, "calm baseline must stay near-perfect, got {calm:.4} ({placement})");
        for c in cells.iter().filter(|c| c.placement == placement) {
            assert!(
                c.reduction >= REDUCTION_GATE,
                "acceptance: {} ({placement}) cut msgs/op only {:.1}x, gate is \
                 {REDUCTION_GATE}x (baseline {:.1}, now {:.1})",
                c.report.name,
                c.reduction,
                c.baseline_per_op,
                c.report.msgs as f64 / c.report.issued() as f64,
            );
            assert!(
                c.report.availability() >= calm - AVAILABILITY_MARGIN,
                "acceptance: {} ({placement}) availability {:.4} paid for the \
                 message savings (calm {calm:.4})",
                c.report.name,
                c.report.availability(),
            );
        }
    }
    println!(
        "\nshape check: digest-first anti-entropy (summary -> bucket pull -> \
         delta), sieve-routed batched delivery and estimate-driven fanout \
         cut every cell's message cost >= {REDUCTION_GATE}x while availability \
         holds the E15 margins — amplification was protocol waste, not \
         redundancy the storms were spending."
    );
    write_summary(&cells);
}

fn bench(c: &mut Criterion) {
    experiment();
    let mut g = c.benchmark_group("e17");
    g.sample_size(10);
    // The repair-plane kernel: one digest-first round between two nodes.
    g.bench_function("digest_first_round", |b| {
        use dd_core::persist::PersistNode;
        use dd_core::{SieveSpec, StoredTuple};
        use dd_dht::Version;
        let all = SieveSpec::Range { index: 0, of: 1, r: 1 };
        let mut x = PersistNode::new(all.clone(), 2, vec![], None);
        let mut y = PersistNode::new(all.clone(), 2, vec![], None);
        for i in 0..512 {
            let t = StoredTuple::new(
                format!("k{i}").as_str().into(),
                Version(1),
                b"v".to_vec(),
                Some(i as f64),
                None,
            );
            x.apply(t.clone());
            if i % 7 != 0 {
                y.apply(t);
            }
        }
        b.iter(|| {
            let diff = x.shared_summary(&all).diff(&y.shared_summary(&all));
            let ids = x.shared_ids_in(&all, &diff);
            let (items, want) = y.repair_delta(&all, &diff, &ids);
            (items.len(), want.len())
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
