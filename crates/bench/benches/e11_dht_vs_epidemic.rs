//! E11 — The paper's thesis (§I): the structured (Cassandra-style) design
//! pays a *reactive* repair cost proportional to churn, while the epidemic
//! substrate masks churn. Same workload and churn process for both
//! substrates; measure read availability and maintenance traffic. The
//! epidemic side is a declarative [`Scenario`]; the structured baseline
//! is a raw simulation driving the same [`ChurnModel`].

use criterion::{criterion_group, criterion_main, Criterion};
use dd_bench::{f, n, table_header, table_row};
use dd_core::{Cluster, ClusterConfig, Fault, OpMix, Phase, Scenario, Tier, WorkloadKind};
use dd_dht::{BaselineConfig, BaselineMsg, BaselineNode, Version};
use dd_sim::churn::{ChurnEvent, ChurnModel, ChurnSchedule};
use dd_sim::rng::fnv1a;
use dd_sim::{NodeId, Sim, SimConfig, Time};

const KEYS: u64 = 60;
const HORIZON: u64 = 40_000;

struct Outcome {
    reads_ok: u64,
    maintenance_msgs: u64,
}

fn churn(nn: u64, rate: f64, seed: u64) -> ChurnSchedule {
    let model = ChurnModel::default().failure_rate(rate).mean_downtime(4_000).permanent_prob(0.1);
    ChurnSchedule::generate(&model, nn, Time(HORIZON), seed)
}

/// The structured baseline: full-ring replication, heartbeats, reactive
/// repair on failure detection. This is a raw [`Sim`] (no soft layer, no
/// scenario plane), so the churn schedule is mapped onto it directly.
fn run_baseline(nn: u64, rate: f64, seed: u64) -> Outcome {
    let config = BaselineConfig::default();
    let mut sim: Sim<BaselineNode> = Sim::new(SimConfig::default().seed(seed));
    let members: Vec<NodeId> = (0..nn).map(NodeId).collect();
    for &m in &members {
        sim.add_node(m, BaselineNode::new(config, members.iter().copied()));
    }
    for k in 0..KEYS {
        let key = fnv1a(format!("k{k}").as_bytes());
        sim.inject(
            NodeId(k % nn),
            NodeId(k % nn),
            BaselineMsg::Put { key, version: Version(1), value: k },
        );
    }
    sim.run_until(Time(2_000));
    for ev in churn(nn, rate, seed ^ 0xE11).events() {
        match ev {
            ChurnEvent::Down(t, id) | ChurnEvent::Leave(t, id) => sim.schedule_down(*t, *id),
            ChurnEvent::Up(t, id) => sim.schedule_up(*t, *id),
        }
    }
    sim.run_until(Time(HORIZON + 8_000));
    // Issue one read per key through a live node.
    let mut req = 0u64;
    let mut readers = Vec::new();
    for k in 0..KEYS {
        let key = fnv1a(format!("k{k}").as_bytes());
        let reader = (0..nn).map(NodeId).find(|&i| sim.is_alive(i)).expect("someone alive");
        req += 1;
        readers.push((reader, req));
        sim.inject(reader, reader, BaselineMsg::Get { key, req, origin: reader });
    }
    sim.run_until(Time(HORIZON + 16_000));
    let reads_ok = readers
        .iter()
        .filter(|&&(reader, r)| {
            sim.node(reader).and_then(|nd| nd.completed.get(&r)).copied().flatten().is_some()
        })
        .count() as u64;
    let m = sim.metrics();
    Outcome {
        reads_ok,
        maintenance_msgs: m.counter("baseline.repair_sent") + m.counter("baseline.heartbeats"),
    }
}

/// The epidemic substrate under the *same* churn process, declared as a
/// scenario: load, storm, settle, read back.
fn run_epidemic(nn: u64, rate: f64, seed: u64) -> Outcome {
    let mut c = Cluster::new(ClusterConfig::small().persist_n(nn), seed);
    c.settle();
    let model = ChurnModel::default().failure_rate(rate).mean_downtime(4_000).permanent_prob(0.1);
    let scenario = Scenario::new("dht-vs-epidemic", WorkloadKind::Uniform, seed ^ 0xE11)
        .phase(Phase::new("load", 4_000).mix(OpMix::puts()).sessions(1).depth(1).ops(KEYS))
        .phase(Phase::new("storm", HORIZON + 8_000))
        .phase(Phase::new("read", 10_000).mix(OpMix::gets()).sessions(1).depth(1).ops(KEYS))
        .fault(4_000, Fault::ChurnBurst { tier: Tier::Persist, model, span: HORIZON });
    let report = c.run_scenario(&scenario);
    let m = c.sim.metrics();
    Outcome {
        reads_ok: report.phases[2].reads_found,
        // Proactive maintenance: repair offers/syncs (the epidemic layer has
        // no heartbeats — failures are masked, not detected).
        maintenance_msgs: m.counter("repair.syncs") + m.counter("repair.class_mismatch"),
    }
}

fn experiment() {
    let nn = 30u64;
    table_header(
        "E11: structured baseline vs epidemic substrate, matched churn process",
        &["churn/round", "system", "reads_ok/60", "maint_msgs"],
    );
    for &rate in &[0.0f64, 0.02, 0.05, 0.1] {
        let b = run_baseline(nn, rate, 21);
        table_row(&[f(rate), "dht".into(), n(b.reads_ok), n(b.maintenance_msgs)]);
        let e = run_epidemic(nn, rate, 21);
        table_row(&[f(rate), "epidemic".into(), n(e.reads_ok), n(e.maintenance_msgs)]);
    }
    println!(
        "shape check (paper §I): the DHT's maintenance cost is flat-ish \
         (heartbeats) plus a repair component growing with churn, and its \
         availability degrades as stale ring views misroute; the epidemic \
         substrate keeps availability high with churn-independent proactive \
         gossip."
    );
}

fn bench(c: &mut Criterion) {
    experiment();
    let mut g = c.benchmark_group("e11");
    g.sample_size(10);
    g.bench_function("baseline_put_get_n20", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_baseline(20, 0.0, seed).reads_ok
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
