//! E12 — The soft-state layer's value (paper §II): the tuple cache avoids
//! persistent-layer operations; version knowledge eliminates quorums; and
//! after catastrophic soft-state loss, metadata is reconstructed from the
//! persistent layer. Both halves are declarative scenarios: E12a loads a
//! uniform population and serves Zipf-skewed reads from a phase-local
//! workload; E12b injects `WipeSoftLayer`/`RebuildSoftLayer` faults
//! between read phases.

use criterion::{criterion_group, criterion_main, Criterion};
use dd_bench::{f, n, table_header, table_row};
use dd_core::{Cluster, ClusterConfig, Fault, OpMix, Phase, Scenario, WorkloadKind};

const KEYS: u64 = 100;

fn read_workload(cache_capacity: usize, seed: u64) -> (f64, u64) {
    let mut config = ClusterConfig::small().persist_n(24);
    config.cache_capacity = cache_capacity;
    let mut c = Cluster::new(config, seed);
    c.settle();
    let scenario = Scenario::new("cache", WorkloadKind::Uniform, seed)
        .phase(Phase::new("load", 6_000).mix(OpMix::puts()).sessions(1).depth(4).ops(KEYS))
        .phase(Phase::new("settle", 4_000))
        .phase(
            // Zipf-skewed reads over the uniformly loaded population:
            // hot keys repeat, so the tuple cache absorbs them.
            Phase::new("zipf-reads", 10_000)
                .mix(OpMix::gets())
                .sessions(1)
                .depth(4)
                .ops(300)
                .workload(WorkloadKind::ZipfKeys { keys: KEYS, exponent: 1.1 }),
        );
    let report = c.run_scenario(&scenario);
    assert_eq!(report.phases[2].issued, 300, "all reads offered");
    let m = c.sim.metrics();
    let hits = m.counter("soft.cache_hits");
    let misses = m.counter("soft.cache_misses");
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    (hit_rate, m.counter("persist.fetches"))
}

fn experiment() {
    table_header(
        "E12a: tuple cache vs persistent-layer fetches (300 Zipf reads)",
        &["cache_cap", "hit_rate", "persist_fetches"],
    );
    for &cap in &[1usize, 16, 64, 256] {
        let (hit_rate, fetches) = read_workload(cap, 33);
        table_row(&[n(cap as u64), f(hit_rate), n(fetches)]);
    }

    // E12b: catastrophic soft-state loss and reconstruction, as one
    // scenario: load, wipe, read (nothing), rebuild, read (everything).
    let mut c = Cluster::new(ClusterConfig::small().persist_n(24), 5);
    c.settle();
    let scenario = Scenario::new("wipe-rebuild", WorkloadKind::Uniform, 5)
        .phase(Phase::new("load", 5_000).mix(OpMix::puts()).sessions(1).depth(4).ops(50))
        .phase(Phase::new("settle", 4_000))
        .phase(Phase::new("wiped-reads", 5_000).mix(OpMix::gets()).sessions(1).depth(4).ops(50))
        .phase(Phase::new("rebuilt-reads", 5_000).mix(OpMix::gets()).sessions(1).depth(4).ops(50))
        .fault(9_000, Fault::WipeSoftLayer)
        .fault(14_000, Fault::RebuildSoftLayer);
    let report = c.run_scenario(&scenario);
    table_header(
        "E12b: reads after catastrophic soft-layer loss (50 keys)",
        &["state", "reads_ok"],
    );
    table_row(&["wiped".into(), n(report.phases[2].reads_found)]);
    table_row(&["rebuilt".into(), n(report.phases[3].reads_found)]);
    println!(
        "reconstruction (§II): all metadata — latest versions, holders — is \
         recovered from the persistent layer; no writes are lost."
    );
}

fn bench(c: &mut Criterion) {
    experiment();
    let mut g = c.benchmark_group("e12");
    g.sample_size(10);
    g.bench_function("zipf_reads_cache64", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            read_workload(64, seed)
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
