//! E12 — The soft-state layer's value (paper §II): the tuple cache avoids
//! persistent-layer operations; version knowledge eliminates quorums; and
//! after catastrophic soft-state loss, metadata is reconstructed from the
//! persistent layer.

use criterion::{criterion_group, criterion_main, Criterion};
use dd_bench::{f, n, table_header, table_row};
use dd_core::{Cluster, ClusterConfig, Workload, WorkloadKind};

fn read_workload(cache_capacity: usize, seed: u64) -> (f64, u64) {
    let mut config = ClusterConfig::small().persist_n(24);
    config.cache_capacity = cache_capacity;
    let mut c = Cluster::new(config, seed);
    c.settle();
    let mut client = c.client();
    let keys = 100u64;
    for i in 0..keys {
        let req = client.put(&mut c, format!("key:{i}"), vec![i as u8], None, None);
        let _ = client.recv(&mut c, req);
    }
    c.run_for(4_000);
    // Zipf-skewed reads: hot keys repeat.
    let mut w = Workload::new(WorkloadKind::ZipfKeys { keys, exponent: 1.1 }, seed);
    for _ in 0..300 {
        let key = w.next_read_key();
        let r = client.get(&mut c, key);
        let _ = client.recv(&mut c, r);
    }
    let m = c.sim.metrics();
    let hits = m.counter("soft.cache_hits");
    let misses = m.counter("soft.cache_misses");
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    (hit_rate, m.counter("persist.fetches"))
}

fn experiment() {
    table_header(
        "E12a: tuple cache vs persistent-layer fetches (300 Zipf reads)",
        &["cache_cap", "hit_rate", "persist_fetches"],
    );
    for &cap in &[1usize, 16, 64, 256] {
        let (hit_rate, fetches) = read_workload(cap, 33);
        table_row(&[n(cap as u64), f(hit_rate), n(fetches)]);
    }

    // E12b: catastrophic soft-state loss and reconstruction.
    let mut c = Cluster::new(ClusterConfig::small().persist_n(24), 5);
    c.settle();
    let mut client = c.client();
    let keys = 50u64;
    for i in 0..keys {
        let req = client.put(&mut c, format!("key:{i}"), vec![i as u8], Some(i as f64), None);
        let _ = client.recv(&mut c, req);
    }
    c.run_for(4_000);
    c.wipe_soft_layer();
    let mut before = 0u64;
    for i in 0..keys {
        let r = client.get(&mut c, format!("key:{i}"));
        if matches!(client.recv(&mut c, r), Ok(Some(_))) {
            before += 1;
        }
    }
    c.rebuild_soft_layer();
    let mut after = 0u64;
    for i in 0..keys {
        let r = client.get(&mut c, format!("key:{i}"));
        if matches!(client.recv(&mut c, r), Ok(Some(_))) {
            after += 1;
        }
    }
    table_header(
        "E12b: reads after catastrophic soft-layer loss (50 keys)",
        &["state", "reads_ok"],
    );
    table_row(&["wiped".into(), n(before)]);
    table_row(&["rebuilt".into(), n(after)]);
    println!(
        "reconstruction (§II): all metadata — latest versions, holders — is \
         recovered from the persistent layer; no writes are lost."
    );
}

fn bench(c: &mut Criterion) {
    experiment();
    let mut g = c.benchmark_group("e12");
    g.sample_size(10);
    g.bench_function("zipf_reads_cache64", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            read_workload(64, seed)
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
