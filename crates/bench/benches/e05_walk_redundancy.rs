//! E5 — Random-walk redundancy estimation (paper §III-A): per-tuple walks
//! are "clearly impractical"; per-sieve walks "drastically reduce" the
//! number and length of walks because "many tuples may be checked at once".

use criterion::{criterion_group, criterion_main, Criterion};
use dd_bench::{f, n, table_header, table_row};
use dd_membership::MembershipOracle;
use dd_sim::{NodeId, Sim, SimConfig, Time};
use dd_walks::sampling::uniformity_score;
use dd_walks::{
    per_sieve_cost, per_tuple_cost, visits_histogram, RedundancyEstimator, WalkMsg, WalkNode,
};

fn experiment() {
    table_header(
        "E5a: cost of redundancy checking — per-tuple vs per-sieve walks",
        &["tuples", "N", "classes", "naive_msgs", "sieve_msgs", "ratio"],
    );
    for &(tuples, nn) in &[(10_000u64, 1_000u64), (100_000, 10_000), (1_000_000, 50_000)] {
        let classes = 64u64;
        let spt = 30u64;
        let naive = per_tuple_cost(tuples, nn, 5, spt);
        let sieve = per_sieve_cost(classes, spt);
        table_row(&[
            n(tuples),
            n(nn),
            n(classes),
            n(naive.total_messages),
            n(sieve.total_messages),
            f(naive.total_messages as f64 / sieve.total_messages as f64),
        ]);
    }

    // E5b: walk sampling uniformity + class-population estimation accuracy.
    let nn = 1_000u64;
    let classes = 16u64;
    let mut sim: Sim<WalkNode<MembershipOracle>> = Sim::new(SimConfig::default().seed(6));
    for i in 0..nn {
        sim.add_node(
            NodeId(i),
            WalkNode::new(MembershipOracle::dense(NodeId(i), nn), i % classes, 10),
        );
    }
    // 200 walks of 64 hops from node 0.
    for w in 0..200u64 {
        sim.inject(
            NodeId(0),
            NodeId(0),
            WalkMsg::Step { id: w, ttl: 64, origin: NodeId(0), samples: vec![] },
        );
    }
    sim.run_until(Time(2_000_000));
    let origin = sim.node(NodeId(0)).unwrap();
    let samples = origin.all_samples();
    let score = uniformity_score(&visits_histogram(&samples), nn);
    let mut est = RedundancyEstimator::new();
    est.absorb(&samples);
    table_header(
        "E5b: per-class population estimates from 200x64-hop walks (truth = 62.5)",
        &["class", "estimate", "rel_err"],
    );
    for class in 0..4u64 {
        let e = est.class_population(class, nn as f64);
        let truth = nn as f64 / classes as f64;
        table_row(&[n(class), f(e), f((e - truth).abs() / truth)]);
    }
    println!(
        "walk-visit uniformity score (chi^2/df, 1.0 = perfectly uniform): {score:.2}; \
         {} samples over {} walks",
        samples.len(),
        origin.completed.len()
    );
}

fn bench(c: &mut Criterion) {
    experiment();
    let mut g = c.benchmark_group("e05");
    g.sample_size(10);
    g.bench_function("walks_20x32_n200", |b| {
        b.iter(|| {
            let nn = 200u64;
            let mut sim: Sim<WalkNode<MembershipOracle>> = Sim::new(SimConfig::default().seed(1));
            for i in 0..nn {
                sim.add_node(
                    NodeId(i),
                    WalkNode::new(MembershipOracle::dense(NodeId(i), nn), i % 8, 1),
                );
            }
            for w in 0..20u64 {
                sim.inject(
                    NodeId(0),
                    NodeId(0),
                    WalkMsg::Step { id: w, ttl: 32, origin: NodeId(0), samples: vec![] },
                );
            }
            sim.run_until(Time(500_000));
            sim.node(NodeId(0)).unwrap().completed.len()
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
