//! E6 — Redundancy maintenance under churn (paper §III-A): "a mechanism to
//! maintain redundancy at acceptable levels is essential to avoid data
//! loss"; transient failures dominate, so redundancy constraints can be
//! relaxed. Sweep churn rate × repair on/off and measure surviving
//! replication and read availability.

use criterion::{criterion_group, criterion_main, Criterion};
use dd_bench::{f, n, table_header, table_row};
use dd_core::{Cluster, ClusterConfig, Key};
use dd_sim::churn::{ChurnEvent, ChurnModel, ChurnSchedule};
use dd_sim::{NodeId, Time};

struct Outcome {
    mean_replicas: f64,
    reads_ok: u32,
    recovered: u64,
}

fn run(rate: f64, repair: bool, seed: u64) -> Outcome {
    let persist_n = 36u64;
    let keys = 40u32;
    let config = if repair {
        ClusterConfig::small().persist_n(persist_n)
    } else {
        ClusterConfig::small().persist_n(persist_n).no_repair()
    };
    let mut c = Cluster::new(config, seed);
    c.settle();

    // Churn runs across the whole write window: nodes that are down while
    // a key is disseminated miss it, and only repair can catch them up —
    // the paper's redundancy-maintenance scenario.
    let model = ChurnModel::default().failure_rate(rate).mean_downtime(6_000).permanent_prob(0.05);
    let horizon = 40_000u64;
    let schedule = ChurnSchedule::generate(&model, persist_n, Time(horizon), seed ^ 0xC4);
    let offset = c.soft_ids().len() as u64;
    for ev in schedule.events() {
        let id = NodeId(ev.node().0 + offset);
        match ev {
            ChurnEvent::Down(t, _) | ChurnEvent::Leave(t, _) => c.sim.schedule_down(*t, id),
            ChurnEvent::Up(t, _) => c.sim.schedule_up(*t, id),
        }
    }
    // Interleave writes with the churn window.
    let mut client = c.client();
    for i in 0..keys {
        let req = client.put(&mut c, format!("k:{i}"), vec![i as u8], None, None);
        let _ = client.recv(&mut c, req);
        c.run_for(horizon / u64::from(keys));
    }
    c.run_for(15_000); // post-storm repair window

    let mean_replicas = (0..keys)
        .map(|i| c.replica_count(&Key::from(format!("k:{i}").as_str())) as f64)
        .sum::<f64>()
        / f64::from(keys);
    let mut reads_ok = 0;
    for i in 0..keys {
        let r = client.get(&mut c, format!("k:{i}"));
        if matches!(client.recv(&mut c, r), Ok(Some(_))) {
            reads_ok += 1;
        }
    }
    Outcome { mean_replicas, reads_ok, recovered: c.sim.metrics().counter("repair.recovered") }
}

fn experiment() {
    table_header(
        "E6: replication & availability after 40k-tick churn (r=3, 40 keys)",
        &["churn/round", "repair", "mean_repl", "reads_ok/40", "recovered"],
    );
    for &rate in &[0.01f64, 0.03, 0.08] {
        for &repair in &[false, true] {
            let o = run(rate, repair, 11);
            table_row(&[
                f(rate),
                if repair { "on".into() } else { "off".into() },
                f(o.mean_replicas),
                n(u64::from(o.reads_ok)),
                n(o.recovered),
            ]);
        }
    }
    println!(
        "shape check: writes landing during downtime are missing from the \
         returning nodes; with repair on, same-range peers restore them \
         (recovered > 0) and mean replication stays near r. Permanent \
         departures bound attainable replication in both modes."
    );
}

fn bench(c: &mut Criterion) {
    experiment();
    let mut g = c.benchmark_group("e06");
    g.sample_size(10);
    g.bench_function("cluster_20keys_churn", |b| {
        let mut seed = 100;
        b.iter(|| {
            seed += 1;
            let mut c = Cluster::new(ClusterConfig::small().persist_n(16), seed);
            c.settle();
            let mut client = c.client();
            for i in 0..20 {
                let req = client.put(&mut c, format!("b:{i}"), vec![i as u8], None, None);
                let _ = client.recv(&mut c, req);
            }
            c.sim.kill(c.persist_ids()[0]);
            c.run_for(5_000);
            c.replica_count(&Key::from("b:7"))
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
