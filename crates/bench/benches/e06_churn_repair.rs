//! E6 — Redundancy maintenance under churn (paper §III-A): "a mechanism to
//! maintain redundancy at acceptable levels is essential to avoid data
//! loss"; transient failures dominate, so redundancy constraints can be
//! relaxed. Sweep churn rate × repair on/off and measure surviving
//! replication and read availability — one declarative [`Scenario`] per
//! cell: a rate-paced write phase with the churn burst overlaid, a repair
//! window, then a read-back phase.

use criterion::{criterion_group, criterion_main, Criterion};
use dd_bench::{f, n, table_header, table_row};
use dd_core::{Cluster, ClusterConfig, Fault, Key, OpMix, Phase, Scenario, Tier, WorkloadKind};
use dd_sim::churn::ChurnModel;

const KEYS: u64 = 40;
const HORIZON: u64 = 40_000;

struct Outcome {
    mean_replicas: f64,
    reads_found: u64,
    recovered: u64,
}

fn run(rate: f64, repair: bool, seed: u64) -> Outcome {
    let persist_n = 36u64;
    let config = if repair {
        ClusterConfig::small().persist_n(persist_n)
    } else {
        ClusterConfig::small().persist_n(persist_n).no_repair()
    };
    let mut c = Cluster::new(config, seed);
    c.settle();

    // Churn spans the whole write window: nodes that are down while a key
    // is disseminated miss it, and only repair can catch them up — the
    // paper's redundancy-maintenance scenario.
    let model = ChurnModel::default().failure_rate(rate).mean_downtime(6_000).permanent_prob(0.05);
    let scenario = Scenario::new("churn-repair", WorkloadKind::Uniform, seed)
        .phase(
            Phase::new("write", HORIZON)
                .mix(OpMix::puts())
                .sessions(1)
                .depth(1)
                .rate(KEYS as f64 / HORIZON as f64)
                .ops(KEYS),
        )
        .phase(Phase::new("repair", 15_000))
        .phase(Phase::new("read", 8_000).mix(OpMix::gets()).sessions(1).depth(1).ops(KEYS))
        .fault(0, Fault::ChurnBurst { tier: Tier::Persist, model, span: HORIZON });
    let report = c.run_scenario(&scenario);

    let mean_replicas = (1..=KEYS)
        .map(|i| c.replica_count(&Key::from(format!("key:{i}").as_str())) as f64)
        .sum::<f64>()
        / KEYS as f64;
    Outcome {
        mean_replicas,
        reads_found: report.phases[2].reads_found,
        recovered: c.sim.metrics().counter("repair.recovered"),
    }
}

fn experiment() {
    table_header(
        "E6: replication & availability after 40k-tick churn (r=3, 40 keys)",
        &["churn/round", "repair", "mean_repl", "reads_ok/40", "recovered"],
    );
    for &rate in &[0.01f64, 0.03, 0.08] {
        for &repair in &[false, true] {
            let o = run(rate, repair, 11);
            table_row(&[
                f(rate),
                if repair { "on".into() } else { "off".into() },
                f(o.mean_replicas),
                n(o.reads_found),
                n(o.recovered),
            ]);
        }
    }
    println!(
        "shape check: writes landing during downtime are missing from the \
         returning nodes; with repair on, same-range peers restore them \
         (recovered > 0) and mean replication stays near r. Permanent \
         departures bound attainable replication in both modes."
    );
}

fn bench(c: &mut Criterion) {
    experiment();
    let mut g = c.benchmark_group("e06");
    g.sample_size(10);
    g.bench_function("cluster_20keys_churn", |b| {
        let mut seed = 100;
        b.iter(|| {
            seed += 1;
            let mut c = Cluster::new(ClusterConfig::small().persist_n(16), seed);
            c.settle();
            let mut client = c.client();
            for i in 0..20 {
                let req = client.put(&mut c, format!("b:{i}"), vec![i as u8], None, None);
                let _ = client.recv(&mut c, req);
            }
            c.sim.kill(c.persist_ids()[0]);
            c.run_for(5_000);
            c.replica_count(&Key::from("b:7"))
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
