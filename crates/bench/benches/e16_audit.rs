//! E16 — the audit plane: soundness and overhead of history capture +
//! consistency checking over the four stock dependability drills.
//!
//! Each drill runs twice against identical clusters — plain, then
//! [`Scenario::audited`] — and the bench asserts the two acceptance
//! criteria: the calm drill audits *spotless* (no violations at all, not
//! even durability warnings) and every drill audits with **zero safety
//! violations**; and auditing costs nothing on the virtual-time axis —
//! the audited run's ops/tick may regress at most 25% against the
//! unaudited run (capture is passive, so the regression is in fact zero:
//! the report cores are asserted equal bit for bit). Wall-clock overhead
//! (recording + convergence settling + checking) is reported per row.
//! Emits `BENCH_audit.json` at the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use dd_audit::{AuditReport, History, ReplicaTuple};
use dd_bench::{f, n, table_header, table_row};
use dd_core::scenario::library;
use dd_core::{Cluster, ClusterConfig, Placement, Scenario, ScenarioReport};

const PERSIST_N: u64 = 36;
const REPLICATION: u32 = 3;
const SEED: u64 = 2_027;

/// Maximum tolerated ops/tick regression of an audited run vs the same
/// drill unaudited.
const MAX_OPS_PER_TICK_REGRESSION: f64 = 0.25;

struct Cell {
    name: String,
    plain: ScenarioReport,
    audited: ScenarioReport,
    wall_plain_ms: f64,
    wall_audited_ms: f64,
}

impl Cell {
    fn audit(&self) -> &AuditReport {
        self.audited.audit.as_ref().expect("audited run attaches a verdict")
    }

    fn ops_per_tick(report: &ScenarioReport) -> f64 {
        report.issued() as f64 / report.ticks as f64
    }

    fn regression(&self) -> f64 {
        1.0 - Self::ops_per_tick(&self.audited) / Self::ops_per_tick(&self.plain)
    }
}

fn run(scenario: &Scenario) -> (ScenarioReport, f64) {
    let config = ClusterConfig::small()
        .persist_n(PERSIST_N)
        .replication(REPLICATION)
        .placement(Placement::TagCollocation);
    let mut c = Cluster::new(config, SEED);
    c.settle();
    let t0 = std::time::Instant::now();
    let report = c.run_scenario(scenario);
    (report, t0.elapsed().as_secs_f64() * 1_000.0)
}

fn matrix() -> Vec<Cell> {
    [
        library::calm(SEED),
        library::churn_storm(SEED),
        library::partition_heal(SEED),
        library::cascading_crash(SEED),
    ]
    .into_iter()
    .map(|drill| {
        let (plain, wall_plain_ms) = run(&drill);
        let (audited, wall_audited_ms) = run(&drill.audited());
        Cell { name: plain.name.clone(), plain, audited, wall_plain_ms, wall_audited_ms }
    })
    .collect()
}

/// Hand-rolled JSON (the workspace has no serde), one row per drill.
fn write_summary(cells: &[Cell]) {
    let entries: Vec<String> = cells
        .iter()
        .map(|c| {
            let a = c.audit();
            format!(
                "    {{\"scenario\": \"{}\", \"issued\": {}, \"ticks\": {}, \
                 \"ops_per_tick_plain\": {:.5}, \"ops_per_tick_audited\": {:.5}, \
                 \"ops_per_tick_regression\": {:.5}, \"safety_violations\": {}, \
                 \"warnings\": {}, \"ops_recorded\": {}, \"wall_ms_plain\": {:.1}, \
                 \"wall_ms_audited\": {:.1}}}",
                dd_sim::json_escape(&c.name),
                c.audited.issued(),
                c.audited.ticks,
                Cell::ops_per_tick(&c.plain),
                Cell::ops_per_tick(&c.audited),
                c.regression(),
                a.safety_count(),
                a.warning_count(),
                a.ops,
                c.wall_plain_ms,
                c.wall_audited_ms,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"e16_audit\",\n  \"cluster\": {{\"persist_n\": {PERSIST_N}, \
         \"replication\": {REPLICATION}, \"seed\": {SEED}}},\n  \"rows\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_audit.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("e16: could not write {path}: {e}");
    } else {
        println!("\nwrote machine-readable summary to BENCH_audit.json");
    }
}

fn experiment() {
    let cells = matrix();
    table_header(
        "E16: audited dependability drills — soundness and overhead",
        &["scenario", "issued", "recorded", "safety", "warn", "regr%", "wall_ms"],
    );
    for c in &cells {
        let a = c.audit();
        table_row(&[
            c.name.clone(),
            n(c.audited.issued()),
            n(a.ops),
            n(a.safety_count() as u64),
            n(a.warning_count() as u64),
            f(c.regression() * 100.0),
            f(c.wall_audited_ms),
        ]);
    }
    for c in &cells {
        let a = c.audit();
        // Acceptance 1 — soundness: zero safety violations on every
        // drill; the fault-free baseline is spotless.
        assert_eq!(
            a.safety_count(),
            0,
            "acceptance: {} audited with safety violations:\n{a}",
            c.name
        );
        if c.name == "calm" {
            assert!(a.violations.is_empty(), "calm drill must be spotless:\n{a}");
        }
        assert_eq!(a.ops, c.audited.issued(), "{}: every issued op recorded", c.name);
        // Acceptance 2 — overhead: capture is passive, so the audited
        // run's virtual-time throughput must stay within the margin (in
        // fact the report cores are identical).
        assert!(
            c.regression() <= MAX_OPS_PER_TICK_REGRESSION,
            "acceptance: {} audited ops/tick regressed {:.1}% (> {:.0}%)",
            c.name,
            c.regression() * 100.0,
            MAX_OPS_PER_TICK_REGRESSION * 100.0
        );
        let mut audited_core = c.audited.clone();
        audited_core.audit = None;
        assert_eq!(audited_core, c.plain, "{}: audit hooks perturbed the run", c.name);
    }
    println!(
        "\nshape check: every drill upholds the audited guarantees \
         (read-your-writes, monotonic reads, tombstone safety, multi-op \
         atomicity, convergence) under churn, partitions and crash waves, \
         and the history capture is free on the virtual-time axis."
    );
    write_summary(&cells);
}

/// A recorded history + snapshot for the checker kernel benchmark.
fn checker_input() -> (History, Vec<ReplicaTuple>) {
    let config = ClusterConfig::small().persist_n(12).placement(Placement::TagCollocation);
    let mut c = Cluster::new(config, SEED);
    c.settle();
    c.begin_audit();
    let report = c.run_scenario(&library::calm(SEED));
    assert!(report.issued() > 0);
    (c.end_audit().expect("recorder installed"), c.audit_snapshot())
}

fn bench(c: &mut Criterion) {
    experiment();
    let mut g = c.benchmark_group("e16");
    g.sample_size(10);
    // The audit kernel: the full checker suite over a real drill history.
    let (history, snapshot) = checker_input();
    g.bench_function("check_calm_history", |b| {
        b.iter(|| dd_audit::check(&history, &snapshot).violations.len());
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
