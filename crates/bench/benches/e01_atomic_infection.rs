//! E1 — Atomic infection probability vs fanout parameter `c` (paper
//! §III-A): relaying to `ln N + c` neighbours reaches all nodes with
//! `p_atomic = e^{-e^{-c}}`; the paper's worked example is N = 50 000,
//! c = 7 ⇒ fanout ≈ 18 and p ≥ 0.999.

use criterion::{criterion_group, criterion_main, Criterion};
use dd_bench::{f, n, table_header, table_row};
use dd_epidemic::analysis::atomic_infection_probability;
use dd_epidemic::broadcast::run_dissemination;
use dd_epidemic::push::{GossipMode, PushConfig};
use dd_epidemic::BroadcastConfig;
use dd_sim::Duration;

fn cfg(fanout: u32) -> BroadcastConfig {
    BroadcastConfig {
        push: PushConfig { fanout, mode: GossipMode::InfectAndDie, max_hops: 0 },
        anti_entropy_period: None,
    }
}

fn experiment() {
    table_header(
        "E1: atomic infection vs c (fanout = ceil(ln N) + c)",
        &["N", "c", "fanout", "p_theory", "p_measured", "mean_coverage"],
    );
    for &nn in &[1_000u64, 5_000, 20_000] {
        let runs: u32 = if nn >= 20_000 { 3 } else { 8 };
        for &c in &[0u32, 2, 4, 7] {
            let fanout = ((nn as f64).ln().ceil() as u32) + c;
            let mut atomic = 0u32;
            let mut coverage_sum = 0.0;
            for seed in 0..u64::from(runs) {
                let (reached, _) =
                    run_dissemination(nn, cfg(fanout), 1_000 + seed, Duration(60_000));
                if reached as u64 == nn {
                    atomic += 1;
                }
                coverage_sum += reached as f64 / nn as f64;
            }
            table_row(&[
                n(nn),
                n(u64::from(c)),
                n(u64::from(fanout)),
                f(atomic_infection_probability(f64::from(c))),
                f(f64::from(atomic) / f64::from(runs)),
                f(coverage_sum / f64::from(runs)),
            ]);
        }
    }
    // The paper's own worked example, one shot.
    let nn = 50_000u64;
    let fanout = 18u32;
    let (reached, msgs) = run_dissemination(nn, cfg(fanout), 9, Duration(120_000));
    println!(
        "paper example: N=50000, fanout=18 -> reached {reached}/{nn} \
         ({:.1} msgs/node; paper predicts ~18)",
        msgs as f64 / nn as f64
    );
}

fn bench(c: &mut Criterion) {
    experiment();
    let mut g = c.benchmark_group("e01");
    g.sample_size(10);
    g.bench_function("dissemination_n500_f13", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_dissemination(500, cfg(13), seed, Duration(20_000))
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
