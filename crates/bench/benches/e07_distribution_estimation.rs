//! E7 — Decentralised distribution estimation (paper §III-B-1): accuracy
//! despite "a large number of duplicates due to the redundancy, and high
//! churn rates". KS distance of the gossiped sketch vs ground truth, over
//! rounds, with replicated items and mid-run crashes.

use criterion::{criterion_group, criterion_main, Criterion};
use dd_bench::{f, n, table_header, table_row};
use dd_estimation::{DistEstimationNode, DistSketch};
use dd_membership::MembershipOracle;
use dd_sim::rng::mix;
use dd_sim::{Duration, NodeId, Sim, SimConfig, Time};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal, Zipf};

fn build(
    values: &[f64],
    replication: usize,
    nn: u64,
    seed: u64,
) -> Sim<DistEstimationNode<MembershipOracle>> {
    let mut per_node: Vec<Vec<(u64, f64)>> = vec![Vec::new(); nn as usize];
    for (idx, &v) in values.iter().enumerate() {
        let h = mix(0xE7, idx as u64);
        for k in 0..replication {
            per_node[(idx * 13 + k * 29) % nn as usize].push((h, v));
        }
    }
    let mut sim = Sim::new(SimConfig::default().seed(seed));
    for i in 0..nn {
        sim.add_node(
            NodeId(i),
            DistEstimationNode::seeded(
                MembershipOracle::dense(NodeId(i), nn),
                512,
                per_node[i as usize].iter().copied(),
                Duration(100),
            ),
        );
    }
    sim
}

fn experiment() {
    let nn = 100u64;
    let total_items = 2_000usize;
    let mut rng = SmallRng::seed_from_u64(7);
    let normal = Normal::new(100.0, 15.0).unwrap();
    let values: Vec<f64> = (0..total_items).map(|_| normal.sample(&mut rng)).collect();

    table_header(
        "E7a: KS distance vs gossip rounds (N=100, 2000 items, r=5 duplicates)",
        &["round", "ks_node0", "ks_node50", "distinct_est"],
    );
    let mut sim = build(&values, 5, nn, 1);
    for round in [1u64, 2, 4, 8, 16] {
        sim.run_until(Time(round * 100));
        let s0 = &sim.node(NodeId(0)).unwrap().sketch;
        let s50 = &sim.node(NodeId(50)).unwrap().sketch;
        table_row(&[
            n(round),
            f(s0.ks_distance(&values)),
            f(s50.ks_distance(&values)),
            f(s0.distinct_estimate()),
        ]);
    }

    table_header(
        "E7b: robustness — 25% of nodes crash at round 3 (Zipf values)",
        &["round", "ks_survivor", "sketch_len"],
    );
    let zipf = Zipf::new(1_000, 1.2).unwrap();
    let zvalues: Vec<f64> = (0..total_items).map(|_| zipf.sample(&mut rng)).collect();
    let mut sim2 = build(&zvalues, 5, nn, 2);
    for i in 0..nn / 4 {
        sim2.schedule_down(Time(300), NodeId(i * 4));
    }
    for round in [2u64, 4, 8, 16] {
        sim2.run_until(Time(round * 100));
        let s = &sim2.node(NodeId(1)).unwrap().sketch;
        table_row(&[n(round), f(s.ks_distance(&zvalues)), n(s.len() as u64)]);
    }
    println!(
        "duplicate-insensitivity: the bottom-k union counts each replicated \
         item once, so r=5 duplication does not bias the KS distance."
    );
}

fn bench(c: &mut Criterion) {
    experiment();
    let mut g = c.benchmark_group("e07");
    let mut a = DistSketch::new(512);
    let mut b2 = DistSketch::new(512);
    let mut rng = SmallRng::seed_from_u64(3);
    for i in 0..2_000u64 {
        use rand::Rng;
        a.observe(rng.gen(), i as f64);
        b2.observe(rng.gen(), i as f64);
    }
    g.bench_function("sketch_merge_512", |bch| {
        bch.iter(|| {
            let mut x = a.clone();
            x.merge(&b2);
            x.len()
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
