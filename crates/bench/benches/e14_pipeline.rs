//! E14 — Pipelined client sessions: ops/tick vs pipeline depth.
//!
//! The old client plane was lock-step — one `u64` request id, one
//! blocking wait, one operation in flight per client — so throughput was
//! capped at one round-trip per wait window. The typed session plane
//! (`Client` + `Pending<T>`) holds many operations outstanding; this
//! experiment offers the same put-only mix through one fixed-duration
//! scenario phase per pipeline depth on seed-replayed clusters and
//! measures successful operations per virtual tick. Depth 1 reproduces
//! the old lock-step ceiling; the acceptance bar is depth 16 ≥ 4× depth 1
//! on the uniform workload. Emits a machine-readable summary to
//! `BENCH_pipeline.json` at the workspace root so the perf trajectory
//! accumulates across runs.

use criterion::{criterion_group, criterion_main, Criterion};
use dd_bench::{f, n, table_header, table_row};
use dd_core::{Cluster, ClusterConfig, OpMix, Phase, Scenario, WorkloadKind};

const SESSIONS: usize = 4;
const TICKS: u64 = 1_500;
const QUANTUM: u64 = 5;
const DEPTHS: [usize; 6] = [1, 2, 4, 8, 16, 32];

struct Row {
    depth: usize,
    completed: u64,
    errors: u64,
    ticks: u64,
    ops_per_tick: f64,
    p50: f64,
    p95: f64,
}

fn run(depth: usize, seed: u64) -> Row {
    let mut c = Cluster::new(ClusterConfig::small().persist_n(32), seed);
    c.settle();
    let scenario = Scenario::new("pipeline", WorkloadKind::Uniform, seed ^ 0xE14).phase(
        Phase::new("puts", TICKS)
            .mix(OpMix::puts())
            .sessions(SESSIONS)
            .depth(depth)
            .quantum(QUANTUM),
    );
    let report = c.run_scenario(&scenario);
    let phase = &report.phases[0];
    Row {
        depth,
        completed: phase.ok,
        errors: phase.errors.total(),
        ticks: phase.ticks,
        ops_per_tick: phase.ok as f64 / phase.ticks as f64,
        p50: phase.latency_p50,
        p95: phase.latency_p95,
    }
}

/// Writes the summary JSON (hand-rolled: the workspace has no serde) for
/// trend tracking; one object per depth, stable field names.
fn write_summary(rows: &[Row]) {
    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"depth\": {}, \"sessions\": {SESSIONS}, \"completed\": {}, \
                 \"errors\": {}, \"ticks\": {}, \"ops_per_tick\": {:.5}, \
                 \"latency_p50_ticks\": {:.1}, \"latency_p95_ticks\": {:.1}}}",
                r.depth, r.completed, r.errors, r.ticks, r.ops_per_tick, r.p50, r.p95
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"e14_pipeline\",\n  \"workload\": {{\"kind\": \"uniform\", \
         \"phase_ticks\": {TICKS}, \"quantum\": {QUANTUM}}},\n  \"depths\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("e14: could not write {path}: {e}");
    } else {
        println!("\nwrote machine-readable summary to BENCH_pipeline.json");
    }
}

fn experiment() {
    let rows: Vec<Row> = DEPTHS.iter().map(|&d| run(d, 77)).collect();
    table_header(
        "E14: pipelined sessions — ops/tick vs depth (4 sessions, 1500-tick phase)",
        &["depth", "completed", "errors", "ticks", "ops/tick", "p50_lat", "p95_lat"],
    );
    for r in &rows {
        table_row(&[
            n(r.depth as u64),
            n(r.completed),
            n(r.errors),
            n(r.ticks),
            f(r.ops_per_tick),
            f(r.p50),
            f(r.p95),
        ]);
    }
    let d1 = rows.iter().find(|r| r.depth == 1).expect("depth 1 measured");
    let d16 = rows.iter().find(|r| r.depth == 16).expect("depth 16 measured");
    let speedup = d16.ops_per_tick / d1.ops_per_tick;
    println!(
        "\ndepth 16 achieves {speedup:.1}x the lock-step (depth 1) throughput; every \
         extra slot of pipeline depth overlaps another round-trip until the \
         coordinator tier saturates."
    );
    assert!(rows.iter().all(|r| r.errors == 0), "no op may fail on the uniform workload");
    assert!(
        speedup >= 4.0,
        "acceptance: depth 16 must reach >= 4x the depth-1 ops/tick, got {speedup:.2}x"
    );
    write_summary(&rows);
}

fn bench(c: &mut Criterion) {
    experiment();
    let mut g = c.benchmark_group("e14");
    g.sample_size(10);
    // The closed-loop kernel: a short depth-8 pipeline burst per iteration.
    g.bench_function("pipeline_depth8_500ticks", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let mut c = Cluster::new(ClusterConfig::small().persist_n(16), seed);
            c.settle();
            let scenario = Scenario::new("burst", WorkloadKind::Uniform, seed).phase(
                Phase::new("puts", 500).mix(OpMix::puts()).sessions(2).depth(8).quantum(QUANTUM),
            );
            c.run_scenario(&scenario).phases[0].ok
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
