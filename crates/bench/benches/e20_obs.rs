//! E20 — the telemetry plane: zero cost when off, bounded overhead when
//! sampling, and detectors that catch a seeded regression.
//!
//! Each stock dependability drill runs twice against identical clusters —
//! plain, then [`Scenario::instrumented`] — and the bench asserts the
//! three acceptance gates:
//!
//! 1. **Sampling off = 0% regression.** The instrumented run's report
//!    core (with the attached [`dd_obs::TelemetryReport`] detached) is
//!    bit-for-bit the plain run's report: gauges read state the run
//!    already computes, on the virtual-time axis, so the executed run is
//!    byte-identical.
//! 2. **Sampling on ≤ 10% ops/tick overhead** across the drill matrix
//!    (virtual-time throughput; wall-clock sampling cost is reported per
//!    row but not gated).
//! 3. **The leak detector catches a seeded regression.** With every soft
//!    node's completion logs switched to the unbounded, never-evicting
//!    shape of the PR 3 bug (`seed_completion_leak`), the monotonic-
//!    growth detector must flag `cluster.completion_backlog` — and
//!    nothing else — while every healthy drill stays leak-clean.
//!
//! Emits `BENCH_obs.json` and a `BENCH_obs.csv` sample dump at the
//! workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use dd_bench::{f, n, table_header, table_row};
use dd_core::cluster::DropletNode;
use dd_core::scenario::library;
use dd_core::{Cluster, ClusterConfig, Detector, Placement, Scenario, ScenarioReport};
use dd_obs::{names, Label, Series, TelemetryReport};

const PERSIST_N: u64 = 36;
const REPLICATION: u32 = 3;
const SEED: u64 = 2_027;

/// Maximum tolerated ops/tick regression of an instrumented run vs the
/// same drill uninstrumented (the issue's acceptance bound).
const MAX_OPS_PER_TICK_REGRESSION: f64 = 0.10;

struct Cell {
    name: String,
    plain: ScenarioReport,
    instrumented: ScenarioReport,
    wall_plain_ms: f64,
    wall_instrumented_ms: f64,
}

impl Cell {
    fn telemetry(&self) -> &TelemetryReport {
        self.instrumented.telemetry.as_ref().expect("instrumented run attaches telemetry")
    }

    fn peak(t: &TelemetryReport, name: &'static str) -> f64 {
        t.data.get(name, Label::None).map_or(0.0, Series::max)
    }

    fn ops_per_tick(report: &ScenarioReport) -> f64 {
        report.issued() as f64 / report.ticks as f64
    }

    fn regression(&self) -> f64 {
        1.0 - Self::ops_per_tick(&self.instrumented) / Self::ops_per_tick(&self.plain)
    }
}

fn cluster() -> Cluster {
    let config = ClusterConfig::small()
        .persist_n(PERSIST_N)
        .replication(REPLICATION)
        .placement(Placement::TagCollocation);
    let mut c = Cluster::new(config, SEED);
    c.settle();
    c
}

fn run(scenario: &Scenario) -> (ScenarioReport, f64) {
    let mut c = cluster();
    let t0 = std::time::Instant::now();
    let report = c.run_scenario(scenario);
    (report, t0.elapsed().as_secs_f64() * 1_000.0)
}

fn drills() -> Vec<Scenario> {
    vec![
        library::calm(SEED),
        library::churn_storm(SEED),
        library::partition_heal(SEED),
        library::cascading_crash(SEED),
    ]
}

fn matrix() -> Vec<Cell> {
    drills()
        .into_iter()
        .map(|drill| {
            let (plain, wall_plain_ms) = run(&drill);
            let (instrumented, wall_instrumented_ms) = run(&drill.instrumented());
            Cell {
                name: plain.name.clone(),
                plain,
                instrumented,
                wall_plain_ms,
                wall_instrumented_ms,
            }
        })
        .collect()
}

/// Gate 3's seeded regression: the same churn-storm drill, but with every
/// soft node's completion logs flipped to the unbounded, never-evicting
/// shape of the PR 3 bug. Client-visible results are unchanged (harvest
/// still answers), so only the backlog gauge grows without bound.
fn leaky_run() -> ScenarioReport {
    let mut c = cluster();
    let soft: Vec<_> = c.soft_ids().to_vec();
    for id in soft {
        c.sim
            .node_mut(id)
            .and_then(DropletNode::as_soft_mut)
            .expect("soft node")
            .seed_completion_leak();
    }
    c.run_scenario(&library::churn_storm(SEED).instrumented())
}

/// Hand-rolled JSON (the workspace has no serde), one row per drill.
fn write_summary(cells: &[Cell], leaky: &TelemetryReport) {
    let entries: Vec<String> = cells
        .iter()
        .map(|c| {
            let t = c.telemetry();
            format!(
                "    {{\"scenario\": \"{}\", \"issued\": {}, \"ticks\": {}, \
                 \"ops_per_tick_plain\": {:.5}, \"ops_per_tick_instrumented\": {:.5}, \
                 \"ops_per_tick_regression\": {:.5}, \"samples\": {}, \"series\": {}, \
                 \"peak_queue_depth\": {:.0}, \"peak_store_bytes\": {:.0}, \
                 \"findings\": {}, \"wall_ms_plain\": {:.1}, \"wall_ms_instrumented\": {:.1}}}",
                dd_sim::json_escape(&c.name),
                c.instrumented.issued(),
                c.instrumented.ticks,
                Cell::ops_per_tick(&c.plain),
                Cell::ops_per_tick(&c.instrumented),
                c.regression(),
                t.samples,
                t.summaries.len(),
                Cell::peak(t, names::QUEUE_DEPTH),
                Cell::peak(t, names::STORE_BYTES),
                t.findings.len(),
                c.wall_plain_ms,
                c.wall_instrumented_ms,
            )
        })
        .collect();
    let leak_findings: Vec<String> = leaky
        .findings_of(Detector::Leak)
        .map(|f| format!("\"{}\"", dd_sim::json_escape(&f.series)))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"e20_obs\",\n  \"cluster\": {{\"persist_n\": {PERSIST_N}, \
         \"replication\": {REPLICATION}, \"seed\": {SEED}}},\n  \
         \"seeded_leak_flagged\": [{}],\n  \"rows\": [\n{}\n  ]\n}}\n",
        leak_findings.join(", "),
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("e20: could not write {path}: {e}");
    } else {
        println!("\nwrote machine-readable summary to BENCH_obs.json");
    }
}

/// The full sample dump of the churn-storm drill, for offline plotting.
fn write_csv(cells: &[Cell]) {
    let storm = cells.iter().find(|c| c.name == "churn-storm").expect("storm cell");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.csv");
    if let Err(e) = std::fs::write(path, storm.telemetry().data.to_csv()) {
        eprintln!("e20: could not write {path}: {e}");
    } else {
        println!("wrote churn-storm sample dump to BENCH_obs.csv");
    }
}

fn experiment() {
    let cells = matrix();
    table_header(
        "E20: instrumented dependability drills — overhead and detectors",
        &["scenario", "issued", "samples", "series", "peak q", "findings", "regr%", "wall_ms"],
    );
    for c in &cells {
        let t = c.telemetry();
        table_row(&[
            c.name.clone(),
            n(c.instrumented.issued()),
            n(t.samples),
            n(t.summaries.len() as u64),
            f(Cell::peak(t, names::QUEUE_DEPTH)),
            n(t.findings.len() as u64),
            f(c.regression() * 100.0),
            f(c.wall_instrumented_ms),
        ]);
    }
    for c in &cells {
        let t = c.telemetry();
        // Gate 1 — passivity: detach the telemetry and the report core
        // must equal the plain run bit for bit (f64 Debug is shortest-
        // roundtrip, so Debug-equality below means bit-equality).
        let mut core = c.instrumented.clone();
        core.telemetry = None;
        assert_eq!(core, c.plain, "{}: sampler hooks perturbed the run", c.name);
        assert_eq!(
            format!("{core:?}"),
            format!("{:?}", c.plain),
            "{}: instrumented replay is not byte-identical",
            c.name
        );
        assert!(t.samples > 0, "{}: sampler fired", c.name);
        assert!(
            t.data.get(names::QUEUE_DEPTH, Label::None).is_some(),
            "{}: engine gauges sampled",
            c.name
        );
        // Gate 2 — overhead: virtual-time throughput within the bound
        // (sampling is passive on the virtual axis, so this is in fact
        // 0%).
        assert!(
            c.regression() <= MAX_OPS_PER_TICK_REGRESSION,
            "acceptance: {} instrumented ops/tick regressed {:.1}% (> {:.0}%)",
            c.name,
            c.regression() * 100.0,
            MAX_OPS_PER_TICK_REGRESSION * 100.0
        );
        // Healthy drills are leak-clean: load-then-plateau store growth
        // and churn-driven queue wobble must not trip the monotonic-
        // growth detector.
        let leaks: Vec<_> = t.findings_of(Detector::Leak).collect();
        assert!(
            leaks.is_empty(),
            "acceptance: {} flagged a leak in a healthy run: {leaks:?}",
            c.name,
        );
    }
    // Gate 3 — the seeded regression: unbounded completion logs must be
    // flagged as a leak on exactly the backlog gauge, nothing else.
    let leaky = leaky_run();
    let t = leaky.telemetry.as_ref().expect("instrumented run attaches telemetry");
    let flagged: Vec<&str> = t.findings_of(Detector::Leak).map(|f| f.series.as_str()).collect();
    assert_eq!(
        flagged,
        vec![names::COMPLETION_BACKLOG],
        "acceptance: seeded completion-log leak not pinned on the backlog \
         gauge\n{}",
        t.summary()
    );
    println!("\n{}", t.summary());
    println!(
        "\nshape check: sampling is free on the virtual-time axis (the \
         instrumented report core is byte-identical), healthy drills carry \
         no leak findings, and the seeded unbounded completion log is \
         flagged on exactly cluster.completion_backlog."
    );
    write_summary(&cells, t);
    write_csv(&cells);
}

/// A captured storm telemetry set for the export-kernel benchmarks.
fn kernel_input() -> dd_obs::Telemetry {
    let config = ClusterConfig::small().persist_n(12).placement(Placement::TagCollocation);
    let mut c = Cluster::new(config, SEED);
    c.settle();
    c.begin_instrument();
    let report = c.run_scenario(&library::churn_storm(SEED));
    assert!(report.issued() > 0);
    c.end_instrument().expect("sampler installed")
}

fn bench(c: &mut Criterion) {
    experiment();
    let mut g = c.benchmark_group("e20");
    g.sample_size(10);
    let telemetry = kernel_input();
    // The analysis kernel: summaries + detectors over a real storm's
    // sampled series.
    g.bench_function("build_storm_report", |b| {
        b.iter(|| TelemetryReport::build(telemetry.clone()).summaries.len());
    });
    // The export kernels: Prometheus text exposition and the full CSV
    // dump.
    g.bench_function("prometheus_storm", |b| {
        b.iter(|| telemetry.to_prometheus().len());
    });
    g.bench_function("csv_storm", |b| {
        b.iter(|| telemetry.to_csv().len());
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
