//! E19 — the tracing plane: zero cost when off, bounded overhead when on,
//! and critical-path attribution that explains the tail.
//!
//! Each stock dependability drill runs twice against identical clusters —
//! plain, then [`Scenario::traced`] — and the bench asserts the three
//! acceptance gates:
//!
//! 1. **Tracing off = 0% regression.** The traced run's report core (with
//!    the attached [`dd_trace::TraceReport`] detached) is bit-for-bit the
//!    plain run's report: span capture is passive on the virtual-time
//!    axis, so the executed run is byte-identical.
//! 2. **Tracing on ≤ 10% ops/tick overhead** across the drill matrix
//!    (virtual-time throughput; wall-clock recording cost is reported per
//!    row but not gated).
//! 3. **Attribution pins the tail on the fault.** In the churn-storm
//!    drill the slowest ops' critical paths must be dominated by a wait
//!    hop that was *never answered* — the replica the failure detector
//!    eventually struck — not by healthy forwarding hops.
//!
//! Emits `BENCH_trace.json` at the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use dd_bench::{f, n, table_header, table_row};
use dd_core::scenario::library;
use dd_core::{
    Cluster, ClusterConfig, EnvChange, OpMix, Phase, Placement, Scenario, ScenarioReport,
    WorkloadKind,
};
use dd_trace::TraceReport;

const PERSIST_N: u64 = 36;
const REPLICATION: u32 = 3;
const SEED: u64 = 2_027;

/// Maximum tolerated ops/tick regression of a traced run vs the same
/// drill untraced (the issue's acceptance bound).
const MAX_OPS_PER_TICK_REGRESSION: f64 = 0.10;

struct Cell {
    name: String,
    plain: ScenarioReport,
    traced: ScenarioReport,
    wall_plain_ms: f64,
    wall_traced_ms: f64,
}

impl Cell {
    fn trace(&self) -> &TraceReport {
        self.traced.trace.as_ref().expect("traced run attaches a trace report")
    }

    fn ops_per_tick(report: &ScenarioReport) -> f64 {
        report.issued() as f64 / report.ticks as f64
    }

    fn regression(&self) -> f64 {
        1.0 - Self::ops_per_tick(&self.traced) / Self::ops_per_tick(&self.plain)
    }
}

fn run(scenario: &Scenario) -> (ScenarioReport, f64) {
    let config = ClusterConfig::small()
        .persist_n(PERSIST_N)
        .replication(REPLICATION)
        .placement(Placement::TagCollocation);
    let mut c = Cluster::new(config, SEED);
    c.settle();
    let t0 = std::time::Instant::now();
    let report = c.run_scenario(scenario);
    (report, t0.elapsed().as_secs_f64() * 1_000.0)
}

/// The attribution showcase: a loss episode the failure detector cannot
/// see. Crashes and partitions are detected within one pump quantum and
/// routed around, but a silently dropped fetch (or its reply) leaves the
/// coordinator waiting on a healthy-looking replica until the multi-op
/// deadline sweep / client timeout fires — so tail ops' critical paths
/// must be one long never-answered wait on the replica whose message was
/// lost.
fn drop_storm(seed: u64) -> Scenario {
    Scenario::new("drop-storm", WorkloadKind::SocialFeed { users: 8 }, seed)
        .phase(Phase::new("load", 6_000).mix(OpMix::idle().put(3).multi_put(1).batch(4)).ops(240))
        .env(6_000, EnvChange::DropProb(0.15))
        .phase(Phase::new("serve", 10_000).mix(OpMix::idle().get(3).multi_get(2)).ops(300))
        .env(16_000, EnvChange::DropProb(0.0))
}

fn matrix() -> Vec<Cell> {
    [
        library::calm(SEED),
        library::churn_storm(SEED),
        library::partition_heal(SEED),
        library::cascading_crash(SEED),
        drop_storm(SEED),
    ]
    .into_iter()
    .map(|drill| {
        let (plain, wall_plain_ms) = run(&drill);
        let (traced, wall_traced_ms) = run(&drill.traced());
        Cell { name: plain.name.clone(), plain, traced, wall_plain_ms, wall_traced_ms }
    })
    .collect()
}

/// Hand-rolled JSON (the workspace has no serde), one row per drill.
fn write_summary(cells: &[Cell]) {
    let entries: Vec<String> = cells
        .iter()
        .map(|c| {
            let t = c.trace();
            let top = t.hops.first();
            let slowest = t.slowest.first();
            format!(
                "    {{\"scenario\": \"{}\", \"issued\": {}, \"ticks\": {}, \
                 \"ops_per_tick_plain\": {:.5}, \"ops_per_tick_traced\": {:.5}, \
                 \"ops_per_tick_regression\": {:.5}, \"ops_traced\": {}, \"spans\": {}, \
                 \"top_hop\": \"{}\", \"top_hop_share\": {:.4}, \"slowest_op_ticks\": {}, \
                 \"latency_p99_ticks\": {:.1}, \"wall_ms_plain\": {:.1}, \
                 \"wall_ms_traced\": {:.1}}}",
                dd_sim::json_escape(&c.name),
                c.traced.issued(),
                c.traced.ticks,
                Cell::ops_per_tick(&c.plain),
                Cell::ops_per_tick(&c.traced),
                c.regression(),
                t.ops,
                t.spans,
                dd_sim::json_escape(top.map(|h| h.label.as_str()).unwrap_or("-")),
                top.map(|h| h.share).unwrap_or(0.0),
                slowest.map(|s| s.ticks).unwrap_or(0),
                c.traced.latency_p99,
                c.wall_plain_ms,
                c.wall_traced_ms,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"e19_trace\",\n  \"cluster\": {{\"persist_n\": {PERSIST_N}, \
         \"replication\": {REPLICATION}, \"seed\": {SEED}}},\n  \"rows\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("e19: could not write {path}: {e}");
    } else {
        println!("\nwrote machine-readable summary to BENCH_trace.json");
    }
}

fn experiment() {
    let cells = matrix();
    table_header(
        "E19: traced dependability drills — overhead and attribution",
        &["scenario", "issued", "ops", "spans", "top hop", "share%", "regr%", "wall_ms"],
    );
    for c in &cells {
        let t = c.trace();
        let top = t.hops.first();
        table_row(&[
            c.name.clone(),
            n(c.traced.issued()),
            n(t.ops),
            n(t.spans),
            top.map(|h| h.label.clone()).unwrap_or_else(|| "-".into()),
            f(top.map(|h| h.share * 100.0).unwrap_or(0.0)),
            f(c.regression() * 100.0),
            f(c.wall_traced_ms),
        ]);
    }
    for c in &cells {
        let t = c.trace();
        // Gate 1 — passivity: detach the trace and the report core must
        // equal the plain run bit for bit (f64 Debug is shortest-
        // roundtrip, so Debug-equality below means bit-equality).
        let mut core = c.traced.clone();
        core.trace = None;
        assert_eq!(core, c.plain, "{}: trace hooks perturbed the run", c.name);
        assert_eq!(
            format!("{core:?}"),
            format!("{:?}", c.plain),
            "{}: traced replay is not byte-identical",
            c.name
        );
        assert_eq!(t.ops, c.traced.issued(), "{}: every issued op traced", c.name);
        assert!(t.spans > t.ops, "{}: ops decomposed into span trees", c.name);
        // Gate 2 — overhead: virtual-time throughput within the bound
        // (capture is passive, so this is in fact 0%).
        assert!(
            c.regression() <= MAX_OPS_PER_TICK_REGRESSION,
            "acceptance: {} traced ops/tick regressed {:.1}% (> {:.0}%)",
            c.name,
            c.regression() * 100.0,
            MAX_OPS_PER_TICK_REGRESSION * 100.0
        );
    }
    // Gate 3 — attribution: tail latency must be blamed on a wait for
    // the replica that never replied (the churned/dead node), not on a
    // healthy forwarding hop.
    //
    // 3a: the churn storm masks faults well, but its single slowest op —
    // the p95+ tail — must still be pinned on an unanswered wait.
    let storm = cells.iter().find(|c| c.name == "churn-storm").expect("storm cell");
    let t = storm.trace();
    let tail = t.slowest.first().expect("storm produced a slowest-ops digest");
    let dom = tail.dominant().expect("tail op has a critical path");
    assert!(
        !dom.answered && dom.label.ends_with("_wait"),
        "acceptance: storm tail op {} not pinned on a dead replica's wait \
         (dominant hop {} on node {}, answered: {})\n{}",
        tail.op,
        dom.label,
        dom.node,
        dom.answered,
        t.summary()
    );
    // 3b: under silent loss the blame must be unambiguous. Every slowest
    // op's dominant step must be *never answered* (a request that
    // vanished, or a wait on a replica whose reply was lost), the tail op
    // must spend the majority of its life in that one step, and the set
    // must contain deadline-length waits pinned on specific replicas.
    let ds = cells.iter().find(|c| c.name == "drop-storm").expect("drop-storm cell");
    let t = ds.trace();
    let pinned =
        t.slowest.iter().filter(|d| d.dominant().is_some_and(|step| !step.answered)).count();
    assert!(
        pinned * 2 > t.slowest.len(),
        "acceptance: drop-storm tail not pinned on lost messages \
         (only {pinned}/{} slowest ops dominated by a never-answered step)\n{}",
        t.slowest.len(),
        t.summary()
    );
    let tail = t.slowest.first().expect("drop-storm slowest op");
    let dom = tail.dominant().expect("tail op has a critical path");
    assert!(
        dom.ticks() * 2 >= tail.ticks,
        "acceptance: drop-storm tail op {} dominant hop {} covers only \
         {}/{} ticks",
        tail.op,
        dom.label,
        dom.ticks(),
        tail.ticks
    );
    // The node-level blame: coordinators that lost a fetch (or its reply)
    // sat out the full multi-op deadline waiting on one named replica —
    // the span record the hedged-request work will key off.
    let lost_waits = t
        .set
        .traces
        .iter()
        .flat_map(|tr| tr.spans.iter())
        .filter(|s| s.label.ends_with("_wait") && !s.answered && s.ticks() >= 1_000)
        .count();
    assert!(
        lost_waits > 0,
        "acceptance: drop-storm recorded no deadline-length unanswered \
         replica wait\n{}",
        t.summary()
    );
    println!("\n{}", t.summary());
    println!(
        "\nshape check: tracing is free on the virtual-time axis (the traced \
         report core is byte-identical), and the storm's tail latency is \
         attributed to unanswered waits on churned replicas — exactly the \
         per-hop evidence the hedged-request work needs."
    );
    write_summary(&cells);
}

/// A captured storm trace set for the analysis-kernel benchmarks.
fn kernel_input() -> dd_trace::TraceSet {
    let config = ClusterConfig::small().persist_n(12).placement(Placement::TagCollocation);
    let mut c = Cluster::new(config, SEED);
    c.settle();
    c.begin_trace();
    let report = c.run_scenario(&library::churn_storm(SEED));
    assert!(report.issued() > 0);
    c.end_trace().expect("recorder installed")
}

fn bench(c: &mut Criterion) {
    experiment();
    let mut g = c.benchmark_group("e19");
    g.sample_size(10);
    let set = kernel_input();
    // The analysis kernel: critical paths + hop/tier aggregation over a
    // real storm's span trees.
    g.bench_function("build_storm_report", |b| {
        b.iter(|| TraceReport::build(set.clone()).spans);
    });
    // The export kernel: Chrome trace-event JSON for the whole run.
    g.bench_function("chrome_json_storm", |b| {
        b.iter(|| set.to_chrome_json().len());
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
