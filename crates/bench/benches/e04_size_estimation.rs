//! E4 — Epidemic network-size estimation (paper §III-A: "the number of
//! nodes could be estimated also in an epidemic manner as in \[23\]").
//! Extrema propagation: accuracy vs K, convergence over gossip rounds,
//! robustness under churn.

use criterion::{criterion_group, criterion_main, Criterion};
use dd_bench::{f, n, table_header, table_row};
use dd_estimation::{ExtremaEstimator, ExtremaNode};
use dd_membership::MembershipOracle;
use dd_sim::{Duration, NodeId, Sim, SimConfig, Time};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn offline_error(nn: u64, k: usize, seeds: u64) -> f64 {
    let mut total = 0.0;
    for seed in 0..seeds {
        let mut rng = SmallRng::seed_from_u64(seed * 77 + 1);
        let mut global = ExtremaEstimator::generate(&mut rng, k);
        for _ in 1..nn {
            global.merge(&ExtremaEstimator::generate(&mut rng, k));
        }
        total += (global.estimate() - nn as f64).abs() / nn as f64;
    }
    total / seeds as f64
}

fn experiment() {
    table_header(
        "E4a: size-estimate relative error vs K (offline merge)",
        &["N", "K=64", "K=256", "K=1024"],
    );
    for &nn in &[100u64, 1_000, 10_000] {
        table_row(&[
            n(nn),
            f(offline_error(nn, 64, 5)),
            f(offline_error(nn, 256, 5)),
            f(offline_error(nn, 1024, 5)),
        ]);
    }

    table_header(
        "E4b: gossip convergence at N=500, K=256 (fanout 2/round)",
        &["round", "mean_est", "max_rel_err", "spread"],
    );
    let nn = 500u64;
    let period = 100u64;
    let mut sim: Sim<ExtremaNode<MembershipOracle>> = Sim::new(SimConfig::default().seed(4));
    let mut seeder = SmallRng::seed_from_u64(99);
    for i in 0..nn {
        sim.add_node(
            NodeId(i),
            ExtremaNode::new(
                MembershipOracle::dense(NodeId(i), nn),
                ExtremaEstimator::generate(&mut seeder, 256),
                Duration(period),
                2,
            ),
        );
    }
    for round in [1u64, 2, 4, 8, 16, 32] {
        sim.run_until(Time(round * period));
        let ests: Vec<f64> = (0..nn).map(|i| sim.node(NodeId(i)).unwrap().estimate()).collect();
        let mean = ests.iter().sum::<f64>() / nn as f64;
        let max_err = ests.iter().map(|e| (e - nn as f64).abs() / nn as f64).fold(0.0f64, f64::max);
        let spread = ests.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - ests.iter().copied().fold(f64::INFINITY, f64::min);
        table_row(&[n(round), f(mean), f(max_err), f(spread)]);
    }

    // E4c: churn — kill 20% mid-convergence; survivors still converge.
    let mut sim2: Sim<ExtremaNode<MembershipOracle>> = Sim::new(SimConfig::default().seed(5));
    let mut seeder = SmallRng::seed_from_u64(123);
    for i in 0..nn {
        sim2.add_node(
            NodeId(i),
            ExtremaNode::new(
                MembershipOracle::dense(NodeId(i), nn),
                ExtremaEstimator::generate(&mut seeder, 256),
                Duration(period),
                2,
            ),
        );
    }
    for i in 0..nn / 5 {
        sim2.schedule_down(Time(300), NodeId(i * 5));
    }
    sim2.run_until(Time(30 * period));
    let survivor = sim2.node(NodeId(1)).unwrap().estimate();
    println!(
        "E4c: with 20% of nodes crashed at round 3, a survivor estimates \
         {survivor:.0} (true initial N = {nn}; estimates stay in range \
         because minima are monotone)."
    );
}

fn bench(c: &mut Criterion) {
    experiment();
    let mut g = c.benchmark_group("e04");
    let mut rng = SmallRng::seed_from_u64(1);
    let a = ExtremaEstimator::generate(&mut rng, 1024);
    let b2 = ExtremaEstimator::generate(&mut rng, 1024);
    g.bench_function("extrema_merge_k1024", |bch| {
        bch.iter(|| {
            let mut x = a.clone();
            x.merge(&b2);
            x.estimate()
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
