//! E3 — Sieve-based replication (paper §III-A): the uniform `r/N` sieve
//! yields expected replication `r`; sieve grain adapts to disparate node
//! capacities; range-partition sieves cover the key space exactly `r`-fold.

use criterion::{criterion_group, criterion_main, Criterion};
use dd_bench::{f, n, table_header, table_row};
use dd_sieve::{check_coverage, CapacitySieve, ItemMeta, RangeSieve, Sieve, UniformSieve};

fn items(count: u64) -> Vec<ItemMeta> {
    (0..count).map(|i| ItemMeta::from_key(format!("e3-{i}").as_bytes())).collect()
}

fn experiment() {
    let probe = items(20_000);
    table_header(
        "E3a: uniform r/N sieves — replica statistics",
        &["N", "r", "mean", "min", "max", "uncov_meas", "uncov_theory"],
    );
    for &nn in &[1_000u64, 10_000] {
        for &r in &[3u32, 5, 8] {
            let sieves: Vec<UniformSieve> =
                (0..nn).map(|i| UniformSieve::replication(i, r, nn)).collect();
            let rep = check_coverage(&sieves, &probe);
            table_row(&[
                n(nn),
                n(u64::from(r)),
                f(rep.replicas.mean),
                f(rep.replicas.min),
                f(rep.replicas.max),
                f(rep.uncovered as f64 / rep.probes as f64),
                f((-f64::from(r)).exp()),
            ]);
        }
    }

    table_header(
        "E3b: range-partition sieves — deterministic r-fold coverage",
        &["N", "r", "mean", "min", "max", "uncovered"],
    );
    for &nn in &[64u64, 1_024] {
        let r = 3u32;
        let sieves: Vec<RangeSieve> = (0..nn).map(|i| RangeSieve::partition(i, nn, r)).collect();
        let rep = check_coverage(&sieves, &probe);
        table_row(&[
            n(nn),
            n(u64::from(r)),
            f(rep.replicas.mean),
            f(rep.replicas.min),
            f(rep.replicas.max),
            n(rep.uncovered as u64),
        ]);
    }

    table_header(
        "E3c: capacity-weighted sieves — stored volume tracks weight",
        &["weight", "items_stored", "vs_weight_1"],
    );
    let nn = 200u64;
    let r = 4u32;
    let base = items(50_000);
    let reference = {
        let s = CapacitySieve::new(0, r, nn, 1.0);
        base.iter().filter(|i| s.accepts(i)).count() as f64
    };
    for &w in &[0.25f64, 0.5, 1.0, 2.0, 4.0] {
        let s = CapacitySieve::new(1, r, nn, w);
        let stored = base.iter().filter(|i| s.accepts(i)).count();
        table_row(&[f(w), n(stored as u64), f(stored as f64 / reference)]);
    }
}

fn bench(c: &mut Criterion) {
    experiment();
    let mut g = c.benchmark_group("e03");
    let sieve = UniformSieve::replication(7, 3, 10_000);
    let probe: Vec<ItemMeta> = items(1_000);
    g.bench_function("uniform_sieve_accept_1k", |b| {
        b.iter(|| probe.iter().filter(|i| sieve.accepts(i)).count());
    });
    let range = RangeSieve::partition(5, 1_024, 3);
    g.bench_function("range_sieve_accept_1k", |b| {
        b.iter(|| probe.iter().filter(|i| range.accepts(i)).count());
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
