//! E10 — Gossip aggregation (paper §III-C): simple aggregates (average,
//! count, min/max) converge exponentially with "minimal overhead", and
//! remain robust under churn.

use criterion::{criterion_group, criterion_main, Criterion};
use dd_bench::{f, n, table_header, table_row};
use dd_estimation::{PushSumNode, PushSumState};
use dd_membership::MembershipOracle;
use dd_sim::{Duration, NodeId, Sim, SimConfig, Time};

fn build(nn: u64, seed: u64, churn_quarter_at: Option<u64>) -> Sim<PushSumNode<MembershipOracle>> {
    let mut sim = Sim::new(SimConfig::default().seed(seed));
    for i in 0..nn {
        sim.add_node(
            NodeId(i),
            PushSumNode::new(
                MembershipOracle::dense(NodeId(i), nn),
                PushSumState::for_average(i as f64),
                Duration(100),
            ),
        );
    }
    if let Some(t) = churn_quarter_at {
        for i in 0..nn / 4 {
            sim.schedule_down(Time(t), NodeId(i * 4));
        }
    }
    sim
}

fn error_stats(sim: &Sim<PushSumNode<MembershipOracle>>, nn: u64, truth: f64) -> (f64, f64) {
    let mut errs: Vec<f64> = Vec::new();
    for i in 0..nn {
        if !sim.is_alive(NodeId(i)) {
            continue;
        }
        if let (Some(r), _, _) = sim.node(NodeId(i)).unwrap().estimates() {
            errs.push((r - truth).abs() / truth);
        }
    }
    let mean = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
    let max = errs.iter().copied().fold(0.0f64, f64::max);
    (mean, max)
}

fn experiment() {
    let nn = 1_000u64;
    let truth = (nn - 1) as f64 / 2.0;

    table_header(
        "E10a: push-sum average, error vs rounds (N=1000, values 0..N)",
        &["round", "mean_rel_err", "max_rel_err"],
    );
    let mut sim = build(nn, 1, None);
    for round in [2u64, 5, 10, 20, 40] {
        sim.run_until(Time(round * 100));
        let (mean, max) = error_stats(&sim, nn, truth);
        table_row(&[n(round), f(mean), f(max)]);
    }

    table_header(
        "E10b: same run with 25% of nodes crashing at round 5",
        &["round", "mean_rel_err", "max_rel_err"],
    );
    let mut sim2 = build(nn, 2, Some(500));
    for round in [2u64, 5, 10, 20, 40] {
        sim2.run_until(Time(round * 100));
        let (mean, max) = error_stats(&sim2, nn, truth);
        table_row(&[n(round), f(mean), f(max)]);
    }
    println!(
        "note: crashes remove (sum, weight) mass in flight, biasing the \
         estimate by a bounded amount — the paper's open problem of 'robust \
         aggregation within the dynamic environment'. Min/max (idempotent) \
         are unaffected."
    );

    // Min/max under the same churn:
    let mut ok = true;
    for i in 0..nn {
        if !sim2.is_alive(NodeId(i)) {
            continue;
        }
        let (_, min, max) = sim2.node(NodeId(i)).unwrap().estimates();
        ok &= min == 0.0 && max == (nn - 1) as f64;
    }
    println!("E10c: min/max exact at every survivor under churn: {ok}");
}

fn bench(c: &mut Criterion) {
    experiment();
    let mut g = c.benchmark_group("e10");
    g.sample_size(10);
    g.bench_function("pushsum_n200_20rounds", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let mut sim = build(200, seed, None);
            sim.run_until(Time(20 * 100));
            error_stats(&sim, 200, 99.5)
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
