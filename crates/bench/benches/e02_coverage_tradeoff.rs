//! E2 — Relaxed dissemination: coverage and cost vs fanout (paper §III-A:
//! with uniform redundancy "it is enough to reach a proportion of the
//! system"; going from partial to atomic coverage "requires a substantial
//! increase in the number of copies that need to be relayed").

use criterion::{criterion_group, criterion_main, Criterion};
use dd_bench::{f, n, table_header, table_row};
use dd_epidemic::analysis::expected_coverage;
use dd_epidemic::broadcast::run_dissemination;
use dd_epidemic::push::{GossipMode, PushConfig};
use dd_epidemic::BroadcastConfig;
use dd_sim::Duration;

fn cfg(fanout: u32) -> BroadcastConfig {
    BroadcastConfig {
        push: PushConfig { fanout, mode: GossipMode::InfectAndDie, max_hops: 0 },
        anti_entropy_period: None,
    }
}

fn experiment() {
    let nn = 5_000u64;
    let runs = 5u64;
    table_header(
        "E2: coverage vs fanout at N=5000",
        &["fanout", "pi_theory", "coverage", "msgs/node", "msgs/covered"],
    );
    for &fanout in &[1u32, 2, 3, 4, 5, 6, 8, 10, 12, 15, 18] {
        let mut cov = 0.0;
        let mut msgs = 0u64;
        for seed in 0..runs {
            let (reached, m) = run_dissemination(nn, cfg(fanout), 2_000 + seed, Duration(60_000));
            cov += reached as f64 / nn as f64;
            msgs += m;
        }
        cov /= runs as f64;
        let msgs_per_node = msgs as f64 / runs as f64 / nn as f64;
        let per_covered = if cov > 0.0 { msgs_per_node / cov } else { 0.0 };
        table_row(&[
            n(u64::from(fanout)),
            f(expected_coverage(f64::from(fanout))),
            f(cov),
            f(msgs_per_node),
            f(per_covered),
        ]);
    }
    println!(
        "trade-off: covering ~95% costs ~5 msgs/node; guaranteeing atomicity \
         (p=0.999) costs {} msgs/node — the paper's 'substantial increase'.",
        dd_epidemic::required_fanout(nn, 0.999)
    );
}

fn bench(c: &mut Criterion) {
    experiment();
    let mut g = c.benchmark_group("e02");
    g.sample_size(10);
    g.bench_function("coverage_n1000_f4", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            run_dissemination(1_000, cfg(4), seed, Duration(20_000))
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
