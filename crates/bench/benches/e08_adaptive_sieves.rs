//! E8 — Distribution-aware sieves (paper §III-B-1): on skewed data,
//! equi-depth sieves ("finer near the mean ± standard deviation") balance
//! load where fixed-width value-range sieves hotspot.

use criterion::{criterion_group, criterion_main, Criterion};
use dd_bench::{f, n, table_header, table_row};
use dd_sieve::histogram::equi_depth_edges;
use dd_sieve::{HistogramSieve, ItemMeta, Sieve};
use dd_sim::metrics::Summary;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal, Zipf};

/// Load distribution when each of `b` nodes owns one bucket, with either
/// fixed-width or equi-depth edges over `sample`.
fn loads(sample: &[f64], fresh: &[f64], b: usize, equi_depth: bool) -> Vec<u32> {
    let edges = if equi_depth {
        equi_depth_edges(sample, b)
    } else {
        let (min, max) = sample
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        (1..b).map(|k| min + (max - min) * k as f64 / b as f64).collect()
    };
    let sieves: Vec<HistogramSieve> =
        (0..b).map(|i| HistogramSieve::new(edges.clone(), i, 1)).collect();
    let mut load = vec![0u32; b];
    for &v in fresh {
        let item = ItemMeta::from_key(b"probe").with_attr(v);
        for (i, s) in sieves.iter().enumerate() {
            if s.accepts(&item) {
                load[i] += 1;
            }
        }
    }
    load
}

fn experiment() {
    let b = 32usize;
    let mut rng = SmallRng::seed_from_u64(8);
    let normal = Normal::new(100.0, 15.0).unwrap();
    let zipf = Zipf::new(10_000, 1.1).unwrap();

    table_header(
        "E8: load balance across 32 nodes (CV and max/mean of items per node)",
        &["distribution", "edges", "cv", "max/mean", "max_items"],
    );
    for (name, sample, fresh) in [
        (
            "normal",
            (0..40_000).map(|_| normal.sample(&mut rng)).collect::<Vec<f64>>(),
            (0..20_000).map(|_| normal.sample(&mut rng)).collect::<Vec<f64>>(),
        ),
        (
            "zipf",
            (0..40_000).map(|_| zipf.sample(&mut rng)).collect::<Vec<f64>>(),
            (0..20_000).map(|_| zipf.sample(&mut rng)).collect::<Vec<f64>>(),
        ),
    ] {
        for (label, ed) in [("fixed", false), ("equi-depth", true)] {
            let load = loads(&sample, &fresh, b, ed);
            let stats = Summary::of(&load.iter().map(|&l| f64::from(l)).collect::<Vec<f64>>());
            table_row(&[
                name.into(),
                label.into(),
                f(stats.cv()),
                f(stats.max / stats.mean),
                n(stats.max as u64),
            ]);
        }
    }
    println!(
        "the paper's prescription: equi-depth (distribution-aware) sieves cut \
         the hotspot (max/mean) by an order of magnitude on skewed data while \
         keeping value-adjacent items collocated."
    );
}

fn bench(c: &mut Criterion) {
    experiment();
    let mut g = c.benchmark_group("e08");
    let mut rng = SmallRng::seed_from_u64(9);
    let normal = Normal::new(0.0, 1.0).unwrap();
    let sample: Vec<f64> = (0..50_000).map(|_| normal.sample(&mut rng)).collect();
    g.bench_function("equi_depth_edges_50k_b64", |b| {
        b.iter(|| equi_depth_edges(&sample, 64));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
