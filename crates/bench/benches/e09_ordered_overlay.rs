//! E9 — Value-ordered overlays (paper §III-B-2): T-Man convergence speed,
//! range-scan cost over the converged ring, and the multi-attribute
//! question — k independent overlays (linear overhead) vs a shared-message
//! organisation (STAN-like \[34\]).

use criterion::{criterion_group, criterion_main, Criterion};
use dd_bench::{f, n, table_header, table_row};
use dd_overlay::multi::run_multi;
use dd_overlay::ring::convergence;
use dd_overlay::scan::{RangeScan, ScanMsg, ScanNode};
use dd_overlay::tman::{TManConfig, TManNode, TManState};
use dd_overlay::MultiStrategy;
use dd_sim::rng::mix;
use dd_sim::{Duration, NodeId, Sim, SimConfig, Time};
use std::collections::HashMap;

fn tman_rounds_to_converge(nn: u64, target: f64, seed: u64) -> (u64, f64) {
    let period = 100u64;
    let config = TManConfig { per_side: 3, period: Duration(period) };
    let coord = |i: u64| (mix(1, i) % 1_000_000) as f64;
    let mut sim: Sim<TManNode> = Sim::new(SimConfig::default().seed(seed));
    for i in 0..nn {
        let boots: Vec<(NodeId, f64)> = (1..=3)
            .map(|j| {
                let p = mix(seed, i * 31 + j) % nn;
                let p = if p == i { (p + 1) % nn } else { p };
                (NodeId(p), coord(p))
            })
            .collect();
        sim.add_node(NodeId(i), TManNode::new(TManState::new(NodeId(i), coord(i), config, &boots)));
    }
    let nodes: Vec<(NodeId, f64)> = (0..nn).map(|i| (NodeId(i), coord(i))).collect();
    let mut conv = 0.0;
    for round in 1..=120u64 {
        sim.run_until(Time(round * period));
        let believed: HashMap<NodeId, Option<NodeId>> = (0..nn)
            .map(|i| (NodeId(i), sim.node(NodeId(i)).unwrap().state.successor().map(|d| d.0)))
            .collect();
        conv = convergence(&nodes, &believed);
        if conv >= target {
            return (round, conv);
        }
    }
    (120, conv)
}

fn scan_fixture(nn: u64, seed: u64) -> Sim<ScanNode> {
    let mut sim = Sim::new(SimConfig::default().seed(seed));
    for i in 0..nn {
        let coord = i as f64 * 10.0;
        let succ = (i + 1 < nn).then(|| (NodeId(i + 1), (i + 1) as f64 * 10.0));
        let mut neigh = Vec::new();
        let mut step = 1u64;
        while step < nn {
            if i >= step {
                neigh.push((NodeId(i - step), (i - step) as f64 * 10.0));
            }
            if i + step < nn {
                neigh.push((NodeId(i + step), (i + step) as f64 * 10.0));
            }
            step *= 2;
        }
        let items: Vec<f64> = (0..10).map(|k| coord + f64::from(k)).collect();
        sim.add_node(NodeId(i), ScanNode::new(coord, neigh, succ, items));
    }
    sim
}

fn experiment() {
    table_header("E9a: T-Man rounds to 90% ring convergence", &["N", "rounds", "convergence"]);
    for &nn in &[256u64, 1_024, 4_096] {
        let (rounds, conv) = tman_rounds_to_converge(nn, 0.9, 3);
        table_row(&[n(nn), n(rounds), f(conv)]);
    }

    table_header(
        "E9b: range-scan cost vs selectivity (N=512, finger routing)",
        &["selectivity", "items", "hops"],
    );
    for &sel in &[0.01f64, 0.05, 0.1, 0.25] {
        let nn = 512u64;
        let mut sim = scan_fixture(nn, 4);
        let span = nn as f64 * 10.0;
        let lo = span * 0.3;
        let hi = lo + span * sel;
        sim.inject(NodeId(0), NodeId(0), ScanMsg::Route(RangeScan::new(1, lo, hi, NodeId(0))));
        sim.run_until(Time(10_000_000));
        let done = &sim.node(NodeId(0)).unwrap().completed[&1];
        table_row(&[f(sel), n(done.collected.len() as u64), n(u64::from(done.hops))]);
    }

    table_header(
        "E9c: k attributes — independent vs shared gossip (N=48, 30 rounds)",
        &["k", "indep_msgs", "indep_conv", "shared_msgs", "shared_conv"],
    );
    for &k in &[1usize, 2, 4, 8] {
        let (ci, mi) = run_multi(48, k, MultiStrategy::Independent, 30, 5);
        let (cs, ms) = run_multi(48, k, MultiStrategy::Shared, 30, 5);
        table_row(&[n(k as u64), n(mi), f(ci), n(ms), f(cs)]);
    }
    println!(
        "independent overlays cost grows linearly in k (the paper's 'not \
         scalable' point); the shared organisation stays ~flat in messages \
         at slightly slower convergence."
    );
}

fn bench(c: &mut Criterion) {
    experiment();
    let mut g = c.benchmark_group("e09");
    g.sample_size(10);
    g.bench_function("tman_n256_20rounds", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            tman_rounds_to_converge(256, 2.0 /* unreachable: run all */, seed).1
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
