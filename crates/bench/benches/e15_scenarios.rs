//! E15 — The dependability story as one table: a scenario matrix sweeping
//! placement × {calm, churn-storm, partition+heal, cascading-crash}.
//!
//! Each cell is a stock [`dd_core::scenario::library`] drill run against
//! a fresh cluster: load a social-feed dataset, serve mixed traffic while
//! the fault/environment timeline plays out, then read the dataset back.
//! The paper's claim (§I, §III-A) is that the epidemic substrate *masks*
//! churn: availability under the storm scenarios must stay within a
//! small margin of the calm baseline, and the acceptance assertion below
//! fails the bench (and the CI bench-smoke step) if it does not. Emits a
//! machine-readable summary to `BENCH_scenarios.json` at the workspace
//! root so the dependability trajectory accumulates across runs.

use criterion::{criterion_group, criterion_main, Criterion};
use dd_bench::{f, n, table_header, table_row};
use dd_core::scenario::library;
use dd_core::{
    Cluster, ClusterConfig, OpMix, Phase, Placement, Scenario, ScenarioReport, WorkloadKind,
};

const PERSIST_N: u64 = 36;
const REPLICATION: u32 = 3;
const SEED: u64 = 2_026;

/// Availability under any storm may trail the calm baseline by at most
/// this much — the paper-consistent margin: churn is masked, not merely
/// survived.
const AVAILABILITY_MARGIN: f64 = 0.10;

struct Cell {
    placement: &'static str,
    report: ScenarioReport,
}

fn run(placement: Placement, scenario: &Scenario) -> ScenarioReport {
    let config =
        ClusterConfig::small().persist_n(PERSIST_N).replication(REPLICATION).placement(placement);
    let mut c = Cluster::new(config, SEED);
    c.settle();
    c.run_scenario(scenario)
}

fn matrix() -> Vec<Cell> {
    let scenarios = [
        library::calm(SEED),
        library::churn_storm(SEED),
        library::partition_heal(SEED),
        library::cascading_crash(SEED),
    ];
    let mut cells = Vec::new();
    for (placement, name) in
        [(Placement::RangePartition, "range"), (Placement::TagCollocation, "tag")]
    {
        for scenario in &scenarios {
            cells.push(Cell { placement: name, report: run(placement, scenario) });
        }
    }
    cells
}

/// Writes the summary JSON (hand-rolled: the workspace has no serde) for
/// trend tracking; one object per (scenario, placement) cell.
fn write_summary(cells: &[Cell]) {
    let entries: Vec<String> = cells
        .iter()
        .map(|c| {
            let r = &c.report;
            let e = r.errors();
            format!(
                "    {{\"scenario\": \"{}\", \"placement\": \"{}\", \"issued\": {}, \
                 \"availability\": {:.4}, \"staleness\": {:.4}, \"timeouts\": {}, \
                 \"partials\": {}, \"no_live_entry\": {}, \"latency_p50_ticks\": {:.1}, \
                 \"latency_p95_ticks\": {:.1}, \"latency_p99_ticks\": {:.1}, \"msgs\": {}}}",
                dd_sim::json_escape(&r.name),
                dd_sim::json_escape(c.placement),
                r.issued(),
                r.availability(),
                r.staleness(),
                e.timeouts,
                e.partials,
                e.no_entry,
                r.latency_p50,
                r.latency_p95,
                r.latency_p99,
                r.msgs
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"e15_scenarios\",\n  \"cluster\": {{\"persist_n\": {PERSIST_N}, \
         \"replication\": {REPLICATION}, \"seed\": {SEED}}},\n  \"rows\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scenarios.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("e15: could not write {path}: {e}");
    } else {
        println!("\nwrote machine-readable summary to BENCH_scenarios.json");
    }
}

fn experiment() {
    let cells = matrix();
    table_header(
        "E15: dependability matrix — placement x scenario (social-feed workload)",
        &["scenario", "placement", "issued", "avail", "stale", "t/o", "part", "p50", "p95", "p99"],
    );
    for c in &cells {
        let r = &c.report;
        let e = r.errors();
        table_row(&[
            r.name.clone(),
            c.placement.to_owned(),
            n(r.issued()),
            f(r.availability()),
            f(r.staleness()),
            n(e.timeouts),
            n(e.partials),
            f(r.latency_p50),
            f(r.latency_p95),
            f(r.latency_p99),
        ]);
    }
    for placement in ["range", "tag"] {
        let avail = |name: &str| {
            cells
                .iter()
                .find(|c| c.placement == placement && c.report.name == name)
                .map(|c| c.report.availability())
                .expect("cell present")
        };
        let calm = avail("calm");
        assert!(calm >= 0.99, "calm baseline must be near-perfect, got {calm:.4} ({placement})");
        for storm in ["churn-storm", "partition-heal", "cascading-crash"] {
            let a = avail(storm);
            assert!(
                a >= calm - AVAILABILITY_MARGIN,
                "acceptance: {storm} availability {a:.4} fell more than \
                 {AVAILABILITY_MARGIN} below the calm baseline {calm:.4} ({placement})"
            );
        }
        // The read-back phase is the data-loss check: after repair, the
        // dataset is still served.
        for name in ["churn-storm", "partition-heal", "cascading-crash"] {
            let cell =
                cells.iter().find(|c| c.placement == placement && c.report.name == name).unwrap();
            let readback = cell.report.phases.last().expect("readback phase");
            assert!(
                readback.availability() >= 0.99,
                "{name} read-back availability {:.4} ({placement})",
                readback.availability()
            );
        }
    }
    println!(
        "\nshape check (paper §I/§III-A): the storms dent availability only \
         within the margin while they rage, and the post-repair read-back \
         phase serves the full dataset — churn is masked by proactive \
         epidemic redundancy, not repaired reactively."
    );
    write_summary(&cells);
}

fn bench(c: &mut Criterion) {
    experiment();
    let mut g = c.benchmark_group("e15");
    g.sample_size(10);
    // The scenario-plane kernel: schedule + run a short declarative drill.
    g.bench_function("one_phase_drill", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let mut c = Cluster::new(ClusterConfig::small().persist_n(12), seed);
            c.settle();
            let sc = Scenario::new("kernel", WorkloadKind::Uniform, seed)
                .phase(Phase::new("puts", 400).mix(OpMix::puts()).sessions(2).depth(8).quantum(5));
            c.run_scenario(&sc).phases[0].ok
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
