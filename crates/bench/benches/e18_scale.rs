//! E18 — Scale: throughput and memory across a node-count × op-count
//! grid ({40, 400, 2000} nodes × {1k, 20k, 200k} ops).
//!
//! PR 7's scaling work — interned keys/tags with cached hashes,
//! zero-copy `Bytes` values, the epoch-gated failure-detector sweep,
//! pre-sized event queues and O(1) streaming metrics — must move the
//! large cells by an order of magnitude, not just shave constants. The
//! baseline numbers are the measured grid of the pre-optimisation tree
//! (`String` keys, per-tick O(N²) liveness sweep, unbounded metric
//! series); they are frozen here so a scaling regression fails the bench
//! loudly. Two gates:
//!
//! * the 2000-node × 200k-op cell must run at least [`SPEEDUP_GATE`]×
//!   the frozen baseline throughput;
//! * throughput degradation must stay **sub-linear in node count**: at
//!   the heaviest op count, growing the cluster R× may cost at most R×
//!   in ops/sec (the pre-opt tree failed this: 5× the nodes cost 34×).
//!
//! Peak memory rides along as an allocated-bytes proxy from a counting
//! global allocator. Emits `BENCH_scale.json` at the workspace root.
//! `E18_SMOKE=1` restricts the grid to 40/400 nodes for CI.

use criterion::{criterion_group, criterion_main, Criterion};
use dd_bench::{f, n, table_header, table_row};
use dd_core::{Cluster, ClusterConfig, Workload, WorkloadKind};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Counting wrapper around the system allocator: tracks live bytes and
/// the high-water mark, the bench's peak-RSS proxy.
struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates allocation verbatim to `System`; the atomics only
// account for sizes and never touch the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const SESSIONS: usize = 8;
const DEPTH: usize = 32;
const QUANTUM: u64 = 25;

const NODE_GRID: &[u64] = &[40, 400, 2000];
const OP_GRID: &[u64] = &[1_000, 20_000, 200_000];

/// Minimum throughput improvement over the frozen baseline at the
/// heaviest cell (2000 nodes × 200k ops).
const SPEEDUP_GATE: f64 = 5.0;

/// Measured ops/sec of the pre-optimisation tree, per (nodes, ops) cell
/// (same driver, same seeds, release build).
const BASELINE: &[(u64, u64, f64)] = &[
    (40, 1_000, 212_150.0),
    (40, 20_000, 134_248.7),
    (40, 200_000, 94_775.7),
    (400, 1_000, 27_509.6),
    (400, 20_000, 26_776.0),
    (400, 200_000, 23_394.5),
    (2_000, 1_000, 648.2),
    (2_000, 20_000, 691.0),
    (2_000, 200_000, 694.8),
];

struct CellResult {
    nodes: u64,
    ops: u64,
    ops_per_sec: f64,
    baseline_ops_per_sec: f64,
    setup_secs: f64,
    peak_alloc_bytes: u64,
}

fn baseline_for(nodes: u64, ops: u64) -> f64 {
    BASELINE
        .iter()
        .find(|&&(bn, bo, _)| bn == nodes && bo == ops)
        .map(|&(_, _, v)| v)
        .expect("baseline cell present")
}

/// One grid cell: build + settle a cluster of `nodes` persist nodes,
/// then serve `ops` alternating put/get operations from a pipelined
/// session pool. Identical to the driver the baseline grid was measured
/// with, except ring-biased repair peering (the PR's topology-aware
/// mode) is on.
fn run_cell(nodes: u64, ops: u64) -> CellResult {
    let soft_n = (nodes / 50).clamp(4, 16);
    let config =
        ClusterConfig { soft_n, persist_n: nodes, ..ClusterConfig::default() }.ring_repair();
    let setup = Instant::now();
    let mut cluster = Cluster::new(config, 0xE18_0000 ^ nodes ^ (ops << 16));
    cluster.settle();
    let setup_secs = setup.elapsed().as_secs_f64();
    let mut sessions: Vec<_> = (0..SESSIONS).map(|_| cluster.client()).collect();
    let mut workload = Workload::new(WorkloadKind::Uniform, 0x5CA1E ^ nodes);
    let mut issued = 0u64;
    let mut resolved = 0u64;
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    let t0 = Instant::now();
    while resolved < ops {
        for s in &mut sessions {
            while issued < ops && s.in_flight() < DEPTH {
                if issued.is_multiple_of(2) {
                    let p = workload.next_put();
                    let _ = s.put(&mut cluster, p.key, p.value, p.attr, p.tag.as_deref());
                } else {
                    let _ = s.get(&mut cluster, workload.next_read_key());
                }
                issued += 1;
            }
        }
        cluster.pump(QUANTUM);
        for s in &mut sessions {
            resolved += s.drain(&mut cluster).len() as u64;
        }
    }
    let serve_secs = t0.elapsed().as_secs_f64();
    CellResult {
        nodes,
        ops,
        ops_per_sec: ops as f64 / serve_secs,
        baseline_ops_per_sec: baseline_for(nodes, ops),
        setup_secs,
        peak_alloc_bytes: PEAK.load(Ordering::Relaxed) as u64,
    }
}

fn write_summary(cells: &[CellResult], smoke: bool) {
    let entries: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"nodes\": {}, \"ops\": {}, \"ops_per_sec\": {:.1}, \
                 \"baseline_ops_per_sec\": {:.1}, \"speedup\": {:.2}, \
                 \"setup_secs\": {:.3}, \"peak_alloc_bytes\": {}}}",
                c.nodes,
                c.ops,
                c.ops_per_sec,
                c.baseline_ops_per_sec,
                c.ops_per_sec / c.baseline_ops_per_sec,
                c.setup_secs,
                c.peak_alloc_bytes,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"e18_scale\",\n  \"gate\": {SPEEDUP_GATE},\n  \"smoke\": {smoke},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("e18: could not write {path}: {e}");
    } else {
        println!("\nwrote machine-readable summary to BENCH_scale.json");
    }
}

fn experiment() -> Vec<CellResult> {
    let smoke = std::env::var_os("E18_SMOKE").is_some();
    let node_grid = if smoke { &NODE_GRID[..2] } else { NODE_GRID };
    let mut cells = Vec::new();
    table_header(
        "E18: scale grid — ops/sec vs the pre-optimisation baseline",
        &["nodes", "ops", "ops/sec", "base", "speedup", "setup s", "peak MiB"],
    );
    for &nodes in node_grid {
        for &ops in OP_GRID {
            let cell = run_cell(nodes, ops);
            table_row(&[
                n(cell.nodes),
                n(cell.ops),
                f(cell.ops_per_sec),
                f(cell.baseline_ops_per_sec),
                f(cell.ops_per_sec / cell.baseline_ops_per_sec),
                f(cell.setup_secs),
                f(cell.peak_alloc_bytes as f64 / (1024.0 * 1024.0)),
            ]);
            cells.push(cell);
        }
    }

    // The JSON lands before the gates so a failed gate still leaves the
    // measured grid behind for diagnosis.
    write_summary(&cells, smoke);

    // Gate 1: sub-linear degradation in node count. At the heaviest op
    // count, growing the cluster R× may cost at most R× in throughput,
    // with 25% headroom for a loaded machine (an idle run measures
    // ~2.4x for the 10x pair and ~3.4x for the 5x pair; the pre-opt
    // tree's 34x fails regardless).
    let heavy = *OP_GRID.last().expect("op grid non-empty");
    for pair in node_grid.windows(2) {
        let (small, big) = (pair[0], pair[1]);
        let t_small = cells
            .iter()
            .find(|c| c.nodes == small && c.ops == heavy)
            .expect("cell ran")
            .ops_per_sec;
        let t_big =
            cells.iter().find(|c| c.nodes == big && c.ops == heavy).expect("cell ran").ops_per_sec;
        let node_ratio = big as f64 / small as f64;
        let slowdown = t_small / t_big;
        assert!(
            slowdown < node_ratio * 1.25,
            "acceptance: {small}->{big} nodes at {heavy} ops cost {slowdown:.1}x throughput \
             (super-linear; node ratio is {node_ratio:.0}x)",
        );
    }

    // Gate 2: the heaviest cell must beat the frozen baseline by the
    // issue's 5x floor (full grid only; smoke skips the 2000-node row).
    if !smoke {
        let cell =
            cells.iter().find(|c| c.nodes == 2_000 && c.ops == heavy).expect("heaviest cell ran");
        let speedup = cell.ops_per_sec / cell.baseline_ops_per_sec;
        assert!(
            speedup >= SPEEDUP_GATE,
            "acceptance: 2000x{heavy} runs {:.1} ops/sec, only {speedup:.2}x the frozen \
             baseline {:.1} (gate {SPEEDUP_GATE}x)",
            cell.ops_per_sec,
            cell.baseline_ops_per_sec,
        );
    }

    println!(
        "\nshape check: interned keys, zero-copy values, the epoch-gated liveness \
         sweep and O(1) metrics turn node count from a per-tick cost into a \
         setup cost — throughput now degrades sub-linearly in cluster size \
         where the String-keyed tree degraded super-linearly."
    );
    cells
}

fn bench(c: &mut Criterion) {
    experiment();
    let mut g = c.benchmark_group("e18");
    g.sample_size(10);
    // The scaling kernel: one small grid cell end to end (setup + serve).
    g.bench_function("cell_40x1k", |b| {
        b.iter(|| run_cell(40, 1_000).ops_per_sec);
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
