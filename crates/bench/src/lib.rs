//! # dd-bench — experiment harness
//!
//! One bench target per paper experiment (E1–E12; see the experiment
//! catalogue in the repository `README.md`). Each target prints the
//! experiment's table — the series a figure would plot — and then times a
//! representative kernel with Criterion so `cargo bench` exercises the
//! hot paths.

#![forbid(unsafe_code)]

/// Prints a table header: `name` then right-aligned column labels.
pub fn table_header(title: &str, cols: &[&str]) {
    println!("\n=== {title} ===");
    let row: Vec<String> = cols.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", row.join(" "));
}

/// Prints one row of right-aligned cells.
pub fn table_row(cells: &[String]) {
    let row: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", row.join(" "));
}

/// Formats a float with 3 decimals.
#[must_use]
pub fn f(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats an integer-ish value.
#[must_use]
pub fn n(v: u64) -> String {
    v.to_string()
}

#[cfg(test)]
mod tests {
    #[test]
    fn formatters_behave() {
        assert_eq!(super::f(1.23456), "1.235");
        assert_eq!(super::n(42), "42");
    }
}
