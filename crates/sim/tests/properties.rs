//! Property-based tests for kernel invariants: virtual time never runs
//! backwards, replay is deterministic, churn schedules are well-formed.

use dd_sim::churn::{ChurnEvent, ChurnModel, ChurnSchedule};
use dd_sim::{Ctx, Metrics, NodeId, Process, Sim, SimConfig, Time};
use proptest::prelude::*;

/// Test process: every node relays a decrementing counter to a
/// pseudo-random neighbour and records the time of each delivery.
struct Relay {
    n: u64,
    times: Vec<u64>,
}

impl Process for Relay {
    type Msg = u32;
    fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _from: NodeId, msg: u32) {
        self.times.push(ctx.now().0);
        if msg > 0 {
            use rand::Rng;
            let next = NodeId(ctx.rng().gen_range(0..self.n));
            ctx.send(next, msg - 1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Delivery timestamps observed by any node never decrease relative to
    /// the global clock, and the final clock bounds every observation.
    #[test]
    fn time_is_monotone(seed in any::<u64>(), n in 2u64..20, hops in 1u32..64) {
        let mut sim: Sim<Relay> = Sim::new(SimConfig::default().seed(seed));
        for i in 0..n {
            sim.add_node(NodeId(i), Relay { n, times: vec![] });
        }
        sim.inject(NodeId(0), NodeId(0), hops);
        sim.run();
        let end = sim.now().0;
        let mut all: Vec<u64> = Vec::new();
        for i in 0..n {
            all.extend(&sim.node(NodeId(i)).unwrap().times);
        }
        prop_assert_eq!(all.len() as u32, hops + 1, "every hop delivered exactly once");
        for &t in &all {
            prop_assert!(t <= end);
        }
    }

    /// Identical seeds produce identical trajectories for arbitrary
    /// configurations (the reproducibility contract of the whole repo).
    #[test]
    fn replay_is_deterministic(seed in any::<u64>(), n in 2u64..16, hops in 1u32..40) {
        let run = || {
            let mut sim: Sim<Relay> = Sim::new(SimConfig::default().seed(seed));
            for i in 0..n {
                sim.add_node(NodeId(i), Relay { n, times: vec![] });
            }
            sim.inject(NodeId(0), NodeId(0), hops);
            sim.run();
            let counters: Vec<(&'static str, u64)> = sim.metrics().counters().collect();
            (sim.now(), counters)
        };
        prop_assert_eq!(run(), run());
    }

    /// Churn schedules are time-ordered and per-node alternating for any
    /// valid parameterisation.
    #[test]
    fn churn_schedule_invariants(
        seed in any::<u64>(),
        n in 1u64..40,
        rate in 0.001f64..0.5,
        downtime in 1u64..10_000,
        perm in 0.0f64..1.0,
    ) {
        let model = ChurnModel::default()
            .failure_rate(rate)
            .mean_downtime(downtime)
            .permanent_prob(perm);
        let s = ChurnSchedule::generate(&model, n, Time(50_000), seed);
        for w in s.events().windows(2) {
            prop_assert!(w[0].at() <= w[1].at());
        }
        for node in 0..n {
            let mut up = true; // nodes start up
            for ev in s.events().iter().filter(|e| e.node() == NodeId(node)) {
                match ev {
                    ChurnEvent::Down(..) | ChurnEvent::Leave(..) => {
                        prop_assert!(up, "down/leave while already down");
                        up = false;
                    }
                    ChurnEvent::Up(..) => {
                        prop_assert!(!up, "up while already up");
                        up = true;
                    }
                }
            }
        }
    }

    /// Metrics merging is commutative for counters.
    #[test]
    fn metrics_merge_commutes(a in 0u64..1000, b in 0u64..1000, c in 0u64..1000) {
        let mut m1 = Metrics::new();
        m1.add("x", a);
        m1.add("y", b);
        let mut m2 = Metrics::new();
        m2.add("x", c);
        let mut left = m1.clone();
        left.merge(&m2);
        let mut right = m2.clone();
        right.merge(&m1);
        prop_assert_eq!(left.counter("x"), right.counter("x"));
        prop_assert_eq!(left.counter("y"), right.counter("y"));
    }

    /// Messages to killed nodes are never delivered, regardless of timing.
    #[test]
    fn dead_nodes_receive_nothing(seed in any::<u64>(), kill_at in 0u64..50) {
        struct Sink { got: u32 }
        impl Process for Sink {
            type Msg = ();
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {
                self.got += 1;
            }
        }
        let mut sim: Sim<Sink> = Sim::new(SimConfig::default().seed(seed));
        sim.add_node(NodeId(0), Sink { got: 0 });
        sim.add_node(NodeId(1), Sink { got: 0 });
        sim.schedule_down(Time(kill_at), NodeId(1));
        sim.run_until(Time(kill_at));
        for _ in 0..10 {
            sim.inject(NodeId(0), NodeId(1), ());
        }
        sim.run_until(Time(kill_at + 1_000));
        prop_assert_eq!(sim.node(NodeId(1)).unwrap().got, 0);
    }
}
