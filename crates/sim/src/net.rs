//! Network model: latency, loss and partitions.
//!
//! The paper's target environment is a large commodity data centre or
//! campus-scale infrastructure (§I "Scenario"), so the default model is a
//! LAN-like uniform latency with optional loss. Partitions are modelled as
//! colour classes: messages only flow between nodes of the same colour.

use crate::rng::mix;
use crate::types::NodeId;
use rand::Rng;
use std::collections::HashMap;

/// Per-message latency model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly this many ticks.
    Constant(u64),
    /// Latency drawn uniformly from `[min, max]` ticks.
    Uniform {
        /// Lower bound (inclusive).
        min: u64,
        /// Upper bound (inclusive).
        max: u64,
    },
}

impl Default for LatencyModel {
    fn default() -> Self {
        // A LAN-ish default: 1–5 ticks (milliseconds).
        LatencyModel::Uniform { min: 1, max: 5 }
    }
}

impl LatencyModel {
    /// Samples a latency for one message.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match *self {
            LatencyModel::Constant(v) => v,
            LatencyModel::Uniform { min, max } => {
                if min >= max {
                    min
                } else {
                    rng.gen_range(min..=max)
                }
            }
        }
    }

    /// Upper bound of the model, used to size conservative timeouts.
    #[must_use]
    pub fn max(&self) -> u64 {
        match *self {
            LatencyModel::Constant(v) => v,
            LatencyModel::Uniform { max, .. } => max,
        }
    }
}

/// Network configuration: latency, loss probability, partitions.
#[derive(Debug, Clone, Default)]
pub struct NetConfig {
    /// Latency applied to every message.
    pub latency: LatencyModel,
    /// Independent probability that any message is silently dropped.
    pub drop_prob: f64,
    partitions: HashMap<NodeId, u32>,
    /// Bumped on every partition/heal mutation; see
    /// [`NetConfig::topology_epoch`].
    topology_epoch: u64,
}

impl NetConfig {
    /// LAN-like defaults: uniform 1–5 tick latency, no loss, no partitions.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the latency model (builder style).
    #[must_use]
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the message-loss probability (builder style).
    ///
    /// # Panics
    /// Panics if `p` is not within `0.0..=1.0`.
    #[must_use]
    pub fn drop_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop probability must be in [0,1]");
        self.drop_prob = p;
        self
    }

    /// Assigns `node` to partition colour `colour`. Nodes without an explicit
    /// colour are in colour `0`.
    pub fn set_partition(&mut self, node: NodeId, colour: u32) {
        self.topology_epoch += 1;
        if colour == 0 {
            self.partitions.remove(&node);
        } else {
            self.partitions.insert(node, colour);
        }
    }

    /// Removes all partition assignments (heals the network).
    pub fn heal_partitions(&mut self) {
        self.topology_epoch += 1;
        self.partitions.clear();
    }

    /// Monotonic counter of partition/heal mutations. Pairwise
    /// [`NetConfig::connected`] answers can only change when this does, so
    /// observers (e.g. a harness failure-detector sweep over every node
    /// pair) may cache their last sweep's epoch and skip recomputation
    /// while it is unchanged.
    #[must_use]
    pub fn topology_epoch(&self) -> u64 {
        self.topology_epoch
    }

    /// Colour of a node (0 when unassigned).
    #[must_use]
    pub fn colour(&self, node: NodeId) -> u32 {
        self.partitions.get(&node).copied().unwrap_or(0)
    }

    /// Whether a message from `a` to `b` can currently be delivered
    /// (ignoring random loss).
    #[must_use]
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        self.colour(a) == self.colour(b)
    }

    /// Decides the fate of one message: `None` when dropped or partitioned,
    /// otherwise the sampled latency in ticks.
    ///
    /// Loss is derived deterministically from `(seed, from, to, seq)` via a
    /// hash so that runs replay identically regardless of sampling order.
    pub fn route<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        seed: u64,
        from: NodeId,
        to: NodeId,
        seq: u64,
    ) -> Option<u64> {
        if !self.connected(from, to) {
            return None;
        }
        if self.drop_prob > 0.0 {
            let h = mix(mix(seed, from.0), mix(to.0, seq));
            // Map hash to [0,1) with 53-bit precision.
            let u = (h >> 11) as f64 / (1u64 << 53) as f64;
            if u < self.drop_prob {
                return None;
            }
        }
        Some(self.latency.sample(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    #[test]
    fn constant_latency_is_constant() {
        let m = LatencyModel::Constant(9);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(m.sample(&mut r), 9);
        }
        assert_eq!(m.max(), 9);
    }

    #[test]
    fn uniform_latency_stays_in_bounds() {
        let m = LatencyModel::Uniform { min: 2, max: 6 };
        let mut r = rng();
        for _ in 0..1000 {
            let v = m.sample(&mut r);
            assert!((2..=6).contains(&v));
        }
        assert_eq!(m.max(), 6);
    }

    #[test]
    fn degenerate_uniform_returns_min() {
        let m = LatencyModel::Uniform { min: 4, max: 4 };
        assert_eq!(m.sample(&mut rng()), 4);
    }

    #[test]
    fn partition_blocks_cross_colour_traffic() {
        let mut net = NetConfig::new();
        net.set_partition(NodeId(1), 1);
        assert!(!net.connected(NodeId(0), NodeId(1)));
        assert!(net.connected(NodeId(0), NodeId(2)));
        assert!(net.connected(NodeId(1), NodeId(1)));
        net.heal_partitions();
        assert!(net.connected(NodeId(0), NodeId(1)));
    }

    #[test]
    fn setting_colour_zero_removes_assignment() {
        let mut net = NetConfig::new();
        net.set_partition(NodeId(3), 2);
        assert_eq!(net.colour(NodeId(3)), 2);
        net.set_partition(NodeId(3), 0);
        assert_eq!(net.colour(NodeId(3)), 0);
    }

    #[test]
    fn route_drops_at_configured_rate() {
        let net = NetConfig::new().drop_prob(0.3).latency(LatencyModel::Constant(1));
        let mut r = rng();
        let mut dropped = 0u32;
        let total = 20_000u64;
        for seq in 0..total {
            if net.route(&mut r, 7, NodeId(0), NodeId(1), seq).is_none() {
                dropped += 1;
            }
        }
        let rate = f64::from(dropped) / total as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed drop rate {rate}");
    }

    #[test]
    fn route_loss_is_deterministic_in_seed_and_seq() {
        let net = NetConfig::new().drop_prob(0.5);
        let mut r1 = rng();
        let mut r2 = rng();
        for seq in 0..100 {
            let a = net.route(&mut r1, 11, NodeId(2), NodeId(3), seq).is_none();
            let b = net.route(&mut r2, 11, NodeId(2), NodeId(3), seq).is_none();
            assert_eq!(a, b);
        }
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn invalid_drop_probability_panics() {
        let _ = NetConfig::new().drop_prob(1.5);
    }

    #[test]
    fn zero_drop_prob_never_drops() {
        let net = NetConfig::new();
        let mut r = rng();
        for seq in 0..100 {
            assert!(net.route(&mut r, 3, NodeId(0), NodeId(1), seq).is_some());
        }
    }
}
