//! Tracing hooks for the simulation kernel: causal context and the span
//! sink.
//!
//! The kernel itself records nothing — it only *carries* an optional
//! [`Tracer`] (installed with [`crate::Sim::set_tracer`]) and hands it to
//! every [`crate::Process`] callback through [`crate::Ctx::tracer`].
//! Protocol code opens and closes spans against whatever sink is
//! installed; when none is, the accessor returns `None` and the traced
//! code paths cost one branch. Timestamps are virtual time, so a traced
//! run replays byte-identically from its seed.
//!
//! Causality travels *inside* message payloads: a process that wants its
//! work attributed embeds a [`TraceCtx`] (the operation's trace id plus
//! the parent span) in the messages it sends, and the receiver opens its
//! spans under that parent. The kernel's network model never looks at
//! payloads, so carrying a `TraceCtx` cannot perturb routing, latency,
//! loss or RNG draws — the zero-cost-when-off guarantee the dd-trace
//! benches assert bit-for-bit.

use crate::time::Time;
use crate::types::NodeId;
use std::any::Any;

/// Causal context a message envelope carries: which traced operation the
/// message belongs to and which span its consequences nest under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// The traced operation's id (one trace per client op; in DataDroplets
    /// this is the request id).
    pub op: u64,
    /// Span within the operation's trace that caused this message; spans
    /// the receiver opens become its children.
    pub span: u32,
}

/// A span sink. Implemented by `dd_trace::Recorder`; the kernel only ever
/// talks to the trait so the dependency points from the tracing crate to
/// the kernel, not the other way around.
pub trait Tracer {
    /// Opens a span named `label` on `node` at virtual time `at`, nested
    /// under `parent` (`None` for an operation's root span). Returns the
    /// new span's id, unique within the operation's trace.
    fn open(
        &mut self,
        at: Time,
        node: NodeId,
        op: u64,
        parent: Option<u32>,
        label: &'static str,
    ) -> u32;

    /// Closes a span at virtual time `at`. `answered` distinguishes a
    /// span that completed its work from one that was abandoned — struck
    /// by a failure detector, expired by a deadline sweep, or still open
    /// when the operation resolved.
    fn close(&mut self, at: Time, op: u64, span: u32, answered: bool);

    /// Converts the boxed sink back into [`Any`] so the harness that
    /// installed it ([`crate::Sim::take_tracer`] callers) can downcast to
    /// the concrete recorder and extract the finished traces.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}
