//! Virtual time.
//!
//! The simulator measures time in abstract *ticks*; experiments in this
//! workspace use one tick = one millisecond by convention (gossip periods of
//! `1_000` ticks, LAN latencies of a few ticks), but the kernel assigns no
//! unit.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in ticks since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of virtual time, in ticks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Time {
    /// The origin of simulated time.
    pub const ZERO: Time = Time(0);

    /// Saturating difference `self - earlier`.
    ///
    /// ```
    /// use dd_sim::{Time, Duration};
    /// assert_eq!(Time(10).since(Time(4)), Duration(6));
    /// assert_eq!(Time(4).since(Time(10)), Duration(0));
    /// ```
    #[must_use]
    pub fn since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Convenience constructor used by experiment code that thinks in
    /// "rounds" of a protocol period.
    #[must_use]
    pub fn ticks(n: u64) -> Duration {
        Duration(n)
    }

    /// Multiplies the span, saturating on overflow.
    #[must_use]
    pub fn saturating_mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        self.since(rhs)
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl From<u64> for Duration {
    fn from(v: u64) -> Self {
        Duration(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_advances_time() {
        assert_eq!(Time(5) + Duration(3), Time(8));
        let mut t = Time(1);
        t += Duration(4);
        assert_eq!(t, Time(5));
    }

    #[test]
    fn subtraction_is_saturating() {
        assert_eq!(Time(3) - Time(10), Duration::ZERO);
        assert_eq!(Time(10) - Time(3), Duration(7));
    }

    #[test]
    fn overflow_saturates_instead_of_wrapping() {
        assert_eq!(Time(u64::MAX) + Duration(5), Time(u64::MAX));
        assert_eq!(Duration(u64::MAX).saturating_mul(2), Duration(u64::MAX));
    }

    #[test]
    fn durations_add() {
        assert_eq!(Duration(2) + Duration(3), Duration(5));
        assert_eq!(Duration::ticks(7), Duration(7));
    }

    #[test]
    fn debug_formats_are_nonempty() {
        assert_eq!(format!("{:?}", Time(3)), "t3");
        assert_eq!(format!("{:?}", Duration(3)), "3t");
    }
}
