//! # dd-sim — deterministic discrete-event simulation kernel
//!
//! Substrate for reproducing the protocol-level evaluation of
//! *"An epidemic approach to dependable key-value substrates"* (DSN 2011).
//! The paper's claims are all protocol-level quantities — coverage
//! probabilities, message counts, replica counts, convergence rounds — so a
//! seeded discrete-event simulator measures exactly what a physical testbed
//! would, while adding reproducibility and controllable churn.
//!
//! The kernel is intentionally small and fully deterministic:
//!
//! * [`Sim`] owns a priority queue of timestamped events and a set of nodes.
//! * Protocol logic implements [`Process`]; side effects go through [`Ctx`].
//! * The network model ([`NetConfig`]) adds per-message latency, loss and
//!   partitions.
//! * [`churn::ChurnSchedule`] pre-computes node down/up events from session
//!   length distributions so experiments can replay identical churn.
//!
//! Protocol crates in this workspace are written *sans-IO*: pure state
//! machines that return actions. The [`Process`] trait is the thin adapter
//! binding them to the kernel, which keeps them unit-testable without a
//! simulator and composable into multi-protocol nodes.
//!
//! ```
//! use dd_sim::{Sim, SimConfig, Process, Ctx, NodeId};
//!
//! struct Ping { got: u32 }
//! impl Process for Ping {
//!     type Msg = u32;
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
//!         // node 0 pings everyone
//!         if ctx.id() == NodeId(0) {
//!             for n in 1..4 { ctx.send(NodeId(n), 7); }
//!         }
//!     }
//!     fn on_message(&mut self, _ctx: &mut Ctx<'_, u32>, _from: NodeId, msg: u32) {
//!         self.got += msg;
//!     }
//! }
//!
//! let mut sim = Sim::new(SimConfig::default().seed(42));
//! for i in 0..4 { sim.add_node(NodeId(i), Ping { got: 0 }); }
//! sim.run();
//! assert_eq!(sim.node(NodeId(3)).unwrap().got, 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod engine;
pub mod json;
pub mod metrics;
pub mod net;
pub mod rng;
pub mod runtime;
pub mod time;
pub mod trace;
pub mod types;

pub use engine::{Ctx, NetChange, Process, Sampler, Sim, SimConfig};
pub use json::json_escape;
pub use metrics::Metrics;
pub use net::{LatencyModel, NetConfig};
pub use time::{Duration, Time};
pub use trace::{TraceCtx, Tracer};
pub use types::{NodeId, TimerTag};
