//! The one JSON string-escaping helper the workspace's hand-rolled JSON
//! writers share.
//!
//! The workspace has no serde: bench summaries (`BENCH_*.json`), the fuzz
//! campaign census and the telemetry exporters all emit JSON by hand.
//! Every one of them embeds strings it does not control — scenario names,
//! config names, violation messages — and a stray quote or newline in any
//! of them would corrupt the document. They all quote through this helper
//! instead of carrying private copies of the escape table.

/// Escapes `s` for embedding inside a JSON string literal. Returns the
/// escaped *contents* — the caller supplies the surrounding quotes.
///
/// Escapes `"` and `\`, the common control characters by name, and any
/// remaining control character as `\u00XX`, per RFC 8259 §7.
///
/// ```
/// use dd_sim::json::json_escape;
/// assert_eq!(json_escape("say \"hi\"\n"), "say \\\"hi\\\"\\n");
/// assert_eq!(json_escape("plain"), "plain");
/// ```
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::json_escape;

    #[test]
    fn passes_plain_strings_through() {
        assert_eq!(json_escape("churn-storm"), "churn-storm");
        assert_eq!(json_escape(""), "");
    }

    #[test]
    fn escapes_quotes_backslashes_and_named_controls() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("line1\nline2\tend\r"), "line1\\nline2\\tend\\r");
    }

    #[test]
    fn escapes_remaining_controls_as_unicode() {
        assert_eq!(json_escape("\u{1}\u{1f}"), "\\u0001\\u001f");
        // Non-ASCII is legal raw inside JSON strings: leave it alone.
        assert_eq!(json_escape("café"), "café");
    }
}
