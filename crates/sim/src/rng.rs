//! Deterministic, splittable random-number seeding.
//!
//! Every node gets its own RNG derived from the master seed and its
//! [`NodeId`](crate::NodeId), so adding or removing a node never perturbs the
//! random streams of the others. This is what makes experiment runs replay
//! bit-identically under churn.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 step — the standard way to stretch one 64-bit seed into many
/// well-distributed substreams (Steele et al., OOPSLA'14).
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child seed from `(master, stream)` without correlation between
/// adjacent streams.
#[must_use]
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut s = master ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
    let a = splitmix64(&mut s);
    let b = splitmix64(&mut s);
    a ^ b.rotate_left(32)
}

/// Builds the deterministic RNG for a given `(master, stream)` pair.
#[must_use]
pub fn stream_rng(master: u64, stream: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(master, stream))
}

/// Stable 64-bit hash of arbitrary bytes (FNV-1a), used wherever protocols
/// need a *deterministic* hash that does not depend on `std`'s randomized
/// hasher — e.g. sieve membership must be identical across runs and nodes.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// FNV-1a followed by a SplitMix64 avalanche.
///
/// Plain FNV-1a leaves the high bits of short inputs poorly mixed (the
/// last byte passes through only one multiplication), which visibly
/// biases anything that partitions the key space by hash *ranges*. All
/// key hashing in the store goes through this finalised form.
#[must_use]
pub fn stable_hash(bytes: &[u8]) -> u64 {
    let mut s = fnv1a(bytes);
    splitmix64(&mut s)
}

/// Combines two 64-bit hashes into one (order-sensitive).
#[must_use]
pub fn mix(a: u64, b: u64) -> u64 {
    let mut s = a ^ b.rotate_left(17).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 7;
        let mut b = 7;
        assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        assert_eq!(a, b);
    }

    #[test]
    fn derived_seeds_differ_across_streams() {
        let seeds: HashSet<u64> = (0..10_000).map(|i| derive_seed(42, i)).collect();
        assert_eq!(seeds.len(), 10_000, "stream seeds must not collide");
    }

    #[test]
    fn derived_seeds_differ_across_masters() {
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn stream_rng_replays_identically() {
        let mut r1 = stream_rng(99, 3);
        let mut r2 = stream_rng(99, 3);
        let v1: Vec<u64> = (0..32).map(|_| r1.gen()).collect();
        let v2: Vec<u64> = (0..32).map(|_| r2.gen()).collect();
        assert_eq!(v1, v2);
    }

    #[test]
    fn fnv_distinguishes_inputs() {
        assert_ne!(fnv1a(b"alpha"), fnv1a(b"beta"));
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn stable_hash_high_bits_are_uniform_for_short_keys() {
        // Sequential short keys must spread evenly across hash-range
        // buckets (the property range sieves depend on).
        let buckets = 8u64;
        let mut counts = vec![0u32; buckets as usize];
        let n = 16_000u32;
        for i in 0..n {
            let h = stable_hash(format!("g{i}").as_bytes());
            counts[(h / (u64::MAX / buckets + 1)) as usize] += 1;
        }
        let expect = n / buckets as u32;
        for (b, &c) in counts.iter().enumerate() {
            let dev = (f64::from(c) - f64::from(expect)).abs() / f64::from(expect);
            assert!(dev < 0.1, "bucket {b} count {c} deviates {dev}");
        }
    }

    #[test]
    fn mix_is_order_sensitive() {
        assert_ne!(mix(1, 2), mix(2, 1));
    }

    #[test]
    fn adjacent_streams_are_uncorrelated_in_low_bits() {
        // A weak but useful smoke test: low bit of derived seeds should be
        // roughly balanced across adjacent streams.
        let ones: u32 = (0..4096).map(|i| (derive_seed(5, i) & 1) as u32).sum();
        assert!((1500..2600).contains(&ones), "low-bit bias: {ones}");
    }
}
