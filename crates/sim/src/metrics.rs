//! Lightweight metrics: named counters and value series.
//!
//! Experiments read these after a run to produce the rows of each
//! table/figure. Keys are `&'static str` to keep the hot path
//! allocation-free.
//!
//! Series are **O(1) per observation and bounded in memory**: every
//! series keeps streaming aggregates (count, running sum, min, max — all
//! exact regardless of length) plus a [`Reservoir`] of retained samples
//! for quantiles. Below [`RESERVOIR_CAP`] observations the reservoir
//! holds the series verbatim, so short runs report *exactly* what an
//! unbounded `Vec` would have — quantiles, means and summaries are
//! byte-identical, which the determinism replay suite depends on. Beyond
//! the cap the reservoir degrades gracefully to a uniform subsample
//! (classic algorithm R) driven by a self-contained xorshift, never the
//! simulation RNG, so metrics can never perturb a run.

use std::collections::BTreeMap;

/// Samples a series retains for quantile queries. Below this count a
/// series is stored exactly; beyond it, a uniform reservoir subsample.
pub const RESERVOIR_CAP: usize = 4096;

/// Seed of every reservoir's private xorshift. A fixed constant: the
/// replacement pattern is deterministic per series, independent of the
/// simulation seed and of every other series.
const RESERVOIR_RNG_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// A bounded value series: exact streaming aggregates plus a capped
/// sample set for quantiles. The building block behind [`Metrics`]
/// series, also usable standalone (e.g. per-phase latency accounting).
#[derive(Debug, Clone, PartialEq)]
pub struct Reservoir {
    n: u64,
    sum: f64,
    min: f64,
    max: f64,
    samples: Vec<f64>,
    rng: u64,
}

impl Default for Reservoir {
    fn default() -> Self {
        Reservoir::new()
    }
}

impl Reservoir {
    /// An empty reservoir.
    #[must_use]
    pub fn new() -> Self {
        Reservoir {
            n: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            samples: Vec::new(),
            rng: RESERVOIR_RNG_SEED,
        }
    }

    /// Records one observation: O(1), no allocation once the sample
    /// buffer has grown to its bound.
    pub fn observe(&mut self, v: f64) {
        self.n += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if self.samples.len() < RESERVOIR_CAP {
            self.samples.push(v);
        } else {
            // Algorithm R: keep each of the n observations with equal
            // probability CAP/n.
            let j = (xorshift(&mut self.rng) % self.n) as usize;
            if j < RESERVOIR_CAP {
                self.samples[j] = v;
            }
        }
    }

    /// Observations recorded (the true count, not the retained count).
    #[must_use]
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// True when nothing has been observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether the retained samples are the full series (true until the
    /// series outgrows [`RESERVOIR_CAP`]).
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.n as usize <= RESERVOIR_CAP
    }

    /// The retained samples: the whole series while [`Reservoir::is_exact`],
    /// a uniform subsample after.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Mean of *all* observations (exact at any length), `None` when
    /// empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum / self.n as f64)
    }

    /// Nearest-rank quantiles over the retained samples — exact while
    /// the series is, approximate beyond the cap except for the extremes
    /// (p = 0 and p = 1 answer from the exact streaming min/max).
    #[must_use]
    pub fn quantiles(&self, ps: &[f64]) -> Vec<Option<f64>> {
        let mut qs = quantiles_of(&self.samples, ps);
        if !self.is_exact() {
            for (q, &p) in qs.iter_mut().zip(ps) {
                if p <= 0.0 {
                    *q = Some(self.min);
                } else if p >= 1.0 {
                    *q = Some(self.max);
                }
            }
        }
        qs
    }

    /// Summary statistics: `n`, `mean`, `min`, `max` are exact at any
    /// length; `std_dev` is computed over the retained samples around the
    /// exact mean (so it too is exact while the series is).
    #[must_use]
    pub fn summary(&self) -> Summary {
        if self.n == 0 {
            return Summary { n: 0, mean: 0.0, std_dev: 0.0, min: 0.0, max: 0.0 };
        }
        let mean = self.sum / self.n as f64;
        let var = if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
                / self.samples.len() as f64
        };
        Summary { n: self.n as usize, mean, std_dev: var.sqrt(), min: self.min, max: self.max }
    }

    /// Folds another reservoir in. Aggregates (`n`, sum, min, max) merge
    /// exactly; samples concatenate while the result stays within the
    /// cap (matching what a `Vec` concatenation would retain), then
    /// degrade to reservoir replacement.
    pub fn merge(&mut self, other: &Reservoir) {
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for &v in &other.samples {
            self.n += 1;
            if self.samples.len() < RESERVOIR_CAP {
                self.samples.push(v);
            } else {
                let j = (xorshift(&mut self.rng) % self.n) as usize;
                if j < RESERVOIR_CAP {
                    self.samples[j] = v;
                }
            }
        }
        // Observations the other side had already downsampled away still
        // count toward n (their sum/min/max merged above).
        self.n += other.n - other.samples.len() as u64;
    }
}

/// Aggregates of one window of a series — everything observed since the
/// last [`Metrics::take_window`]. Mean and max are exact: the window
/// accumulates as observations arrive, so no samples are retained or
/// re-scanned (the O(1)-per-op replacement for slicing a series by
/// remembered offsets).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Window {
    /// Observations in the window.
    pub n: u64,
    /// Their running sum (left-to-right, matching what summing a slice
    /// of the old unbounded series produced).
    pub sum: f64,
    /// Their maximum (0 for an empty window, like [`Summary::of`] on an
    /// empty slice).
    pub max: f64,
}

impl Window {
    /// Mean of the window, 0 when empty (mirroring [`Summary::of`]).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }
}

/// One named series: the run-wide reservoir plus the open window.
#[derive(Debug, Clone)]
struct SeriesCell {
    res: Reservoir,
    win_n: u64,
    win_sum: f64,
    win_max: f64,
}

impl SeriesCell {
    fn new() -> Self {
        SeriesCell { res: Reservoir::new(), win_n: 0, win_sum: 0.0, win_max: f64::NEG_INFINITY }
    }
}

/// Counter and series sink shared by the kernel and the protocols.
#[derive(Debug, Default, Clone)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    series: BTreeMap<&'static str, SeriesCell>,
}

impl Metrics {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to the named counter (creating it at zero).
    pub fn add(&mut self, name: &'static str, v: u64) {
        *self.counters.entry(name).or_insert(0) += v;
    }

    /// Increments the named counter by one.
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Current value of a counter (zero if never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Appends an observation to the named series: O(1) and, once the
    /// series buffer reaches [`RESERVOIR_CAP`], allocation-free.
    pub fn observe(&mut self, name: &'static str, v: f64) {
        let cell = self.series.entry(name).or_insert_with(SeriesCell::new);
        cell.res.observe(v);
        cell.win_n += 1;
        cell.win_sum += v;
        cell.win_max = cell.win_max.max(v);
    }

    /// The retained samples of a series (empty slice if absent): the
    /// full series while it fits [`RESERVOIR_CAP`], a uniform subsample
    /// beyond.
    #[must_use]
    pub fn series(&self, name: &str) -> &[f64] {
        self.series.get(name).map_or(&[], |c| c.res.samples())
    }

    /// The named series' reservoir, if it exists.
    #[must_use]
    pub fn reservoir(&self, name: &str) -> Option<&Reservoir> {
        self.series.get(name).map(|c| &c.res)
    }

    /// Closes the named series' current window and opens a fresh one:
    /// returns the exact count/sum/max of everything observed since the
    /// last take (or series creation). A `Window` for an absent series
    /// is empty. This is how phase-scoped accounting stays O(1): callers
    /// cut windows at phase boundaries instead of slicing an unbounded
    /// series by remembered offsets.
    pub fn take_window(&mut self, name: &'static str) -> Window {
        match self.series.get_mut(name) {
            Some(cell) => {
                let w = Window {
                    n: cell.win_n,
                    sum: cell.win_sum,
                    max: if cell.win_n == 0 { 0.0 } else { cell.win_max },
                };
                cell.win_n = 0;
                cell.win_sum = 0.0;
                cell.win_max = f64::NEG_INFINITY;
                w
            }
            None => Window::default(),
        }
    }

    /// Mean of a series — exact at any length — or `None` when empty.
    #[must_use]
    pub fn mean(&self, name: &str) -> Option<f64> {
        self.series.get(name).and_then(|c| c.res.mean())
    }

    /// `p`-quantile (0..=1) of a series using nearest-rank, or `None` when
    /// empty.
    #[must_use]
    pub fn quantile(&self, name: &str, p: f64) -> Option<f64> {
        self.quantiles(name, std::slice::from_ref(&p))[0]
    }

    /// Several `p`-quantiles of a series at once, sorting it a single
    /// time — the per-operation latency reporting path (e.g. p50/p95/p99
    /// of `client.op_ticks`) reads them together. Each entry is `None`
    /// when the series is empty. Exact while the series fits
    /// [`RESERVOIR_CAP`]; computed over a uniform subsample beyond.
    #[must_use]
    pub fn quantiles(&self, name: &str, ps: &[f64]) -> Vec<Option<f64>> {
        match self.series.get(name) {
            Some(cell) => cell.res.quantiles(ps),
            None => vec![None; ps.len()],
        }
    }

    /// Summary statistics of the named series (zeroed when the series is
    /// empty or absent). Per-operation accounting — e.g. nodes contacted
    /// per multi-tuple read — is recorded with [`Metrics::observe`] and
    /// read back through this in one call. `n`, `mean`, `min`, `max` are
    /// exact at any series length.
    #[must_use]
    pub fn summary(&self, name: &str) -> Summary {
        self.series.get(name).map_or_else(|| Summary::of(&[]), |c| c.res.summary())
    }

    /// Iterates over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Merges another sink into this one (counters add, series fold
    /// together; see [`Reservoir::merge`]). The other sink's open
    /// windows fold into this one's.
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, cell) in &other.series {
            let mine = self.series.entry(k).or_insert_with(SeriesCell::new);
            mine.res.merge(&cell.res);
            mine.win_n += cell.win_n;
            mine.win_sum += cell.win_sum;
            mine.win_max = mine.win_max.max(cell.win_max);
        }
    }

    /// Clears all recorded data.
    pub fn reset(&mut self) {
        self.counters.clear();
        self.series.clear();
    }
}

/// Nearest-rank `p`-quantiles (each `p` clamped to `0.0..=1.0`) of a raw
/// slice, sorting once for all of them; every entry is `None` when `xs`
/// is empty. The standalone core of [`Metrics::quantiles`], for callers
/// holding raw observations rather than a named series.
#[must_use]
pub fn quantiles_of(xs: &[f64], ps: &[f64]) -> Vec<Option<f64>> {
    if xs.is_empty() {
        return vec![None; ps.len()];
    }
    let mut s = xs.to_vec();
    s.sort_by(f64::total_cmp);
    ps.iter()
        .map(|p| {
            let rank = ((p.clamp(0.0, 1.0) * s.len() as f64).ceil() as usize).clamp(1, s.len());
            Some(s[rank - 1])
        })
        .collect()
}

/// Summary statistics for a slice of observations.
///
/// ```
/// let s = dd_sim::metrics::Summary::of(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean (0 for an empty slice).
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum value (0 for an empty slice).
    pub min: f64,
    /// Maximum value (0 for an empty slice).
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics of `xs`.
    #[must_use]
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary { n: 0, mean: 0.0, std_dev: 0.0, min: 0.0, max: 0.0 };
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        Summary { n: xs.len(), mean, std_dev: var.sqrt(), min, max }
    }

    /// Coefficient of variation (`std_dev / mean`), the load-balance measure
    /// used by experiment E8; zero when the mean is zero.
    #[must_use]
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("sent");
        m.add("sent", 4);
        assert_eq!(m.counter("sent"), 5);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn series_mean_and_quantile() {
        let mut m = Metrics::new();
        for v in [4.0, 1.0, 3.0, 2.0] {
            m.observe("lat", v);
        }
        assert_eq!(m.mean("lat"), Some(2.5));
        assert_eq!(m.quantile("lat", 0.5), Some(2.0));
        assert_eq!(m.quantile("lat", 1.0), Some(4.0));
        assert_eq!(m.quantile("lat", 0.0), Some(1.0));
        assert_eq!(m.mean("absent"), None);
    }

    #[test]
    fn batch_quantiles_match_single_quantiles() {
        let mut m = Metrics::new();
        for v in [9.0, 1.0, 5.0, 3.0, 7.0] {
            m.observe("lat", v);
        }
        let ps = [0.0, 0.5, 0.95, 1.0];
        let batch = m.quantiles("lat", &ps);
        let singly: Vec<Option<f64>> = ps.iter().map(|&p| m.quantile("lat", p)).collect();
        assert_eq!(batch, singly);
        assert_eq!(m.quantiles("absent", &ps), vec![None; 4]);
    }

    #[test]
    fn quantiles_of_empty_series_is_all_none() {
        assert_eq!(quantiles_of(&[], &[0.0, 0.5, 1.0]), vec![None; 3]);
        let m = Metrics::new();
        assert_eq!(m.quantiles("never-observed", &[0.5, 0.95]), vec![None; 2]);
    }

    #[test]
    fn quantiles_of_single_sample_answers_every_p() {
        // One observation is every quantile of itself, including the
        // extremes and out-of-range p (clamped).
        assert_eq!(quantiles_of(&[7.5], &[-0.5, 0.0, 0.25, 0.5, 1.0, 2.0]), vec![Some(7.5); 6]);
    }

    #[test]
    fn quantile_extremes_are_min_and_max() {
        let xs = [9.0, -2.0, 4.0, 4.0, 0.5];
        let q = quantiles_of(&xs, &[0.0, 1.0]);
        assert_eq!(q, vec![Some(-2.0), Some(9.0)]);
        // p beyond the unit interval clamps rather than panicking.
        assert_eq!(quantiles_of(&xs, &[-1.0, 1.5]), vec![Some(-2.0), Some(9.0)]);
    }

    #[test]
    fn series_summary_matches_direct_computation() {
        let mut m = Metrics::new();
        for v in [3.0, 5.0, 7.0] {
            m.observe("op.contacts", v);
        }
        let s = m.summary("op.contacts");
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(m.summary("absent").n, 0);
    }

    #[test]
    fn merge_adds_counters_and_extends_series() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        a.add("x", 2);
        b.add("x", 3);
        b.observe("s", 1.0);
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.series("s"), &[1.0]);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = Metrics::new();
        m.incr("x");
        m.observe("s", 1.0);
        m.reset();
        assert_eq!(m.counter("x"), 0);
        assert!(m.series("s").is_empty());
    }

    #[test]
    fn summary_statistics_are_correct() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean, 5.0);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.cv() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_slice_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn counters_iterate_in_name_order() {
        let mut m = Metrics::new();
        m.incr("b");
        m.incr("a");
        let names: Vec<_> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn small_series_report_exactly_what_a_vec_would() {
        // Below the cap, every reported statistic equals the unbounded-
        // Vec computation bit for bit.
        let xs: Vec<f64> = (0..1_000).map(|i| f64::from((i * 37) % 101)).collect();
        let mut m = Metrics::new();
        for &v in &xs {
            m.observe("s", v);
        }
        assert_eq!(m.series("s"), xs.as_slice());
        assert_eq!(m.mean("s"), Some(xs.iter().sum::<f64>() / xs.len() as f64));
        assert_eq!(m.quantiles("s", &[0.5, 0.95]), quantiles_of(&xs, &[0.5, 0.95]));
        assert_eq!(m.summary("s"), Summary::of(&xs));
    }

    #[test]
    fn reservoir_stays_bounded_with_exact_aggregates() {
        let mut r = Reservoir::new();
        let n = RESERVOIR_CAP * 4;
        for i in 0..n {
            r.observe(i as f64);
        }
        assert_eq!(r.len(), n);
        assert!(!r.is_exact());
        assert_eq!(r.samples().len(), RESERVOIR_CAP, "memory is bounded");
        // Aggregates never degrade.
        let s = r.summary();
        assert_eq!(s.n, n);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, (n - 1) as f64);
        let expected_mean = (n - 1) as f64 / 2.0;
        assert!((s.mean - expected_mean).abs() < 1e-9);
        // Quantile extremes answer from streaming min/max; the median is
        // a uniform-subsample estimate, loose-bounded here.
        let q = r.quantiles(&[0.0, 0.5, 1.0]);
        assert_eq!(q[0], Some(0.0));
        assert_eq!(q[2], Some((n - 1) as f64));
        let med = q[1].unwrap();
        assert!((med - expected_mean).abs() < n as f64 * 0.1, "median estimate {med}");
    }

    #[test]
    fn reservoir_replacement_is_deterministic() {
        let run = || {
            let mut r = Reservoir::new();
            for i in 0..(RESERVOIR_CAP * 2) {
                r.observe(i as f64);
            }
            r
        };
        assert_eq!(run(), run(), "same observations, same retained samples");
    }

    #[test]
    fn windows_cut_series_without_retaining_samples() {
        let mut m = Metrics::new();
        for v in [2.0, 4.0, 9.0] {
            m.observe("w", v);
        }
        let first = m.take_window("w");
        assert_eq!(first.n, 3);
        assert_eq!(first.mean(), 5.0);
        assert_eq!(first.max, 9.0);
        // The next window starts empty; the run-wide series is untouched.
        m.observe("w", 1.0);
        let second = m.take_window("w");
        assert_eq!((second.n, second.mean(), second.max), (1, 1.0, 1.0));
        assert_eq!(m.take_window("w"), Window::default(), "empty window is zeroed");
        assert_eq!(m.take_window("absent"), Window::default());
        assert_eq!(m.summary("w").n, 4, "windows don't consume the series");
    }

    #[test]
    fn window_mean_matches_slice_mean_bitwise() {
        // The window's running sum accumulates in observation order, so
        // its mean is bit-identical to summing the equivalent slice.
        let xs = [0.1, 0.2, 0.3, 0.7, 1.9, 2.2];
        let mut m = Metrics::new();
        for &v in &xs[..4] {
            m.observe("w", v);
        }
        let w = m.take_window("w");
        assert_eq!(w.mean(), xs[..4].iter().sum::<f64>() / 4.0);
        for &v in &xs[4..] {
            m.observe("w", v);
        }
        let w = m.take_window("w");
        assert_eq!(w.mean(), xs[4..].iter().sum::<f64>() / 2.0);
    }

    #[test]
    fn p99_of_empty_tiny_and_subsampled_series() {
        // Empty: no answer, not a zero.
        let m = Metrics::new();
        assert_eq!(m.quantile("lat", 0.99), None);

        // Tiny: nearest-rank at p99 lands on the last sorted sample, so
        // 1–3 observations all answer with their maximum.
        let mut m = Metrics::new();
        m.observe("lat", 42.0);
        assert_eq!(m.quantile("lat", 0.99), Some(42.0));
        m.observe("lat", 7.0);
        m.observe("lat", 99.0);
        assert_eq!(m.quantile("lat", 0.99), Some(99.0));
        assert_eq!(m.quantiles("lat", &[0.99]), quantiles_of(&[42.0, 7.0, 99.0], &[0.99]));

        // Subsampled: past the cap the p99 is a uniform-reservoir
        // estimate — still inside the observed range and near the true
        // rank for a uniform ramp — while p100 stays exact (streaming
        // max).
        let mut m = Metrics::new();
        let n = RESERVOIR_CAP * 8;
        for i in 0..n {
            m.observe("lat", i as f64);
        }
        assert!(!m.reservoir("lat").unwrap().is_exact());
        let q = m.quantiles("lat", &[0.99, 1.0]);
        let p99 = q[0].unwrap();
        let truth = 0.99 * (n - 1) as f64;
        assert!((p99 - truth).abs() < n as f64 * 0.02, "p99 estimate {p99} vs {truth}");
        assert_eq!(q[1], Some((n - 1) as f64), "p100 answers from the exact max");
    }

    #[test]
    fn windows_and_quantiles_are_independent_views() {
        // Cutting windows mid-series never perturbs the quantile view,
        // and each window sees exactly its own observations.
        let mut m = Metrics::new();
        for v in [5.0, 1.0, 3.0] {
            m.observe("lat", v);
        }
        let before = m.quantiles("lat", &[0.5, 0.99]);
        let w = m.take_window("lat");
        assert_eq!((w.n, w.max), (3, 5.0));
        assert_eq!(m.quantiles("lat", &[0.5, 0.99]), before);
        for v in [9.0, 2.0] {
            m.observe("lat", v);
        }
        let w = m.take_window("lat");
        assert_eq!((w.n, w.sum, w.max), (2, 11.0, 9.0));
        assert_eq!(m.quantile("lat", 0.99), Some(9.0), "run-wide view spans both windows");
    }

    #[test]
    fn take_window_past_the_cap_stays_exact() {
        // Windows accumulate streaming aggregates, so they are exact even
        // after the run-wide reservoir has started subsampling.
        let mut m = Metrics::new();
        for i in 0..RESERVOIR_CAP {
            m.observe("lat", i as f64);
        }
        m.take_window("lat");
        for i in 0..100 {
            m.observe("lat", (RESERVOIR_CAP + i) as f64);
        }
        let w = m.take_window("lat");
        assert_eq!(w.n, 100);
        assert_eq!(w.max, (RESERVOIR_CAP + 99) as f64);
        let expected: f64 = (0..100).map(|i| (RESERVOIR_CAP + i) as f64).sum();
        assert_eq!(w.sum, expected);
    }

    #[test]
    fn reservoir_merge_concatenates_while_exact() {
        let mut a = Reservoir::new();
        let mut b = Reservoir::new();
        for v in [1.0, 2.0] {
            a.observe(v);
        }
        for v in [3.0, 4.0, 5.0] {
            b.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.samples(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(a.len(), 5);
        assert_eq!(a.mean(), Some(3.0));
        assert_eq!(a.summary().max, 5.0);
    }

    #[test]
    fn reservoir_merge_keeps_exact_aggregates_past_the_cap() {
        let mut a = Reservoir::new();
        let mut b = Reservoir::new();
        for i in 0..RESERVOIR_CAP {
            a.observe(i as f64);
            b.observe((RESERVOIR_CAP + i) as f64);
        }
        a.merge(&b);
        assert_eq!(a.len(), RESERVOIR_CAP * 2);
        assert_eq!(a.samples().len(), RESERVOIR_CAP);
        assert_eq!(a.summary().min, 0.0);
        assert_eq!(a.summary().max, (2 * RESERVOIR_CAP - 1) as f64);
        assert_eq!(a.summary().n, RESERVOIR_CAP * 2);
    }
}
