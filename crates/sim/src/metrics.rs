//! Lightweight metrics: named counters and value series.
//!
//! Experiments read these after a run to produce the rows of each
//! table/figure. Keys are `&'static str` to keep the hot path
//! allocation-free.

use std::collections::BTreeMap;

/// Counter and series sink shared by the kernel and the protocols.
#[derive(Debug, Default, Clone)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    series: BTreeMap<&'static str, Vec<f64>>,
}

impl Metrics {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to the named counter (creating it at zero).
    pub fn add(&mut self, name: &'static str, v: u64) {
        *self.counters.entry(name).or_insert(0) += v;
    }

    /// Increments the named counter by one.
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Current value of a counter (zero if never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Appends an observation to the named series.
    pub fn observe(&mut self, name: &'static str, v: f64) {
        self.series.entry(name).or_default().push(v);
    }

    /// Returns the recorded series (empty slice if absent).
    #[must_use]
    pub fn series(&self, name: &str) -> &[f64] {
        self.series.get(name).map_or(&[], Vec::as_slice)
    }

    /// Mean of a series, or `None` when empty.
    #[must_use]
    pub fn mean(&self, name: &str) -> Option<f64> {
        let s = self.series(name);
        if s.is_empty() {
            None
        } else {
            Some(s.iter().sum::<f64>() / s.len() as f64)
        }
    }

    /// `p`-quantile (0..=1) of a series using nearest-rank, or `None` when
    /// empty.
    #[must_use]
    pub fn quantile(&self, name: &str, p: f64) -> Option<f64> {
        self.quantiles(name, std::slice::from_ref(&p))[0]
    }

    /// Several `p`-quantiles of a series at once, sorting it a single
    /// time — the per-operation latency reporting path (e.g. p50/p95/p99
    /// of `client.op_ticks`) reads them together. Each entry is `None`
    /// when the series is empty.
    #[must_use]
    pub fn quantiles(&self, name: &str, ps: &[f64]) -> Vec<Option<f64>> {
        quantiles_of(self.series(name), ps)
    }

    /// Summary statistics of the named series (zeroed when the series is
    /// empty or absent). Per-operation accounting — e.g. nodes contacted
    /// per multi-tuple read — is recorded with [`Metrics::observe`] and
    /// read back through this in one call.
    #[must_use]
    pub fn summary(&self, name: &str) -> Summary {
        Summary::of(self.series(name))
    }

    /// Iterates over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Merges another sink into this one (counters add, series concatenate).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in &other.series {
            self.series.entry(k).or_default().extend_from_slice(v);
        }
    }

    /// Clears all recorded data.
    pub fn reset(&mut self) {
        self.counters.clear();
        self.series.clear();
    }
}

/// Nearest-rank `p`-quantiles (each `p` clamped to `0.0..=1.0`) of a raw
/// slice, sorting once for all of them; every entry is `None` when `xs`
/// is empty. The standalone core of [`Metrics::quantiles`], for callers
/// holding a window of a series rather than a named one — e.g. the
/// per-phase latency slices of a scenario report.
#[must_use]
pub fn quantiles_of(xs: &[f64], ps: &[f64]) -> Vec<Option<f64>> {
    if xs.is_empty() {
        return vec![None; ps.len()];
    }
    let mut s = xs.to_vec();
    s.sort_by(f64::total_cmp);
    ps.iter()
        .map(|p| {
            let rank = ((p.clamp(0.0, 1.0) * s.len() as f64).ceil() as usize).clamp(1, s.len());
            Some(s[rank - 1])
        })
        .collect()
}

/// Summary statistics for a slice of observations.
///
/// ```
/// let s = dd_sim::metrics::Summary::of(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean (0 for an empty slice).
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum value (0 for an empty slice).
    pub min: f64,
    /// Maximum value (0 for an empty slice).
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics of `xs`.
    #[must_use]
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary { n: 0, mean: 0.0, std_dev: 0.0, min: 0.0, max: 0.0 };
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        Summary { n: xs.len(), mean, std_dev: var.sqrt(), min, max }
    }

    /// Coefficient of variation (`std_dev / mean`), the load-balance measure
    /// used by experiment E8; zero when the mean is zero.
    #[must_use]
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("sent");
        m.add("sent", 4);
        assert_eq!(m.counter("sent"), 5);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn series_mean_and_quantile() {
        let mut m = Metrics::new();
        for v in [4.0, 1.0, 3.0, 2.0] {
            m.observe("lat", v);
        }
        assert_eq!(m.mean("lat"), Some(2.5));
        assert_eq!(m.quantile("lat", 0.5), Some(2.0));
        assert_eq!(m.quantile("lat", 1.0), Some(4.0));
        assert_eq!(m.quantile("lat", 0.0), Some(1.0));
        assert_eq!(m.mean("absent"), None);
    }

    #[test]
    fn batch_quantiles_match_single_quantiles() {
        let mut m = Metrics::new();
        for v in [9.0, 1.0, 5.0, 3.0, 7.0] {
            m.observe("lat", v);
        }
        let ps = [0.0, 0.5, 0.95, 1.0];
        let batch = m.quantiles("lat", &ps);
        let singly: Vec<Option<f64>> = ps.iter().map(|&p| m.quantile("lat", p)).collect();
        assert_eq!(batch, singly);
        assert_eq!(m.quantiles("absent", &ps), vec![None; 4]);
    }

    #[test]
    fn quantiles_of_empty_series_is_all_none() {
        assert_eq!(quantiles_of(&[], &[0.0, 0.5, 1.0]), vec![None; 3]);
        let m = Metrics::new();
        assert_eq!(m.quantiles("never-observed", &[0.5, 0.95]), vec![None; 2]);
    }

    #[test]
    fn quantiles_of_single_sample_answers_every_p() {
        // One observation is every quantile of itself, including the
        // extremes and out-of-range p (clamped).
        assert_eq!(quantiles_of(&[7.5], &[-0.5, 0.0, 0.25, 0.5, 1.0, 2.0]), vec![Some(7.5); 6]);
    }

    #[test]
    fn quantile_extremes_are_min_and_max() {
        let xs = [9.0, -2.0, 4.0, 4.0, 0.5];
        let q = quantiles_of(&xs, &[0.0, 1.0]);
        assert_eq!(q, vec![Some(-2.0), Some(9.0)]);
        // p beyond the unit interval clamps rather than panicking.
        assert_eq!(quantiles_of(&xs, &[-1.0, 1.5]), vec![Some(-2.0), Some(9.0)]);
    }

    #[test]
    fn series_summary_matches_direct_computation() {
        let mut m = Metrics::new();
        for v in [3.0, 5.0, 7.0] {
            m.observe("op.contacts", v);
        }
        let s = m.summary("op.contacts");
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(m.summary("absent").n, 0);
    }

    #[test]
    fn merge_adds_counters_and_extends_series() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        a.add("x", 2);
        b.add("x", 3);
        b.observe("s", 1.0);
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.series("s"), &[1.0]);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = Metrics::new();
        m.incr("x");
        m.observe("s", 1.0);
        m.reset();
        assert_eq!(m.counter("x"), 0);
        assert!(m.series("s").is_empty());
    }

    #[test]
    fn summary_statistics_are_correct() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean, 5.0);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.cv() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_slice_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn counters_iterate_in_name_order() {
        let mut m = Metrics::new();
        m.incr("b");
        m.incr("a");
        let names: Vec<_> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
