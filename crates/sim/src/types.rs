//! Fundamental identifier types shared by every protocol crate.

use std::fmt;

/// Identifier of a simulated (or threaded-runtime) node.
///
/// `NodeId` is a plain 64-bit value so that millions of nodes can be
/// addressed without allocation; experiments typically use dense ids
/// `0..n`, but nothing in the kernel requires density.
///
/// ```
/// use dd_sim::NodeId;
/// let a = NodeId(3);
/// assert!(a < NodeId(4));
/// assert_eq!(a.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u64);

impl NodeId {
    /// Returns the id as a `usize` index, for dense vectors of node state.
    ///
    /// # Panics
    /// Panics if the id does not fit in `usize` (only possible on 32-bit
    /// targets with ids above `u32::MAX`).
    #[must_use]
    pub fn index(self) -> usize {
        usize::try_from(self.0).expect("node id exceeds usize")
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(v: u64) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u64 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

/// Application-chosen tag distinguishing concurrent timers on one node.
///
/// Protocols conventionally define constants, e.g. `const SHUFFLE: TimerTag
/// = TimerTag(1)`. The kernel treats tags opaquely.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TimerTag(pub u32);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_ordering_follows_inner_value() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(7), NodeId(7));
        assert_ne!(NodeId(7), NodeId(8));
    }

    #[test]
    fn node_id_debug_is_compact_and_nonempty() {
        assert_eq!(format!("{:?}", NodeId(12)), "n12");
        assert_eq!(format!("{}", NodeId(0)), "n0");
    }

    #[test]
    fn node_id_round_trips_through_u64() {
        let id = NodeId(42);
        let raw: u64 = id.into();
        assert_eq!(NodeId::from(raw), id);
    }

    #[test]
    fn node_id_hashes_distinctly() {
        let set: HashSet<NodeId> = (0..100).map(NodeId).collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn index_matches_raw_value() {
        assert_eq!(NodeId(9).index(), 9);
    }

    #[test]
    fn timer_tags_compare_by_value() {
        assert_eq!(TimerTag(3), TimerTag(3));
        assert!(TimerTag(1) < TimerTag(2));
    }
}
