//! Churn generation.
//!
//! The paper (§III-A) argues churn is dominated by *transient* failures —
//! "nodes suffer from transient faults solved with a reboot" — with a small
//! fraction of permanent departures. [`ChurnModel`] captures exactly those
//! knobs; [`ChurnSchedule`] pre-computes a deterministic event list so two
//! protocol variants can be compared under *identical* churn. Schedules
//! are pure values; driving one into a simulation is the job of the
//! scenario plane (`dd-core`'s fault schedule) or, for raw [`crate::Sim`]
//! hosts, a caller mapping events onto [`crate::Sim::schedule_down`] /
//! [`crate::Sim::schedule_up`].

use crate::rng::stream_rng;
use crate::time::{Duration, Time};
use crate::types::NodeId;
use rand::Rng;
use rand_distr::{Distribution, Exp};

/// Parameters of the synthetic churn process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnModel {
    /// Per-node failure rate: expected failures per node per
    /// `period` ticks. E.g. `0.01` with `period = 1000` means each node
    /// fails on average once every 100 000 ticks.
    pub failure_rate: f64,
    /// Reference period in ticks over which `failure_rate` is expressed
    /// (conventionally one gossip round).
    pub period: u64,
    /// Mean downtime of a transient failure, in ticks.
    pub mean_downtime: u64,
    /// Probability that a failure is *permanent* (node never returns and
    /// its state is lost). The paper expects this to be small.
    pub permanent_prob: f64,
}

impl Default for ChurnModel {
    fn default() -> Self {
        ChurnModel { failure_rate: 0.01, period: 1_000, mean_downtime: 5_000, permanent_prob: 0.05 }
    }
}

impl ChurnModel {
    /// Builder: sets the per-period failure rate.
    #[must_use]
    pub fn failure_rate(mut self, r: f64) -> Self {
        assert!(r >= 0.0, "failure rate must be non-negative");
        self.failure_rate = r;
        self
    }

    /// Builder: sets the mean downtime.
    #[must_use]
    pub fn mean_downtime(mut self, d: u64) -> Self {
        self.mean_downtime = d;
        self
    }

    /// Builder: sets the probability a failure is permanent.
    #[must_use]
    pub fn permanent_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.permanent_prob = p;
        self
    }
}

/// One churn event in a pre-computed schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// Node goes down transiently at the given time.
    Down(Time, NodeId),
    /// Node comes back up at the given time.
    Up(Time, NodeId),
    /// Node departs permanently at the given time.
    Leave(Time, NodeId),
}

impl ChurnEvent {
    /// Time at which the event occurs.
    #[must_use]
    pub fn at(&self) -> Time {
        match *self {
            ChurnEvent::Down(t, _) | ChurnEvent::Up(t, _) | ChurnEvent::Leave(t, _) => t,
        }
    }

    /// Node the event applies to.
    #[must_use]
    pub fn node(&self) -> NodeId {
        match *self {
            ChurnEvent::Down(_, n) | ChurnEvent::Up(_, n) | ChurnEvent::Leave(_, n) => n,
        }
    }
}

/// A deterministic, time-ordered list of churn events over a horizon.
#[derive(Debug, Clone, Default)]
pub struct ChurnSchedule {
    events: Vec<ChurnEvent>,
}

impl ChurnSchedule {
    /// Generates the schedule for nodes `0..n` over `[0, horizon)`.
    ///
    /// Each node alternates exponentially distributed up-sessions (mean
    /// `period / failure_rate`) and down-sessions (mean `mean_downtime`);
    /// each failure is permanent with `permanent_prob`, ending the node's
    /// timeline.
    #[must_use]
    pub fn generate(model: &ChurnModel, n: u64, horizon: Time, seed: u64) -> ChurnSchedule {
        let mut events = Vec::new();
        if model.failure_rate <= 0.0 {
            return ChurnSchedule { events };
        }
        let mean_up = model.period as f64 / model.failure_rate;
        let up_dist = Exp::new(1.0 / mean_up).expect("valid rate");
        let down_dist = Exp::new(1.0 / (model.mean_downtime.max(1) as f64)).expect("valid rate");
        for node in 0..n {
            let mut rng = stream_rng(seed ^ 0xC0FF_EE00, node);
            let mut t = Time::ZERO;
            loop {
                let up_for = up_dist.sample(&mut rng).max(1.0) as u64;
                t += Duration(up_for);
                if t >= horizon {
                    break;
                }
                if rng.gen_bool(model.permanent_prob) {
                    events.push(ChurnEvent::Leave(t, NodeId(node)));
                    break;
                }
                events.push(ChurnEvent::Down(t, NodeId(node)));
                let down_for = down_dist.sample(&mut rng).max(1.0) as u64;
                t += Duration(down_for);
                if t >= horizon {
                    break;
                }
                events.push(ChurnEvent::Up(t, NodeId(node)));
            }
        }
        events.sort_by_key(|e| (e.at(), e.node()));
        ChurnSchedule { events }
    }

    /// All events in time order.
    #[must_use]
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no churn was generated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ChurnModel {
        ChurnModel::default().failure_rate(0.05).mean_downtime(2_000).permanent_prob(0.1)
    }

    #[test]
    fn schedule_is_deterministic() {
        let a = ChurnSchedule::generate(&model(), 50, Time(100_000), 7);
        let b = ChurnSchedule::generate(&model(), 50, Time(100_000), 7);
        assert_eq!(a.events(), b.events());
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = ChurnSchedule::generate(&model(), 50, Time(100_000), 1);
        let b = ChurnSchedule::generate(&model(), 50, Time(100_000), 2);
        assert_ne!(a.events(), b.events());
    }

    #[test]
    fn events_are_time_ordered() {
        let s = ChurnSchedule::generate(&model(), 100, Time(200_000), 3);
        for w in s.events().windows(2) {
            assert!(w[0].at() <= w[1].at());
        }
    }

    #[test]
    fn zero_rate_produces_no_churn() {
        let m = ChurnModel::default().failure_rate(0.0);
        let s = ChurnSchedule::generate(&m, 100, Time(1_000_000), 1);
        assert!(s.is_empty());
    }

    #[test]
    fn per_node_timeline_alternates_down_up() {
        let s = ChurnSchedule::generate(&model(), 20, Time(500_000), 11);
        for node in 0..20 {
            let mine: Vec<&ChurnEvent> =
                s.events().iter().filter(|e| e.node() == NodeId(node)).collect();
            let mut expect_down = true;
            for ev in mine {
                match ev {
                    ChurnEvent::Down(..) => {
                        assert!(expect_down, "two downs in a row for node {node}");
                        expect_down = false;
                    }
                    ChurnEvent::Up(..) => {
                        assert!(!expect_down, "up before down for node {node}");
                        expect_down = true;
                    }
                    ChurnEvent::Leave(..) => {
                        assert!(expect_down, "leave while down for node {node}");
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn leave_terminates_a_node_timeline() {
        let m = ChurnModel::default().failure_rate(0.5).permanent_prob(1.0);
        let s = ChurnSchedule::generate(&m, 10, Time(1_000_000), 5);
        for node in 0..10 {
            let mine: Vec<&ChurnEvent> =
                s.events().iter().filter(|e| e.node() == NodeId(node)).collect();
            assert_eq!(mine.len(), 1, "exactly one event per always-permanent node");
            assert!(matches!(mine[0], ChurnEvent::Leave(..)));
        }
    }

    #[test]
    fn higher_rate_means_more_events() {
        let low = ChurnSchedule::generate(
            &ChurnModel::default().failure_rate(0.01).permanent_prob(0.0),
            200,
            Time(1_000_000),
            9,
        );
        let high = ChurnSchedule::generate(
            &ChurnModel::default().failure_rate(0.1).permanent_prob(0.0),
            200,
            Time(1_000_000),
            9,
        );
        assert!(high.len() > 3 * low.len(), "high {} low {}", high.len(), low.len());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_permanent_prob_panics() {
        let _ = ChurnModel::default().permanent_prob(2.0);
    }
}
