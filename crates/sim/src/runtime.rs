//! Threaded runtime: runs the same [`Process`] implementations over real
//! threads and channels instead of virtual time.
//!
//! This is the "tokio-shaped" substrate substitution: protocols written for
//! the deterministic kernel execute unchanged over OS concurrency, which the
//! wall-clock benches use to show the epidemic message paths are cheap in
//! real time, not only in simulated rounds. One OS thread per node, crossbeam
//! channels as links, per-thread timer queues. One tick of virtual
//! [`Time`] corresponds to one millisecond of wall time.

use crate::engine::{with_adhoc_ctx, AdhocEffect, Process};
use crate::metrics::Metrics;
use crate::rng::stream_rng;
use crate::time::Time;
use crate::types::{NodeId, TimerTag};
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::HashMap;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

enum Envelope<M> {
    Msg { from: NodeId, msg: M },
    Stop,
}

/// Handle to a running threaded cluster.
///
/// Created by [`Runtime::spawn`]; stopped (and drained) by
/// [`Runtime::shutdown`].
pub struct Runtime<P: Process + Send + 'static>
where
    P::Msg: Send,
{
    senders: HashMap<NodeId, Sender<Envelope<P::Msg>>>,
    handles: Vec<JoinHandle<(NodeId, P, Metrics)>>,
}

impl<P: Process + Send + 'static> Runtime<P>
where
    P::Msg: Send + 'static,
{
    /// Spawns one thread per `(id, process)` pair. Each process receives
    /// `on_start` immediately.
    #[must_use]
    pub fn spawn(nodes: Vec<(NodeId, P)>, seed: u64) -> Self {
        let mut inboxes = HashMap::new();
        let mut receivers = Vec::new();
        for (id, _) in &nodes {
            let (tx, rx) = unbounded::<Envelope<P::Msg>>();
            inboxes.insert(*id, tx);
            receivers.push(rx);
        }
        let epoch = Instant::now();
        let mut handles = Vec::new();
        for ((id, proc), rx) in nodes.into_iter().zip(receivers) {
            let peers = inboxes.clone();
            handles.push(std::thread::spawn(move || node_loop(id, proc, rx, &peers, seed, epoch)));
        }
        Runtime { senders: inboxes, handles }
    }

    /// Injects a message into the cluster from a synthetic source id.
    ///
    /// Returns `false` when the destination is unknown or already stopped.
    pub fn inject(&self, from: NodeId, to: NodeId, msg: P::Msg) -> bool {
        self.senders.get(&to).is_some_and(|tx| tx.send(Envelope::Msg { from, msg }).is_ok())
    }

    /// Stops every node and returns `(id, final_state)` pairs plus merged
    /// metrics from all nodes.
    pub fn shutdown(self) -> (Vec<(NodeId, P)>, Metrics) {
        for tx in self.senders.values() {
            let _ = tx.send(Envelope::Stop);
        }
        let mut out = Vec::new();
        let mut metrics = Metrics::new();
        for h in self.handles {
            if let Ok((id, proc, m)) = h.join() {
                metrics.merge(&m);
                out.push((id, proc));
            }
        }
        out.sort_by_key(|(id, _)| *id);
        (out, metrics)
    }
}

fn wall_now(epoch: Instant) -> Time {
    Time(u64::try_from(epoch.elapsed().as_millis()).unwrap_or(u64::MAX))
}

fn node_loop<P: Process>(
    id: NodeId,
    mut proc: P,
    rx: Receiver<Envelope<P::Msg>>,
    peers: &HashMap<NodeId, Sender<Envelope<P::Msg>>>,
    seed: u64,
    epoch: Instant,
) -> (NodeId, P, Metrics) {
    let mut rng = stream_rng(seed, id.0);
    let mut metrics = Metrics::new();
    // (deadline, tag) pairs; scanned linearly — nodes hold only a few timers.
    let mut timers: Vec<(Instant, TimerTag)> = Vec::new();

    let ((), effs) =
        with_adhoc_ctx(id, wall_now(epoch), &mut rng, &mut metrics, |c| proc.on_start(c));
    apply(id, effs, peers, &mut timers, &mut metrics);

    loop {
        // Fire any due timers before blocking.
        let now = Instant::now();
        let due: Vec<TimerTag> = {
            let mut due = Vec::new();
            timers.retain(|(t, tag)| {
                if *t <= now {
                    due.push(*tag);
                    false
                } else {
                    true
                }
            });
            due
        };
        let mut fired = false;
        for tag in due {
            fired = true;
            let ((), effs) = with_adhoc_ctx(id, wall_now(epoch), &mut rng, &mut metrics, |c| {
                proc.on_timer(c, tag);
            });
            apply(id, effs, peers, &mut timers, &mut metrics);
        }
        if fired {
            continue;
        }

        let env = match timers.iter().map(|(t, _)| *t).min() {
            Some(deadline) => {
                let now = Instant::now();
                if deadline <= now {
                    continue;
                }
                match rx.recv_timeout(deadline - now) {
                    Ok(env) => env,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            None => match rx.recv() {
                Ok(env) => env,
                Err(_) => break,
            },
        };
        match env {
            Envelope::Stop => break,
            Envelope::Msg { from, msg } => {
                metrics.incr("net.delivered");
                let ((), effs) = with_adhoc_ctx(id, wall_now(epoch), &mut rng, &mut metrics, |c| {
                    proc.on_message(c, from, msg);
                });
                apply(id, effs, peers, &mut timers, &mut metrics);
            }
        }
    }
    (id, proc, metrics)
}

fn apply<M>(
    from: NodeId,
    effects: Vec<AdhocEffect<M>>,
    peers: &HashMap<NodeId, Sender<Envelope<M>>>,
    timers: &mut Vec<(Instant, TimerTag)>,
    metrics: &mut Metrics,
) {
    for eff in effects {
        match eff {
            AdhocEffect::Send { to, msg } => {
                metrics.incr("net.sent");
                let ok =
                    peers.get(&to).is_some_and(|tx| tx.send(Envelope::Msg { from, msg }).is_ok());
                if !ok {
                    metrics.incr("net.dropped");
                }
            }
            AdhocEffect::Timer { delay, tag } => {
                timers.push((Instant::now() + Duration::from_millis(delay.0), tag));
            }
        }
    }
}

/// Blocks the calling thread for `ms` milliseconds of wall time — small
/// helper so examples don't need to import `std::time`.
pub fn sleep_ms(ms: u64) {
    std::thread::sleep(Duration::from_millis(ms));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Ctx;
    use crate::time::Duration as VDuration;

    struct Counter {
        seen: u64,
        fanout: Vec<NodeId>,
    }

    impl Process for Counter {
        type Msg = u64;
        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, _from: NodeId, msg: u64) {
            self.seen += msg;
            if msg > 1 {
                for &p in &self.fanout {
                    ctx.send(p, msg - 1);
                }
            }
        }
    }

    #[test]
    fn threaded_cluster_relays_messages() {
        let nodes = vec![
            (NodeId(0), Counter { seen: 0, fanout: vec![NodeId(1)] }),
            (NodeId(1), Counter { seen: 0, fanout: vec![NodeId(2)] }),
            (NodeId(2), Counter { seen: 0, fanout: vec![] }),
        ];
        let rt = Runtime::spawn(nodes, 3);
        assert!(rt.inject(NodeId(99), NodeId(0), 3));
        sleep_ms(100);
        let (states, metrics) = rt.shutdown();
        let by_id: HashMap<NodeId, u64> = states.into_iter().map(|(i, c)| (i, c.seen)).collect();
        assert_eq!(by_id[&NodeId(0)], 3);
        assert_eq!(by_id[&NodeId(1)], 2);
        assert_eq!(by_id[&NodeId(2)], 1);
        assert!(metrics.counter("net.delivered") >= 3);
    }

    #[test]
    fn relayed_messages_carry_the_relay_id() {
        struct From {
            last: Option<NodeId>,
            relay: Option<NodeId>,
        }
        impl Process for From {
            type Msg = u8;
            fn on_message(&mut self, ctx: &mut Ctx<'_, u8>, from: NodeId, m: u8) {
                self.last = Some(from);
                if let (Some(r), 1) = (self.relay, m) {
                    ctx.send(r, 2);
                }
            }
        }
        let rt = Runtime::spawn(
            vec![
                (NodeId(0), From { last: None, relay: Some(NodeId(1)) }),
                (NodeId(1), From { last: None, relay: None }),
            ],
            5,
        );
        rt.inject(NodeId(42), NodeId(0), 1);
        sleep_ms(100);
        let (states, _) = rt.shutdown();
        assert_eq!(states[0].1.last, Some(NodeId(42)));
        assert_eq!(states[1].1.last, Some(NodeId(0)));
    }

    #[test]
    fn timers_fire_in_threaded_runtime() {
        struct Tick {
            fired: u32,
        }
        impl Process for Tick {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(VDuration(5), TimerTag(1));
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _: TimerTag) {
                self.fired += 1;
                if self.fired < 3 {
                    ctx.set_timer(VDuration(5), TimerTag(1));
                }
            }
        }
        let rt = Runtime::spawn(vec![(NodeId(0), Tick { fired: 0 })], 1);
        sleep_ms(200);
        let (states, _) = rt.shutdown();
        assert_eq!(states[0].1.fired, 3);
    }

    #[test]
    fn inject_to_unknown_node_reports_false() {
        let rt: Runtime<Counter> = Runtime::spawn(vec![], 1);
        assert!(!rt.inject(NodeId(0), NodeId(42), 1));
        let (states, _) = rt.shutdown();
        assert!(states.is_empty());
    }
}
