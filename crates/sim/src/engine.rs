//! The discrete-event engine: nodes, events, and the run loop.

use crate::metrics::Metrics;
use crate::net::{LatencyModel, NetConfig};
use crate::rng::stream_rng;
use crate::time::{Duration, Time};
use crate::trace::Tracer;
use crate::types::{NodeId, TimerTag};
use rand::rngs::SmallRng;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;

/// Protocol logic hosted on one simulated node.
///
/// All methods receive a [`Ctx`] through which the process sends messages,
/// arms timers, draws randomness and records metrics. Only `on_message` is
/// mandatory; the rest default to no-ops.
pub trait Process: Sized {
    /// Message type exchanged between nodes running this process.
    type Msg: Clone + fmt::Debug;

    /// Called once when the node is added to the simulation (or the
    /// simulation starts). Typical use: arm the first periodic timer.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called for every delivered message.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called when a previously armed timer fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg>, tag: TimerTag) {
        let _ = (ctx, tag);
    }

    /// Called when the node goes down (transient failure). State is
    /// retained — the paper's churn model is dominated by reboots
    /// (§III-A), after which on-disk data is still present.
    fn on_down(&mut self) {}

    /// Called when the node comes back up after a transient failure.
    /// Pending timers armed before the crash were discarded; re-arm here.
    fn on_up(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }
}

/// A periodic read-only observer of the running simulation — the hook the
/// telemetry plane (`dd-obs`) installs with [`Sim::set_sampler`].
///
/// The engine polls the sampler once per processed event: whenever virtual
/// time has reached the next sampling deadline, [`Sampler::sample`] runs
/// against an immutable view of the simulation and the deadline advances
/// by [`Sampler::period`] ticks. Sampling is passive — the sampler cannot
/// send, schedule, or mutate node state, and the engine's RNGs and queue
/// are untouched — so an instrumented run replays byte-identically, and
/// when no sampler is installed the poll costs one branch.
pub trait Sampler<P: Process> {
    /// Virtual ticks between samples (values below 1 are treated as 1).
    fn period(&self) -> u64;

    /// Takes one sample at the current virtual time.
    fn sample(&mut self, sim: &Sim<P>);

    /// Recovers the concrete collector once detached ([`Sim::take_sampler`]).
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;
}

/// Side-effect handle passed to every [`Process`] callback.
pub struct Ctx<'a, M> {
    id: NodeId,
    now: Time,
    rng: &'a mut SmallRng,
    metrics: &'a mut Metrics,
    effects: &'a mut Vec<Effect<M>>,
    tracer: Option<&'a mut (dyn Tracer + 'static)>,
}

impl<M> Ctx<'_, M> {
    /// Id of the node this callback runs on.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Sends `msg` to `to`; latency/loss applied by the network model.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.effects.push(Effect::Send { to, msg });
    }

    /// Arms a one-shot timer that fires after `delay` with `tag`.
    /// Periodic behaviour is obtained by re-arming inside
    /// [`Process::on_timer`]. Timers do not survive a node crash.
    pub fn set_timer(&mut self, delay: Duration, tag: TimerTag) {
        self.effects.push(Effect::Timer { delay, tag });
    }

    /// Node-local deterministic RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Shared metrics sink.
    pub fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }

    /// The installed span sink, when the run is traced ([`Sim::set_tracer`]);
    /// `None` otherwise — traced code paths guard on this so tracing costs
    /// one branch when off.
    pub fn tracer(&mut self) -> Option<&mut (dyn Tracer + 'static)> {
        self.tracer.as_deref_mut()
    }
}

enum Effect<M> {
    Send { to: NodeId, msg: M },
    Timer { delay: Duration, tag: TimerTag },
}

/// A scheduled mutation of the live network model — the engine hook behind
/// environment timelines. Experiments queue latency shifts, loss spikes
/// and partition/heal events up front with [`Sim::schedule_net`]; the
/// engine applies each at its virtual time, in deterministic event order,
/// so the run replays identically from the seed.
#[derive(Debug, Clone, PartialEq)]
pub enum NetChange {
    /// Replace the latency model.
    Latency(LatencyModel),
    /// Set the independent message-loss probability.
    DropProb(f64),
    /// Assign a node to a partition colour (0 rejoins the main component).
    Partition(NodeId, u32),
    /// Clear every partition assignment.
    Heal,
}

enum Event<M> {
    Start(NodeId),
    Deliver { to: NodeId, from: NodeId, msg: M },
    Timer { node: NodeId, tag: TimerTag, epoch: u64 },
    Down(NodeId),
    Up(NodeId),
    Net(NetChange),
}

struct Scheduled<M> {
    at: Time,
    seq: u64,
    event: Event<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    // Reversed so BinaryHeap pops the earliest event first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct Slot<P> {
    proc: P,
    rng: SmallRng,
    alive: bool,
    /// Incremented on every crash; timers armed in an older epoch are
    /// discarded on delivery, modelling in-memory timer loss at reboot.
    epoch: u64,
}

/// Simulation-wide configuration.
#[derive(Debug, Clone, Default)]
pub struct SimConfig {
    /// Master seed; all node RNGs and network decisions derive from it.
    pub seed: u64,
    /// Network model.
    pub net: NetConfig,
    /// Initial capacity of the event queue. Large populations schedule
    /// thousands of events per tick; pre-sizing the heap from a
    /// population-derived estimate avoids repeated regrowth during the
    /// opening dissemination burst.
    pub queue_capacity: usize,
}

impl SimConfig {
    /// Sets the master seed (builder style).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the network model (builder style).
    #[must_use]
    pub fn net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Pre-sizes the event queue (builder style).
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }
}

/// The discrete-event simulator.
///
/// Generic over a single [`Process`] type `P`; heterogeneous systems (e.g.
/// DataDroplets' two layers) compose their behaviours into one enum-driven
/// process type.
pub struct Sim<P: Process> {
    nodes: BTreeMap<NodeId, Slot<P>>,
    queue: BinaryHeap<Scheduled<P::Msg>>,
    now: Time,
    seq: u64,
    seed: u64,
    /// Network model; mutable so experiments can partition/heal mid-run.
    pub net: NetConfig,
    metrics: Metrics,
    net_rng: SmallRng,
    effects: Vec<Effect<P::Msg>>,
    /// Bumped on every actual liveness transition (down, up, removal).
    /// [`Sim::is_alive`] answers can only change when this does — the
    /// companion of [`NetConfig::topology_epoch`] for sweep gating.
    liveness_epoch: u64,
    /// Span sink handed to every callback while a traced run is active.
    tracer: Option<Box<dyn Tracer>>,
    /// Telemetry sampler polled by the run loop while instrumentation is
    /// active, plus the virtual time the next sample falls due.
    sampler: Option<Box<dyn Sampler<P>>>,
    next_sample: Time,
}

impl<P: Process> Sim<P> {
    /// Creates an empty simulation.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        Sim {
            nodes: BTreeMap::new(),
            queue: BinaryHeap::with_capacity(config.queue_capacity),
            now: Time::ZERO,
            seq: 0,
            seed: config.seed,
            net: config.net,
            metrics: Metrics::new(),
            net_rng: stream_rng(config.seed, u64::MAX),
            effects: Vec::new(),
            liveness_epoch: 0,
            tracer: None,
            sampler: None,
            next_sample: Time::ZERO,
        }
    }

    /// Adds a node and schedules its [`Process::on_start`] at the current
    /// time. Returns `false` (and ignores the call) if the id exists.
    pub fn add_node(&mut self, id: NodeId, proc: P) -> bool {
        if self.nodes.contains_key(&id) {
            return false;
        }
        self.nodes
            .insert(id, Slot { proc, rng: stream_rng(self.seed, id.0), alive: true, epoch: 0 });
        self.push(self.now, Event::Start(id));
        true
    }

    /// Number of nodes ever added and not removed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the simulation has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to a node's process state.
    #[must_use]
    pub fn node(&self, id: NodeId) -> Option<&P> {
        self.nodes.get(&id).map(|s| &s.proc)
    }

    /// Mutable access to a node's process state (for harness inspection and
    /// fault injection — protocols themselves must not use this).
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut P> {
        self.nodes.get_mut(&id).map(|s| &mut s.proc)
    }

    /// Whether the node is currently up.
    #[must_use]
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.nodes.get(&id).is_some_and(|s| s.alive)
    }

    /// All node ids, in order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.keys().copied()
    }

    /// Ids of nodes currently up, in order.
    pub fn alive_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().filter(|(_, s)| s.alive).map(|(id, _)| *id)
    }

    /// Number of nodes currently up.
    #[must_use]
    pub fn alive_count(&self) -> usize {
        self.nodes.values().filter(|s| s.alive).count()
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Shared metrics sink.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable metrics sink (harness use).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Installs a span sink: every subsequent callback sees it through
    /// [`Ctx::tracer`] until [`Sim::take_tracer`] removes it. Replaces any
    /// sink already installed.
    pub fn set_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.tracer = Some(tracer);
    }

    /// Removes and returns the installed span sink (downcast it via
    /// [`Tracer::into_any`] to recover the concrete recorder).
    pub fn take_tracer(&mut self) -> Option<Box<dyn Tracer>> {
        self.tracer.take()
    }

    /// The installed span sink, if any (harness-side span bookkeeping —
    /// e.g. opening an operation's root span at injection time).
    pub fn tracer_mut(&mut self) -> Option<&mut (dyn Tracer + 'static)> {
        self.tracer.as_deref_mut()
    }

    /// Whether a span sink is currently installed.
    #[must_use]
    pub fn tracer_installed(&self) -> bool {
        self.tracer.is_some()
    }

    /// Installs a telemetry sampler: the run loop polls it as virtual time
    /// advances, taking one sample every [`Sampler::period`] ticks starting
    /// from the current time. Replaces any sampler already installed.
    pub fn set_sampler(&mut self, sampler: Box<dyn Sampler<P>>) {
        self.next_sample = self.now;
        self.sampler = Some(sampler);
    }

    /// Removes and returns the installed sampler (downcast it via
    /// [`Sampler::into_any`] to recover the concrete collector).
    pub fn take_sampler(&mut self) -> Option<Box<dyn Sampler<P>>> {
        self.sampler.take()
    }

    /// Whether a telemetry sampler is currently installed.
    #[must_use]
    pub fn sampler_installed(&self) -> bool {
        self.sampler.is_some()
    }

    /// Depth of the event queue (scheduled deliveries, timers and
    /// environment events) — the engine-level backlog gauge.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The payloads of every message currently in flight (scheduled for
    /// delivery but not yet delivered), in no particular order.
    pub fn in_flight_msgs(&self) -> impl Iterator<Item = &P::Msg> + '_ {
        self.queue.iter().filter_map(|s| match &s.event {
            Event::Deliver { msg, .. } => Some(msg),
            _ => None,
        })
    }

    /// Polls the installed sampler, taking a sample when one is due. The
    /// sampler is detached while it runs (the field is `None`), so it gets
    /// a clean immutable view of the simulation.
    fn poll_sampler(&mut self) {
        if self.sampler.is_none() || self.now < self.next_sample {
            return;
        }
        let Some(mut s) = self.sampler.take() else { return };
        s.sample(self);
        self.next_sample = self.now + Duration(s.period().max(1));
        self.sampler = Some(s);
    }

    /// Takes the node down *now* (transient failure: state kept, timers and
    /// in-flight messages to it lost).
    pub fn kill(&mut self, id: NodeId) {
        self.push(self.now, Event::Down(id));
    }

    /// Brings a transiently failed node back up *now*.
    pub fn revive(&mut self, id: NodeId) {
        self.push(self.now, Event::Up(id));
    }

    /// Permanently removes the node and its state (disk loss).
    pub fn remove(&mut self, id: NodeId) -> Option<P> {
        let removed = self.nodes.remove(&id).map(|s| s.proc);
        if removed.is_some() {
            self.liveness_epoch += 1;
        }
        removed
    }

    /// Monotonic counter of liveness transitions (a node actually going
    /// down, coming up, or being removed). [`Sim::is_alive`] answers are
    /// stable while this is unchanged, so whole-population sweeps can be
    /// skipped between transitions.
    #[must_use]
    pub fn liveness_epoch(&self) -> u64 {
        self.liveness_epoch
    }

    /// Schedules a transient failure at absolute time `at`.
    pub fn schedule_down(&mut self, at: Time, id: NodeId) {
        self.push(at.max(self.now), Event::Down(id));
    }

    /// Schedules a recovery at absolute time `at`.
    pub fn schedule_up(&mut self, at: Time, id: NodeId) {
        self.push(at.max(self.now), Event::Up(id));
    }

    /// Schedules a network-model mutation at absolute time `at` (clamped
    /// to now). Messages routed before `at` see the old model; messages
    /// routed after see the new one — the environment timeline of a
    /// scenario is just a list of these.
    ///
    /// # Panics
    /// [`NetChange::DropProb`] panics at apply time if the probability is
    /// outside `0.0..=1.0`.
    pub fn schedule_net(&mut self, at: Time, change: NetChange) {
        self.push(at.max(self.now), Event::Net(change));
    }

    /// Injects a message from outside the simulated population (e.g. a
    /// client). Delivered with normal network latency; `from` may be any id,
    /// including one not in the simulation.
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: P::Msg) {
        self.route_send(from, to, msg);
    }

    /// Runs until the event queue is empty. Suitable for terminating
    /// protocols (no periodic timers); otherwise use [`Sim::run_until`].
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until virtual time reaches `deadline` (events at exactly
    /// `deadline` are processed) or the queue empties.
    pub fn run_until(&mut self, deadline: Time) {
        while let Some(head) = self.queue.peek() {
            if head.at > deadline {
                break;
            }
            self.step();
        }
        self.now = self.now.max(deadline);
        self.poll_sampler();
    }

    /// Runs for `d` more ticks of virtual time.
    pub fn run_for(&mut self, d: Duration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Processes the single earliest event. Returns `false` when the queue
    /// is empty.
    pub fn step(&mut self) -> bool {
        let Some(Scheduled { at, event, .. }) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.poll_sampler();
        match event {
            Event::Start(id) => self.dispatch(id, Dispatch::Start),
            Event::Deliver { to, from, msg } => {
                if self.nodes.get(&to).is_some_and(|s| s.alive) {
                    self.metrics.incr("net.delivered");
                    self.dispatch(to, Dispatch::Msg(from, msg));
                } else {
                    self.metrics.incr("net.dropped_down");
                }
            }
            Event::Timer { node, tag, epoch } => {
                if self.nodes.get(&node).is_some_and(|s| s.alive && s.epoch == epoch) {
                    self.dispatch(node, Dispatch::Timer(tag));
                }
            }
            Event::Down(id) => {
                if let Some(slot) = self.nodes.get_mut(&id) {
                    if slot.alive {
                        slot.alive = false;
                        slot.epoch += 1;
                        slot.proc.on_down();
                        self.liveness_epoch += 1;
                        self.metrics.incr("churn.down");
                    }
                }
            }
            Event::Up(id) => {
                let was_down = self.nodes.get(&id).is_some_and(|s| !s.alive);
                if was_down {
                    if let Some(slot) = self.nodes.get_mut(&id) {
                        slot.alive = true;
                    }
                    self.liveness_epoch += 1;
                    self.metrics.incr("churn.up");
                    self.dispatch(id, Dispatch::Up);
                }
            }
            Event::Net(change) => {
                match change {
                    NetChange::Latency(latency) => self.net.latency = latency,
                    NetChange::DropProb(p) => {
                        assert!((0.0..=1.0).contains(&p), "drop probability must be in [0,1]");
                        self.net.drop_prob = p;
                    }
                    NetChange::Partition(id, colour) => self.net.set_partition(id, colour),
                    NetChange::Heal => self.net.heal_partitions(),
                }
                self.metrics.incr("net.reconfigured");
            }
        }
        true
    }

    fn dispatch(&mut self, id: NodeId, kind: Dispatch<P::Msg>) {
        debug_assert!(self.effects.is_empty());
        let mut effects = std::mem::take(&mut self.effects);
        let now = self.now;
        {
            let Some(slot) = self.nodes.get_mut(&id) else {
                self.effects = effects;
                return;
            };
            if !slot.alive {
                self.effects = effects;
                return;
            }
            let mut ctx = Ctx {
                id,
                now,
                rng: &mut slot.rng,
                metrics: &mut self.metrics,
                effects: &mut effects,
                tracer: self.tracer.as_deref_mut(),
            };
            match kind {
                Dispatch::Start => slot.proc.on_start(&mut ctx),
                Dispatch::Msg(from, msg) => slot.proc.on_message(&mut ctx, from, msg),
                Dispatch::Timer(tag) => slot.proc.on_timer(&mut ctx, tag),
                Dispatch::Up => slot.proc.on_up(&mut ctx),
            }
        }
        let epoch = self.nodes.get(&id).map_or(0, |s| s.epoch);
        for eff in effects.drain(..) {
            match eff {
                Effect::Send { to, msg } => self.route_send(id, to, msg),
                Effect::Timer { delay, tag } => {
                    let at = now + delay;
                    self.push(at, Event::Timer { node: id, tag, epoch });
                }
            }
        }
        self.effects = effects;
    }

    fn route_send(&mut self, from: NodeId, to: NodeId, msg: P::Msg) {
        self.metrics.incr("net.sent");
        self.seq += 1;
        let seq = self.seq;
        match self.net.route(&mut self.net_rng, self.seed, from, to, seq) {
            Some(lat) => {
                let at = self.now + Duration(lat);
                self.push(at, Event::Deliver { to, from, msg });
            }
            None => self.metrics.incr("net.dropped"),
        }
    }

    fn push(&mut self, at: Time, event: Event<P::Msg>) {
        self.seq += 1;
        self.queue.push(Scheduled { at, seq: self.seq, event });
    }
}

enum Dispatch<M> {
    Start,
    Msg(NodeId, M),
    Timer(TimerTag),
    Up,
}

/// Effect captured by [`with_adhoc_ctx`]: what the process asked the host
/// to do. Used by the threaded runtime and by sans-IO adapter tests.
#[derive(Debug, Clone)]
pub enum AdhocEffect<M> {
    /// Send `msg` to `to`.
    Send {
        /// Destination node.
        to: NodeId,
        /// Payload.
        msg: M,
    },
    /// Arm a one-shot timer.
    Timer {
        /// Delay until the timer fires.
        delay: Duration,
        /// Application tag.
        tag: TimerTag,
    },
}

/// Runs `f` with a [`Ctx`] that is not attached to a simulator, returning
/// `f`'s result and the effects the process emitted.
///
/// This lets alternative hosts (the threaded [`crate::runtime`], property
/// tests of protocol adapters) drive [`Process`] implementations with
/// identical semantics to the discrete-event engine.
pub fn with_adhoc_ctx<M, R>(
    id: NodeId,
    now: Time,
    rng: &mut SmallRng,
    metrics: &mut Metrics,
    f: impl FnOnce(&mut Ctx<'_, M>) -> R,
) -> (R, Vec<AdhocEffect<M>>) {
    let mut effects: Vec<Effect<M>> = Vec::new();
    let r = {
        let mut ctx = Ctx { id, now, rng, metrics, effects: &mut effects, tracer: None };
        f(&mut ctx)
    };
    let out = effects
        .into_iter()
        .map(|e| match e {
            Effect::Send { to, msg } => AdhocEffect::Send { to, msg },
            Effect::Timer { delay, tag } => AdhocEffect::Timer { delay, tag },
        })
        .collect();
    (r, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::LatencyModel;
    use rand::Rng;

    /// Flooding process used across the kernel tests: first message (or
    /// start on node 0) floods all ids below `n`.
    struct Flood {
        n: u64,
        infected: bool,
        deliveries: u32,
    }

    impl Flood {
        fn new(n: u64) -> Self {
            Flood { n, infected: false, deliveries: 0 }
        }
    }

    impl Process for Flood {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            if ctx.id() == NodeId(0) {
                self.infected = true;
                for i in 1..self.n {
                    ctx.send(NodeId(i), ());
                }
            }
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _from: NodeId, _msg: ()) {
            self.infected = true;
            self.deliveries += 1;
        }
    }

    fn flood_sim(n: u64, cfg: SimConfig) -> Sim<Flood> {
        let mut sim = Sim::new(cfg);
        for i in 0..n {
            sim.add_node(NodeId(i), Flood::new(n));
        }
        sim
    }

    #[test]
    fn messages_reach_all_nodes() {
        let mut sim = flood_sim(10, SimConfig::default());
        sim.run();
        for id in 0..10 {
            assert!(sim.node(NodeId(id)).unwrap().infected, "node {id} not infected");
        }
        assert_eq!(sim.metrics().counter("net.sent"), 9);
        assert_eq!(sim.metrics().counter("net.delivered"), 9);
    }

    #[test]
    fn time_advances_by_latency() {
        let cfg = SimConfig::default().net(NetConfig::new().latency(LatencyModel::Constant(7)));
        let mut sim = flood_sim(3, cfg);
        sim.run();
        assert_eq!(sim.now(), Time(7));
    }

    #[test]
    fn dead_nodes_do_not_receive() {
        let mut sim = flood_sim(4, SimConfig::default());
        sim.kill(NodeId(2));
        sim.run();
        assert!(!sim.node(NodeId(2)).unwrap().infected);
        assert_eq!(sim.metrics().counter("net.dropped_down"), 1);
    }

    #[test]
    fn revive_restores_delivery_and_counts_churn() {
        struct Echo;
        impl Process for Echo {
            type Msg = u8;
            fn on_message(&mut self, ctx: &mut Ctx<'_, u8>, from: NodeId, m: u8) {
                if m == 1 {
                    ctx.send(from, 2);
                }
            }
        }
        let mut sim: Sim<Echo> = Sim::new(SimConfig::default());
        sim.add_node(NodeId(0), Echo);
        sim.add_node(NodeId(1), Echo);
        sim.kill(NodeId(1));
        sim.run();
        assert!(!sim.is_alive(NodeId(1)));
        sim.revive(NodeId(1));
        sim.inject(NodeId(0), NodeId(1), 1);
        sim.run();
        assert!(sim.is_alive(NodeId(1)));
        assert_eq!(sim.metrics().counter("churn.down"), 1);
        assert_eq!(sim.metrics().counter("churn.up"), 1);
        assert_eq!(sim.metrics().counter("net.delivered"), 2); // inject + echo
    }

    #[test]
    fn timers_fire_in_order_and_can_rearm() {
        struct Ticker {
            fired: Vec<u64>,
            limit: usize,
        }
        impl Process for Ticker {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(Duration(10), TimerTag(1));
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, tag: TimerTag) {
                assert_eq!(tag, TimerTag(1));
                self.fired.push(ctx.now().0);
                if self.fired.len() < self.limit {
                    ctx.set_timer(Duration(10), TimerTag(1));
                }
            }
        }
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(NodeId(0), Ticker { fired: vec![], limit: 3 });
        sim.run();
        assert_eq!(sim.node(NodeId(0)).unwrap().fired, vec![10, 20, 30]);
    }

    #[test]
    fn crash_discards_pending_timers() {
        struct Ticker {
            fired: u32,
        }
        impl Process for Ticker {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(Duration(10), TimerTag(0));
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, ()>, _: TimerTag) {
                self.fired += 1;
            }
        }
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(NodeId(0), Ticker { fired: 0 });
        sim.schedule_down(Time(5), NodeId(0));
        sim.schedule_up(Time(6), NodeId(0));
        sim.run_until(Time(100));
        // Timer armed at t0 for t10 was discarded by the crash at t5; node
        // did not re-arm in on_up, so nothing fires.
        assert_eq!(sim.node(NodeId(0)).unwrap().fired, 0);
    }

    #[test]
    fn on_up_can_rearm_timers() {
        struct Ticker {
            fired: u32,
        }
        impl Process for Ticker {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(Duration(10), TimerTag(0));
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, ()>, _: TimerTag) {
                self.fired += 1;
            }
            fn on_up(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(Duration(10), TimerTag(0));
            }
        }
        let mut sim = Sim::new(SimConfig::default());
        sim.add_node(NodeId(0), Ticker { fired: 0 });
        sim.schedule_down(Time(5), NodeId(0));
        sim.schedule_up(Time(6), NodeId(0));
        sim.run_until(Time(100));
        assert_eq!(sim.node(NodeId(0)).unwrap().fired, 1);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = flood_sim(2, SimConfig::default());
        sim.run_until(Time(0));
        // start events at t0 processed, delivery at t>=1 pending
        assert!(!sim.node(NodeId(1)).unwrap().infected);
        sim.run_until(Time(100));
        assert!(sim.node(NodeId(1)).unwrap().infected);
        assert_eq!(sim.now(), Time(100));
    }

    #[test]
    fn duplicate_add_is_rejected() {
        let mut sim = flood_sim(1, SimConfig::default());
        assert!(!sim.add_node(NodeId(0), Flood::new(1)));
        assert_eq!(sim.len(), 1);
    }

    #[test]
    fn remove_is_permanent() {
        let mut sim = flood_sim(3, SimConfig::default());
        let removed = sim.remove(NodeId(1));
        assert!(removed.is_some());
        assert!(sim.node(NodeId(1)).is_none());
        assert!(!sim.is_alive(NodeId(1)));
        sim.run();
        assert_eq!(sim.len(), 2);
    }

    #[test]
    fn same_seed_replays_identically() {
        struct Chatter {
            sum: u64,
        }
        impl Process for Chatter {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
                let v: u64 = ctx.rng().gen_range(0..100);
                let peer = NodeId(ctx.rng().gen_range(0..8));
                ctx.send(peer, v);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, u64>, _: NodeId, m: u64) {
                self.sum = self.sum.wrapping_mul(31).wrapping_add(m);
            }
        }
        let run = |seed| {
            let cfg = SimConfig::default().seed(seed).net(
                NetConfig::new().latency(LatencyModel::Uniform { min: 1, max: 9 }).drop_prob(0.1),
            );
            let mut sim: Sim<Chatter> = Sim::new(cfg);
            for i in 0..8 {
                sim.add_node(NodeId(i), Chatter { sum: 0 });
            }
            sim.run();
            (0..8).map(|i| sim.node(NodeId(i)).unwrap().sum).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn alive_iteration_reflects_kills() {
        let mut sim = flood_sim(5, SimConfig::default());
        sim.kill(NodeId(3));
        sim.run();
        let alive: Vec<NodeId> = sim.alive_ids().collect();
        assert_eq!(alive, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(4)]);
        assert_eq!(sim.alive_count(), 4);
    }

    #[test]
    fn scheduled_net_changes_apply_at_their_time() {
        struct Pinger;
        impl Process for Pinger {
            type Msg = ();
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
        }
        let cfg = SimConfig::default().net(NetConfig::new().latency(LatencyModel::Constant(1)));
        let mut sim: Sim<Pinger> = Sim::new(cfg);
        sim.add_node(NodeId(0), Pinger);
        sim.add_node(NodeId(1), Pinger);
        // Partition node 1 away at t=10, heal at t=30, stretch latency at 40.
        sim.schedule_net(Time(10), NetChange::Partition(NodeId(1), 1));
        sim.schedule_net(Time(30), NetChange::Heal);
        sim.schedule_net(Time(40), NetChange::Latency(LatencyModel::Constant(9)));
        sim.run_until(Time(5));
        sim.inject(NodeId(0), NodeId(1), ());
        sim.run_until(Time(20));
        assert_eq!(sim.metrics().counter("net.delivered"), 1, "pre-partition send lands");
        sim.inject(NodeId(0), NodeId(1), ());
        sim.run_until(Time(29));
        assert_eq!(sim.metrics().counter("net.dropped"), 1, "partitioned send dropped");
        sim.run_until(Time(35));
        sim.inject(NodeId(0), NodeId(1), ());
        sim.run_until(Time(39));
        assert_eq!(sim.metrics().counter("net.delivered"), 2, "healed send lands");
        sim.run_until(Time(45));
        sim.inject(NodeId(0), NodeId(1), ());
        sim.run();
        assert_eq!(sim.now(), Time(45 + 9), "new latency model governs the last send");
        assert_eq!(sim.metrics().counter("net.reconfigured"), 3);
    }

    #[test]
    fn scheduled_drop_prob_spike_loses_messages_then_clears() {
        let mut sim: Sim<Flood> = Sim::new(SimConfig::default());
        // Scheduled before the nodes join so the spike precedes the flood.
        sim.schedule_net(Time(0), NetChange::DropProb(1.0));
        sim.schedule_net(Time(50), NetChange::DropProb(0.0));
        for i in 0..2 {
            sim.add_node(NodeId(i), Flood::new(2));
        }
        sim.run_until(Time(40));
        assert_eq!(sim.metrics().counter("net.dropped"), 1, "total loss window");
        sim.run_until(Time(60));
        sim.inject(NodeId(0), NodeId(1), ());
        sim.run();
        assert!(sim.node(NodeId(1)).unwrap().infected, "after the spike, traffic flows");
    }

    #[test]
    fn partitioned_nodes_cannot_communicate_until_healed() {
        let mut sim = flood_sim(2, SimConfig::default());
        sim.net.set_partition(NodeId(1), 1);
        sim.run();
        assert!(!sim.node(NodeId(1)).unwrap().infected);
        assert_eq!(sim.metrics().counter("net.dropped"), 1);
        sim.net.heal_partitions();
        sim.inject(NodeId(0), NodeId(1), ());
        sim.run();
        assert!(sim.node(NodeId(1)).unwrap().infected);
    }
}
