//! The campaign driver: sweep a seed range, census every verdict, shrink
//! the findings to minimal witnesses, and summarise the whole run as a
//! machine-readable JSON artifact (`BENCH_fuzz.json` in CI).

use crate::config::FuzzConfig;
use crate::gen::{generate, Case};
use crate::run::{run_case, Verdict};
use crate::shrink::{shrink, ShrinkStats};
use dd_core::ViolationKind;
use std::time::{Duration, Instant};

/// How a campaign walks the seed space and when it stops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignPlan {
    /// First seed swept.
    pub seed_start: u64,
    /// Seeds attempted (before the wall budget cuts in).
    pub seeds: u64,
    /// Sweep every `stride`-th seed — `shard i of k` soak runs use
    /// `seed_start = base + i`, `stride = k`.
    pub stride: u64,
    /// Wall-clock budget; the sweep stops early (but finishes the current
    /// case and its shrink) once it is spent. `None` means unbounded.
    pub wall_budget: Option<Duration>,
}

impl CampaignPlan {
    /// A plan sweeping `seeds` consecutive seeds from `seed_start`.
    #[must_use]
    pub fn sweep(seed_start: u64, seeds: u64) -> Self {
        CampaignPlan { seed_start, seeds, stride: 1, wall_budget: None }
    }

    /// Builder: stop after `budget` of wall clock.
    #[must_use]
    pub fn budget(mut self, budget: Duration) -> Self {
        self.wall_budget = Some(budget);
        self
    }

    /// Builder: shard `i` of `k` — offsets the start and strides by `k`.
    ///
    /// # Panics
    /// Panics if `i >= k` or `k == 0`.
    #[must_use]
    pub fn shard(mut self, i: u64, k: u64) -> Self {
        assert!(k > 0 && i < k, "shard {i}:{k} is not a valid partition");
        self.seed_start += i;
        self.stride = k;
        self.seeds = self.seeds / k + u64::from(i < self.seeds % k);
        self
    }
}

/// One shrunk finding: the seed, what it witnesses, and the minimal repro.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The generator seed that produced the original failing case.
    pub seed: u64,
    /// The preserved verdict.
    pub verdict: Verdict,
    /// Shrink bookkeeping (sizes, evaluations).
    pub stats: ShrinkStats,
    /// The minimal case.
    pub case: Case,
}

impl Finding {
    /// The runnable Rust repro snippet of the minimal case.
    #[must_use]
    pub fn snippet(&self) -> String {
        self.case.snippet()
    }
}

/// Everything a campaign learned, censused.
#[derive(Debug, Clone)]
pub struct CampaignSummary {
    /// Seeds actually swept (≤ planned when the wall budget cut in).
    pub seeds_run: u64,
    /// Runs with a clean audit.
    pub clean: u64,
    /// Runs whose only violations were durability warnings.
    pub durability: u64,
    /// Runs with at least one safety violation.
    pub safety: u64,
    /// Runs that panicked inside the engine.
    pub panics: u64,
    /// Generated cases rejected by validation (generator bug if ever > 0).
    pub rejected: u64,
    /// `(kind, violations)` across all runs, in first-appearance order.
    pub kind_census: Vec<(ViolationKind, u64)>,
    /// Shrunk findings (every safety/panic finding, plus the first
    /// [`FuzzConfig::shrink_findings`] durability findings).
    pub findings: Vec<Finding>,
    /// Wall-clock the sweep took.
    pub elapsed: Duration,
}

impl CampaignSummary {
    /// Scenarios executed per wall-clock second.
    #[must_use]
    pub fn scenarios_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.seeds_run as f64 / secs
        }
    }

    /// Mean shrink ratio over the shrunk findings (1.0 when none).
    #[must_use]
    pub fn mean_shrink_ratio(&self) -> f64 {
        if self.findings.is_empty() {
            1.0
        } else {
            self.findings.iter().map(|f| f.stats.ratio()).sum::<f64>() / self.findings.len() as f64
        }
    }

    /// Findings that must fail a CI campaign: safety violations or panics
    /// that survived shrinking.
    #[must_use]
    pub fn safety_findings(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.verdict.is_safety_failure()).collect()
    }

    /// The summary as a hand-rolled JSON document (the workspace has no
    /// serde), stable enough for CI artifact diffing.
    #[must_use]
    pub fn to_json(&self, config_name: &str) -> String {
        let census: Vec<String> = self
            .kind_census
            .iter()
            .map(|(k, n)| format!("    {{\"kind\": \"{k}\", \"violations\": {n}}}"))
            .collect();
        let findings: Vec<String> = self
            .findings
            .iter()
            .map(|f| {
                let verdict = match f.verdict {
                    Verdict::Violating(kind) => format!("violation:{kind}"),
                    Verdict::Panicked => "panic".to_string(),
                    Verdict::Clean => "clean".to_string(),
                    Verdict::Rejected => "rejected".to_string(),
                };
                format!(
                    "    {{\"seed\": {}, \"verdict\": \"{}\", \"original_size\": {}, \
                     \"shrunk_size\": {}, \"shrink_ratio\": {:.4}, \"evaluations\": {}, \
                     \"snippet\": {}}}",
                    f.seed,
                    verdict,
                    f.stats.original_size,
                    f.stats.final_size,
                    f.stats.ratio(),
                    f.stats.evaluations,
                    json_string(&f.snippet()),
                )
            })
            .collect();
        format!(
            "{{\n  \"bench\": \"fuzz_campaign\",\n  \"config\": {},\n  \
             \"seeds_run\": {},\n  \"clean\": {},\n  \"durability\": {},\n  \"safety\": {},\n  \
             \"panics\": {},\n  \"rejected\": {},\n  \"scenarios_per_sec\": {:.2},\n  \
             \"mean_shrink_ratio\": {:.4},\n  \"elapsed_ms\": {},\n  \
             \"kind_census\": [\n{}\n  ],\n  \"findings\": [\n{}\n  ]\n}}\n",
            json_string(config_name),
            self.seeds_run,
            self.clean,
            self.durability,
            self.safety,
            self.panics,
            self.rejected,
            self.scenarios_per_sec(),
            self.mean_shrink_ratio(),
            self.elapsed.as_millis(),
            census.join(",\n"),
            findings.join(",\n"),
        )
    }
}

/// A quoted JSON string literal for `s` (escaping via the workspace-wide
/// [`dd_sim::json_escape`], shared with the bench emitters).
fn json_string(s: &str) -> String {
    format!("\"{}\"", dd_sim::json_escape(s))
}

/// Sweeps the plan's seed range under `cfg`: generate → run → classify,
/// shrinking findings per the config's policy (safety violations and
/// panics always; durability warnings up to `cfg.shrink_findings`).
/// Deterministic given the same plan, config and an unbounded budget.
#[must_use]
pub fn run_campaign(cfg: &FuzzConfig, plan: &CampaignPlan) -> CampaignSummary {
    let started = Instant::now();
    let mut summary = CampaignSummary {
        seeds_run: 0,
        clean: 0,
        durability: 0,
        safety: 0,
        panics: 0,
        rejected: 0,
        kind_census: Vec::new(),
        findings: Vec::new(),
        elapsed: Duration::ZERO,
    };
    let mut durability_shrunk = 0u32;
    for i in 0..plan.seeds {
        if let Some(budget) = plan.wall_budget {
            if started.elapsed() >= budget {
                break;
            }
        }
        let seed = plan.seed_start + i * plan.stride;
        let case = generate(cfg, seed);
        let result = run_case(&case);
        summary.seeds_run += 1;
        for (kind, n) in &result.kinds {
            match summary.kind_census.iter_mut().find(|(k, _)| k == kind) {
                Some((_, total)) => *total += n,
                None => summary.kind_census.push((*kind, *n)),
            }
        }
        let shrink_this = match result.verdict {
            Verdict::Clean => {
                summary.clean += 1;
                false
            }
            Verdict::Rejected => {
                summary.rejected += 1;
                false
            }
            Verdict::Panicked => {
                summary.panics += 1;
                true
            }
            Verdict::Violating(kind) if kind.is_safety() => {
                summary.safety += 1;
                true
            }
            Verdict::Violating(_) => {
                summary.durability += 1;
                durability_shrunk += 1;
                durability_shrunk <= cfg.shrink_findings
            }
        };
        if shrink_this {
            let shrunk = shrink(&case, result.verdict, cfg.shrink_budget);
            summary.findings.push(Finding {
                seed,
                verdict: result.verdict,
                stats: shrunk.stats,
                case: shrunk.case,
            });
        }
    }
    summary.elapsed = started.elapsed();
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_partitions_the_seed_space_exactly() {
        let base = CampaignPlan::sweep(100, 10);
        let mut seen = Vec::new();
        for i in 0..3 {
            let plan = base.shard(i, 3);
            for j in 0..plan.seeds {
                seen.push(plan.seed_start + j * plan.stride);
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (100..110).collect::<Vec<u64>>());
    }

    #[test]
    fn json_escaping_survives_snippets() {
        let s = json_string("a \"quoted\"\nline\\end");
        assert_eq!(s, "\"a \\\"quoted\\\"\\nline\\\\end\"");
    }

    #[test]
    fn a_tiny_campaign_censuses_every_seed() {
        let mut cfg = FuzzConfig::smoke();
        cfg.shrink_budget = 10;
        let summary = run_campaign(&cfg, &CampaignPlan::sweep(0, 4));
        assert_eq!(summary.seeds_run, 4);
        assert_eq!(
            summary.clean + summary.durability + summary.safety + summary.panics + summary.rejected,
            4
        );
        assert_eq!(summary.rejected, 0, "generated cases are valid by construction");
        let json = summary.to_json("smoke");
        assert!(json.contains("\"bench\": \"fuzz_campaign\""));
        assert!(json.contains("\"seeds_run\": 4"));
    }
}
