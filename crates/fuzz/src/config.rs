//! The declarative knobs of a fuzz campaign: every bound and weight the
//! generator draws from, plus the shrink and wall-clock budgets.

use dd_core::Placement;
use rand::rngs::SmallRng;
use rand::Rng;

/// An inclusive integer range the generator samples uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bounds {
    /// Smallest value drawn (inclusive).
    pub lo: u64,
    /// Largest value drawn (inclusive).
    pub hi: u64,
}

impl Bounds {
    /// Bounds `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "bounds [{lo}, {hi}] are inverted");
        Bounds { lo, hi }
    }

    /// A degenerate single-value range.
    #[must_use]
    pub fn exactly(v: u64) -> Self {
        Bounds { lo: v, hi: v }
    }

    pub(crate) fn sample(&self, rng: &mut SmallRng) -> u64 {
        if self.lo == self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..=self.hi)
        }
    }
}

/// Relative weights of the fault kinds a generated schedule draws from.
/// A zero weight disables the kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWeights {
    /// Correlated crashes ([`dd_core::Fault::Crash`]), not revived unless
    /// a [`dd_core::Fault::ReviveAll`] is also drawn — the durability
    /// pressure cooker.
    pub crash: u32,
    /// Transient flaps ([`dd_core::Fault::Flap`]).
    pub flap: u32,
    /// Churn storms ([`dd_core::Fault::ChurnBurst`]).
    pub churn_burst: u32,
    /// Soft-layer wipe, always paired with a later rebuild
    /// ([`dd_core::Fault::WipeSoftLayer`] / `RebuildSoftLayer`). Zero in
    /// both stock profiles: a wipe legitimately forfeits the session
    /// guarantees (read-your-writes, read-your-delete) until the rebuild
    /// lands, and the audit's session checkers are not epoch-aware, so
    /// any campaign that draws a wipe rediscovers that documented
    /// limitation as a safety finding — the frozen corpus pins it once
    /// instead. Raise this in a custom config to explore wipe behaviour.
    pub wipe_soft: u32,
    /// Tier-wide revival ([`dd_core::Fault::ReviveAll`]).
    pub revive_all: u32,
}

/// Relative weights of the environment episodes a generated timeline
/// draws from. A zero weight disables the episode kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvWeights {
    /// A latency-model switch ([`dd_core::EnvChange::Latency`]).
    pub latency: u32,
    /// A message-loss spike with recovery
    /// ([`dd_core::EnvChange::DropProb`]).
    pub drop_spike: u32,
    /// A persist-layer partition with heal
    /// ([`dd_core::EnvChange::PartitionPersist`] / `Heal`); at most one
    /// per scenario so generated timelines never overlap partitions.
    pub partition: u32,
}

/// Everything a fuzz campaign can tune: cluster bounds, scenario shape
/// bounds, fault/environment weights, and the shrink budgets. Two stock
/// profiles ship — [`FuzzConfig::smoke`] for the CI tier and
/// [`FuzzConfig::soak`] for long campaigns.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzConfig {
    /// Persist-layer size range.
    pub persist_n: Bounds,
    /// Replication-degree range.
    pub replication: Bounds,
    /// Placements drawn uniformly.
    pub placements: Vec<Placement>,
    /// Serve-phase count (on top of the always-present load phase).
    pub serve_phases: Bounds,
    /// Per-phase duration in ticks.
    pub phase_ticks: Bounds,
    /// Per-phase operation budget.
    pub ops_per_phase: Bounds,
    /// Concurrent sessions per phase.
    pub sessions: Bounds,
    /// Pipeline depth per session.
    pub depth: Bounds,
    /// Items per batched write.
    pub batch: Bounds,
    /// Fault clauses per scenario.
    pub faults: Bounds,
    /// Environment episodes per scenario.
    pub env_episodes: Bounds,
    /// Fault-kind weights.
    pub fault_weights: FaultWeights,
    /// Environment-episode weights.
    pub env_weights: EnvWeights,
    /// Probability (percent) that a trailing idle repair phase is
    /// appended, giving anti-entropy a window before the audit settle.
    pub repair_tail_pct: u32,
    /// Maximum oracle evaluations (full scenario re-runs) one shrink may
    /// spend.
    pub shrink_budget: u32,
    /// How many non-safety (durability-warning) findings per campaign
    /// are shrunk to minimal witnesses; the rest are censused only.
    /// Safety violations and panics are always shrunk.
    pub shrink_findings: u32,
}

impl FuzzConfig {
    /// The CI tier: small clusters and short scenarios so a few hundred
    /// seeds sweep in seconds, with tight shrink budgets.
    #[must_use]
    pub fn smoke() -> Self {
        FuzzConfig {
            persist_n: Bounds::new(8, 20),
            replication: Bounds::new(2, 3),
            placements: vec![
                Placement::RangePartition,
                Placement::Uniform,
                Placement::TagCollocation,
            ],
            serve_phases: Bounds::new(0, 2),
            phase_ticks: Bounds::new(600, 2_500),
            ops_per_phase: Bounds::new(8, 48),
            sessions: Bounds::new(1, 3),
            depth: Bounds::new(1, 8),
            batch: Bounds::new(2, 5),
            faults: Bounds::new(0, 3),
            env_episodes: Bounds::new(0, 2),
            fault_weights: FaultWeights {
                crash: 3,
                flap: 3,
                churn_burst: 2,
                wipe_soft: 0,
                revive_all: 2,
            },
            env_weights: EnvWeights { latency: 2, drop_spike: 2, partition: 3 },
            repair_tail_pct: 50,
            shrink_budget: 80,
            shrink_findings: 2,
        }
    }

    /// The soak profile: larger clusters, longer scenarios, heavier fault
    /// schedules, generous shrink budgets — the long-running campaign the
    /// `dd-fuzz` binary shards across seed ranges.
    #[must_use]
    pub fn soak() -> Self {
        FuzzConfig {
            persist_n: Bounds::new(12, 48),
            replication: Bounds::new(2, 5),
            placements: vec![
                Placement::RangePartition,
                Placement::Uniform,
                Placement::TagCollocation,
            ],
            serve_phases: Bounds::new(1, 3),
            phase_ticks: Bounds::new(1_000, 8_000),
            ops_per_phase: Bounds::new(20, 160),
            sessions: Bounds::new(1, 6),
            depth: Bounds::new(1, 16),
            batch: Bounds::new(2, 8),
            faults: Bounds::new(0, 5),
            env_episodes: Bounds::new(0, 3),
            fault_weights: FaultWeights {
                crash: 3,
                flap: 3,
                churn_burst: 3,
                wipe_soft: 0,
                revive_all: 3,
            },
            env_weights: EnvWeights { latency: 2, drop_spike: 3, partition: 3 },
            repair_tail_pct: 60,
            shrink_budget: 400,
            shrink_findings: 8,
        }
    }
}

pub(crate) fn weighted_pick(rng: &mut SmallRng, weights: &[(u32, usize)]) -> Option<usize> {
    let total: u64 = weights.iter().map(|&(w, _)| u64::from(w)).sum();
    if total == 0 {
        return None;
    }
    let mut roll = rng.gen_range(0..total);
    for &(w, idx) in weights {
        let w = u64::from(w);
        if roll < w {
            return Some(idx);
        }
        roll -= w;
    }
    unreachable!("roll bounded by the weight total")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn bounds_sample_inclusively() {
        let mut rng = SmallRng::seed_from_u64(1);
        let b = Bounds::new(3, 5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = b.sample(&mut rng);
            assert!((3..=5).contains(&v));
            seen.insert(v);
        }
        assert_eq!(seen.len(), 3, "all three values drawn");
        assert_eq!(Bounds::exactly(7).sample(&mut rng), 7);
    }

    #[test]
    fn zero_weights_disable_every_kind() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(weighted_pick(&mut rng, &[(0, 0), (0, 1)]), None);
        for _ in 0..50 {
            assert_eq!(weighted_pick(&mut rng, &[(0, 0), (4, 1)]), Some(1));
        }
    }
}
