//! # dd-fuzz — randomized scenario fuzzing with automatic shrinking
//!
//! The scenario plane (PR 4) made whole experiments *values*; the audit
//! plane (PR 5) made their correctness *checkable*. This crate closes the
//! loop: it **searches** the scenario space for histories the checkers
//! reject, then shrinks each find to a minimal witnessing fault schedule.
//!
//! The pipeline, one seed at a time:
//!
//! 1. **Generate** ([`generate`]): a seeded RNG draws a [`Case`] — cluster
//!    spec (persist size, replication, placement) × audited
//!    [`dd_core::Scenario`] (op mixes × phases × fault schedule ×
//!    environment timeline) — from the declarative bounds and weights of a
//!    [`FuzzConfig`]. Generated cases are valid by construction (episodes
//!    pair spikes with recoveries; partitions never overlap).
//! 2. **Execute** ([`run_case`]): build the cluster, settle, run the
//!    scenario with history capture, classify the outcome as a
//!    [`Verdict`] — clean, violating (with the dominant
//!    [`dd_core::ViolationKind`]), panicked (caught), or rejected.
//! 3. **Shrink** ([`shrink()`]): greedy delta-debugging over the case —
//!    drop faults and environment clauses, drop and shorten phases, halve
//!    op budgets, collapse concurrency, downsize the cluster — accepting
//!    only strictly smaller candidates that reproduce the *same* verdict,
//!    replayed deterministically from the same seed.
//! 4. **Report** ([`run_campaign`]): census verdicts across a seed range,
//!    emit every shrunk finding as a self-contained runnable Rust snippet
//!    ([`Case::snippet`]), and summarise the campaign as JSON
//!    ([`CampaignSummary::to_json`] → `BENCH_fuzz.json`).
//!
//! Two stock profiles: [`FuzzConfig::smoke`] is the CI tier (hundreds of
//! small seeds in seconds, see `tests/smoke.rs`), [`FuzzConfig::soak`] the
//! long campaign behind the `dd-fuzz` binary, which shards seed ranges
//! across parallel invocations (`--shard i:k`).
//!
//! ```
//! use dd_fuzz::{generate, run_case, FuzzConfig, Verdict};
//!
//! let case = generate(&FuzzConfig::smoke(), 42);
//! assert_eq!(case.scenario.validate(), Ok(()));
//! let result = run_case(&case);
//! assert!(matches!(result.verdict, Verdict::Clean | Verdict::Violating(_)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod config;
pub mod gen;
pub mod run;
pub mod shrink;

pub use campaign::{run_campaign, CampaignPlan, CampaignSummary, Finding};
pub use config::{Bounds, EnvWeights, FaultWeights, FuzzConfig};
pub use gen::{generate, Case};
pub use run::{run_case, RunResult, Verdict};
pub use shrink::{shrink, shrink_with, ShrinkStats, Shrunk};
