//! Greedy delta-debugging shrinker: given a violating [`Case`], search
//! for a smaller case with the *same verdict* — same violation kind, or
//! still panicking — by replaying mutated copies deterministically.
//!
//! The passes, applied to fixpoint under an evaluation budget:
//! fault-schedule deltas (drop all, drop one), environment deltas,
//! phase drops, phase shortening (halve ticks), op-budget halving,
//! concurrency collapse (sessions/depth → 1), batch halving, and
//! cluster downsizing (halve `persist_n` toward the replication floor).
//! Every candidate is validated before it is run, so the shrinker never
//! wanders into rejected territory.

use crate::gen::Case;
use crate::run::{run_case, Verdict};
use dd_core::Phase;

/// Bookkeeping of one shrink: how much work it did and how far it got.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Oracle evaluations (full scenario re-runs) spent.
    pub evaluations: u32,
    /// Candidates accepted (each one strictly shrank the case).
    pub accepted: u32,
    /// [`Case::size`] of the original case.
    pub original_size: u64,
    /// [`Case::size`] of the minimal case.
    pub final_size: u64,
}

impl ShrinkStats {
    /// `final_size / original_size` — 1.0 means nothing shrank, 0.1 means
    /// the witness is a tenth of the original.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.original_size == 0 {
            1.0
        } else {
            self.final_size as f64 / self.original_size as f64
        }
    }
}

/// The outcome of a shrink: the minimal witnessing case plus stats.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The smallest case found that still witnesses the target verdict.
    pub case: Case,
    /// How the search went.
    pub stats: ShrinkStats,
}

fn candidates(case: &Case) -> Vec<Case> {
    let mut out = Vec::new();
    let scenario = &case.scenario;

    // Fault-schedule deltas: all gone, then each clause alone removed.
    if !scenario.faults().is_empty() {
        let mut c = case.clone();
        c.scenario.set_faults(Vec::new());
        out.push(c);
        for i in 0..scenario.faults().len() {
            let mut c = case.clone();
            let mut faults = scenario.faults().to_vec();
            faults.remove(i);
            c.scenario.set_faults(faults);
            out.push(c);
        }
    }

    // Environment deltas, same shape.
    if !scenario.env_timeline().is_empty() {
        let mut c = case.clone();
        c.scenario.set_env(Vec::new());
        out.push(c);
        for i in 0..scenario.env_timeline().len() {
            let mut c = case.clone();
            let mut env = scenario.env_timeline().to_vec();
            env.remove(i);
            c.scenario.set_env(env);
            out.push(c);
        }
    }

    // Phase drops (a scenario keeps at least one phase).
    if scenario.phases().len() > 1 {
        for i in 0..scenario.phases().len() {
            let mut c = case.clone();
            let mut phases = scenario.phases().to_vec();
            phases.remove(i);
            c.scenario.set_phases(phases);
            out.push(c);
        }
    }

    // Per-phase value shrinks: shorter, fewer ops, less concurrency.
    for i in 0..scenario.phases().len() {
        let p = &scenario.phases()[i];
        let mut variants: Vec<Phase> = Vec::new();
        if p.ticks() > 200 {
            variants.push(p.clone().with_ticks((p.ticks() / 2).max(200)));
        }
        if let Some(ops) = p.op_budget() {
            if ops > 1 {
                variants.push(p.clone().ops((ops / 2).max(1)));
            }
        }
        if p.session_count() > 1 {
            variants.push(p.clone().sessions(1));
        }
        if p.pipeline_depth() > 1 {
            variants.push(p.clone().depth(1));
        }
        let mix = *p.op_mix();
        if mix.weight_multi_put() > 0 && mix.batch_items() > 1 {
            variants.push(p.clone().mix(mix.batch(mix.batch_items() / 2)));
        }
        for variant in variants {
            let mut c = case.clone();
            let mut phases = scenario.phases().to_vec();
            phases[i] = variant;
            c.scenario.set_phases(phases);
            out.push(c);
        }
    }

    // Cluster downsizing: halve the persist layer toward the replication
    // floor, and relax replication toward 2.
    let floor = u64::from(case.replication).max(2);
    if case.persist_n > floor {
        let mut c = case.clone();
        c.persist_n = (case.persist_n / 2).max(floor);
        out.push(c);
    }
    if case.replication > 2 {
        let mut c = case.clone();
        c.replication = 2;
        out.push(c);
    }

    out
}

/// Shrinks `case` toward the smallest case whose oracle verdict equals
/// `target`, spending at most `budget` oracle evaluations. The oracle is
/// any deterministic `Case → Verdict` function; campaigns pass the real
/// pipeline ([`run_case`]), tests can inject a synthetic bug.
pub fn shrink_with<F>(case: &Case, target: Verdict, budget: u32, mut oracle: F) -> Shrunk
where
    F: FnMut(&Case) -> Verdict,
{
    let original_size = case.size();
    let mut best = case.clone();
    let mut evaluations = 0u32;
    let mut accepted = 0u32;
    'outer: loop {
        let mut improved = false;
        for mut candidate in candidates(&best) {
            if evaluations >= budget {
                break 'outer;
            }
            if candidate.size() >= best.size() || candidate.scenario.validate().is_err() {
                continue;
            }
            evaluations += 1;
            if oracle(&candidate) == target {
                let base = candidate.scenario.name().to_string();
                let name = match base.strip_suffix("-min") {
                    Some(_) => base,
                    None => format!("{base}-min"),
                };
                candidate.scenario.set_name(name);
                best = candidate;
                accepted += 1;
                improved = true;
                // Restart the pass list from the (smaller) new best: the
                // greedy fixpoint loop.
                break;
            }
        }
        if !improved {
            break;
        }
    }
    let final_size = best.size();
    Shrunk { case: best, stats: ShrinkStats { evaluations, accepted, original_size, final_size } }
}

/// Shrinks `case` with the real execution pipeline as the oracle,
/// preserving `target` (the verdict `case` itself produced).
#[must_use]
pub fn shrink(case: &Case, target: Verdict, budget: u32) -> Shrunk {
    shrink_with(case, target, budget, |c| run_case(c).verdict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FuzzConfig;
    use crate::gen::generate;
    use dd_core::{Fault, ViolationKind};

    /// A synthetic bug: the "system" violates Divergence exactly when the
    /// scenario still schedules a Crash fault, budgets at least 8 ops and
    /// keeps at least 8 persist nodes. The shrinker must strip everything
    /// else while keeping those three witnesses alive.
    fn injected_oracle(case: &Case) -> Verdict {
        let has_crash =
            case.scenario.faults().iter().any(|(_, f)| matches!(f, Fault::Crash { .. }));
        let ops: u64 = case.scenario.phases().iter().filter_map(|p| p.op_budget()).sum();
        if has_crash && ops >= 8 && case.persist_n >= 8 {
            Verdict::Violating(ViolationKind::Divergence)
        } else {
            Verdict::Clean
        }
    }

    fn case_with_injected_bug() -> Case {
        // Deterministically find a generated case the injected oracle
        // flags — plenty of smoke seeds schedule a Crash.
        let cfg = FuzzConfig::smoke();
        (0..500)
            .map(|seed| generate(&cfg, seed))
            .find(|c| injected_oracle(c).is_finding() && c.size() >= 60)
            .expect("some smoke seed schedules a crash with >= 8 ops and a meaty size")
    }

    #[test]
    fn shrinker_halves_an_injected_failure_while_preserving_its_kind() {
        let case = case_with_injected_bug();
        let target = injected_oracle(&case);
        let shrunk = shrink_with(&case, target, 500, injected_oracle);
        assert_eq!(injected_oracle(&shrunk.case), target, "kind must be preserved");
        assert_eq!(shrunk.case.scenario.validate(), Ok(()), "minimal case must stay valid");
        assert!(
            shrunk.stats.ratio() <= 0.5,
            "expected >= 50% reduction, got {} -> {} (ratio {:.2})",
            shrunk.stats.original_size,
            shrunk.stats.final_size,
            shrunk.stats.ratio()
        );
        // The witnesses the oracle needs must survive verbatim.
        assert!(shrunk
            .case
            .scenario
            .faults()
            .iter()
            .any(|(_, f)| matches!(f, Fault::Crash { .. })));
        let ops: u64 = shrunk.case.scenario.phases().iter().filter_map(|p| p.op_budget()).sum();
        assert!(ops >= 8, "ops shrank below the witness threshold");
        assert!(shrunk.case.persist_n >= 8);
        assert!(shrunk.case.scenario.name().ends_with("-min"));
    }

    #[test]
    fn shrinking_a_clean_case_is_a_noop_against_a_clean_target() {
        let case = generate(&FuzzConfig::smoke(), 1);
        let shrunk = shrink_with(&case, Verdict::Panicked, 40, |_| Verdict::Clean);
        assert_eq!(shrunk.case, case, "no candidate matches an impossible target");
        assert_eq!(shrunk.stats.accepted, 0);
    }

    #[test]
    fn budget_caps_oracle_evaluations() {
        let case = case_with_injected_bug();
        let shrunk = shrink_with(&case, injected_oracle(&case), 3, injected_oracle);
        assert!(shrunk.stats.evaluations <= 3);
    }
}
