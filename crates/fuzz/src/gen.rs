//! Seeded case generation: one `u64` seed → one [`Case`] (cluster spec ×
//! audited [`Scenario`]), valid by construction and byte-identically
//! reproducible.

use crate::config::{weighted_pick, Bounds, FuzzConfig};
use dd_core::{
    ClusterConfig, EnvChange, Fault, OpMix, Phase, Placement, Scenario, Tier, WorkloadKind,
};
use dd_sim::churn::ChurnModel;
use dd_sim::rng::stream_rng;
use dd_sim::LatencyModel;
use rand::rngs::SmallRng;
use rand::Rng;

/// RNG stream tag separating case generation from every other consumer of
/// the shared seed space.
const GEN_STREAM: u64 = 0xF022_5EED;

/// One fuzz case: the cluster under test plus the audited scenario thrown
/// at it. A full value type — the shrinker clones and mutates cases, and
/// equality is what "same repro" means.
#[derive(Debug, Clone, PartialEq)]
pub struct Case {
    /// The generator seed this case was drawn from (also the cluster and
    /// scenario seed, so one number replays everything).
    pub seed: u64,
    /// Persistent-layer size.
    pub persist_n: u64,
    /// Replication degree.
    pub replication: u32,
    /// Placement strategy.
    pub placement: Placement,
    /// The audited scenario.
    pub scenario: Scenario,
}

impl Case {
    /// The cluster configuration this case runs against.
    #[must_use]
    pub fn cluster_config(&self) -> ClusterConfig {
        ClusterConfig::small()
            .persist_n(self.persist_n)
            .replication(self.replication)
            .placement(self.placement)
    }

    /// The shrinker's size metric: total op budget plus fault clauses
    /// plus environment clauses plus persist nodes. Every accepted shrink
    /// move strictly decreases it.
    #[must_use]
    pub fn size(&self) -> u64 {
        let ops: u64 = self.scenario.phases().iter().filter_map(Phase::op_budget).sum();
        ops + self.scenario.faults().len() as u64
            + self.scenario.env_timeline().len() as u64
            + self.scenario.phases().len() as u64
            + self.persist_n
    }

    /// The case as a self-contained, runnable Rust snippet — the repro
    /// artifact emitted for every shrunk finding.
    #[must_use]
    pub fn snippet(&self) -> String {
        format!(
            "// dd-fuzz case, seed {seed} (size {size})\n\
             let config = ClusterConfig::small()\n    \
             .persist_n({n})\n    .replication({r})\n    .placement(Placement::{p:?});\n\
             let mut cluster = Cluster::new(config, {seed});\n\
             cluster.settle();\n\
             let scenario = {scenario};\n\
             let report = cluster.run_scenario(&scenario);\n",
            seed = self.seed,
            size = self.size(),
            n = self.persist_n,
            r = self.replication,
            p = self.placement,
            scenario = self.scenario,
        )
    }
}

fn sample_workload(rng: &mut SmallRng) -> WorkloadKind {
    match rng.gen_range(0..4u8) {
        0 => WorkloadKind::Uniform,
        1 => WorkloadKind::NormalAttr {
            mean: f64::from(rng.gen_range(0..1_000u32)),
            std_dev: f64::from(rng.gen_range(1..100u32)),
        },
        2 => WorkloadKind::ZipfKeys {
            keys: rng.gen_range(32..=512),
            exponent: f64::from(rng.gen_range(80..=140u32)) / 100.0,
        },
        _ => WorkloadKind::SocialFeed { users: rng.gen_range(4..=64) },
    }
}

fn sample_mix(rng: &mut SmallRng, cfg: &FuzzConfig, writes_only: bool) -> OpMix {
    let batch = cfg.batch.sample(rng) as usize;
    if writes_only {
        let mut mix = OpMix::idle().put(3);
        if rng.gen_bool(0.4) {
            mix = mix.multi_put(1).batch(batch);
        }
        return mix;
    }
    let mut mix = OpMix::idle().get(rng.gen_range(1..=4)).put(rng.gen_range(0..=2));
    if rng.gen_bool(0.3) {
        mix = mix.multi_get(1);
    }
    if rng.gen_bool(0.2) {
        mix = mix.delete(1);
    }
    if rng.gen_bool(0.2) {
        mix = mix.scan(1);
    }
    if rng.gen_bool(0.2) {
        mix = mix.multi_put(1).batch(batch);
    }
    mix
}

fn sample_fault(rng: &mut SmallRng, cfg: &FuzzConfig, persist_n: u64) -> Fault {
    let w = cfg.fault_weights;
    let table =
        [(w.crash, 0usize), (w.flap, 1), (w.churn_burst, 2), (w.wipe_soft, 3), (w.revive_all, 4)];
    // The caller only asks for faults when at least one weight is nonzero.
    let pick = weighted_pick(rng, &table).expect("nonzero fault weight");
    // Victim counts stay below the tier size so a single clause cannot
    // take the whole layer down (the shrinker may still compose that).
    let max_victims = (persist_n / 2).max(1) as usize;
    match pick {
        0 => Fault::Crash { tier: Tier::Persist, count: rng.gen_range(1..=max_victims) },
        1 => Fault::Flap {
            tier: Tier::Persist,
            count: rng.gen_range(1..=max_victims),
            down_for: rng.gen_range(100..=1_200),
        },
        2 => Fault::ChurnBurst {
            tier: Tier::Persist,
            model: ChurnModel {
                failure_rate: f64::from(rng.gen_range(1..=30u32)) / 1_000.0,
                period: rng.gen_range(200..=1_500),
                mean_downtime: rng.gen_range(200..=2_000),
                permanent_prob: f64::from(rng.gen_range(0..=20u32)) / 100.0,
            },
            span: rng.gen_range(300..=1_500),
        },
        3 => Fault::WipeSoftLayer,
        _ => Fault::ReviveAll { tier: Tier::Persist },
    }
}

/// Generates the case for `seed` under `cfg`. Deterministic: same config,
/// same seed — same case, and the scenario it carries validates cleanly
/// (the generator pairs loss spikes with recoveries and never overlaps
/// partitions).
#[must_use]
pub fn generate(cfg: &FuzzConfig, seed: u64) -> Case {
    let rng = &mut stream_rng(seed, GEN_STREAM);

    let persist_n = cfg.persist_n.sample(rng).max(1);
    let replication = cfg.replication.sample(rng).clamp(1, persist_n) as u32;
    let placement = if cfg.placements.is_empty() {
        Placement::RangePartition
    } else {
        cfg.placements[rng.gen_range(0..cfg.placements.len())]
    };
    let workload = sample_workload(rng);

    // Workload program: a write-heavy load phase, then serve phases of
    // mixed traffic, then (sometimes) an idle repair tail that gives
    // anti-entropy a window before the audit settle.
    let mut phases = Vec::new();
    phases.push(
        Phase::new("load", cfg.phase_ticks.sample(rng))
            .mix(sample_mix(rng, cfg, true))
            .sessions(cfg.sessions.sample(rng) as usize)
            .depth(cfg.depth.sample(rng) as usize)
            .ops(cfg.ops_per_phase.sample(rng)),
    );
    for i in 0..cfg.serve_phases.sample(rng) {
        let mut phase = Phase::new(format!("serve-{i}"), cfg.phase_ticks.sample(rng))
            .mix(sample_mix(rng, cfg, false))
            .sessions(cfg.sessions.sample(rng) as usize)
            .depth(cfg.depth.sample(rng) as usize)
            .ops(cfg.ops_per_phase.sample(rng));
        if rng.gen_bool(0.25) {
            phase = phase.workload(sample_workload(rng));
        }
        phases.push(phase);
    }
    if rng.gen_range(0..100u32) < cfg.repair_tail_pct {
        phases.push(Phase::new("repair", cfg.phase_ticks.sample(rng)));
    }
    let duration: u64 = phases.iter().map(Phase::ticks).sum::<u64>().max(2);

    // Fault schedule: independent clauses at uniform times. Times land in
    // the middle 90% of the run so a fault never races the very first
    // session spin-up tick.
    let time_of = |rng: &mut SmallRng| Bounds::new(duration / 20, duration - 1).sample(rng);
    let fw = cfg.fault_weights;
    let any_fault_weight = fw.crash + fw.flap + fw.churn_burst + fw.wipe_soft + fw.revive_all > 0;
    let mut faults = Vec::new();
    if any_fault_weight {
        for _ in 0..cfg.faults.sample(rng) {
            let at = time_of(rng);
            let fault = sample_fault(rng, cfg, persist_n);
            // A wipe is always paired with a rebuild: an unrecovered
            // soft-layer loss forfeits the version authority, and with it
            // read-your-delete — a *documented* limitation (see the
            // frozen corpus in dd-core's fuzz_regressions), not a finding
            // worth rediscovering every campaign.
            if matches!(fault, Fault::WipeSoftLayer) {
                faults.push((at, fault));
                faults.push((Bounds::new(at, duration - 1).sample(rng), Fault::RebuildSoftLayer));
                continue;
            }
            faults.push((at, fault));
        }
        faults.sort_by_key(|&(at, _)| at);
    }

    // Environment timeline: whole episodes (spike → recovery, partition →
    // heal) so the generated timeline always validates. At most one
    // partition episode per scenario.
    let ew = cfg.env_weights;
    let mut env: Vec<(u64, EnvChange)> = Vec::new();
    let mut partition_used = false;
    for _ in 0..cfg.env_episodes.sample(rng) {
        let partition_w = if partition_used { 0 } else { ew.partition };
        let table = [(ew.latency, 0usize), (ew.drop_spike, 1), (partition_w, 2)];
        let Some(pick) = weighted_pick(rng, &table) else { break };
        let start = time_of(rng);
        let end = Bounds::new(start, duration - 1).sample(rng);
        match pick {
            0 => {
                let model = if rng.gen_bool(0.5) {
                    LatencyModel::Constant(rng.gen_range(1..=20))
                } else {
                    let min = rng.gen_range(1..=10);
                    LatencyModel::Uniform { min, max: min + rng.gen_range(1..=40) }
                };
                env.push((start, EnvChange::Latency(model)));
            }
            1 => {
                let prob = f64::from(rng.gen_range(1..=40u32)) / 100.0;
                env.push((start, EnvChange::DropProb(prob)));
                env.push((end, EnvChange::DropProb(0.0)));
            }
            _ => {
                partition_used = true;
                let fraction = f64::from(rng.gen_range(10..=50u32)) / 100.0;
                env.push((start, EnvChange::PartitionPersist { fraction }));
                env.push((end, EnvChange::Heal));
            }
        }
    }
    env.sort_by_key(|&(at, _)| at);

    let mut scenario = Scenario::new(format!("fuzz-{seed}"), workload, seed).audited();
    scenario.set_phases(phases);
    scenario.set_faults(faults);
    scenario.set_env(env);

    Case { seed, persist_n, replication, placement, scenario }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        let cfg = FuzzConfig::smoke();
        for seed in 0..200 {
            let a = generate(&cfg, seed);
            let b = generate(&cfg, seed);
            assert_eq!(a, b, "seed {seed} not deterministic");
            assert!(a.scenario.is_audited());
            assert_eq!(a.scenario.validate(), Ok(()), "seed {seed} generated invalid scenario");
            assert!(a.replication as u64 <= a.persist_n);
            assert!(a.size() > 0);
        }
    }

    #[test]
    fn soak_profile_also_generates_valid_cases() {
        let cfg = FuzzConfig::soak();
        for seed in 500..560 {
            let case = generate(&cfg, seed);
            assert_eq!(case.scenario.validate(), Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn snippet_names_the_seed_and_the_cluster_spec() {
        let case = generate(&FuzzConfig::smoke(), 7);
        let snippet = case.snippet();
        assert!(snippet.contains("Cluster::new(config, 7)"));
        assert!(snippet.contains(&format!(".persist_n({})", case.persist_n)));
        assert!(snippet.contains("run_scenario(&scenario)"));
        assert!(snippet.contains(".audited()"), "repros keep auditing on");
    }
}
