//! Case execution: run one [`Case`] audited, catch anything the engine
//! throws, and classify the outcome.

use crate::gen::Case;
use dd_core::{Cluster, ScenarioReport, ViolationKind};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How a fuzz case came out, in severity order. `Violating` carries the
/// *dominant* kind — the first safety violation's kind, or the first
/// warning's if the run produced only durability warnings — and two cases
/// compare equal exactly when they witness the same kind, which is the
/// invariant the shrinker preserves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The run completed and the audit found nothing.
    Clean,
    /// The audit reported at least one violation of this kind.
    Violating(ViolationKind),
    /// The engine panicked mid-run (always a bug: generated scenarios are
    /// validated before execution).
    Panicked,
    /// The scenario failed [`dd_core::Scenario::validate`] and never ran
    /// (never produced by the generator; shrink candidates are screened
    /// with it).
    Rejected,
}

impl Verdict {
    /// Whether this verdict is a finding worth shrinking: a safety
    /// violation or a panic (true), a durability warning (also true but
    /// lower priority), or nothing (false).
    #[must_use]
    pub fn is_finding(&self) -> bool {
        !matches!(self, Verdict::Clean | Verdict::Rejected)
    }

    /// Whether this verdict must fail a CI campaign: safety violations
    /// and panics do; clean runs and durability warnings (expected under
    /// unrevived crashes of whole replica groups) do not.
    #[must_use]
    pub fn is_safety_failure(&self) -> bool {
        match self {
            Verdict::Violating(kind) => kind.is_safety(),
            Verdict::Panicked => true,
            Verdict::Clean | Verdict::Rejected => false,
        }
    }
}

/// The full outcome of one case execution.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Classified outcome.
    pub verdict: Verdict,
    /// Violation census of the audit: `(kind, count)` for every kind that
    /// appeared, in first-appearance order.
    pub kinds: Vec<(ViolationKind, u64)>,
    /// Safety violations found.
    pub safety: u64,
    /// Durability warnings found.
    pub warnings: u64,
    /// The panic payload, when the verdict is [`Verdict::Panicked`].
    pub panic_msg: Option<String>,
    /// The scenario report, when the run completed.
    pub report: Option<ScenarioReport>,
}

fn panic_payload(err: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = err.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = err.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one case end to end: validate, build the cluster, settle, execute
/// the audited scenario, classify. Engine panics are caught and
/// classified rather than unwinding into the campaign loop.
#[must_use]
pub fn run_case(case: &Case) -> RunResult {
    if case.scenario.validate().is_err() {
        return RunResult {
            verdict: Verdict::Rejected,
            kinds: Vec::new(),
            safety: 0,
            warnings: 0,
            panic_msg: None,
            report: None,
        };
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut cluster = Cluster::new(case.cluster_config(), case.seed);
        cluster.settle();
        cluster.run_scenario(&case.scenario)
    }));
    match outcome {
        Err(err) => RunResult {
            verdict: Verdict::Panicked,
            kinds: Vec::new(),
            safety: 0,
            warnings: 0,
            panic_msg: Some(panic_payload(err)),
            report: None,
        },
        Ok(report) => {
            let mut kinds: Vec<(ViolationKind, u64)> = Vec::new();
            let mut safety = 0u64;
            let mut warnings = 0u64;
            let mut dominant: Option<ViolationKind> = None;
            if let Some(audit) = &report.audit {
                for v in &audit.violations {
                    let kind = v.kind();
                    if kind.is_safety() {
                        safety += 1;
                    } else {
                        warnings += 1;
                    }
                    // Dominant kind: the first safety kind seen, or the
                    // first kind at all when only warnings appear.
                    match dominant {
                        None => dominant = Some(kind),
                        Some(d) if !d.is_safety() && kind.is_safety() => dominant = Some(kind),
                        Some(_) => {}
                    }
                    match kinds.iter_mut().find(|(k, _)| *k == kind) {
                        Some((_, n)) => *n += 1,
                        None => kinds.push((kind, 1)),
                    }
                }
            }
            let verdict = match dominant {
                Some(kind) => Verdict::Violating(kind),
                None => Verdict::Clean,
            };
            RunResult { verdict, kinds, safety, warnings, panic_msg: None, report: Some(report) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FuzzConfig;
    use crate::gen::generate;
    use dd_core::{Fault, Phase, Scenario, Tier, WorkloadKind};

    #[test]
    fn verdict_severity_classification() {
        assert!(!Verdict::Clean.is_finding());
        assert!(!Verdict::Rejected.is_finding());
        assert!(Verdict::Panicked.is_finding());
        assert!(Verdict::Violating(ViolationKind::LostWrite).is_finding());
        assert!(!Verdict::Violating(ViolationKind::LostWrite).is_safety_failure());
        assert!(Verdict::Violating(ViolationKind::Divergence).is_safety_failure());
        assert!(Verdict::Panicked.is_safety_failure());
    }

    #[test]
    fn an_invalid_case_is_rejected_not_run() {
        let mut case = generate(&FuzzConfig::smoke(), 0);
        case.scenario.set_phases(Vec::new());
        let result = run_case(&case);
        assert_eq!(result.verdict, Verdict::Rejected);
        assert!(result.report.is_none());
    }

    #[test]
    fn a_quiet_scenario_runs_clean_and_replays_byte_identically() {
        let scenario = Scenario::new("quiet", WorkloadKind::Uniform, 3)
            .audited()
            .phase(Phase::new("load", 800).mix(dd_core::OpMix::puts()).ops(6).sessions(1));
        let case = Case {
            seed: 3,
            persist_n: 8,
            replication: 2,
            placement: dd_core::Placement::RangePartition,
            scenario,
        };
        let a = run_case(&case);
        let b = run_case(&case);
        assert_eq!(a.verdict, Verdict::Clean);
        assert_eq!(a.report, b.report, "replay must be byte-identical");
    }

    #[test]
    fn crashing_every_replica_yields_a_durability_verdict() {
        // All persist nodes die right after the load phase and stay dead:
        // the audit settle can only conclude the writes are gone.
        let scenario = Scenario::new("total-loss", WorkloadKind::Uniform, 11)
            .audited()
            .phase(Phase::new("load", 1_000).mix(dd_core::OpMix::puts()).ops(8).sessions(1))
            .phase(Phase::new("wait", 600))
            .fault(1_000, Fault::Crash { tier: Tier::Persist, count: 8 });
        let case = Case {
            seed: 11,
            persist_n: 8,
            replication: 2,
            placement: dd_core::Placement::RangePartition,
            scenario,
        };
        let result = run_case(&case);
        assert_eq!(result.verdict, Verdict::Violating(ViolationKind::LostWrite));
        assert!(result.warnings > 0);
        assert_eq!(result.safety, 0, "losing every replica is a durability story, not safety");
    }
}
