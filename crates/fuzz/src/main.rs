//! The `dd-fuzz` soak binary: sweep a seed range (optionally sharded),
//! shrink every finding, write a JSON campaign summary, and exit nonzero
//! if any safety violation or panic survives shrinking.
//!
//! ```text
//! dd-fuzz [--config smoke|soak] [--seed-start N] [--seeds N]
//!         [--budget-secs N] [--shard I:K] [--out PATH] [--quiet]
//! ```

use dd_fuzz::{run_campaign, CampaignPlan, FuzzConfig, Verdict};
use std::time::Duration;

struct Args {
    config_name: String,
    seed_start: u64,
    seeds: u64,
    budget_secs: Option<u64>,
    shard: Option<(u64, u64)>,
    out: String,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: dd-fuzz [--config smoke|soak] [--seed-start N] [--seeds N]\n\
         \x20              [--budget-secs N] [--shard I:K] [--out PATH] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        config_name: "soak".to_string(),
        seed_start: 0,
        seeds: 1_000,
        budget_secs: None,
        shard: None,
        out: "BENCH_fuzz.json".to_string(),
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--config" => args.config_name = value("--config"),
            "--seed-start" => {
                args.seed_start = value("--seed-start").parse().unwrap_or_else(|_| usage())
            }
            "--seeds" => args.seeds = value("--seeds").parse().unwrap_or_else(|_| usage()),
            "--budget-secs" => {
                args.budget_secs = Some(value("--budget-secs").parse().unwrap_or_else(|_| usage()))
            }
            "--shard" => {
                let spec = value("--shard");
                let (i, k) = spec.split_once(':').unwrap_or_else(|| usage());
                let i: u64 = i.parse().unwrap_or_else(|_| usage());
                let k: u64 = k.parse().unwrap_or_else(|_| usage());
                if k == 0 || i >= k {
                    eprintln!("--shard {spec}: need I < K, K > 0");
                    usage();
                }
                args.shard = Some((i, k));
            }
            "--out" => args.out = value("--out"),
            "--quiet" => args.quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let cfg = match args.config_name.as_str() {
        "smoke" => FuzzConfig::smoke(),
        "soak" => FuzzConfig::soak(),
        other => {
            eprintln!("unknown config {other} (want smoke or soak)");
            usage();
        }
    };
    let mut plan = CampaignPlan::sweep(args.seed_start, args.seeds);
    if let Some(secs) = args.budget_secs {
        plan = plan.budget(Duration::from_secs(secs));
    }
    if let Some((i, k)) = args.shard {
        plan = plan.shard(i, k);
    }

    // The campaign catches engine panics and classifies them; silence the
    // default hook so a panicking case prints one census line instead of a
    // backtrace per replay (this binary is single-threaded, so the global
    // hook swap races nothing).
    if args.quiet {
        std::panic::set_hook(Box::new(|_| {}));
    }
    let summary = run_campaign(&cfg, &plan);
    let _ = std::panic::take_hook();

    println!(
        "dd-fuzz {}: {} seeds in {:.1}s ({:.1} scenarios/s)",
        args.config_name,
        summary.seeds_run,
        summary.elapsed.as_secs_f64(),
        summary.scenarios_per_sec(),
    );
    println!(
        "  clean {}  durability {}  safety {}  panics {}  rejected {}",
        summary.clean, summary.durability, summary.safety, summary.panics, summary.rejected
    );
    for (kind, n) in &summary.kind_census {
        println!("  census {kind}: {n} violations");
    }
    for finding in &summary.findings {
        let label = match finding.verdict {
            Verdict::Violating(kind) => format!("{kind}"),
            Verdict::Panicked => "panic".to_string(),
            _ => continue,
        };
        println!(
            "  finding seed {} [{}]: size {} -> {} ({} evals)",
            finding.seed,
            label,
            finding.stats.original_size,
            finding.stats.final_size,
            finding.stats.evaluations
        );
        if finding.verdict.is_safety_failure() {
            println!("--- minimal repro ---\n{}---", finding.snippet());
        }
    }

    if let Err(e) = std::fs::write(&args.out, summary.to_json(&args.config_name)) {
        eprintln!("dd-fuzz: could not write {}: {e}", args.out);
        std::process::exit(2);
    }
    println!("wrote {}", args.out);

    let safety_findings = summary.safety_findings();
    if !safety_findings.is_empty() {
        eprintln!(
            "dd-fuzz: {} safety finding(s) survived shrinking — failing",
            safety_findings.len()
        );
        std::process::exit(1);
    }
}
