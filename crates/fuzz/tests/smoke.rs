//! The CI fuzz tier: sweep a fixed window of a few hundred seeds under a
//! wall-clock guard, and fail if any safety violation or engine panic
//! survives shrinking. Durability warnings (LostWrite) are expected —
//! the paper's design trades a bounded amount of durability under churn
//! and unrevived crashes — and are censused, not failed.

use dd_fuzz::{run_campaign, run_case, CampaignPlan, FuzzConfig, Verdict};
use std::time::Duration;

/// The fixed seed window CI sweeps. Moving it is a deliberate act (it
/// changes which scenarios CI explores), not a side effect.
const CI_SEED_START: u64 = 0;
const CI_SEEDS: u64 = 250;

#[test]
fn smoke_campaign_has_no_unshrunk_safety_violations() {
    let cfg = FuzzConfig::smoke();
    let plan = CampaignPlan::sweep(CI_SEED_START, CI_SEEDS).budget(Duration::from_secs(600));
    let summary = run_campaign(&cfg, &plan);
    assert_eq!(
        summary.seeds_run, CI_SEEDS,
        "the wall budget cut the CI tier short — shrink the smoke profile"
    );
    assert_eq!(summary.rejected, 0, "generated cases must be valid by construction");
    assert_eq!(summary.panics, 0, "no generated scenario may panic the engine");
    let safety = summary.safety_findings();
    assert!(
        safety.is_empty(),
        "{} safety finding(s) survived shrinking:\n{}",
        safety.len(),
        safety.iter().map(|f| f.snippet()).collect::<Vec<_>>().join("\n")
    );
    // The sweep must actually exercise the system: most seeds complete,
    // and the fault schedules push some runs into durability territory.
    assert!(summary.clean + summary.durability == CI_SEEDS);
    assert!(summary.durability > 0, "smoke profile stopped generating interesting faults");
    // Every shrunk finding got strictly smaller or stayed put, never grew.
    for f in &summary.findings {
        assert!(f.stats.final_size <= f.stats.original_size);
        assert_eq!(f.case.scenario.validate(), Ok(()));
    }
}

#[test]
fn campaigns_replay_byte_identically() {
    let cfg = FuzzConfig::smoke();
    let plan = CampaignPlan::sweep(40, 25);
    let a = run_campaign(&cfg, &plan);
    let b = run_campaign(&cfg, &plan);
    assert_eq!(a.seeds_run, b.seeds_run);
    assert_eq!(
        (a.clean, a.durability, a.safety, a.panics, a.rejected),
        (b.clean, b.durability, b.safety, b.panics, b.rejected)
    );
    assert_eq!(a.kind_census, b.kind_census);
    assert_eq!(a.findings.len(), b.findings.len());
    for (fa, fb) in a.findings.iter().zip(&b.findings) {
        assert_eq!(fa.seed, fb.seed);
        assert_eq!(fa.verdict, fb.verdict);
        assert_eq!(fa.case, fb.case, "shrinking must be deterministic");
        assert_eq!(fa.stats, fb.stats);
    }
}

#[test]
fn emitted_minimal_cases_replay_byte_identically_and_keep_their_verdict() {
    let summary = run_campaign(&FuzzConfig::smoke(), &CampaignPlan::sweep(0, 30));
    let finding = summary.findings.first().expect("the smoke window starts with known findings");
    let a = run_case(&finding.case);
    let b = run_case(&finding.case);
    assert_eq!(a.verdict, finding.verdict, "the minimal case witnesses the preserved verdict");
    assert_eq!(a.report, b.report, "replaying the emitted scenario must be byte-identical");
    let snippet = finding.snippet();
    assert!(snippet.contains("run_scenario(&scenario)"));
    assert!(snippet.contains(&format!("Cluster::new(config, {})", finding.seed)));
}

#[test]
fn a_panicking_case_is_classified_not_propagated() {
    // Scenario validation cannot see the cluster spec; a zero-node
    // persist layer trips Cluster::new's assertion, which run_case must
    // catch and classify rather than unwind.
    let mut case = dd_fuzz::generate(&FuzzConfig::smoke(), 3);
    case.persist_n = 0;
    let result = run_case(&case);
    assert_eq!(result.verdict, Verdict::Panicked);
    assert!(result.panic_msg.expect("payload captured").contains("persist node"));
}
