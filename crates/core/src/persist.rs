//! The persistent-state layer node.
//!
//! §III: any node may receive operations; writes arrive epidemically
//! ([`DropletMsg::Disseminate`]), the local [`SieveSpec`] decides retention
//! ("global dissemination / local decision"), and same-class anti-entropy
//! maintains redundancy. Reads, scans and aggregates are served from the
//! local store.

use crate::msg::DropletMsg;
use crate::sieve_spec::SieveSpec;
use crate::tuple::StoredTuple;
use dd_epidemic::antientropy::Digest;
use dd_epidemic::push::{PushConfig, PushState, RumorId};
use dd_estimation::DistSketch;
use dd_sim::{Ctx, Duration, NodeId, TimerTag};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::{HashMap, HashSet};

/// Timer tag for repair rounds.
pub const REPAIR_TIMER: TimerTag = TimerTag(0xFE4A);

/// Persistent-layer node state.
#[derive(Debug, Clone)]
pub struct PersistNode {
    /// This node's sieve.
    pub sieve: SieveSpec,
    /// Gossip relay state.
    pub push: PushState,
    /// All persist-layer peers (closed world per experiment; a Cyclon view
    /// plugs in identically via the same `Vec<NodeId>` refresh).
    pub peers: Vec<NodeId>,
    /// Latest live tuple per key hash. Mutate through [`PersistNode::apply`]
    /// only — it keeps the secondary tag index consistent.
    pub store: HashMap<u64, StoredTuple>,
    /// Repair period; `None` disables maintenance.
    pub repair_period: Option<Duration>,
    /// Sketch capacity for aggregate replies.
    pub sketch_k: usize,
    /// Secondary index: tag hash → key hashes of live tuples carrying the
    /// tag. Serves tag-scoped reads ([`DropletMsg::TagFetch`]) without a
    /// store scan; maintained by [`PersistNode::apply`].
    tag_index: HashMap<u64, HashSet<u64>>,
}

impl PersistNode {
    /// Creates a node.
    #[must_use]
    pub fn new(
        sieve: SieveSpec,
        fanout: u32,
        peers: Vec<NodeId>,
        repair_period: Option<Duration>,
    ) -> Self {
        PersistNode {
            sieve,
            push: PushState::new(PushConfig { fanout, ..PushConfig::default() }),
            peers,
            store: HashMap::new(),
            repair_period,
            sketch_k: 256,
            tag_index: HashMap::new(),
        }
    }

    /// Number of live (non-tombstone) tuples held.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.store.values().filter(|t| !t.deleted).count()
    }

    /// Applies a tuple if it is newer than what we hold, keeping the tag
    /// index in step. Returns `true` when the store changed.
    pub fn apply(&mut self, tuple: StoredTuple) -> bool {
        let previous_tag = match self.store.get(&tuple.key_hash) {
            Some(existing) if existing.version >= tuple.version => return false,
            Some(existing) => existing.tag_hash,
            None => None,
        };
        let new_tag = (!tuple.deleted).then_some(tuple.tag_hash).flatten();
        if previous_tag != new_tag {
            if let Some(old) = previous_tag {
                if let Some(keys) = self.tag_index.get_mut(&old) {
                    keys.remove(&tuple.key_hash);
                    if keys.is_empty() {
                        self.tag_index.remove(&old);
                    }
                }
            }
            if let Some(t) = new_tag {
                self.tag_index.entry(t).or_default().insert(tuple.key_hash);
            }
        }
        self.store.insert(tuple.key_hash, tuple);
        true
    }

    /// Whether this node should apply `tuple` when it arrives: the sieve
    /// decides for live tuples, but tombstones are wanted *everywhere*.
    /// A tombstone carries no tag/attr, so a collocation or histogram
    /// sieve would never deliver the delete to the very nodes storing the
    /// live tuple; and because epidemic delivery is unordered, a
    /// tombstone can arrive before the live tuple it supersedes — only a
    /// node that kept it can then reject the stale live write. Tombstones
    /// are empty-valued, so the cost is metadata-only.
    #[must_use]
    pub fn wants(&self, tuple: &StoredTuple) -> bool {
        tuple.deleted || self.sieve.accepts(&tuple.item_meta())
    }

    /// Live tuples carrying `tag_hash`, via the secondary index.
    #[must_use]
    pub fn by_tag(&self, tag_hash: u64) -> Vec<StoredTuple> {
        self.tag_index
            .get(&tag_hash)
            .into_iter()
            .flatten()
            .filter_map(|kh| self.store.get(kh))
            .filter(|t| !t.deleted)
            .cloned()
            .collect()
    }

    /// The digest of held `(key, version)` pairs, as rumor ids.
    #[must_use]
    pub fn digest(&self) -> Digest {
        Digest::from_ids(self.store.values().map(|t| RumorId(t.rumor_id())).collect())
    }

    /// Tuples the peer (per its digest) is missing *and* wants: live
    /// tuples its sieve accepts, plus any tombstone (see
    /// [`PersistNode::wants`]).
    #[must_use]
    pub fn items_for_peer(
        &self,
        their_digest: &Digest,
        their_sieve: &SieveSpec,
    ) -> Vec<StoredTuple> {
        let theirs: std::collections::HashSet<RumorId> =
            their_digest.ids().iter().copied().collect();
        self.store
            .values()
            .filter(|t| !theirs.contains(&RumorId(t.rumor_id())))
            .filter(|t| t.deleted || their_sieve.accepts(&t.item_meta()))
            .cloned()
            .collect()
    }

    /// Handles persist-layer messages; shared by the composite process.
    pub fn on_message(&mut self, ctx: &mut Ctx<'_, DropletMsg>, from: NodeId, msg: DropletMsg) {
        match msg {
            DropletMsg::Disseminate { hops, tuple, coordinator } => {
                let id = RumorId(tuple.rumor_id());
                let self_id = ctx.id();
                let peers = self.peers.clone();
                let (first, targets) = self.push.on_rumor(ctx.rng(), self_id, &peers, id, hops);
                if first {
                    ctx.metrics().incr("persist.received");
                    if self.wants(&tuple) {
                        let (key_hash, version) = (tuple.key_hash, tuple.version);
                        if self.apply(tuple.clone()) {
                            ctx.metrics().incr("persist.stored");
                            ctx.send(coordinator, DropletMsg::StoredAck { key_hash, version });
                        }
                    }
                }
                for t in targets {
                    ctx.metrics().incr("persist.relays");
                    ctx.send(
                        t,
                        DropletMsg::Disseminate {
                            hops: hops + 1,
                            tuple: tuple.clone(),
                            coordinator,
                        },
                    );
                }
            }
            DropletMsg::Fetch { req, key_hash, version } => {
                let found = self.store.get(&key_hash).filter(|t| t.version >= version).cloned();
                ctx.metrics().incr("persist.fetches");
                ctx.send(from, DropletMsg::FetchReply { req, found });
            }
            DropletMsg::TagFetch { req, tag_hash } => {
                ctx.metrics().incr("persist.tag_fetches");
                ctx.send(from, DropletMsg::TagFetchReply { req, items: self.by_tag(tag_hash) });
            }
            DropletMsg::ScanReq { req, lo, hi } => {
                let items: Vec<StoredTuple> = self
                    .store
                    .values()
                    .filter(|t| !t.deleted)
                    .filter(|t| t.attr.is_some_and(|a| a >= lo && a <= hi))
                    .cloned()
                    .collect();
                ctx.send(from, DropletMsg::ScanReply { req, items });
            }
            DropletMsg::AggReq { req } => {
                let mut sketch = DistSketch::new(self.sketch_k);
                let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
                for t in self.store.values().filter(|t| !t.deleted) {
                    if let Some(a) = t.attr {
                        sketch.observe(t.key_hash, a);
                        min = min.min(a);
                        max = max.max(a);
                    }
                }
                ctx.send(from, DropletMsg::AggReply { req, sketch, min, max });
            }
            DropletMsg::RepairOffer { sieve, digest } => {
                // Send whatever the offerer's sieve covers and its digest
                // lacks; reply with our own digest so the exchange is
                // bidirectional when the sieves overlap.
                let items = self.items_for_peer(&digest, &sieve);
                ctx.metrics().incr("repair.syncs");
                if !items.is_empty() || sieve.class_id() == self.sieve.class_id() {
                    ctx.send(from, DropletMsg::RepairSync { digest: self.digest(), items });
                } else {
                    // Still reciprocate pulls: tell the offerer what we
                    // hold so it can push us what our sieve needs.
                    ctx.send(from, DropletMsg::RepairSync { digest: self.digest(), items: vec![] });
                }
            }
            DropletMsg::RepairSync { digest, items } => {
                let mut recovered = 0u64;
                for t in items {
                    if self.wants(&t) && self.apply(t) {
                        recovered += 1;
                    }
                }
                ctx.metrics().add("repair.recovered", recovered);
                let reciprocal = self.items_for_peer(&digest, &self.sieve.clone());
                if !reciprocal.is_empty() {
                    ctx.send(from, DropletMsg::RepairItems(reciprocal));
                }
            }
            DropletMsg::RepairItems(items) => {
                let mut recovered = 0u64;
                for t in items {
                    if self.wants(&t) && self.apply(t) {
                        recovered += 1;
                    }
                }
                ctx.metrics().add("repair.recovered", recovered);
            }
            _ => {}
        }
    }

    /// Arms the repair timer (called from `on_start`/`on_up`).
    pub fn arm_timers(&self, ctx: &mut Ctx<'_, DropletMsg>) {
        if let Some(period) = self.repair_period {
            let jitter = ctx.rng().gen_range(0..period.0.max(1));
            ctx.set_timer(Duration(jitter), REPAIR_TIMER);
        }
    }

    /// Handles the repair timer.
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_, DropletMsg>, tag: TimerTag) {
        if tag != REPAIR_TIMER {
            return;
        }
        if let Some(&peer) = self.peers.choose(ctx.rng()) {
            ctx.send(
                peer,
                DropletMsg::RepairOffer { sieve: self.sieve.clone(), digest: self.digest() },
            );
        }
        if let Some(period) = self.repair_period {
            ctx.set_timer(period, REPAIR_TIMER);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Key;
    use dd_dht::Version;

    fn tuple(key: &str, version: u64) -> StoredTuple {
        StoredTuple::new(Key::from(key), Version(version), b"v".to_vec(), Some(1.0), None)
    }

    #[test]
    fn apply_keeps_latest_version_only() {
        let mut n = PersistNode::new(SieveSpec::Range { index: 0, of: 1, r: 1 }, 2, vec![], None);
        assert!(n.apply(tuple("k", 1)));
        assert!(n.apply(tuple("k", 3)));
        assert!(!n.apply(tuple("k", 2)), "stale write rejected");
        assert_eq!(n.store.len(), 1);
        assert_eq!(n.store.values().next().unwrap().version, Version(3));
    }

    #[test]
    fn tombstone_supersedes_and_live_count_drops() {
        let mut n = PersistNode::new(SieveSpec::Range { index: 0, of: 1, r: 1 }, 2, vec![], None);
        n.apply(tuple("k", 1));
        assert_eq!(n.live_count(), 1);
        n.apply(StoredTuple::tombstone("k".into(), Version(2)));
        assert_eq!(n.live_count(), 0);
        assert_eq!(n.store.len(), 1, "tombstone retained for ordering");
    }

    fn tagged(key: &str, version: u64, tag: &str) -> StoredTuple {
        StoredTuple::new(Key::from(key), Version(version), b"v".to_vec(), Some(1.0), Some(tag))
    }

    #[test]
    fn tag_index_serves_live_tuples_by_tag() {
        let mut n = PersistNode::new(SieveSpec::Range { index: 0, of: 1, r: 1 }, 2, vec![], None);
        let th = dd_sim::rng::stable_hash(b"feed:a");
        n.apply(tagged("p1", 1, "feed:a"));
        n.apply(tagged("p2", 1, "feed:a"));
        n.apply(tagged("q1", 1, "feed:b"));
        n.apply(tuple("untagged", 1));
        let feed = n.by_tag(th);
        assert_eq!(feed.len(), 2);
        assert!(feed.iter().all(|t| t.tag_hash == Some(th)));
        assert!(n.by_tag(dd_sim::rng::stable_hash(b"feed:none")).is_empty());
    }

    #[test]
    fn tag_index_follows_overwrites_and_tombstones() {
        let mut n = PersistNode::new(SieveSpec::Range { index: 0, of: 1, r: 1 }, 2, vec![], None);
        let ta = dd_sim::rng::stable_hash(b"feed:a");
        let tb = dd_sim::rng::stable_hash(b"feed:b");
        n.apply(tagged("p", 1, "feed:a"));
        assert_eq!(n.by_tag(ta).len(), 1);
        // Retagging moves the key between index entries.
        n.apply(tagged("p", 2, "feed:b"));
        assert!(n.by_tag(ta).is_empty());
        assert_eq!(n.by_tag(tb).len(), 1);
        // A tombstone removes the key from the index entirely.
        n.apply(StoredTuple::tombstone("p".into(), Version(3)));
        assert!(n.by_tag(tb).is_empty());
        // Stale re-delivery of the old tagged version must not resurrect it.
        assert!(!n.apply(tagged("p", 2, "feed:b")));
        assert!(n.by_tag(tb).is_empty());
    }

    #[test]
    fn tombstones_are_wanted_regardless_of_sieve() {
        // A tag sieve that owns feed:a's slot stores the live post; the
        // tombstone (tagless, so the sieve itself would route it to the
        // uniform fallback) must still be wanted by the holder.
        let slots = 16u64;
        let live = tagged("p", 1, "feed:a");
        let th = live.tag_hash.expect("tagged");
        let owner_slot = dd_sieve::TagSieve::tag_slots(th, slots, 1)[0];
        let mut owner =
            PersistNode::new(SieveSpec::Tag { slot: owner_slot, slots, r: 1 }, 2, vec![], None);
        assert!(owner.wants(&live));
        owner.apply(live);
        let tomb = StoredTuple::tombstone("p".into(), Version(2));
        assert!(owner.wants(&tomb), "holder accepts the delete");
        owner.apply(tomb);
        assert_eq!(owner.live_count(), 0);
    }

    #[test]
    fn early_tombstone_blocks_the_stale_live_write() {
        // Epidemic delivery is unordered: the tombstone (v2) can arrive
        // before the live write (v1) it supersedes. The node must keep
        // the tombstone — even when its sieve would reject it — so the
        // late live write cannot resurrect the deleted tuple.
        let slots = 16u64;
        let live = tagged("p", 1, "feed:a");
        let th = live.tag_hash.expect("tagged");
        let owner_slot = dd_sieve::TagSieve::tag_slots(th, slots, 1)[0];
        let mut owner =
            PersistNode::new(SieveSpec::Tag { slot: owner_slot, slots, r: 1 }, 2, vec![], None);
        let tomb = StoredTuple::tombstone("p".into(), Version(2));
        assert!(owner.wants(&tomb), "tombstone wanted before any version is held");
        owner.apply(tomb);
        assert!(!owner.apply(live), "stale live write rejected after the delete");
        assert_eq!(owner.live_count(), 0);
        assert!(owner.by_tag(th).is_empty());
    }

    #[test]
    fn digest_reflects_key_versions() {
        let mut n = PersistNode::new(SieveSpec::Range { index: 0, of: 1, r: 1 }, 2, vec![], None);
        n.apply(tuple("a", 1));
        let d1 = n.digest();
        n.apply(tuple("a", 2));
        let d2 = n.digest();
        assert_ne!(d1, d2, "new version changes the digest");
        assert_eq!(d2.len(), 1);
    }

    #[test]
    fn items_for_peer_respects_their_sieve_and_digest() {
        let all = SieveSpec::Range { index: 0, of: 1, r: 1 };
        let mut n = PersistNode::new(all.clone(), 2, vec![], None);
        // 8-segment sieve for the peer: accepts only a fraction of keys.
        let peer_sieve = SieveSpec::Range { index: 0, of: 8, r: 1 };
        for i in 0..64 {
            n.apply(tuple(&format!("k{i}"), 1));
        }
        let sent = n.items_for_peer(&Digest::default(), &peer_sieve);
        assert!(!sent.is_empty());
        assert!(sent.len() < 32, "only the peer's share is sent: {}", sent.len());
        for t in &sent {
            assert!(peer_sieve.accepts(&t.item_meta()));
        }
        // With the peer already holding everything, nothing is sent.
        let full = n.digest();
        assert!(n.items_for_peer(&full, &all).is_empty());
    }
}
