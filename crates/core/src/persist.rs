//! The persistent-state layer node.
//!
//! §III: any node may receive operations; writes arrive epidemically
//! ([`DropletMsg::Disseminate`]), the local [`SieveSpec`] decides retention
//! ("global dissemination / local decision"), and same-class anti-entropy
//! maintains redundancy. Reads, scans and aggregates are served from the
//! local store.

use crate::msg::DropletMsg;
use crate::sieve_spec::SieveSpec;
use crate::tuple::StoredTuple;
use dd_epidemic::antientropy::{Digest, Summary};
use dd_epidemic::push::{PushConfig, PushState, RumorId};
use dd_estimation::DistSketch;
use dd_sim::{Ctx, Duration, NodeId, TimerTag, TraceCtx};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::{HashMap, HashSet};

/// Timer tag for repair rounds.
pub const REPAIR_TIMER: TimerTag = TimerTag(0xFE4A);

/// Buckets in the repair [`Summary`]: the constant wire size of a
/// steady-state anti-entropy round, independent of store size.
pub const REPAIR_BUCKETS: usize = 64;

/// One round in [`FAR_PULL_PERIOD`] under ring-biased peering makes a
/// uniform far pull instead of a neighbour pull.
const FAR_PULL_PERIOD: u32 = 4;

/// Repair-partner selection policy for the periodic anti-entropy round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairPeering {
    /// Uniform choice over every peer — the historical default. Kept as
    /// the default so recorded scenario seeds replay byte-identically.
    Random,
    /// Topology-aware: most rounds pull from a ring neighbour (whose sieve
    /// segment overlaps ours most under range placement, so divergence is
    /// found where it concentrates), with a uniform far pull every fourth
    /// round (`FAR_PULL_PERIOD`) so divergence that skipped the ring —
    /// revival gaps, cross-class tombstones — still converges.
    RingBiased {
        /// The ring-adjacent peers (normally two; one in a two-node ring).
        neighbors: Vec<NodeId>,
    },
}

/// What a node with `sieve` wants: live tuples the sieve accepts, plus
/// any tombstone (see [`PersistNode::wants`] for why tombstones are
/// universal).
fn wants_with(sieve: &SieveSpec, tuple: &StoredTuple) -> bool {
    tuple.deleted || sieve.accepts(&tuple.item_meta())
}

/// Persistent-layer node state.
#[derive(Debug, Clone)]
pub struct PersistNode {
    /// This node's sieve.
    pub sieve: SieveSpec,
    /// Gossip relay state.
    pub push: PushState,
    /// All persist-layer peers (closed world per experiment; a Cyclon view
    /// plugs in identically via the same `Vec<NodeId>` refresh).
    pub peers: Vec<NodeId>,
    /// Latest live tuple per key hash. Mutate through [`PersistNode::apply`]
    /// only — it keeps the secondary tag index consistent.
    pub store: HashMap<u64, StoredTuple>,
    /// Repair period; `None` disables maintenance.
    pub repair_period: Option<Duration>,
    /// How the periodic round picks its partner.
    pub repair_peering: RepairPeering,
    /// Sketch capacity for aggregate replies.
    pub sketch_k: usize,
    /// Secondary index: tag hash → key hashes of live tuples carrying the
    /// tag. Serves tag-scoped reads ([`DropletMsg::TagFetch`]) without a
    /// store scan; maintained by [`PersistNode::apply`].
    tag_index: HashMap<u64, HashSet<u64>>,
    /// Reusable bucket arrays for summary comparison: rounds that only
    /// *compare* (the [`DropletMsg::RepairSummary`] leg) rebuild into this
    /// scratch instead of allocating fresh buckets per exchange.
    summary_scratch: Summary,
}

impl PersistNode {
    /// Creates a node.
    #[must_use]
    pub fn new(
        sieve: SieveSpec,
        fanout: u32,
        peers: Vec<NodeId>,
        repair_period: Option<Duration>,
    ) -> Self {
        PersistNode {
            sieve,
            push: PushState::new(PushConfig { fanout, ..PushConfig::default() }),
            peers,
            store: HashMap::new(),
            repair_period,
            repair_peering: RepairPeering::Random,
            sketch_k: 256,
            tag_index: HashMap::new(),
            summary_scratch: Summary::new(REPAIR_BUCKETS),
        }
    }

    /// Builder: switch the periodic round to ring-biased peering with the
    /// given ring-adjacent peers.
    #[must_use]
    pub fn with_ring_neighbors(mut self, neighbors: Vec<NodeId>) -> Self {
        self.repair_peering = RepairPeering::RingBiased { neighbors };
        self
    }

    /// Number of live (non-tombstone) tuples held.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.store.values().filter(|t| !t.deleted).count()
    }

    /// Number of tombstones retained (deleted entries awaiting
    /// supersession-evidence retirement).
    #[must_use]
    pub fn tombstone_count(&self) -> usize {
        self.store.len() - self.live_count()
    }

    /// Total stored payload bytes across live tuples (tombstones carry
    /// no value).
    #[must_use]
    pub fn store_bytes(&self) -> usize {
        self.store.values().map(|t| t.value.len()).sum()
    }

    /// Occupied buckets in this node's self-projected repair [`Summary`]
    /// — how much of the constant wire size a digest-first round
    /// actually uses at the current store size.
    #[must_use]
    pub fn summary_occupancy(&self) -> usize {
        self.shared_summary(&self.sieve).occupied()
    }

    /// Applies a tuple if it supersedes what we hold (the deterministic
    /// [`StoredTuple::supersedes`] order), keeping the tag index in step.
    /// Returns `true` when the store changed.
    pub fn apply(&mut self, tuple: StoredTuple) -> bool {
        let previous_tag = match self.store.get(&tuple.key_hash) {
            Some(existing) if !tuple.supersedes(existing) => return false,
            Some(existing) => existing.tag_hash,
            None => None,
        };
        let new_tag = (!tuple.deleted).then_some(tuple.tag_hash).flatten();
        if previous_tag != new_tag {
            if let Some(old) = previous_tag {
                if let Some(keys) = self.tag_index.get_mut(&old) {
                    keys.remove(&tuple.key_hash);
                    if keys.is_empty() {
                        self.tag_index.remove(&old);
                    }
                }
            }
            if let Some(t) = new_tag {
                self.tag_index.entry(t).or_default().insert(tuple.key_hash);
            }
        }
        self.store.insert(tuple.key_hash, tuple);
        true
    }

    /// Whether this node should apply `tuple` when it arrives: the sieve
    /// decides for live tuples, but tombstones are wanted *everywhere*.
    /// A tombstone carries no tag/attr, so a collocation or histogram
    /// sieve would never deliver the delete to the very nodes storing the
    /// live tuple; and because epidemic delivery is unordered, a
    /// tombstone can arrive before the live tuple it supersedes — only a
    /// node that kept it can then reject the stale live write. Tombstones
    /// are empty-valued, so the cost is metadata-only.
    #[must_use]
    pub fn wants(&self, tuple: &StoredTuple) -> bool {
        tuple.deleted || self.sieve.accepts(&tuple.item_meta())
    }

    /// Live tuples carrying `tag_hash`, via the secondary index.
    #[must_use]
    pub fn by_tag(&self, tag_hash: u64) -> Vec<StoredTuple> {
        self.tag_index
            .get(&tag_hash)
            .into_iter()
            .flatten()
            .filter_map(|kh| self.store.get(kh))
            .filter(|t| !t.deleted)
            .cloned()
            .collect()
    }

    /// The digest of held `(key, version)` pairs, as rumor ids.
    #[must_use]
    pub fn digest(&self) -> Digest {
        Digest::from_ids(self.store.values().map(|t| RumorId(t.rumor_id())).collect())
    }

    /// Tuples the peer (per its digest) is missing *and* wants: live
    /// tuples its sieve accepts, plus any tombstone (see
    /// [`PersistNode::wants`]).
    #[must_use]
    pub fn items_for_peer(
        &self,
        their_digest: &Digest,
        their_sieve: &SieveSpec,
    ) -> Vec<StoredTuple> {
        let theirs: std::collections::HashSet<RumorId> =
            their_digest.ids().iter().copied().collect();
        self.store
            .values()
            .filter(|t| !theirs.contains(&RumorId(t.rumor_id())))
            .filter(|t| t.deleted || their_sieve.accepts(&t.item_meta()))
            .cloned()
            .collect()
    }

    // ------------------------------------------------------------------
    // Digest-first repair: pure helpers (also driven directly by the
    // convergence proptest). Both sides of an exchange project their
    // store through the *other* node's sieve — at convergence the two
    // projections are the same set (all tombstones plus the live tuples
    // both sieves accept), so equal summaries certify pairwise agreement
    // on the shared key-space without any per-peer state.
    // ------------------------------------------------------------------

    /// Constant-size summary of our store projected through the peer's
    /// sieve.
    #[must_use]
    pub fn shared_summary(&self, their_sieve: &SieveSpec) -> Summary {
        Summary::from_ids(
            REPAIR_BUCKETS,
            self.store
                .values()
                .filter(|t| wants_with(their_sieve, t))
                .map(|t| RumorId(t.rumor_id())),
        )
    }

    /// Buckets where our shared projection diverges from the peer's
    /// summary. Semantically `self.shared_summary(their_sieve)
    /// .diff(theirs)`, but the local summary is rebuilt into the node's
    /// scratch buckets, so the steady-state compare leg is allocation-free
    /// apart from the returned (usually empty) diff.
    #[must_use]
    pub fn shared_summary_diff(&mut self, their_sieve: &SieveSpec, theirs: &Summary) -> Vec<u32> {
        let mut scratch = std::mem::take(&mut self.summary_scratch);
        scratch.rebuild(
            REPAIR_BUCKETS,
            self.store
                .values()
                .filter(|t| wants_with(their_sieve, t))
                .map(|t| RumorId(t.rumor_id())),
        );
        let diff = scratch.diff(theirs);
        self.summary_scratch = scratch;
        diff
    }

    /// Our shared-projection ids falling in `buckets` (sorted, so wire
    /// content never depends on hash-map iteration order).
    #[must_use]
    pub fn shared_ids_in(&self, their_sieve: &SieveSpec, buckets: &[u32]) -> Vec<RumorId> {
        let chosen: HashSet<u32> = buckets.iter().copied().collect();
        let mut ids: Vec<RumorId> = self
            .store
            .values()
            .filter(|t| wants_with(their_sieve, t))
            .map(|t| RumorId(t.rumor_id()))
            .filter(|&id| chosen.contains(&(Summary::bucket_of(REPAIR_BUCKETS, id) as u32)))
            .collect();
        ids.sort();
        ids
    }

    /// Resolves a [`DropletMsg::RepairPull`]: among our shared-projection
    /// tuples in `buckets`, the ones absent from `their_ids` (they lack
    /// them), plus the ids in `their_ids` we ourselves lack (and want —
    /// the peer built that list through *our* sieve).
    #[must_use]
    pub fn repair_delta(
        &self,
        their_sieve: &SieveSpec,
        buckets: &[u32],
        their_ids: &[RumorId],
    ) -> (Vec<StoredTuple>, Vec<RumorId>) {
        let theirs: HashSet<RumorId> = their_ids.iter().copied().collect();
        let chosen: HashSet<u32> = buckets.iter().copied().collect();
        let mut items = Vec::new();
        let mut ours = HashSet::new();
        for t in self.store.values().filter(|t| wants_with(their_sieve, t)) {
            let id = RumorId(t.rumor_id());
            if chosen.contains(&(Summary::bucket_of(REPAIR_BUCKETS, id) as u32)) {
                ours.insert(id);
                if !theirs.contains(&id) {
                    items.push(t.clone());
                }
            }
        }
        items.sort_by_key(StoredTuple::rumor_id);
        let mut want: Vec<RumorId> =
            their_ids.iter().copied().filter(|id| !ours.contains(id)).collect();
        want.sort();
        (items, want)
    }

    /// Looks up held tuples by rumor id (the reciprocal repair leg).
    #[must_use]
    pub fn tuples_for(&self, ids: &[RumorId]) -> Vec<StoredTuple> {
        let wanted: HashSet<RumorId> = ids.iter().copied().collect();
        let mut items: Vec<StoredTuple> = self
            .store
            .values()
            .filter(|t| wanted.contains(&RumorId(t.rumor_id())))
            .cloned()
            .collect();
        items.sort_by_key(StoredTuple::rumor_id);
        items
    }

    /// Drops the entry for `key_hash`, keeping the tag index in step.
    fn retire(&mut self, key_hash: u64) {
        if let Some(old) = self.store.remove(&key_hash) {
            if let (false, Some(tag)) = (old.deleted, old.tag_hash) {
                if let Some(keys) = self.tag_index.get_mut(&tag) {
                    keys.remove(&key_hash);
                    if keys.is_empty() {
                        self.tag_index.remove(&tag);
                    }
                }
            }
        }
    }

    /// Applies a repair batch; returns how many tuples actually changed
    /// the store, plus *supersession evidence*: for every offered tuple
    /// whose key we hold at a strictly newer version, our copy. The
    /// sender learns its entry is stale and either upgrades or retires
    /// it — without this leg, a node keeping a superseded tombstone for
    /// a key whose newer live version its peer's sieve rejects would
    /// disagree with that peer's summary on every round, forever.
    ///
    /// Symmetrically, an offered tuple that is strictly newer than our
    /// entry but that we do not want (a live write of a key our sieve
    /// rejects) retires our stale entry: the tombstone or old version we
    /// kept only guarded against writes older than the one we just saw.
    pub fn apply_repair(&mut self, items: Vec<StoredTuple>) -> (u64, Vec<StoredTuple>) {
        let mut recovered = 0u64;
        let mut evidence = Vec::new();
        for t in items {
            if self.wants(&t) {
                if self.apply(t.clone()) {
                    recovered += 1;
                    continue;
                }
            } else if self.store.get(&t.key_hash).is_some_and(|held| t.supersedes(held)) {
                self.retire(t.key_hash);
                continue;
            }
            if let Some(held) = self.store.get(&t.key_hash) {
                if held.supersedes(&t) {
                    evidence.push(held.clone());
                }
            }
        }
        evidence.sort_by_key(StoredTuple::rumor_id);
        evidence.dedup_by_key(|t| t.rumor_id());
        (recovered, evidence)
    }

    /// Initiates a digest exchange with up to `count` random peers — the
    /// rejoin hook, called when this node revives so acked writes that
    /// landed elsewhere while it was down flow back immediately.
    pub fn initiate_repair(&mut self, ctx: &mut Ctx<'_, DropletMsg>, count: usize) {
        if self.repair_period.is_none() {
            return;
        }
        let mut peers = self.peers.clone();
        peers.shuffle(ctx.rng());
        for peer in peers.into_iter().take(count) {
            ctx.send(peer, DropletMsg::RepairDigest { sieve: self.sieve.clone() });
        }
    }

    /// Records an instantaneous span at this node for a traced request —
    /// the persist-side store/serve marker that shows up as a leaf under
    /// the coordinator's wait span. No-op when the run or op is untraced.
    fn trace_event(ctx: &mut Ctx<'_, DropletMsg>, trace: Option<TraceCtx>, label: &'static str) {
        let Some(tc) = trace else { return };
        let now = ctx.now();
        let me = ctx.id();
        let Some(tr) = ctx.tracer() else { return };
        let span = tr.open(now, me, tc.op, Some(tc.span), label);
        tr.close(now, tc.op, span, true);
    }

    /// Handles persist-layer messages; shared by the composite process.
    pub fn on_message(&mut self, ctx: &mut Ctx<'_, DropletMsg>, from: NodeId, msg: DropletMsg) {
        match msg {
            DropletMsg::Disseminate { hops, tuple, coordinator, trace } => {
                let id = RumorId(tuple.rumor_id());
                let self_id = ctx.id();
                let peers = self.peers.clone();
                let (first, targets) = self.push.on_rumor(ctx.rng(), self_id, &peers, id, hops);
                if first {
                    ctx.metrics().incr("persist.received");
                    if self.wants(&tuple) {
                        let (key_hash, version) = (tuple.key_hash, tuple.version);
                        if self.apply(tuple.clone()) {
                            ctx.metrics().incr("persist.stored");
                            Self::trace_event(ctx, trace, "persist.store");
                            ctx.send(coordinator, DropletMsg::StoredAck { key_hash, version });
                        }
                    }
                }
                for t in targets {
                    ctx.metrics().incr("persist.relays");
                    ctx.send(
                        t,
                        DropletMsg::Disseminate {
                            hops: hops + 1,
                            tuple: tuple.clone(),
                            coordinator,
                            trace,
                        },
                    );
                }
            }
            DropletMsg::Fetch { req, key_hash, version, trace } => {
                let found = self.store.get(&key_hash).filter(|t| t.version >= version).cloned();
                ctx.metrics().incr("persist.fetches");
                Self::trace_event(ctx, trace, "persist.serve");
                ctx.send(from, DropletMsg::FetchReply { req, found });
            }
            DropletMsg::TagFetch { req, tag_hash, trace } => {
                ctx.metrics().incr("persist.tag_fetches");
                Self::trace_event(ctx, trace, "persist.serve");
                ctx.send(from, DropletMsg::TagFetchReply { req, items: self.by_tag(tag_hash) });
            }
            DropletMsg::ScanReq { req, lo, hi, trace } => {
                let items: Vec<StoredTuple> = self
                    .store
                    .values()
                    .filter(|t| !t.deleted)
                    .filter(|t| t.attr.is_some_and(|a| a >= lo && a <= hi))
                    .cloned()
                    .collect();
                Self::trace_event(ctx, trace, "persist.serve");
                ctx.send(from, DropletMsg::ScanReply { req, items });
            }
            DropletMsg::AggReq { req, trace } => {
                let mut sketch = DistSketch::new(self.sketch_k);
                let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
                for t in self.store.values().filter(|t| !t.deleted) {
                    if let Some(a) = t.attr {
                        sketch.observe(t.key_hash, a);
                        min = min.min(a);
                        max = max.max(a);
                    }
                }
                Self::trace_event(ctx, trace, "persist.serve");
                ctx.send(from, DropletMsg::AggReply { req, sketch, min, max });
            }
            DropletMsg::DeliverBatch { tuples, coordinator, traces } => {
                // Sieve-routed direct delivery: the coordinator already
                // computed that our sieve accepts these, so in the common
                // case every tuple is stored and acked in one batch.
                let mut acked = Vec::with_capacity(tuples.len());
                for (i, tuple) in tuples.into_iter().enumerate() {
                    ctx.metrics().incr("persist.received");
                    if self.wants(&tuple) {
                        let (key_hash, version) = (tuple.key_hash, tuple.version);
                        if self.apply(tuple) {
                            ctx.metrics().incr("persist.stored");
                        }
                        Self::trace_event(ctx, traces.get(i).copied().flatten(), "persist.store");
                        // Ack even a no-op apply (we hold >= that version):
                        // redelivery after a heal must clear the
                        // coordinator's undelivered buffer.
                        acked.push((key_hash, version));
                    }
                }
                if !acked.is_empty() {
                    ctx.send(coordinator, DropletMsg::StoredAckBatch { acked });
                }
            }
            DropletMsg::RepairDigest { sieve } => {
                // Step 2: answer with a constant-size summary of our store
                // projected through the initiator's sieve.
                ctx.metrics().incr("repair.syncs");
                let summary = self.shared_summary(&sieve);
                ctx.send(from, DropletMsg::RepairSummary { sieve: self.sieve.clone(), summary });
            }
            DropletMsg::RepairSummary { sieve, summary } => {
                // Step 3: compare against our own shared projection; equal
                // summaries end the round at two constant-size messages.
                let diff = self.shared_summary_diff(&sieve, &summary);
                if diff.is_empty() {
                    ctx.metrics().incr("repair.clean");
                } else {
                    let ids = self.shared_ids_in(&sieve, &diff);
                    ctx.send(
                        from,
                        DropletMsg::RepairPull { sieve: self.sieve.clone(), buckets: diff, ids },
                    );
                }
            }
            DropletMsg::RepairPull { sieve, buckets, ids } => {
                // Step 4: ship only the delta, and ask back for what the
                // initiator has that we lack.
                ctx.metrics().incr("repair.pulls");
                let (items, want) = self.repair_delta(&sieve, &buckets, &ids);
                if !items.is_empty() || !want.is_empty() {
                    ctx.send(from, DropletMsg::RepairItems { items, want });
                }
            }
            DropletMsg::RepairItems { items, want } => {
                // Step 5: the reciprocal leg — what the peer asked for,
                // plus supersession evidence for anything it offered that
                // we hold newer. Evidence hops carry strictly increasing
                // versions, so the exchange always terminates.
                let (recovered, mut reply) = self.apply_repair(items);
                ctx.metrics().add("repair.recovered", recovered);
                if !want.is_empty() {
                    reply.extend(self.tuples_for(&want));
                    reply.sort_by_key(StoredTuple::rumor_id);
                    reply.dedup_by_key(|t| t.rumor_id());
                }
                if !reply.is_empty() {
                    ctx.send(from, DropletMsg::RepairItems { items: reply, want: vec![] });
                }
            }
            // Heal / revival notice from the local failure detector:
            // immediately reconcile with the peer that just became
            // reachable, so writes acked while it was dark flow over
            // without waiting for the next periodic round.
            DropletMsg::PeerUp(peer) if self.repair_period.is_some() => {
                ctx.send(peer, DropletMsg::RepairDigest { sieve: self.sieve.clone() });
            }
            _ => {}
        }
    }

    /// Arms the repair timer (called from `on_start`/`on_up`).
    pub fn arm_timers(&self, ctx: &mut Ctx<'_, DropletMsg>) {
        if let Some(period) = self.repair_period {
            let jitter = ctx.rng().gen_range(0..period.0.max(1));
            ctx.set_timer(Duration(jitter), REPAIR_TIMER);
        }
    }

    /// Picks this round's repair partner under the configured policy.
    /// Under [`RepairPeering::Random`] this consumes exactly one uniform
    /// draw, identical to the historical `peers.choose` — recorded seeds
    /// keep replaying byte-for-byte.
    fn pick_repair_peer<R: Rng>(&self, rng: &mut R) -> Option<NodeId> {
        match &self.repair_peering {
            RepairPeering::RingBiased { neighbors } if !neighbors.is_empty() => {
                if rng.gen_range(0..FAR_PULL_PERIOD) > 0 {
                    neighbors.choose(rng).copied()
                } else {
                    self.peers.choose(rng).copied()
                }
            }
            _ => self.peers.choose(rng).copied(),
        }
    }

    /// Handles the repair timer.
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_, DropletMsg>, tag: TimerTag) {
        if tag != REPAIR_TIMER {
            return;
        }
        if let Some(peer) = self.pick_repair_peer(ctx.rng()) {
            ctx.send(peer, DropletMsg::RepairDigest { sieve: self.sieve.clone() });
        }
        if let Some(period) = self.repair_period {
            ctx.set_timer(period, REPAIR_TIMER);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Key;
    use dd_dht::Version;

    fn tuple(key: &str, version: u64) -> StoredTuple {
        StoredTuple::new(Key::from(key), Version(version), b"v".to_vec(), Some(1.0), None)
    }

    #[test]
    fn apply_keeps_latest_version_only() {
        let mut n = PersistNode::new(SieveSpec::Range { index: 0, of: 1, r: 1 }, 2, vec![], None);
        assert!(n.apply(tuple("k", 1)));
        assert!(n.apply(tuple("k", 3)));
        assert!(!n.apply(tuple("k", 2)), "stale write rejected");
        assert_eq!(n.store.len(), 1);
        assert_eq!(n.store.values().next().unwrap().version, Version(3));
    }

    #[test]
    fn tombstone_supersedes_and_live_count_drops() {
        let mut n = PersistNode::new(SieveSpec::Range { index: 0, of: 1, r: 1 }, 2, vec![], None);
        n.apply(tuple("k", 1));
        assert_eq!(n.live_count(), 1);
        n.apply(StoredTuple::tombstone("k".into(), Version(2)));
        assert_eq!(n.live_count(), 0);
        assert_eq!(n.store.len(), 1, "tombstone retained for ordering");
    }

    fn tagged(key: &str, version: u64, tag: &str) -> StoredTuple {
        StoredTuple::new(Key::from(key), Version(version), b"v".to_vec(), Some(1.0), Some(tag))
    }

    #[test]
    fn tag_index_serves_live_tuples_by_tag() {
        let mut n = PersistNode::new(SieveSpec::Range { index: 0, of: 1, r: 1 }, 2, vec![], None);
        let th = dd_sim::rng::stable_hash(b"feed:a");
        n.apply(tagged("p1", 1, "feed:a"));
        n.apply(tagged("p2", 1, "feed:a"));
        n.apply(tagged("q1", 1, "feed:b"));
        n.apply(tuple("untagged", 1));
        let feed = n.by_tag(th);
        assert_eq!(feed.len(), 2);
        assert!(feed.iter().all(|t| t.tag_hash == Some(th)));
        assert!(n.by_tag(dd_sim::rng::stable_hash(b"feed:none")).is_empty());
    }

    #[test]
    fn tag_index_follows_overwrites_and_tombstones() {
        let mut n = PersistNode::new(SieveSpec::Range { index: 0, of: 1, r: 1 }, 2, vec![], None);
        let ta = dd_sim::rng::stable_hash(b"feed:a");
        let tb = dd_sim::rng::stable_hash(b"feed:b");
        n.apply(tagged("p", 1, "feed:a"));
        assert_eq!(n.by_tag(ta).len(), 1);
        // Retagging moves the key between index entries.
        n.apply(tagged("p", 2, "feed:b"));
        assert!(n.by_tag(ta).is_empty());
        assert_eq!(n.by_tag(tb).len(), 1);
        // A tombstone removes the key from the index entirely.
        n.apply(StoredTuple::tombstone("p".into(), Version(3)));
        assert!(n.by_tag(tb).is_empty());
        // Stale re-delivery of the old tagged version must not resurrect it.
        assert!(!n.apply(tagged("p", 2, "feed:b")));
        assert!(n.by_tag(tb).is_empty());
    }

    #[test]
    fn tombstones_are_wanted_regardless_of_sieve() {
        // A tag sieve that owns feed:a's slot stores the live post; the
        // tombstone (tagless, so the sieve itself would route it to the
        // uniform fallback) must still be wanted by the holder.
        let slots = 16u64;
        let live = tagged("p", 1, "feed:a");
        let th = live.tag_hash.expect("tagged");
        let owner_slot = dd_sieve::TagSieve::tag_slots(th, slots, 1)[0];
        let mut owner =
            PersistNode::new(SieveSpec::Tag { slot: owner_slot, slots, r: 1 }, 2, vec![], None);
        assert!(owner.wants(&live));
        owner.apply(live);
        let tomb = StoredTuple::tombstone("p".into(), Version(2));
        assert!(owner.wants(&tomb), "holder accepts the delete");
        owner.apply(tomb);
        assert_eq!(owner.live_count(), 0);
    }

    #[test]
    fn early_tombstone_blocks_the_stale_live_write() {
        // Epidemic delivery is unordered: the tombstone (v2) can arrive
        // before the live write (v1) it supersedes. The node must keep
        // the tombstone — even when its sieve would reject it — so the
        // late live write cannot resurrect the deleted tuple.
        let slots = 16u64;
        let live = tagged("p", 1, "feed:a");
        let th = live.tag_hash.expect("tagged");
        let owner_slot = dd_sieve::TagSieve::tag_slots(th, slots, 1)[0];
        let mut owner =
            PersistNode::new(SieveSpec::Tag { slot: owner_slot, slots, r: 1 }, 2, vec![], None);
        let tomb = StoredTuple::tombstone("p".into(), Version(2));
        assert!(owner.wants(&tomb), "tombstone wanted before any version is held");
        owner.apply(tomb);
        assert!(!owner.apply(live), "stale live write rejected after the delete");
        assert_eq!(owner.live_count(), 0);
        assert!(owner.by_tag(th).is_empty());
    }

    #[test]
    fn digest_reflects_key_versions() {
        let mut n = PersistNode::new(SieveSpec::Range { index: 0, of: 1, r: 1 }, 2, vec![], None);
        n.apply(tuple("a", 1));
        let d1 = n.digest();
        n.apply(tuple("a", 2));
        let d2 = n.digest();
        assert_ne!(d1, d2, "new version changes the digest");
        assert_eq!(d2.len(), 1);
    }

    #[test]
    fn items_for_peer_respects_their_sieve_and_digest() {
        let all = SieveSpec::Range { index: 0, of: 1, r: 1 };
        let mut n = PersistNode::new(all.clone(), 2, vec![], None);
        // 8-segment sieve for the peer: accepts only a fraction of keys.
        let peer_sieve = SieveSpec::Range { index: 0, of: 8, r: 1 };
        for i in 0..64 {
            n.apply(tuple(&format!("k{i}"), 1));
        }
        let sent = n.items_for_peer(&Digest::default(), &peer_sieve);
        assert!(!sent.is_empty());
        assert!(sent.len() < 32, "only the peer's share is sent: {}", sent.len());
        for t in &sent {
            assert!(peer_sieve.accepts(&t.item_meta()));
        }
        // With the peer already holding everything, nothing is sent.
        let full = n.digest();
        assert!(n.items_for_peer(&full, &all).is_empty());
    }

    /// Drives one full digest-first round between two nodes without a
    /// simulator, mirroring the on_message handlers: summary compare →
    /// pull → delta → reciprocal. Returns the messages it took (0 when
    /// the pair was already converged).
    fn reconcile(a: &mut PersistNode, b: &mut PersistNode) -> usize {
        // a → b: RepairDigest{a.sieve}; b → a: RepairSummary.
        let summary_b = b.shared_summary(&a.sieve);
        let mut msgs = 2;
        let diff = a.shared_summary_diff(&b.sieve, &summary_b);
        if diff.is_empty() {
            return msgs;
        }
        // a → b: RepairPull.
        let ids_a = a.shared_ids_in(&b.sieve, &diff);
        msgs += 1;
        // b → a: RepairItems{items, want}.
        let (items, want) = b.repair_delta(&a.sieve, &diff, &ids_a);
        if items.is_empty() && want.is_empty() {
            return msgs;
        }
        msgs += 1;
        let (_, mut batch) = a.apply_repair(items);
        if !want.is_empty() {
            batch.extend(a.tuples_for(&want));
            batch.sort_by_key(StoredTuple::rumor_id);
            batch.dedup_by_key(|t| t.rumor_id());
        }
        // RepairItems ping-pong until quiet: each hop either answers the
        // want leg or carries supersession evidence (strictly increasing
        // versions), so this terminates.
        let mut a_to_b = true;
        while !batch.is_empty() {
            msgs += 1;
            let (_, evidence) = if a_to_b { b.apply_repair(batch) } else { a.apply_repair(batch) };
            batch = evidence;
            a_to_b = !a_to_b;
        }
        msgs
    }

    #[test]
    fn scratch_diff_agrees_with_fresh_summaries_across_rounds() {
        let all = SieveSpec::Range { index: 0, of: 1, r: 1 };
        let mut a = PersistNode::new(all.clone(), 2, vec![], None);
        let mut b = PersistNode::new(all, 2, vec![], None);
        for i in 0..40 {
            a.apply(tuple(&format!("k{i}"), 1));
            if i % 3 != 0 {
                b.apply(tuple(&format!("k{i}"), 1));
            }
        }
        // Several rounds over a changing store: the reused scratch must
        // match a freshly allocated summary every time.
        let (a_sieve, b_sieve) = (a.sieve.clone(), b.sieve.clone());
        for round in 0..4 {
            let theirs = b.shared_summary(&a_sieve);
            let fresh = a.shared_summary(&b_sieve).diff(&theirs);
            let scratch = a.shared_summary_diff(&b_sieve, &theirs);
            assert_eq!(scratch, fresh, "round {round}");
            a.apply(tuple(&format!("extra{round}"), 1));
        }
    }

    #[test]
    fn ring_biased_rounds_pull_mostly_from_neighbours() {
        use rand::SeedableRng;
        let all = SieveSpec::Range { index: 0, of: 1, r: 1 };
        let peers: Vec<NodeId> = (1..=10).map(NodeId).collect();
        let neighbours = vec![NodeId(1), NodeId(10)];
        let n = PersistNode::new(all, 2, peers, Some(Duration(100)))
            .with_ring_neighbors(neighbours.clone());
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0xCA117);
        let rounds = 1_000;
        let mut neighbour_pulls = 0usize;
        let mut far_pulls = 0usize;
        for _ in 0..rounds {
            let peer = n.pick_repair_peer(&mut rng).expect("peers nonempty");
            if neighbours.contains(&peer) {
                neighbour_pulls += 1;
            } else {
                far_pulls += 1;
            }
        }
        // Expected neighbour share is 3/4 + 1/4·(2/10) = 0.8; a calm node
        // should spend the clear majority of rounds on its ring
        // neighbours while still making some far pulls for mixing.
        assert!(
            neighbour_pulls * 3 > rounds * 2,
            "neighbour pulls dominate: {neighbour_pulls}/{rounds}"
        );
        assert!(far_pulls > 0, "far pulls still occur for long-range mixing");
    }

    #[test]
    fn random_peering_is_the_default_and_draws_uniformly() {
        use rand::SeedableRng;
        let all = SieveSpec::Range { index: 0, of: 1, r: 1 };
        let peers: Vec<NodeId> = (1..=4).map(NodeId).collect();
        let n = PersistNode::new(all, 2, peers.clone(), Some(Duration(100)));
        assert_eq!(n.repair_peering, RepairPeering::Random);
        // One draw per round, same as `peers.choose` — the property the
        // determinism replay suite depends on.
        let mut a = rand::rngs::SmallRng::seed_from_u64(7);
        let mut b = rand::rngs::SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(n.pick_repair_peer(&mut a), peers.choose(&mut b).copied());
        }
    }

    fn sorted_ids(n: &PersistNode) -> Vec<u64> {
        let mut ids: Vec<u64> = n.store.values().map(StoredTuple::rumor_id).collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn converged_pair_exchanges_two_constant_size_messages() {
        let all = SieveSpec::Range { index: 0, of: 1, r: 1 };
        let mut a = PersistNode::new(all.clone(), 2, vec![], None);
        let mut b = PersistNode::new(all, 2, vec![], None);
        for i in 0..100 {
            a.apply(tuple(&format!("k{i}"), 1));
            b.apply(tuple(&format!("k{i}"), 1));
        }
        let summary = b.shared_summary(&a.sieve);
        assert_eq!(summary.bucket_count(), REPAIR_BUCKETS, "wire size is constant");
        assert_eq!(reconcile(&mut a, &mut b), 2, "steady state is digest + summary");
    }

    #[test]
    fn empty_stores_agree_on_an_empty_digest() {
        let all = SieveSpec::Range { index: 0, of: 1, r: 1 };
        let mut a = PersistNode::new(all.clone(), 2, vec![], None);
        let mut b = PersistNode::new(all, 2, vec![], None);
        assert!(a.shared_summary(&b.sieve).is_empty());
        assert_eq!(reconcile(&mut a, &mut b), 2, "nothing to pull from empty stores");
    }

    #[test]
    fn disjoint_stores_converge_in_one_round() {
        let all = SieveSpec::Range { index: 0, of: 1, r: 1 };
        let mut a = PersistNode::new(all.clone(), 2, vec![], None);
        let mut b = PersistNode::new(all, 2, vec![], None);
        for i in 0..20 {
            a.apply(tuple(&format!("a{i}"), 1));
            b.apply(tuple(&format!("b{i}"), 1));
        }
        reconcile(&mut a, &mut b);
        assert_eq!(a.store.len(), 40);
        assert_eq!(sorted_ids(&a), sorted_ids(&b), "both directions flowed");
        assert_eq!(reconcile(&mut a, &mut b), 2, "second round is clean");
    }

    #[test]
    fn tombstone_only_delta_crosses_sieve_classes() {
        // a and b cover disjoint key ranges; the only shared-projection
        // items are tombstones. A delete known to a must reach b even
        // though b's sieve would reject the live key.
        let left = SieveSpec::Range { index: 0, of: 2, r: 1 };
        let right = SieveSpec::Range { index: 1, of: 2, r: 1 };
        let mut a = PersistNode::new(left, 2, vec![], None);
        let mut b = PersistNode::new(right, 2, vec![], None);
        a.apply(StoredTuple::tombstone("gone1".into(), Version(2)));
        a.apply(StoredTuple::tombstone("gone2".into(), Version(5)));
        reconcile(&mut a, &mut b);
        assert_eq!(b.store.len(), 2, "tombstones replicate across classes");
        assert!(b.store.values().all(|t| t.deleted));
        // Live tuples outside the shared projection never cross.
        for i in 0..16 {
            a.apply(tuple(&format!("x{i}"), 1));
        }
        let before = b.store.len();
        reconcile(&mut a, &mut b);
        assert!(
            b.store.values().filter(|t| !t.deleted).all(|t| b.sieve.accepts(&t.item_meta())),
            "b stores only live tuples its sieve accepts"
        );
        assert!(b.store.len() >= before);
    }

    #[test]
    fn superseded_tombstones_retire_instead_of_diverging_forever() {
        // b (right half) keeps the broadcast tombstone of a left-half
        // key; a later live write lands only at a. b's tombstone is now
        // stale metadata b's summary keeps advertising — the evidence
        // leg must teach b to retire it, or this pair re-pulls on every
        // round until the end of time.
        let left = SieveSpec::Range { index: 0, of: 2, r: 1 };
        let right = SieveSpec::Range { index: 1, of: 2, r: 1 };
        let key = (0..)
            .map(|i| format!("k{i}"))
            .find(|k| {
                left.accepts(
                    &StoredTuple::new(k.as_str().into(), Version(1), vec![], None, None)
                        .item_meta(),
                )
            })
            .unwrap();
        let mut a = PersistNode::new(left, 2, vec![], None);
        let mut b = PersistNode::new(right, 2, vec![], None);
        a.apply(StoredTuple::tombstone(key.as_str().into(), Version(2)));
        b.apply(StoredTuple::tombstone(key.as_str().into(), Version(2)));
        a.apply(tuple(&key, 3)); // rebirth, delivered only to its owner
        assert_eq!(reconcile(&mut a, &mut b), 5, "items + evidence resolve the pair");
        assert!(b.store.is_empty(), "b retired the superseded tombstone");
        assert_eq!(a.store[&Key::from(key.as_str()).hash()].version, Version(3));
        assert_eq!(reconcile(&mut a, &mut b), 2, "steady state is clean again");
    }

    #[test]
    fn repair_delta_reports_what_each_side_lacks() {
        let all = SieveSpec::Range { index: 0, of: 1, r: 1 };
        let mut a = PersistNode::new(all.clone(), 2, vec![], None);
        let mut b = PersistNode::new(all, 2, vec![], None);
        let shared = tuple("both", 1);
        let only_a = tuple("mine", 1);
        let only_b = tuple("yours", 1);
        a.apply(shared.clone());
        a.apply(only_a.clone());
        b.apply(shared);
        b.apply(only_b.clone());
        let every_bucket: Vec<u32> = (0..REPAIR_BUCKETS as u32).collect();
        let ids_a = a.shared_ids_in(&b.sieve, &every_bucket);
        let (items, want) = b.repair_delta(&a.sieve, &every_bucket, &ids_a);
        assert_eq!(items.len(), 1, "b ships what a lacks");
        assert_eq!(items[0].rumor_id(), only_b.rumor_id());
        assert_eq!(want, vec![RumorId(only_a.rumor_id())], "b asks for what it lacks");
        assert_eq!(a.tuples_for(&want).len(), 1, "a can serve the reciprocal leg");
    }
}
