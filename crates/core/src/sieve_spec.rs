//! Wire-format sieve descriptions.
//!
//! Repair peers must evaluate *each other's* sieves ("nodes responsible to
//! the same key space … check tuple redundancy directly between them",
//! §III-A), so a node's sieve must be expressible as plain data. A
//! [`SieveSpec`] is that serialisable form; it evaluates via the concrete
//! sieve types of `dd-sieve`.

use dd_sieve::{HistogramSieve, ItemMeta, RangeSieve, Sieve, TagSieve, UniformSieve};

/// A sieve as shippable data.
#[derive(Debug, Clone, PartialEq)]
pub enum SieveSpec {
    /// `r`-fold key-range partition: this node is segment `index` of `of`.
    Range {
        /// Segment index.
        index: u64,
        /// Number of segments.
        of: u64,
        /// Replication degree.
        r: u32,
    },
    /// Uniform `r/n` acceptance with a per-node salt.
    Uniform {
        /// Node salt.
        salt: u64,
        /// Replication degree.
        r: u32,
        /// Population estimate.
        n: u64,
    },
    /// Tag collocation over `slots` slots (untagged items fall back to
    /// uniform `r/slots`).
    Tag {
        /// This node's slot.
        slot: u64,
        /// Total slots.
        slots: u64,
        /// Replication degree.
        r: u32,
    },
    /// Distribution-aware: equi-depth bucket ownership in the value domain.
    Histogram {
        /// Interior bucket edges (ascending).
        edges: Vec<f64>,
        /// Starting bucket index.
        index: usize,
        /// Replication degree (consecutive buckets).
        r: u32,
    },
}

impl SieveSpec {
    /// Whether this sieve retains `item`.
    #[must_use]
    pub fn accepts(&self, item: &ItemMeta) -> bool {
        match self {
            SieveSpec::Range { index, of, r } => {
                RangeSieve::partition(*index, *of, *r).accepts(item)
            }
            SieveSpec::Uniform { salt, r, n } => {
                UniformSieve::replication(*salt, *r, *n).accepts(item)
            }
            SieveSpec::Tag { slot, slots, r } => TagSieve::new(*slot, *slots, *r).accepts(item),
            SieveSpec::Histogram { edges, index, r } => {
                HistogramSieve::new(edges.clone(), *index, *r).accepts(item)
            }
        }
    }

    /// The sieve-class id (same semantics as
    /// [`dd_sieve::Sieve::class_id`]): nodes with equal class cover the
    /// same key-space portion and pair up for repair.
    #[must_use]
    pub fn class_id(&self) -> u64 {
        match self {
            SieveSpec::Range { index, of, r } => RangeSieve::partition(*index, *of, *r).class_id(),
            SieveSpec::Uniform { salt, r, n } => {
                UniformSieve::replication(*salt, *r, *n).class_id()
            }
            SieveSpec::Tag { slot, slots, r } => TagSieve::new(*slot, *slots, *r).class_id(),
            SieveSpec::Histogram { edges, index, r } => {
                HistogramSieve::new(edges.clone(), *index, *r).class_id()
            }
        }
    }

    /// Expected fraction of the key space retained.
    #[must_use]
    pub fn grain(&self) -> f64 {
        match self {
            SieveSpec::Range { index, of, r } => RangeSieve::partition(*index, *of, *r).grain(),
            SieveSpec::Uniform { salt, r, n } => UniformSieve::replication(*salt, *r, *n).grain(),
            SieveSpec::Tag { slot, slots, r } => TagSieve::new(*slot, *slots, *r).grain(),
            SieveSpec::Histogram { edges, index, r } => {
                HistogramSieve::new(edges.clone(), *index, *r).grain()
            }
        }
    }

    /// The default persistent-layer assignment: node `i` of `n` covers
    /// range segment `i` with replication `r` — the paper's "responsible
    /// for a given portion of the key space".
    #[must_use]
    pub fn default_for(i: u64, n: u64, r: u32) -> SieveSpec {
        SieveSpec::Range { index: i, of: n, r }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(key: &str) -> ItemMeta {
        ItemMeta::from_key(key.as_bytes())
    }

    #[test]
    fn range_spec_matches_concrete_sieve() {
        let spec = SieveSpec::Range { index: 2, of: 8, r: 3 };
        let concrete = RangeSieve::partition(2, 8, 3);
        for k in 0..200 {
            let it = item(&format!("k{k}"));
            assert_eq!(spec.accepts(&it), concrete.accepts(&it));
        }
        assert_eq!(spec.class_id(), concrete.class_id());
        assert!((spec.grain() - concrete.grain()).abs() < 1e-12);
    }

    #[test]
    fn uniform_spec_matches_concrete_sieve() {
        let spec = SieveSpec::Uniform { salt: 9, r: 4, n: 100 };
        let concrete = UniformSieve::replication(9, 4, 100);
        for k in 0..200 {
            let it = item(&format!("u{k}"));
            assert_eq!(spec.accepts(&it), concrete.accepts(&it));
        }
    }

    #[test]
    fn default_population_covers_key_space_r_times() {
        let n = 10u64;
        let r = 3u32;
        let specs: Vec<SieveSpec> = (0..n).map(|i| SieveSpec::default_for(i, n, r)).collect();
        for k in 0..500 {
            let it = item(&format!("cover{k}"));
            let owners = specs.iter().filter(|s| s.accepts(&it)).count();
            assert_eq!(owners, r as usize);
        }
    }

    #[test]
    fn same_range_specs_share_class() {
        let a = SieveSpec::Range { index: 1, of: 4, r: 2 };
        let b = SieveSpec::Range { index: 1, of: 4, r: 2 };
        let c = SieveSpec::Range { index: 2, of: 4, r: 2 };
        assert_eq!(a.class_id(), b.class_id());
        assert_ne!(a.class_id(), c.class_id());
    }

    #[test]
    fn histogram_spec_accepts_by_attr() {
        let spec = SieveSpec::Histogram { edges: vec![10.0, 20.0], index: 1, r: 1 };
        let mid = ItemMeta::from_key(b"m").with_attr(15.0);
        let low = ItemMeta::from_key(b"l").with_attr(5.0);
        assert!(spec.accepts(&mid));
        assert!(!spec.accepts(&low));
    }

    #[test]
    fn tag_spec_collocates() {
        let n = 20u64;
        let specs: Vec<SieveSpec> =
            (0..n).map(|s| SieveSpec::Tag { slot: s, slots: n, r: 2 }).collect();
        let a = ItemMeta::from_key(b"p1").with_tag(b"feed:x");
        let b = ItemMeta::from_key(b"p2").with_tag(b"feed:x");
        let oa: Vec<usize> =
            specs.iter().enumerate().filter(|(_, s)| s.accepts(&a)).map(|(i, _)| i).collect();
        let ob: Vec<usize> =
            specs.iter().enumerate().filter(|(_, s)| s.accepts(&b)).map(|(i, _)| i).collect();
        assert_eq!(oa, ob);
        assert_eq!(oa.len(), 2);
    }
}
