//! Typed, pipelined client sessions (the client plane of §II).
//!
//! A [`Client`] is a session against a [`Cluster`]: every operation
//! returns immediately with a typed [`Pending<K>`] completion handle, so
//! one session can keep thousands of operations outstanding while
//! [`Cluster::pump`] advances virtual time. Completions are harvested
//! non-blockingly with [`Client::poll`] (one handle) or in bulk with
//! [`Client::drain`] (everything ready), and every completion is a
//! `Result<T, OpError>` — timeouts, partial batches and a dead entry tier
//! are errors, distinct from an ordinary "key absent" read.
//!
//! ```
//! use dd_core::{Cluster, ClusterConfig};
//!
//! let mut cluster = Cluster::new(ClusterConfig::small(), 42);
//! cluster.settle();
//! let mut client = cluster.client();
//! // Pipelined: both writes are in flight at once.
//! let a = client.put(&mut cluster, "user:1", b"alice".to_vec(), None, None);
//! let b = client.put(&mut cluster, "user:2", b"bob".to_vec(), None, None);
//! let a = client.recv(&mut cluster, a).expect("write ordered");
//! let b = client.recv(&mut cluster, b).expect("write ordered");
//! assert_eq!(u64::from(a.version.0) + u64::from(b.version.0), 2);
//! ```

use crate::cluster::{
    AggregateResult, Cluster, DropletNode, GetResult, MultiGetResult, MultiPutResult, PutResult,
};
use crate::msg::DropletMsg;
use crate::soft::SoftNode;
use crate::tuple::{Key, StoredTuple, Tag, TupleSpec};
use bytes::Bytes;
use dd_audit::{OpDesc, OpFailure, Outcome};
use dd_sim::{NodeId, Time, TraceCtx};
use rand::rngs::SmallRng;
use std::collections::HashMap;
use std::fmt;
use std::marker::PhantomData;

/// Virtual ticks an operation may stay outstanding before the session
/// reports [`OpError::Timeout`] (the old lock-step wait window, kept so a
/// dead coordinator surfaces as an error rather than a hang).
pub const OP_TIMEOUT: u64 = 10_000;

/// Virtual-time quantum [`Client::recv`] advances between polls.
const RECV_QUANTUM: u64 = 50;

/// Why a client operation did not produce a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpError {
    /// No completion within [`OP_TIMEOUT`] virtual ticks of submission —
    /// e.g. the key's soft coordinator died mid-operation.
    Timeout {
        /// The replica the operation was still waiting on when it timed
        /// out, per the soft tier's pending-op tables (`None` when no
        /// soft node held pending state — e.g. the coordinator itself
        /// was dead, or the op never reached one).
        waiting_on: Option<NodeId>,
    },
    /// A batched operation completed with fewer items than submitted
    /// (dead or unreachable key coordinators were given up on).
    PartialResult {
        /// Items that completed.
        got: usize,
        /// Items submitted.
        want: usize,
    },
    /// No live soft node existed to accept the operation at submission.
    NoLiveEntry,
    /// The session has no record of this operation: its completion was
    /// already harvested (by `poll`, `recv` or a `drain` sweep), or the
    /// handle came from a different session.
    AlreadyHarvested,
}

impl fmt::Display for OpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpError::Timeout { waiting_on: Some(n) } => {
                write!(f, "operation timed out after {OP_TIMEOUT} ticks waiting on node {}", n.0)
            }
            OpError::Timeout { waiting_on: None } => {
                write!(f, "operation timed out after {OP_TIMEOUT} ticks")
            }
            OpError::PartialResult { got, want } => {
                write!(f, "batched operation completed {got} of {want} items")
            }
            OpError::NoLiveEntry => write!(f, "no live soft node to accept the operation"),
            OpError::AlreadyHarvested => {
                write!(f, "operation already harvested or unknown to this session")
            }
        }
    }
}

impl std::error::Error for OpError {}

mod sealed {
    /// Prevents downstream [`super::OpKind`] impls: the op set is the
    /// protocol's, not the caller's.
    pub trait Sealed {}
}

/// One operation kind of the client plane. Implemented only by the
/// markers in [`ops`]; the associated `Output` is what a successful
/// completion carries.
pub trait OpKind: sealed::Sealed {
    /// Payload of a successful completion.
    type Output;
    #[doc(hidden)]
    const KIND: Kind;
    #[doc(hidden)]
    fn take(soft: &mut SoftNode, req: u64) -> Option<Self::Output>;
    #[doc(hidden)]
    fn finish(raw: Self::Output, _want: usize) -> Result<Self::Output, OpError> {
        Ok(raw)
    }
    /// The audit-history projection of a harvested completion (built only
    /// when a recorder is installed — see [`Cluster::begin_audit`]).
    #[doc(hidden)]
    fn audit(raw: &Self::Output, want: usize) -> Outcome;
}

/// Marker types naming each operation kind (the `K` of [`Pending<K>`]).
pub mod ops {
    /// A single write ([`super::Client::put`]).
    #[derive(Debug, Clone, Copy)]
    pub enum Put {}
    /// A single read ([`super::Client::get`]).
    #[derive(Debug, Clone, Copy)]
    pub enum Get {}
    /// A versioned delete ([`super::Client::delete`]).
    #[derive(Debug, Clone, Copy)]
    pub enum Delete {}
    /// An attribute range scan ([`super::Client::scan`]).
    #[derive(Debug, Clone, Copy)]
    pub enum Scan {}
    /// A cluster-wide aggregate ([`super::Client::aggregate`]).
    #[derive(Debug, Clone, Copy)]
    pub enum Aggregate {}
    /// A batched write ([`super::Client::multi_put`]).
    #[derive(Debug, Clone, Copy)]
    pub enum MultiPut {}
    /// A tag-scoped read ([`super::Client::multi_get`]).
    #[derive(Debug, Clone, Copy)]
    pub enum MultiGet {}
}

/// Runtime tag mirroring the [`ops`] markers, used by [`Client::drain`]
/// to harvest without knowing static types.
#[doc(hidden)]
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    Put,
    Get,
    Delete,
    Scan,
    Aggregate,
    MultiPut,
    MultiGet,
}

/// Harvests one completion through kind `K`'s [`OpKind`] impl — the
/// single source of take/finish semantics for both the typed
/// ([`Client::poll`]) and runtime ([`Client::drain`]) paths. When `audit`
/// is set, the completion's history projection is extracted from the raw
/// record *before* `finish` consumes it (a partially ordered batch still
/// audits its per-item versions).
fn harvest<K: OpKind>(
    soft: &mut SoftNode,
    req: u64,
    want: usize,
    audit: bool,
    wrap: fn(Result<K::Output, OpError>) -> Completion,
) -> Option<(Completion, Option<Outcome>)> {
    K::take(soft, req).map(|raw| {
        let outcome = audit.then(|| K::audit(&raw, want));
        (wrap(K::finish(raw, want)), outcome)
    })
}

impl Kind {
    /// Probes one soft node for this kind's completion of `req`.
    fn take(
        self,
        soft: &mut SoftNode,
        req: u64,
        want: usize,
        audit: bool,
    ) -> Option<(Completion, Option<Outcome>)> {
        match self {
            Kind::Put => harvest::<ops::Put>(soft, req, want, audit, Completion::Put),
            Kind::Delete => harvest::<ops::Delete>(soft, req, want, audit, Completion::Delete),
            Kind::Get => harvest::<ops::Get>(soft, req, want, audit, Completion::Get),
            Kind::Scan => harvest::<ops::Scan>(soft, req, want, audit, Completion::Scan),
            Kind::Aggregate => {
                harvest::<ops::Aggregate>(soft, req, want, audit, Completion::Aggregate)
            }
            Kind::MultiPut => {
                harvest::<ops::MultiPut>(soft, req, want, audit, Completion::MultiPut)
            }
            Kind::MultiGet => {
                harvest::<ops::MultiGet>(soft, req, want, audit, Completion::MultiGet)
            }
        }
    }

    /// The root span label of this kind's trace.
    fn trace_label(self) -> &'static str {
        match self {
            Kind::Put => "client.put",
            Kind::Get => "client.get",
            Kind::Delete => "client.delete",
            Kind::Scan => "client.scan",
            Kind::Aggregate => "client.aggregate",
            Kind::MultiPut => "client.multi_put",
            Kind::MultiGet => "client.multi_get",
        }
    }

    /// The failed completion of this kind.
    fn failed(self, err: OpError) -> Completion {
        match self {
            Kind::Put => Completion::Put(Err(err)),
            Kind::Delete => Completion::Delete(Err(err)),
            Kind::Get => Completion::Get(Err(err)),
            Kind::Scan => Completion::Scan(Err(err)),
            Kind::Aggregate => Completion::Aggregate(Err(err)),
            Kind::MultiPut => Completion::MultiPut(Err(err)),
            Kind::MultiGet => Completion::MultiGet(Err(err)),
        }
    }
}

impl sealed::Sealed for ops::Put {}
impl OpKind for ops::Put {
    type Output = PutResult;
    const KIND: Kind = Kind::Put;
    fn take(soft: &mut SoftNode, req: u64) -> Option<PutResult> {
        soft.take_put(req)
    }
    fn audit(raw: &PutResult, _want: usize) -> Outcome {
        Outcome::Write { version: raw.version }
    }
}

impl sealed::Sealed for ops::Delete {}
impl OpKind for ops::Delete {
    type Output = PutResult;
    const KIND: Kind = Kind::Delete;
    fn take(soft: &mut SoftNode, req: u64) -> Option<PutResult> {
        soft.take_put(req)
    }
    fn audit(raw: &PutResult, _want: usize) -> Outcome {
        Outcome::Write { version: raw.version }
    }
}

impl sealed::Sealed for ops::Get {}
impl OpKind for ops::Get {
    type Output = Option<GetResult>;
    const KIND: Kind = Kind::Get;
    fn take(soft: &mut SoftNode, req: u64) -> Option<Option<GetResult>> {
        soft.take_get(req)
    }
    fn audit(raw: &Option<GetResult>, _want: usize) -> Outcome {
        Outcome::Read { version: raw.as_ref().map(|t| t.version) }
    }
}

impl sealed::Sealed for ops::Scan {}
impl OpKind for ops::Scan {
    type Output = Vec<StoredTuple>;
    const KIND: Kind = Kind::Scan;
    fn take(soft: &mut SoftNode, req: u64) -> Option<Vec<StoredTuple>> {
        soft.take_scan(req)
    }
    fn audit(raw: &Vec<StoredTuple>, _want: usize) -> Outcome {
        Outcome::Scan { tuples: raw.len() as u64 }
    }
}

impl sealed::Sealed for ops::Aggregate {}
impl OpKind for ops::Aggregate {
    type Output = AggregateResult;
    const KIND: Kind = Kind::Aggregate;
    fn take(soft: &mut SoftNode, req: u64) -> Option<AggregateResult> {
        soft.take_agg(req).map(|(sketch, min, max)| AggregateResult::from_parts(sketch, min, max))
    }
    fn audit(_raw: &AggregateResult, _want: usize) -> Outcome {
        Outcome::Aggregate
    }
}

impl sealed::Sealed for ops::MultiPut {}
impl OpKind for ops::MultiPut {
    type Output = MultiPutResult;
    const KIND: Kind = Kind::MultiPut;
    fn take(soft: &mut SoftNode, req: u64) -> Option<MultiPutResult> {
        soft.take_multi_put(req)
    }
    fn finish(raw: MultiPutResult, want: usize) -> Result<MultiPutResult, OpError> {
        if raw.items < want {
            Err(OpError::PartialResult { got: raw.items, want })
        } else {
            Ok(raw)
        }
    }
    fn audit(raw: &MultiPutResult, want: usize) -> Outcome {
        Outcome::MultiPut { versions: raw.versions.clone(), want: want as u32 }
    }
}

impl sealed::Sealed for ops::MultiGet {}
impl OpKind for ops::MultiGet {
    type Output = MultiGetResult;
    const KIND: Kind = Kind::MultiGet;
    fn take(soft: &mut SoftNode, req: u64) -> Option<MultiGetResult> {
        soft.take_multi_get(req).map(|(items, complete)| MultiGetResult { items, complete })
    }
    fn audit(raw: &MultiGetResult, _want: usize) -> Outcome {
        Outcome::MultiGet {
            items: raw.items.iter().map(|t| (t.key.as_str().to_owned(), t.version)).collect(),
            complete: raw.complete,
        }
    }
}

/// A typed completion handle: proof that operation `req` of kind `K` was
/// submitted. Harvest it with [`Client::poll`] (non-blocking) or
/// [`Client::recv`] (drives time). The phantom kind makes cross-kind
/// mix-ups — the old untyped plane let a put's req id be harvested as a
/// read — a type error.
pub struct Pending<K: OpKind> {
    req: u64,
    _kind: PhantomData<fn() -> K>,
}

impl<K: OpKind> Pending<K> {
    fn new(req: u64) -> Self {
        Pending { req, _kind: PhantomData }
    }

    /// The cluster-unique request id (correlates with [`Client::drain`]).
    #[must_use]
    pub fn req(&self) -> u64 {
        self.req
    }
}

impl<K: OpKind> fmt::Debug for Pending<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pending({}, {:?})", self.req, K::KIND)
    }
}

impl<K: OpKind> Clone for Pending<K> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K: OpKind> Copy for Pending<K> {}

/// A harvested completion, as surfaced by [`Client::drain`]: one variant
/// per op kind, each carrying the kind's `Result<T, OpError>`.
#[derive(Debug, Clone)]
pub enum Completion {
    /// A write completed.
    Put(Result<PutResult, OpError>),
    /// A read completed (`Ok(None)` = key absent).
    Get(Result<Option<GetResult>, OpError>),
    /// A delete completed.
    Delete(Result<PutResult, OpError>),
    /// A scan completed.
    Scan(Result<Vec<StoredTuple>, OpError>),
    /// An aggregate completed.
    Aggregate(Result<AggregateResult, OpError>),
    /// A batched write completed.
    MultiPut(Result<MultiPutResult, OpError>),
    /// A tag-scoped read completed.
    MultiGet(Result<MultiGetResult, OpError>),
}

impl Completion {
    /// Whether this completion carries a success.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.err().is_none()
    }

    /// The error, if this completion failed.
    #[must_use]
    pub fn err(&self) -> Option<OpError> {
        match self {
            Completion::Put(r) | Completion::Delete(r) => r.as_ref().err().copied(),
            Completion::Get(r) => r.as_ref().err().copied(),
            Completion::Scan(r) => r.as_ref().err().copied(),
            Completion::MultiGet(r) => r.as_ref().err().copied(),
            Completion::Aggregate(r) => r.as_ref().err().copied(),
            Completion::MultiPut(r) => r.as_ref().err().copied(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Outstanding {
    kind: Kind,
    issued: Time,
    /// Batch size for multi-puts (what `items` must reach for `Ok`).
    want: usize,
    /// Submission found no live entry node; completes as `NoLiveEntry`.
    stillborn: bool,
}

/// A client session against one [`Cluster`].
///
/// Obtained from [`Cluster::client`]; each session owns a private RNG
/// stream for entry-node selection (so sessions are independent and the
/// whole run replays from the seed) and tracks its outstanding
/// operations. Many sessions can run concurrently, each holding many
/// in-flight operations — the pipelined client plane the paper's
/// million-user workloads need.
///
/// ```
/// use dd_core::{Cluster, ClusterConfig, OpError};
///
/// let mut cluster = Cluster::new(ClusterConfig::small(), 7);
/// cluster.settle();
/// let mut client = cluster.client();
/// let w = client.put(&mut cluster, "k", b"v".to_vec(), None, None);
/// assert!(client.recv(&mut cluster, w).is_ok());
/// // Reads distinguish "absent" (Ok(None)) from failure (Err(..)).
/// let r = client.get(&mut cluster, "nope");
/// assert_eq!(client.recv(&mut cluster, r), Ok(None));
/// let s = client.scan(&mut cluster, 0.0, 1.0);
/// assert!(matches!(client.recv(&mut cluster, s), Ok(items) if items.is_empty()));
/// # let _: fn(OpError) = |e| match e { OpError::Timeout { .. } => {}, _ => {} };
/// ```
#[derive(Debug)]
pub struct Client {
    session: u64,
    rng: SmallRng,
    outstanding: HashMap<u64, Outstanding>,
}

impl Client {
    pub(crate) fn new(session: u64, rng: SmallRng) -> Self {
        Client { session, rng, outstanding: HashMap::new() }
    }

    /// This session's id (unique per cluster).
    #[must_use]
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Operations submitted and not yet harvested.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.outstanding.len()
    }

    fn submit(
        &mut self,
        cluster: &mut Cluster,
        kind: Kind,
        want: usize,
        make: impl FnOnce(u64, Option<TraceCtx>) -> DropletMsg,
    ) -> u64 {
        let req = cluster.fresh_req();
        let issued = cluster.sim.now();
        let stillborn = match cluster.entry_for(&mut self.rng) {
            Some(entry) => {
                // Traced runs open the op's root span (always id 0) at the
                // entry node; everything downstream nests under it.
                let trace = cluster.sim.tracer_mut().map(|tr| {
                    let span = tr.open(issued, entry, req, None, kind.trace_label());
                    TraceCtx { op: req, span }
                });
                cluster.sim.inject(entry, entry, make(req, trace));
                false
            }
            None => true,
        };
        self.outstanding.insert(req, Outstanding { kind, issued, want, stillborn });
        req
    }

    /// Records the invocation half of an audit pair (no-op without a
    /// recorder; the descriptor is built lazily so the disabled path
    /// allocates nothing).
    fn record_invoke(&self, cluster: &mut Cluster, req: u64, desc: impl FnOnce() -> OpDesc) {
        if cluster.audit_enabled() {
            cluster.record_invoke(req, self.session, desc());
        }
    }

    /// Submits a write; completes with the assigned version and the
    /// storage acks counted so far.
    pub fn put(
        &mut self,
        cluster: &mut Cluster,
        key: impl Into<Key>,
        value: Vec<u8>,
        attr: Option<f64>,
        tag: Option<&str>,
    ) -> Pending<ops::Put> {
        let (key, value, tag) = (key.into(), Bytes::from(value), tag.map(Tag::from));
        let audit = cluster.audit_enabled().then(|| OpDesc::Put {
            key: key.as_str().to_owned(),
            tag: tag.as_ref().map(|t| t.as_str().to_owned()),
        });
        let req = self.submit(cluster, Kind::Put, 0, |req, trace| DropletMsg::ClientPut {
            req,
            key,
            value,
            attr,
            tag,
            trace,
        });
        if let Some(desc) = audit {
            cluster.record_invoke(req, self.session, desc);
        }
        Pending::new(req)
    }

    /// Submits a read; completes with `Ok(None)` when the key was never
    /// written (or is deleted) — distinct from `Err(OpError::Timeout)`.
    pub fn get(&mut self, cluster: &mut Cluster, key: impl Into<Key>) -> Pending<ops::Get> {
        let key = key.into();
        let audit = cluster.audit_enabled().then(|| OpDesc::Get { key: key.as_str().to_owned() });
        let req = self.submit(cluster, Kind::Get, 0, |req, trace| DropletMsg::ClientGet {
            req,
            key,
            trace,
        });
        if let Some(desc) = audit {
            cluster.record_invoke(req, self.session, desc);
        }
        Pending::new(req)
    }

    /// Submits a delete (a versioned tombstone).
    pub fn delete(&mut self, cluster: &mut Cluster, key: impl Into<Key>) -> Pending<ops::Delete> {
        let key = key.into();
        let audit =
            cluster.audit_enabled().then(|| OpDesc::Delete { key: key.as_str().to_owned() });
        let req = self.submit(cluster, Kind::Delete, 0, |req, trace| DropletMsg::ClientDelete {
            req,
            key,
            trace,
        });
        if let Some(desc) = audit {
            cluster.record_invoke(req, self.session, desc);
        }
        Pending::new(req)
    }

    /// Submits an attribute range scan over `[lo, hi]`.
    pub fn scan(&mut self, cluster: &mut Cluster, lo: f64, hi: f64) -> Pending<ops::Scan> {
        let req = self.submit(cluster, Kind::Scan, 0, |req, trace| DropletMsg::ClientScan {
            req,
            lo,
            hi,
            trace,
        });
        self.record_invoke(cluster, req, || OpDesc::Scan);
        Pending::new(req)
    }

    /// Submits an aggregate query over all stored tuples.
    pub fn aggregate(&mut self, cluster: &mut Cluster) -> Pending<ops::Aggregate> {
        let req = self.submit(cluster, Kind::Aggregate, 0, |req, trace| {
            DropletMsg::ClientAggregate { req, trace }
        });
        self.record_invoke(cluster, req, || OpDesc::Aggregate);
        Pending::new(req)
    }

    /// Submits a batched write (the social-feed `mput`). Completes `Ok`
    /// only when every item ordered; dead key coordinators surface as
    /// [`OpError::PartialResult`].
    pub fn multi_put(
        &mut self,
        cluster: &mut Cluster,
        items: impl IntoIterator<Item = TupleSpec>,
    ) -> Pending<ops::MultiPut> {
        let items: Vec<TupleSpec> = items.into_iter().collect();
        let want = items.len();
        let audit = cluster.audit_enabled().then(|| {
            let keys: Vec<String> = items.iter().map(|i| i.key.as_str().to_owned()).collect();
            // The batch's shared tag, when every item carries the same one.
            let tag = items
                .first()
                .and_then(|i| i.tag.clone())
                .filter(|t| items.iter().all(|i| i.tag.as_ref() == Some(t)))
                .map(|t| t.as_str().to_owned());
            OpDesc::MultiPut { keys, tag }
        });
        let req = self.submit(cluster, Kind::MultiPut, want, |req, trace| {
            DropletMsg::ClientMultiPut { req, items, trace }
        });
        if let Some(desc) = audit {
            cluster.record_invoke(req, self.session, desc);
        }
        Pending::new(req)
    }

    /// Submits a tag-scoped read (the social-feed `mget`): every live
    /// tuple carrying `tag`, deduplicated and attribute-ordered, plus the
    /// union's completeness marker ([`MultiGetResult::complete`]).
    pub fn multi_get(&mut self, cluster: &mut Cluster, tag: &str) -> Pending<ops::MultiGet> {
        let audit = cluster.audit_enabled().then(|| OpDesc::MultiGet { tag: tag.to_owned() });
        let tag = Tag::from(tag);
        let req = self.submit(cluster, Kind::MultiGet, 0, |req, trace| {
            DropletMsg::ClientMultiGet { req, tag, trace }
        });
        if let Some(desc) = audit {
            cluster.record_invoke(req, self.session, desc);
        }
        Pending::new(req)
    }

    /// Non-blocking harvest of one operation: `None` while still in
    /// flight, `Some(result)` exactly once when it completes (the soft
    /// node's record is retired on harvest). A handle whose completion
    /// was already delivered — e.g. by an earlier poll or a [`Client::drain`]
    /// sweep — or that belongs to another session yields
    /// `Some(Err(OpError::AlreadyHarvested))`.
    pub fn poll<K: OpKind>(
        &mut self,
        cluster: &mut Cluster,
        pending: &Pending<K>,
    ) -> Option<Result<K::Output, OpError>> {
        let Some(&o) = self.outstanding.get(&pending.req) else {
            return Some(Err(OpError::AlreadyHarvested));
        };
        debug_assert_eq!(o.kind, K::KIND, "Pending kind mismatch");
        if o.stillborn {
            self.retire(cluster, pending.req, None);
            cluster.record_failure(pending.req, OpFailure::NoLiveEntry);
            return Some(Err(OpError::NoLiveEntry));
        }
        let audit = cluster.audit_enabled();
        for id in cluster.soft_ids().to_vec() {
            if let Some(soft) = cluster.sim.node_mut(id).and_then(DropletNode::as_soft_mut) {
                if let Some(raw) = K::take(soft, pending.req) {
                    let outcome = audit.then(|| K::audit(&raw, o.want));
                    self.retire(cluster, pending.req, Some(o.issued));
                    if let Some(outcome) = outcome {
                        cluster.record_outcome(pending.req, outcome);
                    }
                    return Some(K::finish(raw, o.want));
                }
            }
        }
        if cluster.sim.now().since(o.issued).0 >= OP_TIMEOUT {
            let waiting_on = cluster.blame_for(pending.req);
            self.retire(cluster, pending.req, None);
            cluster.sim.metrics_mut().incr("client.timeouts");
            cluster.record_failure(pending.req, OpFailure::Timeout);
            return Some(Err(OpError::Timeout { waiting_on }));
        }
        None
    }

    /// Drives virtual time until `pending` completes and returns its
    /// result — the lock-step convenience over [`Client::poll`]. Bounded:
    /// a lost operation returns `Err(OpError::Timeout)` after
    /// [`OP_TIMEOUT`] virtual ticks.
    pub fn recv<K: OpKind>(
        &mut self,
        cluster: &mut Cluster,
        pending: Pending<K>,
    ) -> Result<K::Output, OpError> {
        loop {
            if let Some(result) = self.poll(cluster, &pending) {
                return result;
            }
            cluster.pump(RECV_QUANTUM);
        }
    }

    /// Harvests every completed (or expired) operation of this session,
    /// in request order: the batch companion to [`Client::poll`] for
    /// pipelined loops that don't track individual handles.
    pub fn drain(&mut self, cluster: &mut Cluster) -> Vec<(u64, Completion)> {
        let now = cluster.sim.now();
        let ids = cluster.soft_ids().to_vec();
        let audit = cluster.audit_enabled();
        let mut reqs: Vec<u64> = self.outstanding.keys().copied().collect();
        reqs.sort_unstable();
        let mut done = Vec::new();
        for req in reqs {
            let o = self.outstanding[&req];
            if o.stillborn {
                self.retire(cluster, req, None);
                cluster.record_failure(req, OpFailure::NoLiveEntry);
                done.push((req, o.kind.failed(OpError::NoLiveEntry)));
                continue;
            }
            let harvested = ids.iter().find_map(|&id| {
                cluster
                    .sim
                    .node_mut(id)
                    .and_then(DropletNode::as_soft_mut)
                    .and_then(|soft| o.kind.take(soft, req, o.want, audit))
            });
            if let Some((completion, outcome)) = harvested {
                self.retire(cluster, req, Some(o.issued));
                if let Some(outcome) = outcome {
                    cluster.record_outcome(req, outcome);
                }
                done.push((req, completion));
            } else if now.since(o.issued).0 >= OP_TIMEOUT {
                let waiting_on = cluster.blame_for(req);
                self.retire(cluster, req, None);
                cluster.sim.metrics_mut().incr("client.timeouts");
                cluster.record_failure(req, OpFailure::Timeout);
                done.push((req, o.kind.failed(OpError::Timeout { waiting_on })));
            }
        }
        done
    }

    fn retire(&mut self, cluster: &mut Cluster, req: u64, harvested_issue: Option<Time>) {
        self.outstanding.remove(&req);
        // Close the op's root span (harvest = answered, timeout = not; a
        // stillborn op has no trace and the close is ignored).
        let now = cluster.sim.now();
        if let Some(tr) = cluster.sim.tracer_mut() {
            tr.close(now, req, 0, harvested_issue.is_some());
        }
        if let Some(issued) = harvested_issue {
            let latency = cluster.sim.now().since(issued).0 as f64;
            let m = cluster.sim.metrics_mut();
            m.incr("client.completions");
            m.observe("client.op_ticks", latency);
        }
    }
}
