//! Synthetic workload generators for the experiments.
//!
//! The paper motivates three data shapes: uniformly keyed tuples, skewed
//! popularity ("item request popularity … avoid hotspots", §III-B-1),
//! normally distributed attributes (the distribution-aware sieve example),
//! and correlated tuples ("tuple correlation", §III-B-1) — the social-feed
//! workload of the authors' prior DataDroplets evaluation \[18\].

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal, Zipf};

/// One generated write.
#[derive(Debug, Clone, PartialEq)]
pub struct PutOp {
    /// Tuple key.
    pub key: String,
    /// Payload.
    pub value: Vec<u8>,
    /// Numeric attribute.
    pub attr: Option<f64>,
    /// Correlation tag.
    pub tag: Option<String>,
}

impl From<PutOp> for crate::tuple::TupleSpec {
    fn from(op: PutOp) -> Self {
        crate::tuple::TupleSpec::new(op.key, op.value, op.attr, op.tag.as_deref())
    }
}

/// One generated batched write (`mput`): the items, plus the tag they
/// share when the workload correlates them.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiPutOp {
    /// The batch's shared correlation tag (`None` for uncorrelated
    /// workloads, whose batches are just consecutive single writes).
    pub tag: Option<String>,
    /// The writes.
    pub items: Vec<PutOp>,
}

/// The supported workload shapes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadKind {
    /// Distinct keys, no attribute, no tag.
    Uniform,
    /// Normally distributed attribute `N(mean, std_dev)`.
    NormalAttr {
        /// Mean of the attribute distribution.
        mean: f64,
        /// Standard deviation.
        std_dev: f64,
    },
    /// Zipf-popular keys (overwrites concentrate on few keys).
    ZipfKeys {
        /// Number of distinct keys.
        keys: u64,
        /// Zipf exponent (≈1 for web-like skew).
        exponent: f64,
    },
    /// Social-feed: each write belongs to one of `users` feeds (tag), with
    /// a timestamp-like attribute.
    SocialFeed {
        /// Number of distinct users/feeds.
        users: u64,
    },
}

impl WorkloadKind {
    /// Whether a [`Workload`] of this kind can generate without
    /// panicking; `Err` names the broken parameter. Degenerate values
    /// (`ZipfKeys { keys: 0, .. }`, `SocialFeed { users: 0 }`, a
    /// non-finite or negative deviation) would otherwise blow up inside
    /// the distribution constructors mid-run — the scenario plane
    /// rejects them up front ([`crate::Scenario::validate`]).
    pub fn validate(&self) -> Result<(), &'static str> {
        match *self {
            WorkloadKind::Uniform => Ok(()),
            WorkloadKind::NormalAttr { mean, std_dev } => {
                if !mean.is_finite() {
                    Err("NormalAttr mean must be finite")
                } else if !(std_dev.is_finite() && std_dev >= 0.0) {
                    Err("NormalAttr std_dev must be finite and non-negative")
                } else {
                    Ok(())
                }
            }
            WorkloadKind::ZipfKeys { keys, exponent } => {
                if keys == 0 {
                    Err("ZipfKeys needs at least one key")
                } else if !(exponent.is_finite() && exponent >= 0.0) {
                    Err("ZipfKeys exponent must be finite and non-negative")
                } else {
                    Ok(())
                }
            }
            WorkloadKind::SocialFeed { users } => {
                if users == 0 {
                    Err("SocialFeed needs at least one user")
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// How many recently written keys a generator remembers for read traffic
/// whose key population is not derivable from a counter (social feeds).
const RECENT_KEYS: usize = 512;

/// A deterministic workload generator.
#[derive(Debug, Clone)]
pub struct Workload {
    kind: WorkloadKind,
    rng: SmallRng,
    counter: u64,
    /// Ring of recently generated keys (social-feed read traffic samples
    /// real posts; other kinds reconstruct keys from the counter).
    recent: Vec<String>,
    /// Next ring slot to overwrite once `recent` is full.
    recent_cursor: usize,
}

impl Workload {
    /// Creates a generator.
    #[must_use]
    pub fn new(kind: WorkloadKind, seed: u64) -> Self {
        Workload {
            kind,
            rng: SmallRng::seed_from_u64(seed),
            counter: 0,
            recent: Vec::new(),
            recent_cursor: 0,
        }
    }

    fn remember(&mut self, key: &str) {
        if !matches!(self.kind, WorkloadKind::SocialFeed { .. }) {
            return;
        }
        if self.recent.len() < RECENT_KEYS {
            self.recent.push(key.to_owned());
        } else {
            self.recent[self.recent_cursor] = key.to_owned();
            self.recent_cursor = (self.recent_cursor + 1) % RECENT_KEYS;
        }
    }

    /// Generates the next write.
    pub fn next_put(&mut self) -> PutOp {
        let op = self.generate_put();
        self.remember(&op.key);
        op
    }

    fn generate_put(&mut self) -> PutOp {
        self.counter += 1;
        let i = self.counter;
        match self.kind {
            WorkloadKind::Uniform => PutOp {
                key: format!("key:{i}"),
                value: i.to_le_bytes().to_vec(),
                attr: None,
                tag: None,
            },
            WorkloadKind::NormalAttr { mean, std_dev } => {
                let dist = Normal::new(mean, std_dev).expect("valid normal");
                PutOp {
                    key: format!("key:{i}"),
                    value: i.to_le_bytes().to_vec(),
                    attr: Some(dist.sample(&mut self.rng)),
                    tag: None,
                }
            }
            WorkloadKind::ZipfKeys { keys, exponent } => {
                let dist = Zipf::new(keys, exponent).expect("valid zipf");
                let k = dist.sample(&mut self.rng) as u64;
                PutOp {
                    key: format!("key:{k}"),
                    value: i.to_le_bytes().to_vec(),
                    attr: None,
                    tag: None,
                }
            }
            WorkloadKind::SocialFeed { users } => {
                let user = self.rng.gen_range(0..users);
                PutOp {
                    key: format!("post:{user}:{i}"),
                    value: format!("post body {i}").into_bytes(),
                    attr: Some(i as f64),
                    tag: Some(format!("feed:{user}")),
                }
            }
        }
    }

    /// Generates `n` writes.
    pub fn take_puts(&mut self, n: usize) -> Vec<PutOp> {
        (0..n).map(|_| self.next_put()).collect()
    }

    /// Generates the next batched write of `batch` items. For the
    /// social-feed shape this is a burst of posts to *one* feed — every
    /// item shares the feed's tag, the unit the `mput`/`mget` evaluation
    /// operates on. Other shapes batch consecutive independent writes.
    pub fn next_multi_put(&mut self, batch: usize) -> MultiPutOp {
        match self.kind {
            WorkloadKind::SocialFeed { users } => {
                let user = self.rng.gen_range(0..users);
                let tag = format!("feed:{user}");
                let items: Vec<PutOp> = (0..batch)
                    .map(|_| {
                        self.counter += 1;
                        let i = self.counter;
                        PutOp {
                            key: format!("post:{user}:{i}"),
                            value: format!("post body {i}").into_bytes(),
                            attr: Some(i as f64),
                            tag: Some(tag.clone()),
                        }
                    })
                    .collect();
                for op in &items {
                    self.remember(&op.key);
                }
                MultiPutOp { tag: Some(tag), items }
            }
            _ => MultiPutOp { tag: None, items: self.take_puts(batch) },
        }
    }

    /// A read key matching the workload's key population (for mixed
    /// read/write traffic). Social-feed reads sample recently written
    /// posts; the other kinds reconstruct keys from the write counter.
    pub fn next_read_key(&mut self) -> String {
        match self.kind {
            WorkloadKind::Uniform | WorkloadKind::NormalAttr { .. } => {
                let upper = self.counter.max(1);
                format!("key:{}", self.rng.gen_range(1..=upper))
            }
            WorkloadKind::ZipfKeys { keys, exponent } => {
                let dist = Zipf::new(keys, exponent).expect("valid zipf");
                format!("key:{}", dist.sample(&mut self.rng) as u64)
            }
            WorkloadKind::SocialFeed { .. } => {
                if self.recent.is_empty() {
                    // Nothing written yet: a well-formed key that reads as
                    // absent, so pure-read phases stay runnable.
                    "post:0:0".to_owned()
                } else {
                    let slot = self.rng.gen_range(0..self.recent.len());
                    self.recent[slot].clone()
                }
            }
        }
    }

    /// A tag matching the workload's correlation population (the target
    /// of a `multi_get`). Untagged workloads produce a tag that reads as
    /// an empty feed.
    pub fn next_read_tag(&mut self) -> String {
        match self.kind {
            WorkloadKind::SocialFeed { users } => {
                format!("feed:{}", self.rng.gen_range(0..users))
            }
            _ => "feed:untagged".to_owned(),
        }
    }

    /// An attribute range `[lo, hi]` matching the workload's attribute
    /// population (the argument of a range scan). Attribute-free kinds
    /// scan a degenerate empty range.
    pub fn next_scan_range(&mut self) -> (f64, f64) {
        match self.kind {
            WorkloadKind::NormalAttr { mean, std_dev } => {
                let centre = mean + std_dev * (self.rng.gen_range(-10i32..=10) as f64 / 10.0);
                (centre - std_dev / 2.0, centre + std_dev / 2.0)
            }
            WorkloadKind::SocialFeed { .. } => {
                // Post attributes are the write counter: a recent window.
                let hi = self.counter as f64;
                ((hi - 20.0).max(0.0), hi)
            }
            WorkloadKind::Uniform | WorkloadKind::ZipfKeys { .. } => (0.0, 0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn uniform_keys_are_distinct() {
        let mut w = Workload::new(WorkloadKind::Uniform, 1);
        let ops = w.take_puts(100);
        let keys: std::collections::HashSet<&String> = ops.iter().map(|o| &o.key).collect();
        assert_eq!(keys.len(), 100);
        assert!(ops.iter().all(|o| o.attr.is_none() && o.tag.is_none()));
    }

    #[test]
    fn generator_is_deterministic() {
        let a = Workload::new(WorkloadKind::SocialFeed { users: 10 }, 7).take_puts(50);
        let b = Workload::new(WorkloadKind::SocialFeed { users: 10 }, 7).take_puts(50);
        assert_eq!(a, b);
    }

    #[test]
    fn normal_attrs_cluster_around_the_mean() {
        let mut w = Workload::new(WorkloadKind::NormalAttr { mean: 100.0, std_dev: 10.0 }, 2);
        let ops = w.take_puts(5_000);
        let mean: f64 = ops.iter().filter_map(|o| o.attr).sum::<f64>() / ops.len() as f64;
        assert!((mean - 100.0).abs() < 1.0, "sample mean {mean}");
    }

    #[test]
    fn zipf_keys_are_skewed() {
        let mut w = Workload::new(WorkloadKind::ZipfKeys { keys: 100, exponent: 1.1 }, 3);
        let ops = w.take_puts(5_000);
        let mut counts: HashMap<&String, u32> = HashMap::new();
        for o in &ops {
            *counts.entry(&o.key).or_insert(0) += 1;
        }
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(max > 500, "hottest key should dominate, got {max}");
    }

    #[test]
    fn social_feed_tags_group_posts() {
        let mut w = Workload::new(WorkloadKind::SocialFeed { users: 5 }, 4);
        let ops = w.take_puts(200);
        let tags: std::collections::HashSet<&String> =
            ops.iter().filter_map(|o| o.tag.as_ref()).collect();
        assert!(tags.len() <= 5);
        assert!(ops.iter().all(|o| o.tag.is_some() && o.attr.is_some()));
    }

    #[test]
    fn social_feed_batches_share_one_tag() {
        let mut w = Workload::new(WorkloadKind::SocialFeed { users: 6 }, 11);
        for _ in 0..20 {
            let m = w.next_multi_put(5);
            let tag = m.tag.as_ref().expect("social batches are tagged");
            assert_eq!(m.items.len(), 5);
            assert!(m.items.iter().all(|op| op.tag.as_ref() == Some(tag)));
            let keys: std::collections::HashSet<&String> =
                m.items.iter().map(|op| &op.key).collect();
            assert_eq!(keys.len(), 5, "batch keys are distinct");
        }
    }

    #[test]
    fn uncorrelated_batches_are_plain_writes() {
        let mut w = Workload::new(WorkloadKind::Uniform, 12);
        let m = w.next_multi_put(4);
        assert_eq!(m.tag, None);
        assert_eq!(m.items.len(), 4);
        assert!(m.items.iter().all(|op| op.tag.is_none()));
    }

    #[test]
    fn social_feed_reads_sample_written_posts() {
        let mut w = Workload::new(WorkloadKind::SocialFeed { users: 4 }, 9);
        assert_eq!(w.next_read_key(), "post:0:0", "reads before writes are well-formed");
        let written: std::collections::HashSet<String> =
            w.take_puts(50).into_iter().map(|o| o.key).collect();
        for _ in 0..30 {
            let k = w.next_read_key();
            assert!(written.contains(&k), "read key {k} was written");
        }
    }

    #[test]
    fn full_recent_ring_keeps_every_item_of_a_batch() {
        let mut w = Workload::new(WorkloadKind::SocialFeed { users: 2 }, 14);
        // Fill the ring, then write one more batch: each of its items
        // must land in its own slot (not all in one), so batch-written
        // posts stay sampleable.
        let _ = w.take_puts(RECENT_KEYS);
        assert_eq!(w.recent.len(), RECENT_KEYS);
        let batch = w.next_multi_put(8);
        for op in &batch.items {
            assert!(w.recent.contains(&op.key), "batch key {} sampleable", op.key);
        }
    }

    #[test]
    fn read_tags_stay_in_feed_population() {
        let mut w = Workload::new(WorkloadKind::SocialFeed { users: 3 }, 10);
        for _ in 0..20 {
            let t = w.next_read_tag();
            let u: u64 = t.strip_prefix("feed:").unwrap().parse().unwrap();
            assert!(u < 3);
        }
        let mut u = Workload::new(WorkloadKind::Uniform, 10);
        assert_eq!(u.next_read_tag(), "feed:untagged");
    }

    #[test]
    fn scan_ranges_match_attribute_population() {
        let mut w = Workload::new(WorkloadKind::NormalAttr { mean: 100.0, std_dev: 10.0 }, 11);
        for _ in 0..20 {
            let (lo, hi) = w.next_scan_range();
            assert!(lo < hi && lo > 50.0 && hi < 150.0, "range [{lo}, {hi}] near the mean");
        }
        let mut u = Workload::new(WorkloadKind::Uniform, 11);
        assert_eq!(u.next_scan_range(), (0.0, 0.0), "attribute-free kinds scan nothing");
    }

    #[test]
    fn read_keys_stay_in_population() {
        let mut w = Workload::new(WorkloadKind::Uniform, 5);
        let _ = w.take_puts(10);
        for _ in 0..20 {
            let k = w.next_read_key();
            let n: u64 = k.strip_prefix("key:").unwrap().parse().unwrap();
            assert!((1..=10).contains(&n));
        }
    }
}
