//! The tuple data model.
//!
//! DataDroplets stores *tuples*: a string key, an opaque value, and two
//! optional pieces of metadata the paper's placement strategies exploit —
//! a numeric attribute (distribution-aware sieves, ordered overlays,
//! §III-B) and a correlation tag (collocation sieves, §III-B-1).
//!
//! Keys and tags are *interned*: the text lives behind a shared
//! [`Arc<str>`] and its position in the hashed key space is computed once
//! at construction. Cloning a [`Key`] or [`Tag`] — which the message
//! plane does on every dissemination hop, delivery batch and repair
//! exchange — is a reference-count bump, not a heap allocation, and
//! [`Key::hash`] is a field read. Equality, ordering and `Hash` are
//! defined on the text, so interned keys behave exactly like the
//! `String`-backed keys they replaced.

use bytes::Bytes;
use dd_dht::Version;
use dd_sieve::ItemMeta;
use dd_sim::rng::{mix, stable_hash};
use std::sync::Arc;

/// A tuple key: UTF-8 text hashed to a uniform 64-bit key space. The
/// text is interned (`Arc<str>`) and the hash cached, so clones are
/// cheap and hot-path routing never re-hashes.
#[derive(Clone)]
pub struct Key {
    text: Arc<str>,
    hash: u64,
}

impl Key {
    /// Interns `text` as a key, hashing it once.
    #[must_use]
    pub fn new(text: impl Into<Arc<str>>) -> Self {
        let text = text.into();
        let hash = stable_hash(text.as_bytes());
        Key { text, hash }
    }

    /// The key's position in the hashed key space (cached).
    #[must_use]
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The key text.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.text
    }
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.text, &other.text) || (self.hash == other.hash && self.text == other.text)
    }
}

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.text, &other.text) {
            std::cmp::Ordering::Equal
        } else {
            self.text.cmp(&other.text)
        }
    }
}

impl std::hash::Hash for Key {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.text.hash(state);
    }
}

impl std::fmt::Debug for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Key").field(&self.text).finish()
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Key::new(s)
    }
}

impl From<String> for Key {
    fn from(s: String) -> Self {
        Key::new(s)
    }
}

impl std::fmt::Display for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// A correlation tag, interned like [`Key`]: shared text, hash computed
/// once. Batched writes clone the batch's tag into every item and the
/// write path hashes it for slot routing — both now O(1).
#[derive(Clone)]
pub struct Tag {
    text: Arc<str>,
    hash: u64,
}

impl Tag {
    /// Interns `text` as a tag, hashing it once.
    #[must_use]
    pub fn new(text: impl Into<Arc<str>>) -> Self {
        let text = text.into();
        let hash = stable_hash(text.as_bytes());
        Tag { text, hash }
    }

    /// The tag's position in the hashed tag space (cached).
    #[must_use]
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The tag text.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.text
    }
}

impl PartialEq for Tag {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.text, &other.text) || (self.hash == other.hash && self.text == other.text)
    }
}

impl Eq for Tag {}

impl PartialOrd for Tag {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tag {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.text, &other.text) {
            std::cmp::Ordering::Equal
        } else {
            self.text.cmp(&other.text)
        }
    }
}

impl std::hash::Hash for Tag {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.text.hash(state);
    }
}

impl std::fmt::Debug for Tag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Tag").field(&self.text).finish()
    }
}

impl From<&str> for Tag {
    fn from(s: &str) -> Self {
        Tag::new(s)
    }
}

impl From<String> for Tag {
    fn from(s: String) -> Self {
        Tag::new(s)
    }
}

impl std::fmt::Display for Tag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// A client-supplied tuple for batched writes ([`crate::Client::multi_put`]):
/// everything a write needs *except* the version, which the key's
/// soft-layer coordinator assigns when the batch is split and routed.
#[derive(Debug, Clone, PartialEq)]
pub struct TupleSpec {
    /// The key.
    pub key: Key,
    /// Opaque payload.
    pub value: Bytes,
    /// Optional numeric attribute.
    pub attr: Option<f64>,
    /// Optional correlation tag (shared by the batch in the mput of the
    /// social-feed workload, but free per item).
    pub tag: Option<Tag>,
}

impl TupleSpec {
    /// Builds a batch item.
    #[must_use]
    pub fn new(
        key: impl Into<Key>,
        value: impl Into<Bytes>,
        attr: Option<f64>,
        tag: Option<&str>,
    ) -> Self {
        TupleSpec { key: key.into(), value: value.into(), attr, tag: tag.map(Tag::from) }
    }
}

/// A versioned tuple as held by the persistent layer.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredTuple {
    /// The key.
    pub key: Key,
    /// Cached `key.hash()` (hot path: sieves, routing).
    pub key_hash: u64,
    /// Write version assigned by the soft-state layer.
    pub version: Version,
    /// Opaque payload; empty for tombstones.
    pub value: Bytes,
    /// Optional numeric attribute.
    pub attr: Option<f64>,
    /// Optional correlation-tag hash.
    pub tag_hash: Option<u64>,
    /// Tombstone marker (deletes are versioned writes, §III "simple read
    /// and write operations … ordered and identified with a request
    /// version").
    pub deleted: bool,
}

impl StoredTuple {
    /// Builds a live tuple.
    #[must_use]
    pub fn new(
        key: Key,
        version: Version,
        value: impl Into<Bytes>,
        attr: Option<f64>,
        tag: Option<&str>,
    ) -> Self {
        let key_hash = key.hash();
        StoredTuple {
            key,
            key_hash,
            version,
            value: value.into(),
            attr,
            tag_hash: tag.map(|t| stable_hash(t.as_bytes())),
            deleted: false,
        }
    }

    /// Builds a live tuple from a batch item, reusing the spec's interned
    /// key and cached hashes (no re-hashing on the write path).
    #[must_use]
    pub fn from_spec(spec: TupleSpec, version: Version) -> Self {
        let key_hash = spec.key.hash();
        StoredTuple {
            key: spec.key,
            key_hash,
            version,
            value: spec.value,
            attr: spec.attr,
            tag_hash: spec.tag.as_ref().map(Tag::hash),
            deleted: false,
        }
    }

    /// Builds a tombstone superseding earlier versions of `key`.
    #[must_use]
    pub fn tombstone(key: Key, version: Version) -> Self {
        let key_hash = key.hash();
        StoredTuple {
            key,
            key_hash,
            version,
            value: Bytes::new(),
            attr: None,
            tag_hash: None,
            deleted: true,
        }
    }

    /// The sieve-visible projection.
    #[must_use]
    pub fn item_meta(&self) -> ItemMeta {
        ItemMeta { key_hash: self.key_hash, attr: self.attr, tag_hash: self.tag_hash }
    }

    /// Unique dissemination id of this write: one rumor per
    /// `(key, version, content)`. Content is part of the identity so that
    /// two *different* writes issued under the same version — possible
    /// only after the version authority is lost (a soft-layer wipe
    /// without rebuild) — are distinct rumors: each spreads and lands in
    /// digests on its own, letting [`StoredTuple::supersedes`] pick one
    /// winner everywhere instead of first-arrival deciding per node.
    #[must_use]
    pub fn rumor_id(&self) -> u64 {
        mix(mix(self.key_hash, self.version.0 ^ 0xD0_1E7), self.content_hash())
    }

    /// Stable hash of everything but the key and version: payload,
    /// attribute, tag and the tombstone flag.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        let mut h = stable_hash(&self.value);
        h = mix(h, self.attr.map_or(0x0A_77_12, f64::to_bits));
        h = mix(h, self.tag_hash.unwrap_or(0x7A_6F_FF));
        mix(h, u64::from(self.deleted))
    }

    /// The replica merge rule: whether this copy of a key must replace
    /// `other`. Higher version wins. On a version tie — which only
    /// happens when the version authority was lost and re-issued a used
    /// version — the tombstone wins, then the higher content hash: a
    /// total, deterministic order, so every replica picks the same winner
    /// regardless of delivery order and the layer reconverges instead of
    /// diverging on first-arrival.
    #[must_use]
    pub fn supersedes(&self, other: &StoredTuple) -> bool {
        if self.version != other.version {
            return self.version > other.version;
        }
        if self.deleted != other.deleted {
            return self.deleted;
        }
        self.content_hash() > other.content_hash()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_hash_is_stable_and_discriminating() {
        assert_eq!(Key::from("a").hash(), Key::from("a").hash());
        assert_ne!(Key::from("a").hash(), Key::from("b").hash());
        // The cached hash is the stable hash of the text — identical to
        // what the String-backed keys computed per call.
        assert_eq!(Key::from("a").hash(), stable_hash(b"a"));
    }

    #[test]
    fn key_conversions_and_display() {
        let k: Key = "users:7".into();
        assert_eq!(k.to_string(), "users:7");
        let k2: Key = String::from("users:7").into();
        assert_eq!(k, k2);
        assert_eq!(k.as_str(), "users:7");
    }

    #[test]
    fn interned_keys_compare_like_strings() {
        let mut keys: Vec<Key> = ["b", "a", "ab", "a", ""].iter().map(|&s| Key::from(s)).collect();
        keys.sort();
        let texts: Vec<&str> = keys.iter().map(Key::as_str).collect();
        assert_eq!(texts, vec!["", "a", "a", "ab", "b"]);
        // Clones share the interned text and stay equal.
        let k = Key::from("x");
        assert_eq!(k, k.clone());
    }

    #[test]
    fn interned_key_std_hash_matches_text_hash() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash_of = |h: &dyn Fn(&mut DefaultHasher)| {
            let mut s = DefaultHasher::new();
            h(&mut s);
            s.finish()
        };
        let k = Key::from("user:1");
        let s = String::from("user:1");
        // UFCS: the inherent `Key::hash()` (cached u64) shadows the trait
        // method in method-call position.
        assert_eq!(hash_of(&|h| Hash::hash(&k, h)), hash_of(&|h| Hash::hash(&s, h)));
    }

    #[test]
    fn tags_intern_like_keys() {
        let t = Tag::from("feed:3");
        assert_eq!(t.hash(), stable_hash(b"feed:3"));
        assert_eq!(t.as_str(), "feed:3");
        assert_eq!(t.to_string(), "feed:3");
        assert_eq!(t, t.clone());
        assert_ne!(Tag::from("feed:3"), Tag::from("feed:4"));
        assert!(Tag::from("a") < Tag::from("b"));
    }

    #[test]
    fn stored_tuple_caches_key_hash() {
        let t = StoredTuple::new("x".into(), Version(1), b"v".to_vec(), Some(2.0), Some("g"));
        assert_eq!(t.key_hash, t.key.hash());
        assert!(!t.deleted);
        assert_eq!(t.item_meta().attr, Some(2.0));
        assert!(t.item_meta().tag_hash.is_some());
    }

    #[test]
    fn from_spec_reuses_cached_hashes() {
        let spec = TupleSpec::new("s", b"v".to_vec(), Some(1.0), Some("g"));
        let direct = StoredTuple::new("s".into(), Version(3), b"v".to_vec(), Some(1.0), Some("g"));
        let via_spec = StoredTuple::from_spec(spec, Version(3));
        assert_eq!(via_spec, direct);
    }

    #[test]
    fn tombstone_is_empty_and_marked() {
        let t = StoredTuple::tombstone("gone".into(), Version(4));
        assert!(t.deleted);
        assert!(t.value.is_empty());
        assert_eq!(t.version, Version(4));
    }

    #[test]
    fn rumor_ids_are_unique_per_key_version() {
        let a1 = StoredTuple::new("a".into(), Version(1), b"".to_vec(), None, None);
        let a2 = StoredTuple::new("a".into(), Version(2), b"".to_vec(), None, None);
        let b1 = StoredTuple::new("b".into(), Version(1), b"".to_vec(), None, None);
        assert_ne!(a1.rumor_id(), a2.rumor_id());
        assert_ne!(a1.rumor_id(), b1.rumor_id());
        assert_eq!(a1.rumor_id(), a1.clone().rumor_id());
    }
}
