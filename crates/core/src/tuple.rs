//! The tuple data model.
//!
//! DataDroplets stores *tuples*: a string key, an opaque value, and two
//! optional pieces of metadata the paper's placement strategies exploit —
//! a numeric attribute (distribution-aware sieves, ordered overlays,
//! §III-B) and a correlation tag (collocation sieves, §III-B-1).

use bytes::Bytes;
use dd_dht::Version;
use dd_sieve::ItemMeta;
use dd_sim::rng::{mix, stable_hash};

/// A tuple key: UTF-8 text hashed to a uniform 64-bit key space.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(pub String);

impl Key {
    /// The key's position in the hashed key space.
    #[must_use]
    pub fn hash(&self) -> u64 {
        stable_hash(self.0.as_bytes())
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Key(s.to_owned())
    }
}

impl From<String> for Key {
    fn from(s: String) -> Self {
        Key(s)
    }
}

impl std::fmt::Display for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A client-supplied tuple for batched writes ([`crate::Client::multi_put`]):
/// everything a write needs *except* the version, which the key's
/// soft-layer coordinator assigns when the batch is split and routed.
#[derive(Debug, Clone, PartialEq)]
pub struct TupleSpec {
    /// The key.
    pub key: Key,
    /// Opaque payload.
    pub value: Bytes,
    /// Optional numeric attribute.
    pub attr: Option<f64>,
    /// Optional correlation tag (shared by the batch in the mput of the
    /// social-feed workload, but free per item).
    pub tag: Option<String>,
}

impl TupleSpec {
    /// Builds a batch item.
    #[must_use]
    pub fn new(
        key: impl Into<Key>,
        value: impl Into<Bytes>,
        attr: Option<f64>,
        tag: Option<&str>,
    ) -> Self {
        TupleSpec { key: key.into(), value: value.into(), attr, tag: tag.map(str::to_owned) }
    }
}

/// A versioned tuple as held by the persistent layer.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredTuple {
    /// The key.
    pub key: Key,
    /// Cached `key.hash()` (hot path: sieves, routing).
    pub key_hash: u64,
    /// Write version assigned by the soft-state layer.
    pub version: Version,
    /// Opaque payload; empty for tombstones.
    pub value: Bytes,
    /// Optional numeric attribute.
    pub attr: Option<f64>,
    /// Optional correlation-tag hash.
    pub tag_hash: Option<u64>,
    /// Tombstone marker (deletes are versioned writes, §III "simple read
    /// and write operations … ordered and identified with a request
    /// version").
    pub deleted: bool,
}

impl StoredTuple {
    /// Builds a live tuple.
    #[must_use]
    pub fn new(
        key: Key,
        version: Version,
        value: impl Into<Bytes>,
        attr: Option<f64>,
        tag: Option<&str>,
    ) -> Self {
        let key_hash = key.hash();
        StoredTuple {
            key,
            key_hash,
            version,
            value: value.into(),
            attr,
            tag_hash: tag.map(|t| stable_hash(t.as_bytes())),
            deleted: false,
        }
    }

    /// Builds a tombstone superseding earlier versions of `key`.
    #[must_use]
    pub fn tombstone(key: Key, version: Version) -> Self {
        let key_hash = key.hash();
        StoredTuple {
            key,
            key_hash,
            version,
            value: Bytes::new(),
            attr: None,
            tag_hash: None,
            deleted: true,
        }
    }

    /// The sieve-visible projection.
    #[must_use]
    pub fn item_meta(&self) -> ItemMeta {
        ItemMeta { key_hash: self.key_hash, attr: self.attr, tag_hash: self.tag_hash }
    }

    /// Unique dissemination id of this write: one rumor per
    /// `(key, version)`.
    #[must_use]
    pub fn rumor_id(&self) -> u64 {
        mix(self.key_hash, self.version.0 ^ 0xD0_1E7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_hash_is_stable_and_discriminating() {
        assert_eq!(Key::from("a").hash(), Key::from("a").hash());
        assert_ne!(Key::from("a").hash(), Key::from("b").hash());
    }

    #[test]
    fn key_conversions_and_display() {
        let k: Key = "users:7".into();
        assert_eq!(k.to_string(), "users:7");
        let k2: Key = String::from("users:7").into();
        assert_eq!(k, k2);
    }

    #[test]
    fn stored_tuple_caches_key_hash() {
        let t = StoredTuple::new("x".into(), Version(1), b"v".to_vec(), Some(2.0), Some("g"));
        assert_eq!(t.key_hash, t.key.hash());
        assert!(!t.deleted);
        assert_eq!(t.item_meta().attr, Some(2.0));
        assert!(t.item_meta().tag_hash.is_some());
    }

    #[test]
    fn tombstone_is_empty_and_marked() {
        let t = StoredTuple::tombstone("gone".into(), Version(4));
        assert!(t.deleted);
        assert!(t.value.is_empty());
        assert_eq!(t.version, Version(4));
    }

    #[test]
    fn rumor_ids_are_unique_per_key_version() {
        let a1 = StoredTuple::new("a".into(), Version(1), b"".to_vec(), None, None);
        let a2 = StoredTuple::new("a".into(), Version(2), b"".to_vec(), None, None);
        let b1 = StoredTuple::new("b".into(), Version(1), b"".to_vec(), None, None);
        assert_ne!(a1.rumor_id(), a2.rumor_id());
        assert_ne!(a1.rumor_id(), b1.rumor_id());
        assert_eq!(a1.rumor_id(), a1.clone().rumor_id());
    }
}
