//! The soft-state layer node: request ordering, versions, tuple cache,
//! metadata and read/write coordination (§II of the paper).

use crate::msg::DropletMsg;
use crate::sieve_spec::SieveSpec;
use crate::tuple::{Key, StoredTuple, TupleSpec};
use dd_dht::{HashRing, Metadata, TupleCache, Version, VersionAuthority};
use dd_epidemic::required_fanout;
use dd_estimation::ExtremaEstimator;
use dd_sieve::TagSieve;
use dd_sim::rng::stream_rng;
use dd_sim::{Ctx, Duration, NodeId, Time, TimerTag, TraceCtx};
use rand::seq::SliceRandom;
use std::collections::{HashMap, HashSet, VecDeque};

/// Timer tag for the multi-op deadline sweep.
pub const MULTI_OP_TIMER: TimerTag = TimerTag(0x4D47);

/// Timer tag for flushing the per-target dissemination outbox.
pub const BATCH_TIMER: TimerTag = TimerTag(0xBA7C);

/// Ticks an enqueued tuple waits for batch-mates before the outbox
/// flushes. Small enough to be invisible next to network latency; large
/// enough that a multi-put's items to the same owner share one message.
pub const BATCH_FLUSH_TICKS: u64 = 2;

/// Tuples per dissemination batch before an eager flush.
pub const BATCH_MAX: usize = 32;

/// Acked-but-undelivered writes a coordinator remembers per node: writes
/// whose owners were unreachable at dissemination time are re-delivered
/// when the owner comes back ([`DropletMsg::PeerUp`]); beyond this cap the
/// oldest entry is forgotten and the periodic repair plane is the
/// remaining safety net.
pub const UNDELIVERED_RETENTION: usize = 4096;

/// Slots in the deterministic per-peer extrema vector used for adaptive
/// fanout (relative error ≈ 1/√(K−2) ≈ 13 %).
const EXTREMA_K: usize = 64;

/// Master seed for the per-peer extrema vectors. Every soft node derives
/// the same vector for a given persist peer — modelling the vector that
/// peer generated at join time and gossiped — so merged estimates agree
/// across coordinators with the same reachability view.
const EXTREMA_SALT: u64 = 0xEC7A_11E5_71AA_7E0F;

/// Completion records a soft node retains per operation kind. Harvested
/// completions are retired immediately; this cap bounds what *abandoned*
/// sessions can leave behind — once exceeded, the oldest un-harvested
/// record is retired, so sustained traffic from clients that never poll
/// cannot grow node state without bound.
pub const COMPLETION_RETENTION: usize = 512;

/// Bounded completion store: a map plus insertion-order retirement.
///
/// Request ids are allocated monotonically and a record is written exactly
/// once (later acks update in place), so insertion order is age order and
/// retiring from the front is LRU retirement. [`CompletionLog::take`] is
/// the harvest path — clients remove what they consume, so under a
/// well-behaved session the log stays near-empty and the cap never bites.
#[derive(Debug, Clone)]
pub(crate) struct CompletionLog<T> {
    cap: usize,
    map: HashMap<u64, T>,
    order: VecDeque<u64>,
    /// Records retired by the cap over the log's lifetime (telemetry: the
    /// leak guard firing; 0 under well-behaved sessions).
    retired: u64,
}

impl<T> CompletionLog<T> {
    fn new(cap: usize) -> Self {
        CompletionLog { cap, map: HashMap::new(), order: VecDeque::new(), retired: 0 }
    }

    /// Records a completion; returns the record retired to stay within the
    /// cap, if any, so the caller can release auxiliary state.
    fn insert(&mut self, req: u64, v: T) -> Option<(u64, T)> {
        if self.map.insert(req, v).is_none() {
            self.order.push_back(req);
        }
        if self.map.len() <= self.cap {
            return None;
        }
        while let Some(old) = self.order.pop_front() {
            if let Some(v) = self.map.remove(&old) {
                self.retired += 1;
                return Some((old, v));
            }
        }
        None
    }

    /// Harvests (removes) the completion for `req`. The order queue is
    /// compacted lazily once it outgrows the live map.
    pub(crate) fn take(&mut self, req: u64) -> Option<T> {
        let v = self.map.remove(&req);
        if self.order.len() > 2 * self.map.len() + 16 {
            self.order.retain(|id| self.map.contains_key(id));
        }
        v
    }

    fn get_mut(&mut self, req: u64) -> Option<&mut T> {
        self.map.get_mut(&req)
    }

    /// Number of retained (un-harvested) completions.
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }
}

impl<T: Clone> CompletionLog<T> {
    /// Reads the completion for `req` *without* retiring it — the
    /// regression shape [`SoftNode::seed_completion_leak`] re-introduces:
    /// records accumulate forever because nothing ever removes them.
    fn peek(&self, req: u64) -> Option<T> {
        self.map.get(&req).cloned()
    }
}

/// Ticks a multi-tuple operation waits for stragglers before completing
/// with what it has. A dead slot-owner never answers a `TagFetch`, and a
/// dead key coordinator never acks a `SubPut`; without this deadline one
/// failed node would hang every `multi_get` on its tags (even though the
/// surviving replicas hold the full tuple set) and every `multi_put`
/// containing one of its keys.
pub const MULTI_OP_TIMEOUT: u64 = 2_000;

/// Outcome of a write, as tracked by its coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PutStatus {
    /// Version the write was ordered at.
    pub version: Version,
    /// Storage acks received from the persistent layer so far.
    pub acks: u32,
}

/// Outcome of a batched write: the ordered items (version assigned by
/// their key coordinator) have been handed to epidemic dissemination.
/// `items` equals the batch size when the whole batch ordered; a smaller
/// count means the deadline sweep completed the op without acks from
/// dead/unreachable key coordinators.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MultiPutStatus {
    /// Number of batch items ordered so far.
    pub items: usize,
    /// `(key_hash, version)` per ordered item, in ack-arrival order.
    pub versions: Vec<(u64, Version)>,
}

/// Tag placement parameters mirrored into the soft layer so coordinators
/// can route a tag-scoped read to the tag's `r` slot-owners directly
/// (the slot order matches the persist-peer order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagRouting {
    /// Number of tag slots (the persist population size).
    pub slots: u64,
    /// Tag replication degree.
    pub r: u32,
}

/// A pending single read: which replicas we are waiting on, which were
/// unreachable when the fetch went out (re-fetched on
/// [`DropletMsg::PeerUp`] — a read must never conclude "not found" while
/// a replica it couldn't reach may hold the write).
#[derive(Debug, Clone)]
struct PendingGet {
    key_hash: u64,
    version: Version,
    waiting: Vec<NodeId>,
    unreached: Vec<NodeId>,
}

/// Shared shape of the gather-style ops (scans): `outstanding` replies
/// left, raw replica items accumulated so far.
#[derive(Debug, Clone)]
struct PendingGather {
    outstanding: usize,
    items: Vec<StoredTuple>,
}

/// A pending tag-scoped read: the replicas still owing a reply, the
/// gathered items, whether every slot-owner could be contacted, and the
/// start time for the deadline sweep ([`MULTI_OP_TIMER`]).
#[derive(Debug, Clone)]
struct PendingMultiGet {
    waiting: Vec<NodeId>,
    items: Vec<StoredTuple>,
    full: bool,
    started: Time,
}

/// A pending batched write: one `waiting` entry per outstanding remote
/// sub-put (the same coordinator appears once per item it owns), the
/// ordered versions so far, and the batch size for partial accounting.
#[derive(Debug, Clone)]
struct PendingMultiPut {
    waiting: Vec<NodeId>,
    versions: Vec<(u64, Version)>,
    want: usize,
    started: Time,
}

/// A write acked to the client whose delivery to some owners is still
/// unconfirmed (they were unreachable, or the ack is simply in flight).
#[derive(Debug, Clone)]
struct Undelivered {
    tuple: StoredTuple,
    pending: Vec<NodeId>,
}

#[derive(Debug, Clone)]
struct PendingAgg {
    outstanding: usize,
    sketch: dd_estimation::DistSketch,
    min: f64,
    max: f64,
}

/// Soft-state layer node.
#[derive(Debug, Clone)]
pub struct SoftNode {
    /// Ring over the *soft* nodes only (the moderately sized tier).
    pub ring: HashRing,
    /// Per-key version authority (coordinator role).
    pub authority: VersionAuthority,
    /// Latest-version + location-hint metadata.
    pub metadata: Metadata,
    /// The tuple cache.
    pub cache: TupleCache<StoredTuple>,
    /// All persistent-layer node ids.
    pub persist_peers: Vec<NodeId>,
    /// The sieve each persist peer runs, parallel to `persist_peers`.
    /// Sieve acceptance is deterministic, so a coordinator that knows the
    /// sieves can deliver a write *directly* to the nodes that will store
    /// it (batched [`DropletMsg::DeliverBatch`]) instead of broadcasting
    /// it epidemically. Empty = fall back to epidemic dissemination.
    pub persist_sieves: Vec<SieveSpec>,
    /// Dissemination fanout used when originating writes (the epidemic
    /// fallback path).
    pub fanout: u32,
    /// When set, `fanout` follows the extrema-propagation size estimate
    /// of the currently reachable persist population instead of the
    /// static value computed at construction.
    pub adaptive_fanout: bool,
    /// Fallback fetch width when no location hints exist.
    pub fallback_fetches: usize,
    /// Tag placement parameters when the persistent layer runs tag
    /// sieves; `None` means tag-scoped reads fan out epidemically.
    pub tag_routing: Option<TagRouting>,

    /// Completed writes: req → (status, key hash). Harvested through
    /// [`SoftNode::take_put`] by client sessions, retired on harvest.
    completed_puts: CompletionLog<(PutStatus, u64)>,
    /// Completed reads: req → tuple (None = unknown key/deleted/not found).
    completed_gets: CompletionLog<Option<StoredTuple>>,
    /// Completed scans: req → matching tuples.
    completed_scans: CompletionLog<Vec<StoredTuple>>,
    /// Completed aggregates: req → (sketch, min, max).
    completed_aggs: CompletionLog<(dd_estimation::DistSketch, f64, f64)>,
    /// Completed batched writes: req → status.
    completed_multi_puts: CompletionLog<MultiPutStatus>,
    /// Completed tag-scoped reads: req → (deduplicated live tuples,
    /// whether every contacted replica answered before the deadline).
    completed_multi_gets: CompletionLog<(Vec<StoredTuple>, bool)>,

    put_index: HashMap<(u64, Version), u64>,
    pending_gets: HashMap<u64, PendingGet>,
    pending_scans: HashMap<u64, PendingGather>,
    pending_aggs: HashMap<u64, PendingAgg>,
    pending_multi_puts: HashMap<u64, PendingMultiPut>,
    pending_multi_gets: HashMap<u64, PendingMultiGet>,

    /// Everyone this node's failure detector watches (soft members and
    /// persist peers); the baseline `reachable` resets to after a wipe.
    known_peers: Vec<NodeId>,
    /// Peers the local failure detector currently trusts. Maintained by
    /// [`DropletMsg::PeerDown`] / [`DropletMsg::PeerUp`] notices.
    reachable: HashSet<NodeId>,
    /// Per-target dissemination batches awaiting a flush, each tuple with
    /// the trace context of the op that wrote it (`None` when untraced).
    outbox: HashMap<NodeId, Vec<(StoredTuple, Option<TraceCtx>)>>,
    outbox_armed: bool,
    /// Open coordinator span per in-flight traced op (req → span id).
    /// Empty in untraced runs, so every tracing hook costs one emptiness
    /// check when tracing is off.
    trace_ops: HashMap<u64, u32>,
    /// Open per-target wait spans per traced op, as `(target, span)` pairs
    /// (a multi-put may wait on the same coordinator for several items).
    trace_waits: HashMap<u64, Vec<(NodeId, u32)>>,
    /// Acked writes not yet confirmed stored at every owner, keyed by
    /// `(key_hash, version)`, plus insertion order for cap retirement.
    undelivered: HashMap<(u64, Version), Undelivered>,
    undelivered_order: VecDeque<(u64, Version)>,
    /// Test-only regression seed for the telemetry plane's leak detector:
    /// when set ([`SoftNode::seed_completion_leak`]), harvests stop
    /// retiring completion records — the unbounded-completion-log bug
    /// shape — so [`SoftNode::completion_backlog`] grows monotonically.
    leak_completions: bool,
}

impl SoftNode {
    /// Creates a soft node.
    #[must_use]
    pub fn new(
        soft_members: &[NodeId],
        persist_peers: Vec<NodeId>,
        fanout: u32,
        cache_capacity: usize,
    ) -> Self {
        let mut ring = HashRing::new();
        for &m in soft_members {
            ring.add(m, 16);
        }
        let known_peers: Vec<NodeId> =
            soft_members.iter().copied().chain(persist_peers.iter().copied()).collect();
        let reachable: HashSet<NodeId> = known_peers.iter().copied().collect();
        SoftNode {
            ring,
            authority: VersionAuthority::new(),
            metadata: Metadata::new(8),
            cache: TupleCache::new(cache_capacity),
            persist_peers,
            persist_sieves: Vec::new(),
            fanout,
            adaptive_fanout: false,
            fallback_fetches: 5,
            tag_routing: None,
            completed_puts: CompletionLog::new(COMPLETION_RETENTION),
            completed_gets: CompletionLog::new(COMPLETION_RETENTION),
            completed_scans: CompletionLog::new(COMPLETION_RETENTION),
            completed_aggs: CompletionLog::new(COMPLETION_RETENTION),
            completed_multi_puts: CompletionLog::new(COMPLETION_RETENTION),
            completed_multi_gets: CompletionLog::new(COMPLETION_RETENTION),
            put_index: HashMap::new(),
            pending_gets: HashMap::new(),
            pending_scans: HashMap::new(),
            pending_aggs: HashMap::new(),
            pending_multi_puts: HashMap::new(),
            pending_multi_gets: HashMap::new(),
            known_peers,
            reachable,
            outbox: HashMap::new(),
            outbox_armed: false,
            trace_ops: HashMap::new(),
            trace_waits: HashMap::new(),
            undelivered: HashMap::new(),
            undelivered_order: VecDeque::new(),
            leak_completions: false,
        }
    }

    /// Builder: enables tag-aware routing for tag-scoped reads. `slots`
    /// and `r` must match the persistent layer's tag-sieve parameters,
    /// and `persist_peers[s]` must be the node running slot `s`.
    #[must_use]
    pub fn with_tag_routing(mut self, slots: u64, r: u32) -> Self {
        self.tag_routing = Some(TagRouting { slots, r });
        self
    }

    /// Builder: gives the coordinator the persist layer's sieve map so
    /// writes go directly (and batched) to the nodes that will keep them.
    ///
    /// # Panics
    /// Panics when `sieves` is not parallel to `persist_peers`.
    #[must_use]
    pub fn with_persist_sieves(mut self, sieves: Vec<SieveSpec>) -> Self {
        assert_eq!(sieves.len(), self.persist_peers.len(), "one sieve per persist peer");
        self.persist_sieves = sieves;
        self
    }

    /// Builder: ties the epidemic-fallback fanout to the dd-estimation
    /// size estimate of the reachable persist population.
    #[must_use]
    pub fn with_adaptive_fanout(mut self) -> Self {
        self.adaptive_fanout = true;
        self.refresh_fanout();
        self
    }

    /// Peers the local failure detector currently trusts.
    #[must_use]
    pub fn reachable_peers(&self) -> &HashSet<NodeId> {
        &self.reachable
    }

    /// Acked writes not yet confirmed at every owner (re-delivery queue
    /// depth) — exposed for tests and debugging.
    #[must_use]
    pub fn undelivered_backlog(&self) -> usize {
        self.undelivered.len()
    }

    /// Recomputes the epidemic fanout from the extrema-propagation
    /// estimate over the reachable persist peers: each peer contributes
    /// the deterministic `Exp(1)` vector it drew at join time, the local
    /// failure detector decides which vectors to merge, and the estimate
    /// `(K−1)/Σ minima` replaces the static population count.
    fn refresh_fanout(&mut self) {
        if !self.adaptive_fanout {
            return;
        }
        let mut merged: Option<ExtremaEstimator> = None;
        for &p in &self.persist_peers {
            if !self.reachable.contains(&p) {
                continue;
            }
            let vector = ExtremaEstimator::generate(&mut stream_rng(EXTREMA_SALT, p.0), EXTREMA_K);
            match merged.as_mut() {
                Some(m) => {
                    m.merge(&vector);
                }
                None => merged = Some(vector),
            }
        }
        let estimate = merged.map_or(1.0, |m| m.estimate());
        let n = estimate.max(1.0).round() as u64;
        self.fanout = required_fanout(n, 0.999);
    }

    /// The coordinator for a key: the primary soft-ring owner.
    #[must_use]
    pub fn coordinator_of(&self, key_hash: u64) -> Option<NodeId> {
        self.ring.primary(key_hash)
    }

    /// Harvests a completed write or delete, retiring the record and its
    /// ack-routing entry. Late storage acks still update metadata.
    pub(crate) fn take_put(&mut self, req: u64) -> Option<PutStatus> {
        if self.leak_completions {
            return self.completed_puts.peek(req).map(|(status, _)| status);
        }
        let (status, key_hash) = self.completed_puts.take(req)?;
        self.put_index.remove(&(key_hash, status.version));
        Some(status)
    }

    /// Harvests a completed read.
    pub(crate) fn take_get(&mut self, req: u64) -> Option<Option<StoredTuple>> {
        if self.leak_completions {
            return self.completed_gets.peek(req);
        }
        self.completed_gets.take(req)
    }

    /// Harvests a completed scan.
    pub(crate) fn take_scan(&mut self, req: u64) -> Option<Vec<StoredTuple>> {
        if self.leak_completions {
            return self.completed_scans.peek(req);
        }
        self.completed_scans.take(req)
    }

    /// Harvests a completed aggregate.
    pub(crate) fn take_agg(&mut self, req: u64) -> Option<(dd_estimation::DistSketch, f64, f64)> {
        if self.leak_completions {
            return self.completed_aggs.peek(req);
        }
        self.completed_aggs.take(req)
    }

    /// Harvests a completed batched write.
    pub(crate) fn take_multi_put(&mut self, req: u64) -> Option<MultiPutStatus> {
        if self.leak_completions {
            return self.completed_multi_puts.peek(req);
        }
        self.completed_multi_puts.take(req)
    }

    /// Harvests a completed tag-scoped read: the deduplicated live tuples
    /// plus whether the replica union was complete (every contacted node
    /// answered) or cut short by the multi-op deadline.
    pub(crate) fn take_multi_get(&mut self, req: u64) -> Option<(Vec<StoredTuple>, bool)> {
        if self.leak_completions {
            return self.completed_multi_gets.peek(req);
        }
        self.completed_multi_gets.take(req)
    }

    /// Completion records currently retained across all op kinds. Bounded
    /// by `6 ×` [`COMPLETION_RETENTION`] even when no session ever
    /// harvests — the leak guard for abandoned clients.
    #[must_use]
    pub fn completion_backlog(&self) -> usize {
        self.completed_puts.len()
            + self.completed_gets.len()
            + self.completed_scans.len()
            + self.completed_aggs.len()
            + self.completed_multi_puts.len()
            + self.completed_multi_gets.len()
    }

    /// Completion records the retention cap has retired over this node's
    /// lifetime (the leak guard firing; 0 under well-behaved sessions).
    #[must_use]
    pub fn completions_retired(&self) -> u64 {
        self.completed_puts.retired
            + self.completed_gets.retired
            + self.completed_scans.retired
            + self.completed_aggs.retired
            + self.completed_multi_puts.retired
            + self.completed_multi_gets.retired
    }

    /// Client operations currently in flight on this coordinator (pending
    /// reads, scans, aggregates and multi-ops awaiting replica replies).
    #[must_use]
    pub fn pending_ops(&self) -> usize {
        self.pending_gets.len()
            + self.pending_scans.len()
            + self.pending_aggs.len()
            + self.pending_multi_puts.len()
            + self.pending_multi_gets.len()
    }

    /// Tuples queued in the per-target dissemination outbox awaiting a
    /// batch flush.
    #[must_use]
    pub fn outbox_depth(&self) -> usize {
        self.outbox.values().map(Vec::len).sum()
    }

    /// **Test-only.** Re-introduces the unbounded-completion-log
    /// regression (PR 3's bug shape) so the telemetry plane's leak
    /// detector has a true positive to catch: harvests stop retiring
    /// records (peek instead of take) and the caps stop
    /// evicting, so [`SoftNode::completion_backlog`] grows monotonically
    /// with every completed op. Client-visible results are unchanged —
    /// a harvest returns the same value it would have removed.
    pub fn seed_completion_leak(&mut self) {
        self.leak_completions = true;
        self.completed_puts.cap = usize::MAX;
        self.completed_gets.cap = usize::MAX;
        self.completed_scans.cap = usize::MAX;
        self.completed_aggs.cap = usize::MAX;
        self.completed_multi_puts.cap = usize::MAX;
        self.completed_multi_gets.cap = usize::MAX;
    }

    fn is_coordinator(&self, me: NodeId, key_hash: u64) -> bool {
        self.coordinator_of(key_hash) == Some(me)
    }

    /// The persist nodes whose sieves will keep `tuple`. Tombstones are
    /// wanted everywhere (see `PersistNode::wants`).
    fn owners_of(&self, tuple: &StoredTuple) -> Vec<NodeId> {
        if tuple.deleted {
            return self.persist_peers.clone();
        }
        let meta = tuple.item_meta();
        self.persist_peers
            .iter()
            .zip(&self.persist_sieves)
            .filter(|(_, sieve)| sieve.accepts(&meta))
            .map(|(&p, _)| p)
            .collect()
    }

    /// Remembers a write until every owner has confirmed storage, so a
    /// heal or revival can re-deliver it (the acked-while-owners-dark
    /// lost-write case). Bounded by [`UNDELIVERED_RETENTION`].
    fn track_undelivered(&mut self, tuple: &StoredTuple, owners: &[NodeId]) {
        if owners.is_empty() {
            return;
        }
        let id = (tuple.key_hash, tuple.version);
        self.undelivered.insert(id, Undelivered { tuple: tuple.clone(), pending: owners.to_vec() });
        self.undelivered_order.push_back(id);
        while self.undelivered.len() > UNDELIVERED_RETENTION {
            match self.undelivered_order.pop_front() {
                Some(old) => {
                    self.undelivered.remove(&old);
                }
                None => break,
            }
        }
        if self.undelivered_order.len() > 2 * self.undelivered.len() + 16 {
            let live = &self.undelivered;
            self.undelivered_order.retain(|id| live.contains_key(id));
        }
    }

    /// Queues one tuple for a target; flushes eagerly at [`BATCH_MAX`],
    /// otherwise arms the short batch timer once.
    fn enqueue_delivery(
        &mut self,
        ctx: &mut Ctx<'_, DropletMsg>,
        target: NodeId,
        tuple: StoredTuple,
        trace: Option<TraceCtx>,
    ) {
        let queue = self.outbox.entry(target).or_default();
        queue.push((tuple, trace));
        if queue.len() >= BATCH_MAX {
            let batch = self.outbox.remove(&target).expect("present");
            self.send_batch(ctx, target, batch);
        } else if !self.outbox_armed {
            self.outbox_armed = true;
            ctx.set_timer(Duration(BATCH_FLUSH_TICKS), BATCH_TIMER);
        }
    }

    fn send_batch(
        &mut self,
        ctx: &mut Ctx<'_, DropletMsg>,
        target: NodeId,
        batch: Vec<(StoredTuple, Option<TraceCtx>)>,
    ) {
        let me = ctx.id();
        ctx.metrics().incr("soft.deliveries");
        ctx.metrics().observe("soft.batch", batch.len() as f64);
        // The trace vec stays empty in untraced runs (no per-batch
        // allocation on the zero-cost-when-off path).
        let traced = batch.iter().any(|(_, t)| t.is_some());
        let mut tuples = Vec::with_capacity(batch.len());
        let mut traces = Vec::new();
        for (tuple, trace) in batch {
            if traced {
                traces.push(trace);
            }
            tuples.push(tuple);
        }
        ctx.send(target, DropletMsg::DeliverBatch { tuples, coordinator: me, traces });
    }

    /// Flushes every queued batch, in sorted target order (hash-map
    /// iteration order must never reach the wire).
    fn flush_outbox(&mut self, ctx: &mut Ctx<'_, DropletMsg>) {
        self.outbox_armed = false;
        let mut targets: Vec<NodeId> = self.outbox.keys().copied().collect();
        targets.sort_unstable();
        for target in targets {
            let batch = self.outbox.remove(&target).expect("present");
            self.send_batch(ctx, target, batch);
        }
    }

    fn disseminate(
        &mut self,
        ctx: &mut Ctx<'_, DropletMsg>,
        tuple: StoredTuple,
        trace: Option<TraceCtx>,
    ) {
        if self.persist_sieves.is_empty() {
            // Epidemic fallback: blind fanout into the persist layer,
            // relayed infect-and-die by the receivers.
            let me = ctx.id();
            let mut targets = self.persist_peers.clone();
            targets.shuffle(ctx.rng());
            targets.truncate(self.fanout as usize);
            for t in targets {
                ctx.metrics().incr("soft.disseminations");
                ctx.send(
                    t,
                    DropletMsg::Disseminate {
                        hops: 0,
                        tuple: tuple.clone(),
                        coordinator: me,
                        trace,
                    },
                );
            }
            return;
        }
        // Sieve-routed direct delivery: acceptance is deterministic, so
        // sending only to the owners stores exactly the set a full
        // broadcast would, at ~replication-degree messages per tuple.
        let owners = self.owners_of(&tuple);
        self.track_undelivered(&tuple, &owners);
        for owner in owners {
            if self.reachable.contains(&owner) {
                self.enqueue_delivery(ctx, owner, tuple.clone(), trace);
            }
        }
    }

    /// Orders one write at this (key-coordinator) node — assigns the
    /// version, records metadata, caches, disseminates — and returns the
    /// assigned identity. Completion tracking is the caller's business:
    /// single puts index the request, batch sub-puts ack their origin.
    fn order_and_disseminate(
        &mut self,
        ctx: &mut Ctx<'_, DropletMsg>,
        item: TupleSpec,
        delete: bool,
        trace: Option<TraceCtx>,
    ) -> (u64, Version) {
        let key_hash = item.key.hash();
        let version = self.authority.assign(key_hash);
        let tuple = if delete {
            StoredTuple::tombstone(item.key, version)
        } else {
            StoredTuple::from_spec(item, version)
        };
        self.metadata.record_write(key_hash, version, &[]);
        self.cache.put(key_hash, version, tuple.clone());
        ctx.metrics().incr("soft.writes");
        let order = self.trace_hop(ctx, trace, "soft.order");
        self.disseminate(ctx, tuple, order);
        (key_hash, version)
    }

    fn start_write(
        &mut self,
        ctx: &mut Ctx<'_, DropletMsg>,
        req: u64,
        item: TupleSpec,
        delete: bool,
        trace: Option<TraceCtx>,
    ) {
        let (key_hash, version) = self.order_and_disseminate(ctx, item, delete, trace);
        self.put_index.insert((key_hash, version), req);
        if let Some((_, (old, kh))) =
            self.completed_puts.insert(req, (PutStatus { version, acks: 0 }, key_hash))
        {
            // Retired to stay within the cap: drop its ack routing too.
            self.put_index.remove(&(kh, old.version));
        }
    }

    /// Completes a multi-put: records the status and counts a partial
    /// when fewer items ordered than the batch asked for (whichever path
    /// got here — last ack, death notice, or the deadline sweep).
    fn complete_multi_put(&mut self, ctx: &mut Ctx<'_, DropletMsg>, req: u64, p: PendingMultiPut) {
        if p.versions.len() < p.want {
            ctx.metrics().incr("soft.multi_put_partials");
        }
        self.trace_finish_op(ctx, req, p.versions.len() >= p.want);
        self.completed_multi_puts
            .insert(req, MultiPutStatus { items: p.versions.len(), versions: p.versions });
    }

    /// Completes a tag-scoped read; `full` is false when any contacted
    /// replica never answered (struck by a death notice or the deadline)
    /// or was unreachable to begin with.
    fn complete_multi_get(&mut self, ctx: &mut Ctx<'_, DropletMsg>, req: u64, p: PendingMultiGet) {
        if !p.full {
            ctx.metrics().incr("soft.multi_get_partials");
        }
        self.trace_finish_op(ctx, req, p.full);
        self.completed_multi_gets.insert(req, (Self::finalize_gather(p.items), p.full));
    }

    /// Records one ordered item of a pending multi-put (acked by `from`);
    /// completes the op when no sub-put is outstanding.
    fn note_sub_put_ack(
        &mut self,
        ctx: &mut Ctx<'_, DropletMsg>,
        req: u64,
        from: Option<NodeId>,
        key_hash: u64,
        version: Version,
    ) {
        let Some(p) = self.pending_multi_puts.get_mut(&req) else { return };
        p.versions.push((key_hash, version));
        if let Some(from) = from {
            if let Some(pos) = p.waiting.iter().position(|&n| n == from) {
                p.waiting.remove(pos);
            }
        }
        if p.waiting.is_empty() {
            let p = self.pending_multi_puts.remove(&req).expect("present");
            self.complete_multi_put(ctx, req, p);
        }
    }

    /// A persist node confirmed storage of `(key_hash, version)`: record
    /// the location hint, bump the put's ack count, and clear the
    /// re-delivery obligation for that node.
    fn note_stored(&mut self, from: NodeId, key_hash: u64, version: Version) {
        self.metadata.add_holder(key_hash, version, from);
        if let Some(&req) = self.put_index.get(&(key_hash, version)) {
            if let Some((s, _)) = self.completed_puts.get_mut(req) {
                s.acks += 1;
            }
        }
        if let Some(u) = self.undelivered.get_mut(&(key_hash, version)) {
            u.pending.retain(|&n| n != from);
            if u.pending.is_empty() {
                self.undelivered.remove(&(key_hash, version));
            }
        }
    }

    // ------------------------------------------------------------------
    // Tracing hooks (dd-trace). Every hook is a no-op in untraced runs:
    // no recorder is installed, the `trace` fields on messages are `None`,
    // and the two span maps stay empty — so traced and untraced runs walk
    // byte-identical protocol states.
    // ------------------------------------------------------------------

    /// Opens an instantaneous hop span (forwarding, ordering) under
    /// `parent` and returns the re-parented context for downstream
    /// messages.
    fn trace_hop(
        &mut self,
        ctx: &mut Ctx<'_, DropletMsg>,
        parent: Option<TraceCtx>,
        label: &'static str,
    ) -> Option<TraceCtx> {
        let p = parent?;
        let now = ctx.now();
        let me = ctx.id();
        let tr = ctx.tracer()?;
        let span = tr.open(now, me, p.op, Some(p.span), label);
        tr.close(now, p.op, span, true);
        Some(TraceCtx { op: p.op, span })
    }

    /// Opens the coordinator span of a traced op at this node; it stays
    /// open until [`SoftNode::trace_finish_op`].
    fn trace_coord(
        &mut self,
        ctx: &mut Ctx<'_, DropletMsg>,
        req: u64,
        parent: Option<TraceCtx>,
        label: &'static str,
    ) {
        let Some(p) = parent else { return };
        let now = ctx.now();
        let me = ctx.id();
        let Some(tr) = ctx.tracer() else { return };
        let span = tr.open(now, me, req, Some(p.span), label);
        self.trace_ops.insert(req, span);
    }

    /// The op's open coordinator span as a context (`None` when untraced).
    fn trace_ctx_of(&self, req: u64) -> Option<TraceCtx> {
        self.trace_ops.get(&req).map(|&span| TraceCtx { op: req, span })
    }

    /// Opens a wait span on `target` under the op's coordinator span and
    /// returns the context to embed in the outgoing request (`None` when
    /// the op is untraced). The span closes when the reply lands, when the
    /// op stops waiting, or — for a reply that never comes — at the trace
    /// horizon, which is exactly what pins a timeout on the silent node.
    fn trace_wait(
        &mut self,
        ctx: &mut Ctx<'_, DropletMsg>,
        req: u64,
        target: NodeId,
        label: &'static str,
    ) -> Option<TraceCtx> {
        let parent = *self.trace_ops.get(&req)?;
        let now = ctx.now();
        let tr = ctx.tracer()?;
        let span = tr.open(now, target, req, Some(parent), label);
        self.trace_waits.entry(req).or_default().push((target, span));
        Some(TraceCtx { op: req, span })
    }

    /// A reply from `from` landed: closes one of the op's wait spans on it
    /// as answered.
    fn trace_reply(&mut self, ctx: &mut Ctx<'_, DropletMsg>, req: u64, from: NodeId) {
        if self.trace_waits.is_empty() {
            return;
        }
        let Some(waits) = self.trace_waits.get_mut(&req) else { return };
        let Some(pos) = waits.iter().position(|&(n, _)| n == from) else { return };
        let (_, span) = waits.remove(pos);
        let empty = waits.is_empty();
        if empty {
            self.trace_waits.remove(&req);
        }
        let now = ctx.now();
        if let Some(tr) = ctx.tracer() {
            tr.close(now, req, span, true);
        }
    }

    /// The op stopped waiting on `peer` specifically (a death notice
    /// struck it from the waiting list): closes its wait spans on that
    /// peer as unanswered.
    fn trace_unwait(&mut self, ctx: &mut Ctx<'_, DropletMsg>, req: u64, peer: NodeId) {
        if self.trace_waits.is_empty() {
            return;
        }
        let Some(waits) = self.trace_waits.get_mut(&req) else { return };
        let now = ctx.now();
        let Some(tr) = ctx.tracer() else { return };
        waits.retain(|&(n, span)| {
            if n == peer {
                tr.close(now, req, span, false);
                false
            } else {
                true
            }
        });
        let empty = waits.is_empty();
        if empty {
            self.trace_waits.remove(&req);
        }
    }

    /// The op completed at this coordinator: closes any wait span still
    /// open as unanswered (deadline-swept stragglers), then the
    /// coordinator span itself.
    fn trace_finish_op(&mut self, ctx: &mut Ctx<'_, DropletMsg>, req: u64, answered: bool) {
        if self.trace_ops.is_empty() && self.trace_waits.is_empty() {
            return;
        }
        let waits = self.trace_waits.remove(&req);
        let coord = self.trace_ops.remove(&req);
        let now = ctx.now();
        let Some(tr) = ctx.tracer() else { return };
        for (_, span) in waits.into_iter().flatten() {
            tr.close(now, req, span, false);
        }
        if let Some(span) = coord {
            tr.close(now, req, span, answered);
        }
    }

    /// The replica this node is still waiting on for `req`, if the op is
    /// pending here — threaded into [`crate::OpError::Timeout`] so a
    /// timed-out client learns *which* node never replied.
    pub(crate) fn blame(&self, req: u64) -> Option<NodeId> {
        if let Some(p) = self.pending_gets.get(&req) {
            return p.waiting.first().or_else(|| p.unreached.first()).copied();
        }
        if let Some(p) = self.pending_multi_gets.get(&req) {
            return p.waiting.first().copied();
        }
        if let Some(p) = self.pending_multi_puts.get(&req) {
            return p.waiting.first().copied();
        }
        None
    }

    /// The failure detector declared `peer` dead: stop waiting on it.
    /// Pending single reads park it on their `unreached` list (a heal
    /// re-fetches); multi-ops with their last outstanding reply on it
    /// complete eagerly instead of sitting out the deadline sweep.
    fn strike_peer(&mut self, ctx: &mut Ctx<'_, DropletMsg>, peer: NodeId) {
        // Pending single reads keep their wait spans open: the op is still
        // semantically waiting (a heal re-fetches), and a never-healed
        // replica should show as the hop that never answered. Multi-ops
        // genuinely stop waiting, so their spans close unanswered now.
        let traced = !self.trace_waits.is_empty();
        for p in self.pending_gets.values_mut() {
            if let Some(pos) = p.waiting.iter().position(|&n| n == peer) {
                p.waiting.remove(pos);
                p.unreached.push(peer);
            }
        }
        let mut touched: Vec<u64> = Vec::new();
        let struck_gets: Vec<u64> = self
            .pending_multi_gets
            .iter_mut()
            .filter_map(|(&req, p)| {
                let before = p.waiting.len();
                p.waiting.retain(|&n| n != peer);
                if p.waiting.len() == before {
                    return None;
                }
                if traced {
                    touched.push(req);
                }
                p.full = false;
                p.waiting.is_empty().then_some(req)
            })
            .collect();
        let struck_puts: Vec<u64> = self
            .pending_multi_puts
            .iter_mut()
            .filter_map(|(&req, p)| {
                let before = p.waiting.len();
                p.waiting.retain(|&n| n != peer);
                if p.waiting.len() == before {
                    return None;
                }
                if traced {
                    touched.push(req);
                }
                p.waiting.is_empty().then_some(req)
            })
            .collect();
        for req in touched {
            self.trace_unwait(ctx, req, peer);
        }
        for req in struck_gets {
            let p = self.pending_multi_gets.remove(&req).expect("present");
            self.complete_multi_get(ctx, req, p);
        }
        for req in struck_puts {
            let p = self.pending_multi_puts.remove(&req).expect("present");
            self.complete_multi_put(ctx, req, p);
        }
    }

    /// The failure detector declared `peer` reachable again: re-fetch
    /// every read that was missing it, and re-deliver every acked write
    /// it still owes a storage confirmation for (the heal-recovery path —
    /// repair alone cannot restore a write no live owner ever received).
    fn peer_restored(&mut self, ctx: &mut Ctx<'_, DropletMsg>, peer: NodeId) {
        let mut refetches: Vec<(u64, u64, Version)> = Vec::new();
        for (&req, p) in &mut self.pending_gets {
            if let Some(pos) = p.unreached.iter().position(|&n| n == peer) {
                p.unreached.remove(pos);
                p.waiting.push(peer);
                refetches.push((req, p.key_hash, p.version));
            }
        }
        refetches.sort_unstable_by_key(|&(req, ..)| req);
        for (req, key_hash, version) in refetches {
            // A traced re-fetch opens a fresh wait span (the critical-path
            // walk credits the retry, not the first attempt).
            let trace = self.trace_wait(ctx, req, peer, "soft.fetch_wait");
            ctx.send(peer, DropletMsg::Fetch { req, key_hash, version, trace });
        }
        let mut owed: Vec<(u64, Version)> = self
            .undelivered
            .iter()
            .filter(|(_, u)| u.pending.contains(&peer))
            .map(|(&id, _)| id)
            .collect();
        // Deterministic order: versions of the same key must apply oldest
        // first so the receiver's store-changed accounting is replayable.
        owed.sort_unstable_by_key(|&(kh, v)| (kh, v.0));
        for id in owed {
            let tuple = self.undelivered[&id].tuple.clone();
            // Re-deliveries are untraced: the originating op was acked
            // (and its trace closed) long before the heal.
            self.enqueue_delivery(ctx, peer, tuple, None);
        }
    }

    /// Deduplicates gathered replica replies — latest version per key,
    /// tombstones dropped — and orders by attribute then key (the reply
    /// order of scans and tag-scoped reads alike).
    fn finalize_gather(items: Vec<StoredTuple>) -> Vec<StoredTuple> {
        let mut latest: HashMap<u64, StoredTuple> = HashMap::with_capacity(items.len());
        for t in items {
            match latest.get(&t.key_hash) {
                Some(e) if !t.supersedes(e) => {}
                _ => {
                    latest.insert(t.key_hash, t);
                }
            }
        }
        let mut out: Vec<StoredTuple> = latest.into_values().filter(|t| !t.deleted).collect();
        out.sort_by(|a, b| {
            a.attr
                .unwrap_or(f64::NAN)
                .total_cmp(&b.attr.unwrap_or(f64::NAN))
                .then(a.key.cmp(&b.key))
        });
        out
    }

    /// The persist nodes a tag-scoped read must contact: the tag's `r`
    /// slot-owners under tag placement, every persist peer otherwise.
    fn tag_read_targets(&self, tag_hash: u64) -> Vec<NodeId> {
        match self.tag_routing {
            Some(rt) => TagSieve::tag_slots(tag_hash, rt.slots, rt.r)
                .into_iter()
                .filter_map(|slot| self.persist_peers.get(slot as usize).copied())
                .collect(),
            None => self.persist_peers.clone(),
        }
    }

    fn start_read(&mut self, ctx: &mut Ctx<'_, DropletMsg>, req: u64, key: &Key) {
        let key_hash = key.hash();
        let latest = self.metadata.latest(key_hash);
        ctx.metrics().incr("soft.reads");
        if latest == Version::ZERO {
            // Key never written through this (healthy) soft layer.
            self.completed_gets.insert(req, None);
            self.trace_finish_op(ctx, req, true);
            return;
        }
        // §II: "the soft-layer always knows the most recent version … the
        // use of quorums at the persistent-state layer is not necessary."
        if let Some(t) = self.cache.get(key_hash, latest) {
            ctx.metrics().incr("soft.cache_hits");
            self.completed_gets.insert(req, (!t.deleted).then_some(t));
            self.trace_finish_op(ctx, req, true);
            return;
        }
        ctx.metrics().incr("soft.cache_misses");
        // Location hints first; random fallback otherwise.
        let mut targets: Vec<NodeId> = self.metadata.holders(key_hash).to_vec();
        if targets.is_empty() {
            let mut pool = self.persist_peers.clone();
            pool.shuffle(ctx.rng());
            pool.truncate(self.fallback_fetches);
            targets = pool;
            ctx.metrics().incr("soft.fallback_fetches");
        }
        if targets.is_empty() {
            self.completed_gets.insert(req, None);
            self.trace_finish_op(ctx, req, true);
            return;
        }
        // Fetch from the reachable replicas now; remember the unreachable
        // ones so a heal re-fetches instead of letting the op time out —
        // and never answer "not found" while one of them may hold the key.
        let (waiting, unreached): (Vec<NodeId>, Vec<NodeId>) =
            targets.into_iter().partition(|t| self.reachable.contains(t));
        for &t in &waiting {
            let trace = self.trace_wait(ctx, req, t, "soft.fetch_wait");
            ctx.send(t, DropletMsg::Fetch { req, key_hash, version: latest, trace });
        }
        self.pending_gets.insert(req, PendingGet { key_hash, version: latest, waiting, unreached });
    }

    /// Handles soft-layer messages; shared by the composite process.
    pub fn on_message(&mut self, ctx: &mut Ctx<'_, DropletMsg>, from: NodeId, msg: DropletMsg) {
        let me = ctx.id();
        match msg {
            DropletMsg::ClientPut { req, key, value, attr, tag, trace } => {
                if self.is_coordinator(me, key.hash()) {
                    let item = TupleSpec { key, value, attr, tag };
                    self.start_write(ctx, req, item, false, trace);
                } else if let Some(c) = self.coordinator_of(key.hash()) {
                    let trace = self.trace_hop(ctx, trace, "soft.forward");
                    ctx.send(c, DropletMsg::ClientPut { req, key, value, attr, tag, trace });
                }
            }
            DropletMsg::ClientDelete { req, key, trace } => {
                if self.is_coordinator(me, key.hash()) {
                    let item = TupleSpec { key, value: bytes::Bytes::new(), attr: None, tag: None };
                    self.start_write(ctx, req, item, true, trace);
                } else if let Some(c) = self.coordinator_of(key.hash()) {
                    let trace = self.trace_hop(ctx, trace, "soft.forward");
                    ctx.send(c, DropletMsg::ClientDelete { req, key, trace });
                }
            }
            DropletMsg::ClientGet { req, key, trace } => {
                if self.is_coordinator(me, key.hash()) {
                    self.trace_coord(ctx, req, trace, "soft.get");
                    self.start_read(ctx, req, &key);
                } else if let Some(c) = self.coordinator_of(key.hash()) {
                    let trace = self.trace_hop(ctx, trace, "soft.forward");
                    ctx.send(c, DropletMsg::ClientGet { req, key, trace });
                }
            }
            DropletMsg::ClientScan { req, lo, hi, trace } => {
                let targets = self.persist_peers.clone();
                self.trace_coord(ctx, req, trace, "soft.scan");
                if targets.is_empty() {
                    self.completed_scans.insert(req, Vec::new());
                    self.trace_finish_op(ctx, req, true);
                    return;
                }
                self.pending_scans
                    .insert(req, PendingGather { outstanding: targets.len(), items: Vec::new() });
                for t in targets {
                    let trace = self.trace_wait(ctx, req, t, "soft.scan_wait");
                    ctx.send(t, DropletMsg::ScanReq { req, lo, hi, trace });
                }
            }
            DropletMsg::ClientMultiPut { req, items, trace } => {
                ctx.metrics().incr("soft.multi_puts");
                ctx.metrics().observe("multi_put.batch", items.len() as f64);
                self.trace_coord(ctx, req, trace, "soft.multi_put");
                if items.is_empty() {
                    self.completed_multi_puts.insert(req, MultiPutStatus::default());
                    self.trace_finish_op(ctx, req, true);
                    return;
                }
                let want = items.len();
                let started = ctx.now();
                let coord_trace = self.trace_ctx_of(req);
                let mut versions = Vec::new();
                let mut waiting = Vec::new();
                let mut forwards = 0u64;
                for item in items {
                    let key_hash = item.key.hash();
                    if self.is_coordinator(me, key_hash) {
                        let (kh, version) =
                            self.order_and_disseminate(ctx, item, false, coord_trace);
                        versions.push((kh, version));
                    } else if let Some(c) = self.coordinator_of(key_hash) {
                        if self.reachable.contains(&c) {
                            forwards += 1;
                            waiting.push(c);
                            let trace = self.trace_wait(ctx, req, c, "soft.subput_wait");
                            ctx.send(c, DropletMsg::SubPut { req, origin: me, item, trace });
                        }
                        // Known-dead coordinator: its items cannot be
                        // ordered now — don't wait out the deadline for
                        // an ack that will never come.
                    }
                }
                ctx.metrics().add("multi_put.msgs", forwards);
                let pending = PendingMultiPut { waiting, versions, want, started };
                if pending.waiting.is_empty() {
                    self.complete_multi_put(ctx, req, pending);
                } else {
                    self.pending_multi_puts.insert(req, pending);
                    ctx.set_timer(Duration(MULTI_OP_TIMEOUT), MULTI_OP_TIMER);
                }
            }
            DropletMsg::ClientMultiGet { req, tag, trace } => {
                let tag_hash = tag.hash();
                // Tag-scoped reads have a deterministic coordinator, like
                // keys: route by the tag's position in the soft ring.
                if !self.is_coordinator(me, tag_hash) {
                    if let Some(c) = self.coordinator_of(tag_hash) {
                        ctx.metrics().incr("soft.multi_get_forwards");
                        let trace = self.trace_hop(ctx, trace, "soft.forward");
                        ctx.send(c, DropletMsg::ClientMultiGet { req, tag, trace });
                    }
                    return;
                }
                ctx.metrics().incr("soft.multi_gets");
                self.trace_coord(ctx, req, trace, "soft.multi_get");
                let targets = self.tag_read_targets(tag_hash);
                // Only reachable slot-owners are contacted; skipping a
                // known-dead one marks the result partial immediately
                // instead of waiting out the deadline for it.
                let (waiting, skipped): (Vec<NodeId>, Vec<NodeId>) =
                    targets.into_iter().partition(|t| self.reachable.contains(t));
                ctx.metrics().observe("multi_get.contacted_nodes", waiting.len() as f64);
                ctx.metrics().add("multi_get.msgs", waiting.len() as u64);
                let full = skipped.is_empty();
                let pending =
                    PendingMultiGet { waiting, items: Vec::new(), full, started: ctx.now() };
                if pending.waiting.is_empty() {
                    // Nothing answerable: empty result, full only when
                    // there were no owners at all to ask.
                    self.complete_multi_get(ctx, req, pending);
                    return;
                }
                for &t in &pending.waiting {
                    let trace = self.trace_wait(ctx, req, t, "soft.tagfetch_wait");
                    ctx.send(t, DropletMsg::TagFetch { req, tag_hash, trace });
                }
                self.pending_multi_gets.insert(req, pending);
                // Deadline: when this fires, this request (and any older
                // one) is past its timeout and completes with whatever
                // arrived — a silently lost reply must not hang the read.
                ctx.set_timer(Duration(MULTI_OP_TIMEOUT), MULTI_OP_TIMER);
            }
            DropletMsg::SubPut { req, origin, item, trace } => {
                ctx.metrics().incr("soft.sub_puts");
                let (key_hash, version) = self.order_and_disseminate(ctx, item, false, trace);
                ctx.send(origin, DropletMsg::SubPutAck { req, key_hash, version });
            }
            DropletMsg::SubPutAck { req, key_hash, version } => {
                self.trace_reply(ctx, req, from);
                self.note_sub_put_ack(ctx, req, Some(from), key_hash, version);
            }
            DropletMsg::TagFetchReply { req, items } => {
                let Some(p) = self.pending_multi_gets.get_mut(&req) else { return };
                p.items.extend(items);
                if let Some(pos) = p.waiting.iter().position(|&n| n == from) {
                    p.waiting.remove(pos);
                }
                let done = p.waiting.is_empty();
                self.trace_reply(ctx, req, from);
                if done {
                    let p = self.pending_multi_gets.remove(&req).expect("present");
                    self.complete_multi_get(ctx, req, p);
                }
            }
            DropletMsg::ClientAggregate { req, trace } => {
                let targets = self.persist_peers.clone();
                self.trace_coord(ctx, req, trace, "soft.agg");
                if targets.is_empty() {
                    self.completed_aggs.insert(
                        req,
                        (dd_estimation::DistSketch::new(16), f64::INFINITY, f64::NEG_INFINITY),
                    );
                    self.trace_finish_op(ctx, req, true);
                    return;
                }
                self.pending_aggs.insert(
                    req,
                    PendingAgg {
                        outstanding: targets.len(),
                        sketch: dd_estimation::DistSketch::new(512),
                        min: f64::INFINITY,
                        max: f64::NEG_INFINITY,
                    },
                );
                for t in targets {
                    let trace = self.trace_wait(ctx, req, t, "soft.agg_wait");
                    ctx.send(t, DropletMsg::AggReq { req, trace });
                }
            }
            DropletMsg::StoredAck { key_hash, version } => {
                self.note_stored(from, key_hash, version);
            }
            DropletMsg::StoredAckBatch { acked } => {
                for (key_hash, version) in acked {
                    self.note_stored(from, key_hash, version);
                }
            }
            DropletMsg::FetchReply { req, found } => {
                let Some(p) = self.pending_gets.get_mut(&req) else { return };
                if let Some(pos) = p.waiting.iter().position(|&n| n == from) {
                    p.waiting.remove(pos);
                }
                self.trace_reply(ctx, req, from);
                match found {
                    Some(t) => {
                        self.pending_gets.remove(&req);
                        self.metadata.add_holder(t.key_hash, t.version, from);
                        self.cache.put(t.key_hash, t.version, t.clone());
                        self.completed_gets.insert(req, (!t.deleted).then_some(t));
                        self.trace_finish_op(ctx, req, true);
                    }
                    None => {
                        // Conclude "not found" only once every replica we
                        // could reach said no AND none is still dark — a
                        // dark replica may hold the write (read-your-writes
                        // over availability).
                        if self
                            .pending_gets
                            .get(&req)
                            .is_some_and(|p| p.waiting.is_empty() && p.unreached.is_empty())
                        {
                            self.pending_gets.remove(&req);
                            self.completed_gets.insert(req, None);
                            self.trace_finish_op(ctx, req, true);
                        }
                    }
                }
            }
            DropletMsg::PeerDown(peer) if self.reachable.remove(&peer) => {
                self.refresh_fanout();
                self.strike_peer(ctx, peer);
            }
            DropletMsg::PeerUp(peer) if self.reachable.insert(peer) => {
                self.refresh_fanout();
                self.peer_restored(ctx, peer);
            }
            DropletMsg::ScanReply { req, items } => {
                let Some(p) = self.pending_scans.get_mut(&req) else { return };
                p.items.extend(items);
                p.outstanding -= 1;
                let done = p.outstanding == 0;
                self.trace_reply(ctx, req, from);
                if done {
                    let p = self.pending_scans.remove(&req).expect("present");
                    self.completed_scans.insert(req, Self::finalize_gather(p.items));
                    self.trace_finish_op(ctx, req, true);
                }
            }
            DropletMsg::AggReply { req, sketch, min, max } => {
                let Some(p) = self.pending_aggs.get_mut(&req) else { return };
                p.sketch.merge(&sketch);
                p.min = p.min.min(min);
                p.max = p.max.max(max);
                p.outstanding -= 1;
                let done = p.outstanding == 0;
                self.trace_reply(ctx, req, from);
                if done {
                    let p = self.pending_aggs.remove(&req).expect("present");
                    self.completed_aggs.insert(req, (p.sketch, p.min, p.max));
                    self.trace_finish_op(ctx, req, true);
                }
            }
            _ => {}
        }
    }

    /// Handles the multi-op deadline sweep: every pending multi-get and
    /// multi-put older than [`MULTI_OP_TIMEOUT`] completes with what it
    /// gathered so far (each op's own timer fires exactly at its expiry,
    /// so this never cuts a request short).
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_, DropletMsg>, tag: TimerTag) {
        if tag == BATCH_TIMER {
            self.flush_outbox(ctx);
            return;
        }
        if tag != MULTI_OP_TIMER {
            return;
        }
        let now = ctx.now();
        let past_deadline = |started: Time| now.0.saturating_sub(started.0) >= MULTI_OP_TIMEOUT;
        let expired_gets: Vec<u64> = self
            .pending_multi_gets
            .iter()
            .filter(|(_, p)| past_deadline(p.started))
            .map(|(&req, _)| req)
            .collect();
        for req in expired_gets {
            let mut p = self.pending_multi_gets.remove(&req).expect("present");
            p.full = false;
            self.complete_multi_get(ctx, req, p);
        }
        let expired_puts: Vec<u64> = self
            .pending_multi_puts
            .iter()
            .filter(|(_, p)| past_deadline(p.started))
            .map(|(&req, _)| req)
            .collect();
        for req in expired_puts {
            let p = self.pending_multi_puts.remove(&req).expect("present");
            self.complete_multi_put(ctx, req, p);
        }
    }

    /// Re-arms the multi-op deadline sweep after a reboot: armed timers
    /// do not survive a crash, but pending multi-ops do (node state is
    /// retained), so without this any op in flight at crash time would
    /// neither complete nor expire.
    pub fn arm_timers(&mut self, ctx: &mut Ctx<'_, DropletMsg>) {
        if !self.pending_multi_gets.is_empty() || !self.pending_multi_puts.is_empty() {
            ctx.set_timer(Duration(MULTI_OP_TIMEOUT), MULTI_OP_TIMER);
        }
        if !self.outbox.is_empty() {
            self.outbox_armed = true;
            ctx.set_timer(Duration(BATCH_FLUSH_TICKS), BATCH_TIMER);
        } else {
            self.outbox_armed = false;
        }
    }

    /// Wipes all soft state (catastrophic failure, §II) — versions,
    /// metadata, cache, pending operations, delivery queues — and resets
    /// the failure-detector view to its optimistic baseline (the harness
    /// re-injects down notices for anything still dead).
    pub fn wipe(&mut self) {
        self.authority = VersionAuthority::new();
        self.metadata = Metadata::new(8);
        self.cache.clear();
        self.put_index.clear();
        self.pending_gets.clear();
        self.pending_scans.clear();
        self.pending_aggs.clear();
        self.pending_multi_puts.clear();
        self.pending_multi_gets.clear();
        self.outbox.clear();
        self.outbox_armed = false;
        self.trace_ops.clear();
        self.trace_waits.clear();
        self.undelivered.clear();
        self.undelivered_order.clear();
        self.reachable = self.known_peers.iter().copied().collect();
        self.refresh_fanout();
    }

    /// Reconstructs metadata and version counters from a persistent-layer
    /// scan (§II: "metadata can be reconstructed from the data reliably
    /// stored at the underlying persistent-state layer").
    pub fn reconstruct(&mut self, scan: impl IntoIterator<Item = (u64, Version, NodeId)>) {
        let scan: Vec<(u64, Version, NodeId)> = scan.into_iter().collect();
        self.metadata = Metadata::rebuild(8, scan.iter().copied());
        for &(key, version, _) in &scan {
            self.authority.observe(key, version);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinator_is_consistent_across_nodes() {
        let members: Vec<NodeId> = (0..4).map(NodeId).collect();
        let nodes: Vec<SoftNode> = (0..4).map(|_| SoftNode::new(&members, vec![], 4, 16)).collect();
        for k in 0..100u64 {
            let c0 = nodes[0].coordinator_of(k);
            for n in &nodes {
                assert_eq!(n.coordinator_of(k), c0);
            }
        }
    }

    #[test]
    fn completion_log_retires_oldest_beyond_cap() {
        let mut log = CompletionLog::new(4);
        for req in 1..=10u64 {
            let evicted = log.insert(req, req * 10);
            if req > 4 {
                assert_eq!(evicted, Some((req - 4, (req - 4) * 10)), "oldest entry retires");
            } else {
                assert_eq!(evicted, None);
            }
        }
        assert_eq!(log.len(), 4);
        assert_eq!(log.take(9), Some(90));
        assert_eq!(log.take(9), None, "harvest retires the record");
        assert_eq!(log.take(1), None, "pre-cap entries were retired");
    }

    #[test]
    fn completion_log_order_queue_stays_compact_under_harvest() {
        let mut log = CompletionLog::new(64);
        for req in 0..10_000u64 {
            log.insert(req, req);
            assert_eq!(log.take(req), Some(req));
            assert!(log.order.len() <= 2 * log.map.len() + 17, "lazy compaction bounds the queue");
        }
        assert_eq!(log.len(), 0);
    }

    #[test]
    fn retiring_a_put_completion_releases_its_ack_route() {
        use rand::SeedableRng;
        let members = vec![NodeId(0)];
        let mut n = SoftNode::new(&members, vec![], 4, 16);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let mut metrics = dd_sim::Metrics::new();
        // Drive writes far past the cap without ever harvesting.
        dd_sim::engine::with_adhoc_ctx::<DropletMsg, _>(
            NodeId(0),
            Time(0),
            &mut rng,
            &mut metrics,
            |ctx| {
                for i in 0..(COMPLETION_RETENTION as u64 + 100) {
                    let spec = crate::tuple::TupleSpec::new(format!("k{i}"), vec![], None, None);
                    n.start_write(ctx, i, spec, false, None);
                }
            },
        );
        assert_eq!(n.completed_puts.len(), COMPLETION_RETENTION, "completions capped");
        assert!(n.put_index.len() <= COMPLETION_RETENTION, "ack index retired with them");
    }

    #[test]
    fn wipe_and_reconstruct_restores_versions() {
        let members = vec![NodeId(0)];
        let mut n = SoftNode::new(&members, vec![], 4, 16);
        // Simulate three writes' worth of authority state.
        let kh = Key::from("k").hash();
        n.authority.assign(kh);
        n.authority.assign(kh);
        n.metadata.record_write(kh, Version(2), &[NodeId(7)]);
        n.wipe();
        assert_eq!(n.metadata.latest(kh), Version::ZERO);
        n.reconstruct(vec![(kh, Version(2), NodeId(7))]);
        assert_eq!(n.metadata.latest(kh), Version(2));
        assert_eq!(n.metadata.holders(kh), &[NodeId(7)]);
        assert_eq!(n.authority.assign(kh), Version(3), "versions continue after rebuild");
    }
}
