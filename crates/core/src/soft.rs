//! The soft-state layer node: request ordering, versions, tuple cache,
//! metadata and read/write coordination (§II of the paper).

use crate::msg::DropletMsg;
use crate::tuple::{Key, StoredTuple};
use dd_dht::{HashRing, Metadata, TupleCache, Version, VersionAuthority};
use dd_sim::{Ctx, NodeId};
use rand::seq::SliceRandom;
use std::collections::HashMap;

/// Outcome of a write, as tracked by its coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PutStatus {
    /// Version the write was ordered at.
    pub version: Version,
    /// Storage acks received from the persistent layer so far.
    pub acks: u32,
}

#[derive(Debug, Clone)]
struct PendingGet {
    outstanding: usize,
    done: bool,
}

#[derive(Debug, Clone)]
struct PendingScan {
    outstanding: usize,
    items: Vec<StoredTuple>,
}

#[derive(Debug, Clone)]
struct PendingAgg {
    outstanding: usize,
    sketch: dd_estimation::DistSketch,
    min: f64,
    max: f64,
}

/// Soft-state layer node.
#[derive(Debug, Clone)]
pub struct SoftNode {
    /// Ring over the *soft* nodes only (the moderately sized tier).
    pub ring: HashRing,
    /// Per-key version authority (coordinator role).
    pub authority: VersionAuthority,
    /// Latest-version + location-hint metadata.
    pub metadata: Metadata,
    /// The tuple cache.
    pub cache: TupleCache<StoredTuple>,
    /// All persistent-layer node ids.
    pub persist_peers: Vec<NodeId>,
    /// Dissemination fanout used when originating writes.
    pub fanout: u32,
    /// Fallback fetch width when no location hints exist.
    pub fallback_fetches: usize,

    /// Completed writes: req → status (public: the harness polls this).
    pub completed_puts: HashMap<u64, PutStatus>,
    /// Completed reads: req → tuple (None = unknown key/deleted/not found).
    pub completed_gets: HashMap<u64, Option<StoredTuple>>,
    /// Completed scans: req → matching tuples.
    pub completed_scans: HashMap<u64, Vec<StoredTuple>>,
    /// Completed aggregates: req → (sketch, min, max).
    pub completed_aggs: HashMap<u64, (dd_estimation::DistSketch, f64, f64)>,

    put_index: HashMap<(u64, Version), u64>,
    pending_gets: HashMap<u64, PendingGet>,
    pending_scans: HashMap<u64, PendingScan>,
    pending_aggs: HashMap<u64, PendingAgg>,
}

impl SoftNode {
    /// Creates a soft node.
    #[must_use]
    pub fn new(
        soft_members: &[NodeId],
        persist_peers: Vec<NodeId>,
        fanout: u32,
        cache_capacity: usize,
    ) -> Self {
        let mut ring = HashRing::new();
        for &m in soft_members {
            ring.add(m, 16);
        }
        SoftNode {
            ring,
            authority: VersionAuthority::new(),
            metadata: Metadata::new(8),
            cache: TupleCache::new(cache_capacity),
            persist_peers,
            fanout,
            fallback_fetches: 5,
            completed_puts: HashMap::new(),
            completed_gets: HashMap::new(),
            completed_scans: HashMap::new(),
            completed_aggs: HashMap::new(),
            put_index: HashMap::new(),
            pending_gets: HashMap::new(),
            pending_scans: HashMap::new(),
            pending_aggs: HashMap::new(),
        }
    }

    /// The coordinator for a key: the primary soft-ring owner.
    #[must_use]
    pub fn coordinator_of(&self, key_hash: u64) -> Option<NodeId> {
        self.ring.primary(key_hash)
    }

    fn is_coordinator(&self, me: NodeId, key_hash: u64) -> bool {
        self.coordinator_of(key_hash) == Some(me)
    }

    fn disseminate(&mut self, ctx: &mut Ctx<'_, DropletMsg>, tuple: StoredTuple) {
        let me = ctx.id();
        let mut targets = self.persist_peers.clone();
        targets.shuffle(ctx.rng());
        targets.truncate(self.fanout as usize);
        for t in targets {
            ctx.metrics().incr("soft.disseminations");
            ctx.send(t, DropletMsg::Disseminate { hops: 0, tuple: tuple.clone(), coordinator: me });
        }
    }

    // A write's full identity really is eight fields; bundling them into
    // a one-off struct would only move the argument list.
    #[allow(clippy::too_many_arguments)]
    fn start_write(
        &mut self,
        ctx: &mut Ctx<'_, DropletMsg>,
        req: u64,
        key: Key,
        value: bytes::Bytes,
        attr: Option<f64>,
        tag: Option<String>,
        delete: bool,
    ) {
        let key_hash = key.hash();
        let version = self.authority.assign(key_hash);
        let tuple = if delete {
            StoredTuple::tombstone(key, version)
        } else {
            StoredTuple::new(key, version, value, attr, tag.as_deref())
        };
        self.metadata.record_write(key_hash, version, &[]);
        self.cache.put(key_hash, version, tuple.clone());
        self.put_index.insert((key_hash, version), req);
        self.completed_puts.insert(req, PutStatus { version, acks: 0 });
        ctx.metrics().incr("soft.writes");
        self.disseminate(ctx, tuple);
    }

    fn start_read(&mut self, ctx: &mut Ctx<'_, DropletMsg>, req: u64, key: &Key) {
        let key_hash = key.hash();
        let latest = self.metadata.latest(key_hash);
        ctx.metrics().incr("soft.reads");
        if latest == Version::ZERO {
            // Key never written through this (healthy) soft layer.
            self.completed_gets.insert(req, None);
            return;
        }
        // §II: "the soft-layer always knows the most recent version … the
        // use of quorums at the persistent-state layer is not necessary."
        if let Some(t) = self.cache.get(key_hash, latest) {
            ctx.metrics().incr("soft.cache_hits");
            self.completed_gets.insert(req, (!t.deleted).then_some(t));
            return;
        }
        ctx.metrics().incr("soft.cache_misses");
        // Location hints first; random fallback otherwise.
        let mut targets: Vec<NodeId> = self.metadata.holders(key_hash).to_vec();
        if targets.is_empty() {
            let mut pool = self.persist_peers.clone();
            pool.shuffle(ctx.rng());
            pool.truncate(self.fallback_fetches);
            targets = pool;
            ctx.metrics().incr("soft.fallback_fetches");
        }
        if targets.is_empty() {
            self.completed_gets.insert(req, None);
            return;
        }
        self.pending_gets.insert(req, PendingGet { outstanding: targets.len(), done: false });
        for t in targets {
            ctx.send(t, DropletMsg::Fetch { req, key_hash, version: latest });
        }
    }

    /// Handles soft-layer messages; shared by the composite process.
    pub fn on_message(&mut self, ctx: &mut Ctx<'_, DropletMsg>, from: NodeId, msg: DropletMsg) {
        let me = ctx.id();
        match msg {
            DropletMsg::ClientPut { req, key, value, attr, tag } => {
                if self.is_coordinator(me, key.hash()) {
                    self.start_write(ctx, req, key, value, attr, tag, false);
                } else if let Some(c) = self.coordinator_of(key.hash()) {
                    ctx.send(c, DropletMsg::ClientPut { req, key, value, attr, tag });
                }
            }
            DropletMsg::ClientDelete { req, key } => {
                if self.is_coordinator(me, key.hash()) {
                    self.start_write(ctx, req, key, bytes::Bytes::new(), None, None, true);
                } else if let Some(c) = self.coordinator_of(key.hash()) {
                    ctx.send(c, DropletMsg::ClientDelete { req, key });
                }
            }
            DropletMsg::ClientGet { req, key } => {
                if self.is_coordinator(me, key.hash()) {
                    self.start_read(ctx, req, &key);
                } else if let Some(c) = self.coordinator_of(key.hash()) {
                    ctx.send(c, DropletMsg::ClientGet { req, key });
                }
            }
            DropletMsg::ClientScan { req, lo, hi } => {
                let targets = self.persist_peers.clone();
                if targets.is_empty() {
                    self.completed_scans.insert(req, Vec::new());
                    return;
                }
                self.pending_scans
                    .insert(req, PendingScan { outstanding: targets.len(), items: Vec::new() });
                for t in targets {
                    ctx.send(t, DropletMsg::ScanReq { req, lo, hi });
                }
            }
            DropletMsg::ClientAggregate { req } => {
                let targets = self.persist_peers.clone();
                if targets.is_empty() {
                    self.completed_aggs.insert(
                        req,
                        (dd_estimation::DistSketch::new(16), f64::INFINITY, f64::NEG_INFINITY),
                    );
                    return;
                }
                self.pending_aggs.insert(
                    req,
                    PendingAgg {
                        outstanding: targets.len(),
                        sketch: dd_estimation::DistSketch::new(512),
                        min: f64::INFINITY,
                        max: f64::NEG_INFINITY,
                    },
                );
                for t in targets {
                    ctx.send(t, DropletMsg::AggReq { req });
                }
            }
            DropletMsg::StoredAck { key_hash, version } => {
                self.metadata.add_holder(key_hash, version, from);
                if let Some(&req) = self.put_index.get(&(key_hash, version)) {
                    if let Some(s) = self.completed_puts.get_mut(&req) {
                        s.acks += 1;
                    }
                }
            }
            DropletMsg::FetchReply { req, found } => {
                let Some(p) = self.pending_gets.get_mut(&req) else { return };
                p.outstanding = p.outstanding.saturating_sub(1);
                match found {
                    Some(t) if !p.done => {
                        p.done = true;
                        self.metadata.add_holder(t.key_hash, t.version, from);
                        self.cache.put(t.key_hash, t.version, t.clone());
                        self.completed_gets.insert(req, (!t.deleted).then_some(t));
                        self.pending_gets.remove(&req);
                    }
                    _ => {
                        if self.pending_gets.get(&req).is_some_and(|p| p.outstanding == 0) {
                            self.pending_gets.remove(&req);
                            self.completed_gets.entry(req).or_insert(None);
                        }
                    }
                }
            }
            DropletMsg::ScanReply { req, items } => {
                let Some(p) = self.pending_scans.get_mut(&req) else { return };
                p.items.extend(items);
                p.outstanding -= 1;
                if p.outstanding == 0 {
                    let p = self.pending_scans.remove(&req).expect("present");
                    // Deduplicate replicas: keep the latest version per key.
                    let mut latest: HashMap<u64, StoredTuple> = HashMap::new();
                    for t in p.items {
                        match latest.get(&t.key_hash) {
                            Some(e) if e.version >= t.version => {}
                            _ => {
                                latest.insert(t.key_hash, t);
                            }
                        }
                    }
                    let mut out: Vec<StoredTuple> =
                        latest.into_values().filter(|t| !t.deleted).collect();
                    out.sort_by(|a, b| {
                        a.attr
                            .unwrap_or(f64::NAN)
                            .total_cmp(&b.attr.unwrap_or(f64::NAN))
                            .then(a.key.cmp(&b.key))
                    });
                    self.completed_scans.insert(req, out);
                }
            }
            DropletMsg::AggReply { req, sketch, min, max } => {
                let Some(p) = self.pending_aggs.get_mut(&req) else { return };
                p.sketch.merge(&sketch);
                p.min = p.min.min(min);
                p.max = p.max.max(max);
                p.outstanding -= 1;
                if p.outstanding == 0 {
                    let p = self.pending_aggs.remove(&req).expect("present");
                    self.completed_aggs.insert(req, (p.sketch, p.min, p.max));
                }
            }
            _ => {}
        }
    }

    /// Wipes all soft state (catastrophic failure, §II) — versions,
    /// metadata, cache, pending operations.
    pub fn wipe(&mut self) {
        self.authority = VersionAuthority::new();
        self.metadata = Metadata::new(8);
        self.cache.clear();
        self.put_index.clear();
        self.pending_gets.clear();
        self.pending_scans.clear();
        self.pending_aggs.clear();
    }

    /// Reconstructs metadata and version counters from a persistent-layer
    /// scan (§II: "metadata can be reconstructed from the data reliably
    /// stored at the underlying persistent-state layer").
    pub fn reconstruct(&mut self, scan: impl IntoIterator<Item = (u64, Version, NodeId)>) {
        let scan: Vec<(u64, Version, NodeId)> = scan.into_iter().collect();
        self.metadata = Metadata::rebuild(8, scan.iter().copied());
        for &(key, version, _) in &scan {
            self.authority.observe(key, version);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinator_is_consistent_across_nodes() {
        let members: Vec<NodeId> = (0..4).map(NodeId).collect();
        let nodes: Vec<SoftNode> =
            (0..4).map(|_| SoftNode::new(&members, vec![], 4, 16)).collect();
        for k in 0..100u64 {
            let c0 = nodes[0].coordinator_of(k);
            for n in &nodes {
                assert_eq!(n.coordinator_of(k), c0);
            }
        }
    }

    #[test]
    fn wipe_and_reconstruct_restores_versions() {
        let members = vec![NodeId(0)];
        let mut n = SoftNode::new(&members, vec![], 4, 16);
        // Simulate three writes' worth of authority state.
        let kh = Key::from("k").hash();
        n.authority.assign(kh);
        n.authority.assign(kh);
        n.metadata.record_write(kh, Version(2), &[NodeId(7)]);
        n.wipe();
        assert_eq!(n.metadata.latest(kh), Version::ZERO);
        n.reconstruct(vec![(kh, Version(2), NodeId(7))]);
        assert_eq!(n.metadata.latest(kh), Version(2));
        assert_eq!(n.metadata.holders(kh), &[NodeId(7)]);
        assert_eq!(n.authority.assign(kh), Version(3), "versions continue after rebuild");
    }
}
