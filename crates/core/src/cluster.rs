//! Whole-system harness and public API.
//!
//! A [`Cluster`] hosts a complete DataDroplets deployment — `soft_n`
//! soft-state nodes and `persist_n` persistent-state nodes — inside one
//! deterministic simulation, and exposes the paper's client interface:
//! `put` / `get` / `delete` / `scan` / `aggregate`, plus the multi-tuple
//! operations `multi_put` (batched writes) and `multi_get` (tag-scoped
//! reads, routed to the tag's slot-owners under
//! [`Placement::TagCollocation`]). Operations are asynchronous (inject,
//! then [`Cluster::wait_put`] etc. drive virtual time until the
//! coordinator completes them), which lets experiments interleave churn
//! with traffic.

use crate::msg::DropletMsg;
use crate::persist::PersistNode;
use crate::sieve_spec::SieveSpec;
use crate::soft::{MultiPutStatus, PutStatus, SoftNode};
use crate::tuple::{Key, StoredTuple, TupleSpec};
use dd_epidemic::required_fanout;
use dd_dht::Version;
use dd_sim::{Ctx, Duration, NodeId, Process, Sim, SimConfig, TimerTag};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Result of a completed write.
pub type PutResult = PutStatus;

/// A successful read returns the stored tuple.
pub type GetResult = StoredTuple;

/// Result of a completed batched write.
pub type MultiPutResult = MultiPutStatus;

/// Persistent-layer placement strategy: which sieve family every node
/// runs, and therefore how the coordinator can route reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Key-range partition (the default): node `i` of `n` covers segment
    /// `i`, `r`-fold — the paper's "responsible for a given portion of
    /// the key space".
    #[default]
    RangePartition,
    /// Uniform `r/N` acceptance with a per-node salt (the paper's
    /// simplest sieve). Placement is random: correlated reads fan out.
    Uniform,
    /// Tag collocation (§III-B-1): tuples sharing a tag land on the same
    /// `r` slot-owners, and tag-scoped reads are routed to exactly those
    /// nodes.
    TagCollocation,
}

/// Result of an aggregate query (§III-C): duplicate-tolerant summaries
/// merged from every persistent node's bottom-k sketch.
#[derive(Debug, Clone)]
pub struct AggregateResult {
    sketch: dd_estimation::DistSketch,
    /// Minimum attribute value (exact; idempotent under replication).
    pub min: f64,
    /// Maximum attribute value (exact).
    pub max: f64,
}

impl AggregateResult {
    /// Estimated number of distinct tuples with attributes.
    #[must_use]
    pub fn distinct_estimate(&self) -> f64 {
        self.sketch.distinct_estimate()
    }

    /// Estimated `q`-quantile of the attribute distribution.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.sketch.quantile(q)
    }

    /// The underlying sketch.
    #[must_use]
    pub fn sketch(&self) -> &dd_estimation::DistSketch {
        &self.sketch
    }
}

/// Cluster topology and protocol parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of soft-state nodes (the "moderately sized" tier, §II).
    pub soft_n: u64,
    /// Number of persistent-state nodes.
    pub persist_n: u64,
    /// Target replication degree in the persistent layer.
    pub replication: u32,
    /// Dissemination fanout; `None` computes the paper's `ln N + c` for
    /// `p_atomic = 0.999`.
    pub fanout: Option<u32>,
    /// Soft-node tuple-cache capacity.
    pub cache_capacity: usize,
    /// Persistent-layer repair period in ticks; `None` disables repair.
    pub repair_period: Option<u64>,
    /// Persistent-layer placement strategy.
    pub placement: Placement,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            soft_n: 4,
            persist_n: 32,
            replication: 3,
            fanout: None,
            cache_capacity: 128,
            repair_period: Some(1_000),
            placement: Placement::RangePartition,
        }
    }
}

impl ClusterConfig {
    /// A small cluster suitable for tests and examples.
    #[must_use]
    pub fn small() -> Self {
        Self::default()
    }

    /// Builder: persistent-layer size.
    #[must_use]
    pub fn persist_n(mut self, n: u64) -> Self {
        self.persist_n = n;
        self
    }

    /// Builder: replication degree.
    #[must_use]
    pub fn replication(mut self, r: u32) -> Self {
        self.replication = r;
        self
    }

    /// Builder: explicit fanout.
    #[must_use]
    pub fn fanout(mut self, f: u32) -> Self {
        self.fanout = Some(f);
        self
    }

    /// Builder: disable repair.
    #[must_use]
    pub fn no_repair(mut self) -> Self {
        self.repair_period = None;
        self
    }

    /// Builder: uniform `r/N` sieves (the paper's simplest sieve).
    #[must_use]
    pub fn uniform_sieves(mut self) -> Self {
        self.placement = Placement::Uniform;
        self
    }

    /// Builder: tag-collocation sieves, with tag-aware read routing in
    /// the soft layer (§III-B-1).
    #[must_use]
    pub fn tag_sieves(mut self) -> Self {
        self.placement = Placement::TagCollocation;
        self
    }
}

/// One simulated node: either a soft-layer or a persist-layer role.
// Soft nodes carry coordinator state and are much larger than persist
// nodes; the simulator stores nodes in one flat map, so the padding is a
// deliberate trade against boxing every soft-node access.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum DropletNode {
    /// Soft-state layer member.
    Soft(SoftNode),
    /// Persistent-state layer member.
    Persist(PersistNode),
}

impl DropletNode {
    /// The soft role, if this node has it.
    #[must_use]
    pub fn as_soft(&self) -> Option<&SoftNode> {
        match self {
            DropletNode::Soft(s) => Some(s),
            DropletNode::Persist(_) => None,
        }
    }

    /// The persist role, if this node has it.
    #[must_use]
    pub fn as_persist(&self) -> Option<&PersistNode> {
        match self {
            DropletNode::Persist(p) => Some(p),
            DropletNode::Soft(_) => None,
        }
    }
}

impl Process for DropletNode {
    type Msg = DropletMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, DropletMsg>) {
        if let DropletNode::Persist(p) = self {
            p.arm_timers(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, DropletMsg>, from: NodeId, msg: DropletMsg) {
        match self {
            DropletNode::Soft(s) => s.on_message(ctx, from, msg),
            DropletNode::Persist(p) => p.on_message(ctx, from, msg),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, DropletMsg>, tag: TimerTag) {
        match self {
            DropletNode::Soft(s) => s.on_timer(ctx, tag),
            DropletNode::Persist(p) => p.on_timer(ctx, tag),
        }
    }

    fn on_up(&mut self, ctx: &mut Ctx<'_, DropletMsg>) {
        match self {
            DropletNode::Soft(s) => s.arm_timers(ctx),
            DropletNode::Persist(p) => p.arm_timers(ctx),
        }
    }
}

/// A complete simulated DataDroplets deployment.
pub struct Cluster {
    /// The underlying simulation (public for fault injection and metrics).
    pub sim: Sim<DropletNode>,
    config: ClusterConfig,
    soft_ids: Vec<NodeId>,
    persist_ids: Vec<NodeId>,
    next_req: u64,
    entry_rng: SmallRng,
}

impl Cluster {
    /// Builds and starts a cluster.
    ///
    /// # Panics
    /// Panics if the configuration has zero soft or persist nodes.
    #[must_use]
    pub fn new(config: ClusterConfig, seed: u64) -> Self {
        assert!(config.soft_n > 0, "need at least one soft node");
        assert!(config.persist_n > 0, "need at least one persist node");
        let soft_ids: Vec<NodeId> = (0..config.soft_n).map(NodeId).collect();
        let persist_ids: Vec<NodeId> =
            (config.soft_n..config.soft_n + config.persist_n).map(NodeId).collect();
        let fanout = config
            .fanout
            .unwrap_or_else(|| required_fanout(config.persist_n, 0.999));
        let mut sim: Sim<DropletNode> = Sim::new(SimConfig::default().seed(seed));
        for &id in &soft_ids {
            let mut soft =
                SoftNode::new(&soft_ids, persist_ids.clone(), fanout, config.cache_capacity);
            if config.placement == Placement::TagCollocation {
                // Slot s is run by persist_ids[s]; the soft node's peer
                // list is in that order, so routed slots map directly.
                soft = soft.with_tag_routing(config.persist_n, config.replication);
            }
            sim.add_node(id, DropletNode::Soft(soft));
        }
        for (i, &id) in persist_ids.iter().enumerate() {
            let sieve = match config.placement {
                Placement::RangePartition => {
                    SieveSpec::default_for(i as u64, config.persist_n, config.replication)
                }
                Placement::Uniform => {
                    SieveSpec::Uniform { salt: id.0, r: config.replication, n: config.persist_n }
                }
                Placement::TagCollocation => SieveSpec::Tag {
                    slot: i as u64,
                    slots: config.persist_n,
                    r: config.replication,
                },
            };
            let peers: Vec<NodeId> =
                persist_ids.iter().copied().filter(|&p| p != id).collect();
            sim.add_node(
                id,
                DropletNode::Persist(PersistNode::new(
                    sieve,
                    fanout,
                    peers,
                    config.repair_period.map(Duration),
                )),
            );
        }
        Cluster {
            sim,
            config,
            soft_ids,
            persist_ids,
            next_req: 0,
            entry_rng: SmallRng::seed_from_u64(seed ^ 0x00C1_1E47),
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Soft-layer node ids.
    #[must_use]
    pub fn soft_ids(&self) -> &[NodeId] {
        &self.soft_ids
    }

    /// Persistent-layer node ids.
    #[must_use]
    pub fn persist_ids(&self) -> &[NodeId] {
        &self.persist_ids
    }

    /// Runs the simulation for `ticks` of virtual time.
    pub fn run_for(&mut self, ticks: u64) {
        self.sim.run_for(Duration(ticks));
    }

    /// Lets start-up timers and gossip settle (one repair period).
    pub fn settle(&mut self) {
        self.run_for(self.config.repair_period.unwrap_or(1_000));
    }

    fn fresh_req(&mut self) -> u64 {
        self.next_req += 1;
        self.next_req
    }

    fn entry_node(&mut self) -> NodeId {
        let alive: Vec<NodeId> =
            self.soft_ids.iter().copied().filter(|&s| self.sim.is_alive(s)).collect();
        assert!(!alive.is_empty(), "no live soft node to accept the request");
        alive[self.entry_rng.gen_range(0..alive.len())]
    }

    /// Issues a write; returns the request id.
    pub fn put(
        &mut self,
        key: impl Into<Key>,
        value: Vec<u8>,
        attr: Option<f64>,
        tag: Option<&str>,
    ) -> u64 {
        let req = self.fresh_req();
        let entry = self.entry_node();
        self.sim.inject(
            entry,
            entry,
            DropletMsg::ClientPut {
                req,
                key: key.into(),
                value: value.into(),
                attr,
                tag: tag.map(str::to_owned),
            },
        );
        req
    }

    /// Issues a read; returns the request id.
    pub fn get(&mut self, key: impl Into<Key>) -> u64 {
        let req = self.fresh_req();
        let entry = self.entry_node();
        self.sim.inject(entry, entry, DropletMsg::ClientGet { req, key: key.into() });
        req
    }

    /// Issues a delete; returns the request id.
    pub fn delete(&mut self, key: impl Into<Key>) -> u64 {
        let req = self.fresh_req();
        let entry = self.entry_node();
        self.sim.inject(entry, entry, DropletMsg::ClientDelete { req, key: key.into() });
        req
    }

    /// Issues an attribute range scan; returns the request id.
    pub fn scan(&mut self, lo: f64, hi: f64) -> u64 {
        let req = self.fresh_req();
        let entry = self.entry_node();
        self.sim.inject(entry, entry, DropletMsg::ClientScan { req, lo, hi });
        req
    }

    /// Issues an aggregate query; returns the request id.
    pub fn aggregate(&mut self) -> u64 {
        let req = self.fresh_req();
        let entry = self.entry_node();
        self.sim.inject(entry, entry, DropletMsg::ClientAggregate { req });
        req
    }

    /// Issues a batched write (the social-feed `mput`); returns the
    /// request id. The receiving soft node splits the batch and routes
    /// each item to its key coordinator.
    pub fn multi_put(&mut self, items: impl IntoIterator<Item = TupleSpec>) -> u64 {
        let req = self.fresh_req();
        let entry = self.entry_node();
        let items: Vec<TupleSpec> = items.into_iter().collect();
        self.sim.inject(entry, entry, DropletMsg::ClientMultiPut { req, items });
        req
    }

    /// Issues a tag-scoped read (the social-feed `mget`): every live
    /// tuple carrying `tag`. Returns the request id. Under
    /// [`Placement::TagCollocation`] only the tag's `r` slot-owners are
    /// contacted; other placements fan out to the whole persistent layer.
    pub fn multi_get(&mut self, tag: &str) -> u64 {
        let req = self.fresh_req();
        let entry = self.entry_node();
        self.sim.inject(entry, entry, DropletMsg::ClientMultiGet { req, tag: tag.to_owned() });
        req
    }

    /// The shared polling driver behind every `wait_*`: drives virtual
    /// time until `probe` finds the operation's result on some soft node.
    fn wait_for<T>(&mut self, probe: impl Fn(&SoftNode) -> Option<T>) -> Option<T> {
        let find = |sim: &Sim<DropletNode>, ids: &[NodeId]| {
            ids.iter()
                .filter_map(|&id| sim.node(id).and_then(DropletNode::as_soft))
                .find_map(&probe)
        };
        for _ in 0..200 {
            if let Some(v) = find(&self.sim, &self.soft_ids) {
                return Some(v);
            }
            self.sim.run_for(Duration(50));
        }
        find(&self.sim, &self.soft_ids)
    }

    /// Drives time until the write completes; `None` on timeout (e.g. the
    /// coordinator died). The result keeps updating as more acks arrive —
    /// call again later for the final count.
    pub fn wait_put(&mut self, req: u64) -> Option<PutResult> {
        self.wait_for(|s| s.completed_puts.get(&req).copied())
    }

    /// Drives time until the read completes. Outer `None` = timeout; inner
    /// `None` = key absent (never written, deleted, or unreachable).
    pub fn wait_get(&mut self, req: u64) -> Option<Option<GetResult>> {
        self.wait_for(|s| s.completed_gets.get(&req).cloned())
    }

    /// Drives time until the scan completes.
    pub fn wait_scan(&mut self, req: u64) -> Option<Vec<StoredTuple>> {
        self.wait_for(|s| s.completed_scans.get(&req).cloned())
    }

    /// Drives time until the aggregate completes.
    pub fn wait_aggregate(&mut self, req: u64) -> Option<AggregateResult> {
        self.wait_for(|s| {
            s.completed_aggs
                .get(&req)
                .map(|(sk, min, max)| AggregateResult { sketch: sk.clone(), min: *min, max: *max })
        })
    }

    /// Drives time until the batched write completes: every item has a
    /// version and is disseminating (`items` == batch size), or the
    /// deadline sweep gave up on acks from dead key coordinators
    /// (`items` < batch size).
    pub fn wait_multi_put(&mut self, req: u64) -> Option<MultiPutResult> {
        self.wait_for(|s| s.completed_multi_puts.get(&req).cloned())
    }

    /// Drives time until the tag-scoped read completes; the result is the
    /// deduplicated live tuple set, ordered by attribute then key.
    pub fn wait_multi_get(&mut self, req: u64) -> Option<Vec<StoredTuple>> {
        self.wait_for(|s| s.completed_multi_gets.get(&req).cloned())
    }

    /// Workload driver: feeds `batches` batched writes of `batch` items
    /// from `workload` through [`Cluster::multi_put`], waiting for each
    /// to be ordered, and returns the distinct tags written in
    /// first-use order. Callers should [`Cluster::run_for`] a settle
    /// period before reading the tags back. Shared by the benches,
    /// examples and tests so the multi-op driving logic lives once.
    ///
    /// # Panics
    /// Panics if a batch fails to order within the wait window.
    pub fn drive_multi_puts(
        &mut self,
        workload: &mut crate::Workload,
        batches: usize,
        batch: usize,
    ) -> Vec<String> {
        let mut tags = Vec::new();
        for _ in 0..batches {
            let m = workload.next_multi_put(batch);
            if let Some(tag) = m.tag {
                if !tags.contains(&tag) {
                    tags.push(tag);
                }
            }
            let req = self.multi_put(m.items.into_iter().map(TupleSpec::from));
            let status = self.wait_multi_put(req).expect("multi_put batch failed to order");
            assert_eq!(status.items, batch);
        }
        tags
    }

    /// Workload driver: [`Cluster::multi_get`]s every tag and returns
    /// the tuple sets in tag order.
    ///
    /// # Panics
    /// Panics if a read times out.
    pub fn read_tags(&mut self, tags: &[String]) -> Vec<Vec<StoredTuple>> {
        tags.iter()
            .map(|tag| {
                let req = self.multi_get(tag);
                self.wait_multi_get(req).expect("multi_get timed out")
            })
            .collect()
    }

    /// Number of live persist nodes currently holding the latest version
    /// of `key` — the availability measure of E3/E6.
    #[must_use]
    pub fn replica_count(&self, key: &Key) -> usize {
        let kh = key.hash();
        let latest = self
            .persist_ids
            .iter()
            .filter_map(|&id| self.sim.node(id).and_then(DropletNode::as_persist))
            .filter_map(|p| p.store.get(&kh))
            .map(|t| t.version)
            .max();
        let Some(latest) = latest else { return 0 };
        self.persist_ids
            .iter()
            .filter(|&&id| self.sim.is_alive(id))
            .filter_map(|&id| self.sim.node(id).and_then(DropletNode::as_persist))
            .filter_map(|p| p.store.get(&kh))
            .filter(|t| t.version == latest)
            .count()
    }

    /// Scans the persistent layer for `(key_hash, version, holder)` triples
    /// — the reconstruction input of §II / experiment E12.
    #[must_use]
    pub fn scan_persist_state(&self) -> Vec<(u64, Version, NodeId)> {
        let mut out = Vec::new();
        for &id in &self.persist_ids {
            if let Some(p) = self.sim.node(id).and_then(DropletNode::as_persist) {
                for t in p.store.values() {
                    out.push((t.key_hash, t.version, id));
                }
            }
        }
        out
    }

    /// Simulates catastrophic soft-layer failure: wipes every soft node's
    /// state.
    pub fn wipe_soft_layer(&mut self) {
        for &id in &self.soft_ids.clone() {
            if let Some(DropletNode::Soft(s)) = self.sim.node_mut(id) {
                s.wipe();
            }
        }
    }

    /// Rebuilds the soft layer's metadata from the persistent layer.
    pub fn rebuild_soft_layer(&mut self) {
        let scan = self.scan_persist_state();
        for &id in &self.soft_ids.clone() {
            if let Some(DropletNode::Soft(s)) = self.sim.node_mut(id) {
                s.reconstruct(scan.iter().copied());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(seed: u64) -> Cluster {
        let mut c = Cluster::new(ClusterConfig::small(), seed);
        c.settle();
        c
    }

    #[test]
    fn put_then_get_round_trips() {
        let mut c = cluster(1);
        let w = c.put("user:1", b"alice".to_vec(), Some(30.0), None);
        let put = c.wait_put(w).expect("put completes");
        assert_eq!(put.version, Version(1));
        c.run_for(2_000);
        let r = c.get("user:1");
        let got = c.wait_get(r).expect("get completes").expect("key found");
        assert_eq!(got.value, b"alice".to_vec());
        assert_eq!(got.attr, Some(30.0));
    }

    #[test]
    fn writes_reach_the_replication_target() {
        let mut c = cluster(2);
        let w = c.put("replicated", b"x".to_vec(), None, None);
        c.wait_put(w).expect("put completes");
        c.run_for(5_000);
        let rc = c.replica_count(&Key::from("replicated"));
        assert!(rc >= 3, "replica count {rc}");
    }

    #[test]
    fn unknown_key_reads_none() {
        let mut c = cluster(3);
        let r = c.get("never-written");
        assert_eq!(c.wait_get(r), Some(None));
    }

    #[test]
    fn delete_tombstones_the_key() {
        let mut c = cluster(4);
        let w = c.put("temp", b"data".to_vec(), None, None);
        c.wait_put(w).unwrap();
        c.run_for(2_000);
        let d = c.delete("temp");
        c.wait_put(d).unwrap();
        c.run_for(2_000);
        let r = c.get("temp");
        assert_eq!(c.wait_get(r), Some(None), "deleted key reads as absent");
    }

    #[test]
    fn overwrites_read_latest_version() {
        let mut c = cluster(5);
        let w1 = c.put("k", b"v1".to_vec(), None, None);
        c.wait_put(w1).unwrap();
        c.run_for(1_000);
        let w2 = c.put("k", b"v2".to_vec(), None, None);
        let p2 = c.wait_put(w2).unwrap();
        assert_eq!(p2.version, Version(2));
        c.run_for(2_000);
        let r = c.get("k");
        let got = c.wait_get(r).unwrap().unwrap();
        assert_eq!(got.value, b"v2".to_vec());
        assert_eq!(got.version, Version(2));
    }

    #[test]
    fn scan_returns_attribute_range_sorted_and_deduplicated() {
        let mut c = cluster(6);
        for i in 0..20 {
            let w = c.put(format!("item:{i}"), vec![i as u8], Some(f64::from(i)), None);
            c.wait_put(w).unwrap();
        }
        c.run_for(5_000);
        let s = c.scan(5.0, 9.0);
        let items = c.wait_scan(s).expect("scan completes");
        let attrs: Vec<f64> = items.iter().map(|t| t.attr.unwrap()).collect();
        assert_eq!(attrs, vec![5.0, 6.0, 7.0, 8.0, 9.0], "range, sorted, no duplicates");
    }

    #[test]
    fn aggregate_estimates_are_duplicate_tolerant() {
        let mut c = cluster(7);
        let n = 40;
        for i in 0..n {
            let w = c.put(format!("m:{i}"), vec![], Some(f64::from(i)), None);
            c.wait_put(w).unwrap();
        }
        c.run_for(5_000);
        let a = c.aggregate();
        let agg = c.wait_aggregate(a).expect("aggregate completes");
        assert_eq!(agg.min, 0.0);
        assert_eq!(agg.max, f64::from(n - 1));
        let est = agg.distinct_estimate();
        // Replication would triple a naive count; the sketch must not.
        assert!(
            (est - f64::from(n)).abs() / f64::from(n) < 0.2,
            "distinct estimate {est} for {n} tuples"
        );
    }

    #[test]
    fn repair_restores_replicas_after_transient_churn() {
        let mut c = cluster(8);
        let w = c.put("churn-key", b"z".to_vec(), None, None);
        c.wait_put(w).unwrap();
        c.run_for(3_000);
        let before = c.replica_count(&Key::from("churn-key"));
        assert!(before >= 3);
        // Knock out two of the replica holders transiently.
        let kh = Key::from("churn-key").hash();
        let holders: Vec<NodeId> = c
            .persist_ids()
            .iter()
            .copied()
            .filter(|&id| {
                c.sim.node(id).and_then(DropletNode::as_persist).is_some_and(|p| p.store.contains_key(&kh))
            })
            .take(2)
            .collect();
        for &h in &holders {
            c.sim.kill(h);
        }
        c.run_for(1); // process the scheduled down events
        let during = c.replica_count(&Key::from("churn-key"));
        assert!(during < before, "kills reduce live replicas");
        for &h in &holders {
            c.sim.revive(h);
        }
        c.run_for(5_000);
        let after = c.replica_count(&Key::from("churn-key"));
        assert!(after >= before, "repair restores replication: {after} vs {before}");
    }

    #[test]
    fn reads_survive_soft_layer_catastrophe_after_rebuild() {
        let mut c = cluster(9);
        for i in 0..10 {
            let w = c.put(format!("p:{i}"), vec![i], Some(f64::from(i)), None);
            c.wait_put(w).unwrap();
        }
        c.run_for(4_000);
        c.wipe_soft_layer();
        // Without metadata, reads of known keys return None (unknown key).
        let r = c.get("p:3");
        assert_eq!(c.wait_get(r), Some(None), "wiped soft layer has no metadata");
        // Rebuild from the persistent layer (§II) and read again.
        c.rebuild_soft_layer();
        let r2 = c.get("p:3");
        let got = c.wait_get(r2).expect("completes").expect("found after rebuild");
        assert_eq!(got.value, vec![3u8]);
    }

    #[test]
    fn cache_serves_repeat_reads() {
        let mut c = cluster(10);
        let w = c.put("hot", b"cached".to_vec(), None, None);
        c.wait_put(w).unwrap();
        c.run_for(2_000);
        for _ in 0..5 {
            let r = c.get("hot");
            assert!(c.wait_get(r).unwrap().is_some());
        }
        let hits: u64 = c.sim.metrics().counter("soft.cache_hits");
        assert!(hits >= 4, "cache hits {hits}");
    }

    #[test]
    fn uniform_sieve_cluster_also_round_trips() {
        let mut c = Cluster::new(ClusterConfig::small().uniform_sieves().replication(5), 11);
        c.settle();
        let w = c.put("u", b"uniform".to_vec(), None, None);
        c.wait_put(w).unwrap();
        c.run_for(3_000);
        let r = c.get("u");
        let got = c.wait_get(r).expect("completes").expect("found");
        assert_eq!(got.value, b"uniform".to_vec());
    }

    /// Writes `batches` social-feed batches of `batch` posts each through
    /// the shared driver and returns the distinct tags.
    fn write_feed_batches(c: &mut Cluster, seed: u64, batches: usize, batch: usize) -> Vec<String> {
        let mut w = crate::Workload::new(crate::WorkloadKind::SocialFeed { users: 4 }, seed);
        let tags = c.drive_multi_puts(&mut w, batches, batch);
        c.run_for(5_000);
        tags
    }

    /// Reads every tag back with `multi_get` and returns, per tag, the
    /// sorted key set retrieved.
    fn read_feeds(c: &mut Cluster, tags: &[String]) -> Vec<Vec<String>> {
        c.read_tags(tags)
            .into_iter()
            .map(|tuples| {
                let mut keys: Vec<String> = tuples.into_iter().map(|t| t.key.0).collect();
                keys.sort();
                keys
            })
            .collect()
    }

    #[test]
    fn multi_put_then_multi_get_round_trips_under_tag_placement() {
        let mut c = Cluster::new(ClusterConfig::small().tag_sieves(), 21);
        c.settle();
        let tags = write_feed_batches(&mut c, 77, 6, 5);
        for (tag, keys) in tags.iter().zip(read_feeds(&mut c, &tags)) {
            assert!(!keys.is_empty(), "feed {tag} reads back");
            let user = tag.strip_prefix("feed:").unwrap();
            assert!(
                keys.iter().all(|k| k.starts_with(&format!("post:{user}:"))),
                "only the tag's posts come back for {tag}: {keys:?}"
            );
        }
        // Tuples written through the batch plane are ordinary tuples:
        // single-key reads see them too.
        let some_key = {
            let req = c.multi_get(&tags[0]);
            c.wait_multi_get(req).unwrap().first().unwrap().key.clone()
        };
        let r = c.get(some_key);
        assert!(c.wait_get(r).unwrap().is_some());
    }

    #[test]
    fn tag_placement_contacts_at_most_r_nodes_random_contacts_more() {
        let run = |config: ClusterConfig| {
            let mut c = Cluster::new(config, 33);
            c.settle();
            let tags = write_feed_batches(&mut c, 99, 6, 5);
            let feeds = read_feeds(&mut c, &tags);
            let contacts = c.sim.metrics().summary("multi_get.contacted_nodes");
            assert_eq!(contacts.n, tags.len(), "one observation per multi_get");
            (feeds, contacts.max)
        };
        // Replication 5 for both: a uniform sieve population misses a
        // tuple entirely with probability ~e^-r (the paper's coverage
        // trade-off, E3), so r = 3 would lose ~4% of writes and the
        // tuple-set comparison below would be about coverage, not routing.
        let config = ClusterConfig::small().replication(5);
        let (tagged_feeds, tagged_max) = run(config.clone().tag_sieves());
        let (uniform_feeds, uniform_max) = run(config.clone().uniform_sieves());

        // Acceptance bound: tag routing touches at most r persist nodes
        // (well under the r + soft_n allowance that includes soft-layer
        // forwarding hops).
        assert!(
            tagged_max <= f64::from(config.replication),
            "tag routing contacted {tagged_max} nodes"
        );
        // Random placement must fan out to strictly more nodes for the
        // same workload…
        assert!(
            uniform_max > tagged_max,
            "uniform placement should contact more nodes: {uniform_max} vs {tagged_max}"
        );
        // …yet return the same tuple sets (fallback correctness).
        assert_eq!(tagged_feeds, uniform_feeds, "same feeds, placement-independent");
    }

    #[test]
    fn multi_get_survives_a_dead_slot_owner() {
        let mut c = Cluster::new(ClusterConfig::small().tag_sieves(), 66);
        c.settle();
        let k = 5u8;
        let batch: Vec<TupleSpec> = (0..k)
            .map(|i| TupleSpec::new(format!("s:{i}"), vec![i], Some(f64::from(i)), Some("feed:s")))
            .collect();
        let w = c.multi_put(batch);
        c.wait_multi_put(w).expect("ordered");
        c.run_for(5_000);
        // Kill one of the tag's r slot-owners; the remaining replicas
        // still hold the full feed.
        let th = dd_sim::rng::stable_hash(b"feed:s");
        let slots = dd_sieve::TagSieve::tag_slots(th, c.config().persist_n, c.config().replication);
        let victim = c.persist_ids()[slots[0] as usize];
        c.sim.kill(victim);
        c.run_for(10);
        let r = c.multi_get("feed:s");
        let feed = c.wait_multi_get(r).expect("completes despite the dead owner");
        assert_eq!(feed.len(), k as usize, "surviving owners serve the full feed");
        assert_eq!(c.sim.metrics().counter("soft.multi_get_partials"), 1);
    }

    #[test]
    fn multi_put_completes_partially_when_a_key_coordinator_is_dead() {
        let mut c = Cluster::new(ClusterConfig::small().tag_sieves(), 88);
        c.settle();
        // Split candidate keys by whether the victim soft node is their
        // key coordinator (the ring is identical on every soft node).
        let victim = c.soft_ids()[0];
        let ring_view = c.sim.node(victim).and_then(DropletNode::as_soft).unwrap().ring.clone();
        let (orphaned, healthy): (Vec<String>, Vec<String>) = (0..40u32)
            .map(|i| format!("mp:{i}"))
            .partition(|k| ring_view.primary(Key::from(k.clone()).hash()) == Some(victim));
        assert!(orphaned.len() >= 2 && healthy.len() >= 2, "both classes sampled");
        let batch: Vec<TupleSpec> = orphaned
            .iter()
            .take(3)
            .chain(healthy.iter().take(5))
            .map(|k| TupleSpec::new(k.clone(), b"v".to_vec(), None, Some("feed:mp")))
            .collect();
        c.sim.kill(victim);
        c.run_for(10);
        let req = c.multi_put(batch);
        let status = c.wait_multi_put(req).expect("deadline completes the batch");
        assert_eq!(status.items, 5, "only the live coordinators' items ordered");
        assert!(c.sim.metrics().counter("soft.multi_put_partials") >= 1);
    }

    #[test]
    fn multi_get_survives_a_coordinator_reboot_mid_op() {
        let mut c = Cluster::new(ClusterConfig::small().tag_sieves(), 99);
        c.settle();
        let batch: Vec<TupleSpec> = (0..4u8)
            .map(|i| TupleSpec::new(format!("rb:{i}"), vec![i], Some(f64::from(i)), Some("feed:rb")))
            .collect();
        let w = c.multi_put(batch);
        c.wait_multi_put(w).expect("ordered");
        c.run_for(5_000);
        let th = dd_sim::rng::stable_hash(b"feed:rb");
        // Keep the read pending past its first ticks: one slot-owner is
        // dead, so only the deadline can complete it.
        let slots = dd_sieve::TagSieve::tag_slots(th, c.config().persist_n, c.config().replication);
        c.sim.kill(c.persist_ids()[slots[0] as usize]);
        c.run_for(10);
        let req = c.multi_get("feed:rb");
        c.run_for(100); // op reaches its soft coordinator and goes pending
        // Bounce the tag's soft coordinator: state survives, timers don't.
        let sc = c
            .sim
            .node(c.soft_ids()[0])
            .and_then(DropletNode::as_soft)
            .unwrap()
            .coordinator_of(th)
            .expect("soft ring nonempty");
        c.sim.kill(sc);
        c.run_for(50);
        c.sim.revive(sc);
        let feed = c.wait_multi_get(req).expect("re-armed deadline completes the read");
        assert_eq!(feed.len(), 4, "surviving owners serve the full feed");
    }

    #[test]
    fn multi_get_of_unknown_tag_is_empty() {
        let mut c = Cluster::new(ClusterConfig::small().tag_sieves(), 44);
        c.settle();
        let req = c.multi_get("feed:nobody");
        assert_eq!(c.wait_multi_get(req), Some(Vec::new()));
    }

    #[test]
    fn deleted_tuples_leave_the_feed() {
        let mut c = Cluster::new(ClusterConfig::small().tag_sieves(), 55);
        c.settle();
        let batch: Vec<TupleSpec> = (0..4u8)
            .map(|i| TupleSpec::new(format!("p:{i}"), vec![i], Some(f64::from(i)), Some("feed:z")))
            .collect();
        let w = c.multi_put(batch);
        c.wait_multi_put(w).expect("ordered");
        c.run_for(5_000);
        let d = c.delete("p:2");
        c.wait_put(d).expect("delete ordered");
        c.run_for(5_000);
        let r = c.multi_get("feed:z");
        let feed = c.wait_multi_get(r).expect("completes");
        assert_eq!(feed.len(), 3);
        assert!(feed.iter().all(|t| t.key.0 != "p:2"));
    }

    #[test]
    fn same_seed_same_outcome() {
        let run = |seed| {
            let mut c = cluster(seed);
            let w = c.put("det", b"x".to_vec(), None, None);
            c.wait_put(w).unwrap();
            c.run_for(3_000);
            (c.replica_count(&Key::from("det")), c.sim.metrics().counter("net.sent"))
        };
        assert_eq!(run(42), run(42));
    }
}
