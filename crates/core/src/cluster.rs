//! Whole-system harness and public API.
//!
//! A [`Cluster`] hosts a complete DataDroplets deployment — `soft_n`
//! soft-state nodes and `persist_n` persistent-state nodes — inside one
//! deterministic simulation. Clients talk to it through typed, pipelined
//! sessions: [`Cluster::client`] opens a [`crate::Client`], whose
//! operations (`put` / `get` / `delete` / `scan` / `aggregate`, plus the
//! multi-tuple `multi_put` and tag-routed `multi_get`) return
//! [`crate::Pending`] handles immediately. [`Cluster::pump`] advances
//! virtual time while sessions harvest completions — which lets
//! experiments hold thousands of operations in flight and interleave
//! churn with traffic.

use crate::client::Client;
use crate::msg::DropletMsg;
use crate::persist::PersistNode;
use crate::sieve_spec::SieveSpec;
use crate::soft::{MultiPutStatus, PutStatus, SoftNode};
use crate::tuple::{Key, StoredTuple};
use dd_dht::Version;
use dd_epidemic::required_fanout;
use dd_sim::rng::mix;
use dd_sim::{Ctx, Duration, NodeId, Process, Sim, SimConfig, TimerTag};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Result of a completed write.
pub type PutResult = PutStatus;

/// A successful read returns the stored tuple.
pub type GetResult = StoredTuple;

/// Result of a completed batched write.
pub type MultiPutResult = MultiPutStatus;

/// Result of a completed tag-scoped read: every live tuple carrying the
/// tag, deduplicated and attribute-ordered, plus whether the replica
/// union behind it was *complete*. Dereferences to the tuple slice, so
/// feed consumers index and iterate it directly.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MultiGetResult {
    /// The live tuples carrying the tag.
    pub items: Vec<StoredTuple>,
    /// `true` when every contacted replica answered; `false` when the
    /// multi-op deadline completed the read without some replica (e.g. a
    /// dead slot-owner) — the feed may be missing that replica's tuples.
    pub complete: bool,
}

impl std::ops::Deref for MultiGetResult {
    type Target = [StoredTuple];
    fn deref(&self) -> &[StoredTuple] {
        &self.items
    }
}

impl IntoIterator for MultiGetResult {
    type Item = StoredTuple;
    type IntoIter = std::vec::IntoIter<StoredTuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

/// Persistent-layer placement strategy: which sieve family every node
/// runs, and therefore how the coordinator can route reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Key-range partition (the default): node `i` of `n` covers segment
    /// `i`, `r`-fold — the paper's "responsible for a given portion of
    /// the key space".
    #[default]
    RangePartition,
    /// Uniform `r/N` acceptance with a per-node salt (the paper's
    /// simplest sieve). Placement is random: correlated reads fan out.
    Uniform,
    /// Tag collocation (§III-B-1): tuples sharing a tag land on the same
    /// `r` slot-owners, and tag-scoped reads are routed to exactly those
    /// nodes.
    TagCollocation,
}

/// Result of an aggregate query (§III-C): duplicate-tolerant summaries
/// merged from every persistent node's bottom-k sketch.
#[derive(Debug, Clone)]
pub struct AggregateResult {
    sketch: dd_estimation::DistSketch,
    /// Minimum attribute value (exact; idempotent under replication).
    pub min: f64,
    /// Maximum attribute value (exact).
    pub max: f64,
}

impl AggregateResult {
    /// Assembles a result from a harvested completion record.
    pub(crate) fn from_parts(sketch: dd_estimation::DistSketch, min: f64, max: f64) -> Self {
        AggregateResult { sketch, min, max }
    }

    /// Estimated number of distinct tuples with attributes.
    #[must_use]
    pub fn distinct_estimate(&self) -> f64 {
        self.sketch.distinct_estimate()
    }

    /// Estimated `q`-quantile of the attribute distribution.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.sketch.quantile(q)
    }

    /// The underlying sketch.
    #[must_use]
    pub fn sketch(&self) -> &dd_estimation::DistSketch {
        &self.sketch
    }
}

/// Cluster topology and protocol parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of soft-state nodes (the "moderately sized" tier, §II).
    pub soft_n: u64,
    /// Number of persistent-state nodes.
    pub persist_n: u64,
    /// Target replication degree in the persistent layer.
    pub replication: u32,
    /// Dissemination fanout; `None` computes the paper's `ln N + c` for
    /// `p_atomic = 0.999`.
    pub fanout: Option<u32>,
    /// Soft-node tuple-cache capacity.
    pub cache_capacity: usize,
    /// Persistent-layer repair period in ticks; `None` disables repair.
    pub repair_period: Option<u64>,
    /// Persistent-layer placement strategy.
    pub placement: Placement,
    /// Topology-aware repair: periodic anti-entropy prefers ring
    /// neighbours over uniform random pairing. Off by default so recorded
    /// scenario seeds keep replaying byte-identically.
    pub ring_repair: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            soft_n: 4,
            persist_n: 32,
            replication: 3,
            fanout: None,
            cache_capacity: 128,
            repair_period: Some(1_000),
            placement: Placement::RangePartition,
            ring_repair: false,
        }
    }
}

impl ClusterConfig {
    /// A small cluster suitable for tests and examples.
    #[must_use]
    pub fn small() -> Self {
        Self::default()
    }

    /// Builder: persistent-layer size.
    #[must_use]
    pub fn persist_n(mut self, n: u64) -> Self {
        self.persist_n = n;
        self
    }

    /// Builder: replication degree.
    #[must_use]
    pub fn replication(mut self, r: u32) -> Self {
        self.replication = r;
        self
    }

    /// Builder: explicit fanout.
    #[must_use]
    pub fn fanout(mut self, f: u32) -> Self {
        self.fanout = Some(f);
        self
    }

    /// Builder: disable repair.
    #[must_use]
    pub fn no_repair(mut self) -> Self {
        self.repair_period = None;
        self
    }

    /// Builder: persistent-layer placement strategy. Tag collocation also
    /// enables tag-aware read routing in the soft layer (§III-B-1).
    #[must_use]
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Builder: prefer ring neighbours in periodic repair rounds.
    #[must_use]
    pub fn ring_repair(mut self) -> Self {
        self.ring_repair = true;
        self
    }
}

/// One simulated node: either a soft-layer or a persist-layer role.
// Soft nodes carry coordinator state and are much larger than persist
// nodes; the simulator stores nodes in one flat map, so the padding is a
// deliberate trade against boxing every soft-node access.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum DropletNode {
    /// Soft-state layer member.
    Soft(SoftNode),
    /// Persistent-state layer member.
    Persist(PersistNode),
}

impl DropletNode {
    /// The soft role, if this node has it.
    #[must_use]
    pub fn as_soft(&self) -> Option<&SoftNode> {
        match self {
            DropletNode::Soft(s) => Some(s),
            DropletNode::Persist(_) => None,
        }
    }

    /// The soft role, mutably (the client plane harvests through this).
    #[must_use]
    pub fn as_soft_mut(&mut self) -> Option<&mut SoftNode> {
        match self {
            DropletNode::Soft(s) => Some(s),
            DropletNode::Persist(_) => None,
        }
    }

    /// The persist role, if this node has it.
    #[must_use]
    pub fn as_persist(&self) -> Option<&PersistNode> {
        match self {
            DropletNode::Persist(p) => Some(p),
            DropletNode::Soft(_) => None,
        }
    }
}

impl Process for DropletNode {
    type Msg = DropletMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, DropletMsg>) {
        if let DropletNode::Persist(p) = self {
            p.arm_timers(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, DropletMsg>, from: NodeId, msg: DropletMsg) {
        match self {
            DropletNode::Soft(s) => s.on_message(ctx, from, msg),
            DropletNode::Persist(p) => p.on_message(ctx, from, msg),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, DropletMsg>, tag: TimerTag) {
        match self {
            DropletNode::Soft(s) => s.on_timer(ctx, tag),
            DropletNode::Persist(p) => p.on_timer(ctx, tag),
        }
    }

    fn on_up(&mut self, ctx: &mut Ctx<'_, DropletMsg>) {
        match self {
            DropletNode::Soft(s) => s.arm_timers(ctx),
            DropletNode::Persist(p) => {
                p.arm_timers(ctx);
                // A revived replica may have missed writes while down:
                // pull digests from a couple of peers straight away
                // instead of waiting out a full repair period.
                p.initiate_repair(ctx, 2);
            }
        }
    }
}

/// The telemetry plane's collector: the kernel polls it through the
/// [`dd_sim::Sampler`] hook, and every due sweep walks the live nodes
/// feeding per-node gauges, cluster aggregates and counter rates into a
/// [`dd_obs::Telemetry`]. The sampler only *reads* — node state, RNGs,
/// the queue and the network model are untouched — so instrumented runs
/// replay byte-identically (bench E20 asserts it bit for bit).
struct ClusterSampler {
    telemetry: dd_obs::Telemetry,
}

impl dd_sim::Sampler<DropletNode> for ClusterSampler {
    fn period(&self) -> u64 {
        self.telemetry.period()
    }

    fn sample(&mut self, sim: &Sim<DropletNode>) {
        use dd_obs::{names, Label};
        let tick = sim.now().0;
        let t = &mut self.telemetry;

        // Engine: event-queue depth and in-flight messages by kind.
        t.gauge(tick, names::QUEUE_DEPTH, Label::None, sim.queue_depth() as f64);
        let mut by_kind: std::collections::BTreeMap<&'static str, u64> = Default::default();
        let mut in_flight = 0u64;
        for m in sim.in_flight_msgs() {
            *by_kind.entry(m.kind()).or_insert(0) += 1;
            in_flight += 1;
        }
        t.gauge(tick, names::IN_FLIGHT, Label::None, in_flight as f64);
        for (kind, n) in by_kind {
            t.gauge(tick, names::IN_FLIGHT, Label::Kind(kind), n as f64);
        }

        // Counter rates: deltas since the previous sweep (the first sweep
        // records 0 and baselines, so settle-era counts don't spike).
        let m = sim.metrics();
        t.rate(tick, names::NET_SENT, m.counter("net.sent"));
        t.rate(tick, names::REPAIR_ROUNDS, m.counter("repair.syncs"));
        t.rate(tick, names::REPAIR_CLEAN, m.counter("repair.clean"));
        t.rate(tick, names::REPAIR_RECOVERED, m.counter("repair.recovered"));

        // Per-node gauges and their cluster aggregates.
        let mut backlog = 0u64;
        let mut pending = 0u64;
        let mut undelivered = 0u64;
        let mut retired = 0u64;
        let mut tuples = 0u64;
        let mut bytes = 0u64;
        let mut tombs = 0u64;
        let mut fd_sum = 0u64;
        let mut fanout_sum = 0u64;
        let mut soft_n = 0u64;
        for id in sim.alive_ids() {
            let node = Label::Node(id.0);
            match sim.node(id) {
                Some(DropletNode::Soft(s)) => {
                    let b = s.completion_backlog() as u64;
                    let p = s.pending_ops() as u64;
                    let u = s.undelivered_backlog() as u64;
                    t.gauge(tick, "soft.completion_backlog", node, b as f64);
                    t.gauge(tick, "soft.pending_ops", node, p as f64);
                    t.gauge(tick, "soft.undelivered", node, u as f64);
                    t.gauge(tick, "soft.outbox", node, s.outbox_depth() as f64);
                    t.gauge(tick, "soft.fanout", node, f64::from(s.fanout));
                    t.gauge(tick, "soft.fd_live", node, s.reachable_peers().len() as f64);
                    backlog += b;
                    pending += p;
                    undelivered += u;
                    retired += s.completions_retired();
                    fd_sum += s.reachable_peers().len() as u64;
                    fanout_sum += u64::from(s.fanout);
                    soft_n += 1;
                }
                Some(DropletNode::Persist(p)) => {
                    let n = p.store.len() as u64;
                    let b = p.store_bytes() as u64;
                    let d = p.tombstone_count() as u64;
                    t.gauge(tick, "persist.store_tuples", node, n as f64);
                    t.gauge(tick, "persist.store_bytes", node, b as f64);
                    t.gauge(tick, "persist.tombstones", node, d as f64);
                    t.gauge(tick, "persist.summary_occupancy", node, p.summary_occupancy() as f64);
                    tuples += n;
                    bytes += b;
                    tombs += d;
                }
                None => {}
            }
        }
        t.gauge(tick, names::COMPLETION_BACKLOG, Label::None, backlog as f64);
        t.gauge(tick, names::PENDING_OPS, Label::None, pending as f64);
        t.gauge(tick, names::UNDELIVERED, Label::None, undelivered as f64);
        t.rate(tick, names::COMPLETIONS_RETIRED, retired);
        t.gauge(tick, names::STORE_TUPLES, Label::None, tuples as f64);
        t.gauge(tick, names::STORE_BYTES, Label::None, bytes as f64);
        t.gauge(tick, names::TOMBSTONES, Label::None, tombs as f64);
        if soft_n > 0 {
            t.gauge(tick, names::FD_LIVE, Label::None, fd_sum as f64 / soft_n as f64);
            t.gauge(tick, names::FANOUT, Label::None, fanout_sum as f64 / soft_n as f64);
        }
        t.mark_sample();
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// A complete simulated DataDroplets deployment.
pub struct Cluster {
    /// The underlying simulation (public for fault injection and metrics).
    pub sim: Sim<DropletNode>,
    config: ClusterConfig,
    soft_ids: Vec<NodeId>,
    persist_ids: Vec<NodeId>,
    seed: u64,
    next_req: u64,
    next_session: u64,
    /// The harness-side failure-detector ledger: what each observer was
    /// last told about each watched peer's reachability (`true` =
    /// reachable; absent = never told, believed reachable). Notices are
    /// injected only on belief changes, so steady state costs nothing.
    fd_view: std::collections::HashMap<(NodeId, NodeId), bool>,
    /// `(liveness_epoch, topology_epoch)` at the last failure-detector
    /// sweep; `None` forces the next sweep. Ground-truth reachability is a
    /// pure function of liveness and partitions, so while both epochs are
    /// unchanged a sweep would find zero belief diffs — skipping it is
    /// exact, and turns the O(observers × watched) pair scan from a
    /// per-pump cost into a per-churn-event cost.
    fd_epochs: Option<(u64, u64)>,
    /// History recorder; `None` (the default) makes every capture hook a
    /// no-op, so auditing is zero-cost when disabled.
    pub(crate) audit: Option<Box<dd_audit::Recorder>>,
}

impl Cluster {
    /// Builds and starts a cluster.
    ///
    /// # Panics
    /// Panics if the configuration has zero soft or persist nodes.
    #[must_use]
    pub fn new(config: ClusterConfig, seed: u64) -> Self {
        assert!(config.soft_n > 0, "need at least one soft node");
        assert!(config.persist_n > 0, "need at least one persist node");
        let soft_ids: Vec<NodeId> = (0..config.soft_n).map(NodeId).collect();
        let persist_ids: Vec<NodeId> =
            (config.soft_n..config.soft_n + config.persist_n).map(NodeId).collect();
        let fanout = config.fanout.unwrap_or_else(|| required_fanout(config.persist_n, 0.999));
        // Sieve acceptance is deterministic from the spec, so the
        // coordinators can hold every persist node's sieve (index-parallel
        // to `persist_ids`) and route writes directly to their owners.
        let sieves: Vec<SieveSpec> = persist_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| match config.placement {
                Placement::RangePartition => {
                    SieveSpec::default_for(i as u64, config.persist_n, config.replication)
                }
                Placement::Uniform => {
                    SieveSpec::Uniform { salt: id.0, r: config.replication, n: config.persist_n }
                }
                Placement::TagCollocation => SieveSpec::Tag {
                    slot: i as u64,
                    slots: config.persist_n,
                    r: config.replication,
                },
            })
            .collect();
        // Pre-size the event heap for the population's steady chatter
        // (start events, repair timers, dissemination bursts) so large
        // clusters don't regrow it through the opening storm.
        let queue_capacity = ((config.soft_n + config.persist_n) * 8 + 1024) as usize;
        let mut sim: Sim<DropletNode> =
            Sim::new(SimConfig::default().seed(seed).queue_capacity(queue_capacity));
        for &id in &soft_ids {
            let mut soft =
                SoftNode::new(&soft_ids, persist_ids.clone(), fanout, config.cache_capacity)
                    .with_persist_sieves(sieves.clone());
            if config.fanout.is_none() {
                // No pinned fanout: let the epidemic fallback track the
                // failure detector's live-set estimate instead of the
                // boot-time `persist_n`.
                soft = soft.with_adaptive_fanout();
            }
            if config.placement == Placement::TagCollocation {
                // Slot s is run by persist_ids[s]; the soft node's peer
                // list is in that order, so routed slots map directly.
                soft = soft.with_tag_routing(config.persist_n, config.replication);
            }
            sim.add_node(id, DropletNode::Soft(soft));
        }
        for (i, (&id, sieve)) in persist_ids.iter().zip(&sieves).enumerate() {
            let peers: Vec<NodeId> = persist_ids.iter().copied().filter(|&p| p != id).collect();
            let mut node =
                PersistNode::new(sieve.clone(), fanout, peers, config.repair_period.map(Duration));
            if config.ring_repair && config.persist_n > 1 {
                // Ring adjacency follows persist_ids order — the same
                // order slot ownership and range segments use, so
                // neighbours hold the most overlapping sieve projections.
                let n = persist_ids.len();
                let mut neighbors = vec![persist_ids[(i + n - 1) % n], persist_ids[(i + 1) % n]];
                neighbors.dedup();
                node = node.with_ring_neighbors(neighbors);
            }
            sim.add_node(id, DropletNode::Persist(node));
        }
        Cluster {
            sim,
            config,
            soft_ids,
            persist_ids,
            seed,
            next_req: 0,
            next_session: 0,
            fd_view: std::collections::HashMap::new(),
            fd_epochs: None,
            audit: None,
        }
    }

    /// Starts recording every client operation into a fresh
    /// [`dd_audit::History`] (invocation/completion pairs). Recording is
    /// passive — it never touches the simulation's RNG or message flow —
    /// so an audited run replays byte-identically to an unaudited one.
    /// Auditing assumes its history covers *all* writes: begin before the
    /// first write of the run you intend to check.
    pub fn begin_audit(&mut self) {
        self.audit = Some(Box::default());
    }

    /// Stops recording and returns the captured history (`None` when
    /// [`Cluster::begin_audit`] was never called).
    pub fn end_audit(&mut self) -> Option<dd_audit::History> {
        self.audit.take().map(|r| r.finish())
    }

    /// Whether a history recorder is installed.
    #[must_use]
    pub fn audit_enabled(&self) -> bool {
        self.audit.is_some()
    }

    /// Starts recording a causal trace of every client operation into a
    /// fresh [`dd_trace::Recorder`]: one span tree per op, from the
    /// client-side root through coordinator and per-replica waits down to
    /// persist stores. Tracing is passive — it never touches the
    /// simulation's RNG or message flow — so a traced run replays
    /// byte-identically to an untraced one.
    pub fn begin_trace(&mut self) {
        self.sim.set_tracer(Box::<dd_trace::Recorder>::default());
    }

    /// Stops recording and returns the captured span trees (`None` when
    /// [`Cluster::begin_trace`] was never called). Dangling spans — ops
    /// still in flight — are closed unanswered at their trace's horizon.
    pub fn end_trace(&mut self) -> Option<dd_trace::TraceSet> {
        self.sim.take_tracer().map(|t| {
            t.into_any()
                .downcast::<dd_trace::Recorder>()
                .expect("tracer installed by begin_trace")
                .finish()
        })
    }

    /// Whether a span recorder is installed.
    #[must_use]
    pub fn trace_enabled(&self) -> bool {
        self.sim.tracer_installed()
    }

    /// Starts continuous telemetry sampling at the default period
    /// ([`dd_obs::DEFAULT_SAMPLE_PERIOD`] ticks): every sweep walks the
    /// live nodes and records per-node gauges (completion/pending/
    /// undelivered backlogs, adaptive fanout, store size, tombstones,
    /// summary occupancy), cluster aggregates, engine queue depth,
    /// in-flight messages by kind, and counter rates. Sampling is
    /// read-only on a detached collector, so an instrumented run replays
    /// byte-identically to a plain one.
    pub fn begin_instrument(&mut self) {
        self.begin_instrument_with(dd_obs::Telemetry::default());
    }

    /// Starts telemetry sampling into a caller-configured collector
    /// (custom period or ring capacity).
    pub fn begin_instrument_with(&mut self, telemetry: dd_obs::Telemetry) {
        self.sim.set_sampler(Box::new(ClusterSampler { telemetry }));
    }

    /// Stops sampling and returns the collected series (`None` when
    /// [`Cluster::begin_instrument`] was never called).
    pub fn end_instrument(&mut self) -> Option<dd_obs::Telemetry> {
        self.sim.take_sampler().map(|s| {
            s.into_any()
                .downcast::<ClusterSampler>()
                .expect("sampler installed by begin_instrument")
                .telemetry
        })
    }

    /// Whether a telemetry sampler is installed.
    #[must_use]
    pub fn instrument_enabled(&self) -> bool {
        self.sim.sampler_installed()
    }

    /// The replica a timed-out operation was still waiting on, per the
    /// soft tier's pending-op tables (`None` when no soft node holds
    /// pending state for it — e.g. the coordinator itself is dead).
    pub(crate) fn blame_for(&self, req: u64) -> Option<NodeId> {
        self.soft_ids.iter().find_map(|&id| {
            self.sim.node(id).and_then(DropletNode::as_soft).and_then(|s| s.blame(req))
        })
    }

    pub(crate) fn set_audit_phase(&mut self, phase: Option<u32>) {
        if let Some(a) = self.audit.as_mut() {
            a.set_phase(phase);
        }
    }

    pub(crate) fn record_invoke(&mut self, req: u64, session: u64, desc: dd_audit::OpDesc) {
        let now = self.sim.now().0;
        if let Some(a) = self.audit.as_mut() {
            a.invoke(req, session, now, desc);
        }
    }

    pub(crate) fn record_outcome(&mut self, req: u64, outcome: dd_audit::Outcome) {
        let now = self.sim.now().0;
        if let Some(a) = self.audit.as_mut() {
            a.complete(req, now, outcome);
        }
    }

    pub(crate) fn record_failure(&mut self, req: u64, failure: dd_audit::OpFailure) {
        if self.audit.is_some() {
            self.record_outcome(req, dd_audit::Outcome::Failed(failure));
        }
    }

    /// The convergence checker's input: every `(node, key_hash, version,
    /// deleted)` held by a *live* persist node, node- then key-ordered.
    #[must_use]
    pub fn audit_snapshot(&self) -> Vec<dd_audit::ReplicaTuple> {
        let mut out = Vec::new();
        for &id in &self.persist_ids {
            if !self.sim.is_alive(id) {
                continue;
            }
            if let Some(p) = self.sim.node(id).and_then(DropletNode::as_persist) {
                for t in p.store.values() {
                    out.push(dd_audit::ReplicaTuple {
                        node: id.0,
                        key_hash: t.key_hash,
                        version: t.version,
                        deleted: t.deleted,
                    });
                }
            }
        }
        out.sort_unstable_by_key(|t| (t.node, t.key_hash));
        out
    }

    /// Drives one deterministic full-fanout anti-entropy round: every
    /// live persist node opens a digest exchange with every live persist
    /// peer. Periodic repair picks one partner per round by lottery
    /// (uniform by default, ring-biased with rare far pulls under
    /// [`ClusterConfig::ring_repair`]), so when only two replicas hold a
    /// diverged key — and no third node's sieve accepts it to relay —
    /// reconciliation waits for that exact pair to be drawn, which can
    /// take dozens of rounds. The audit settle uses this sweep to turn
    /// "eventually" into "this round". No-op when repair is disabled —
    /// with anti-entropy off, lingering divergence is a real answer the
    /// audit must not mask.
    pub fn repair_sweep(&mut self) {
        if self.config.repair_period.is_none() {
            return;
        }
        let ids = self.persist_ids.clone();
        for &a in &ids {
            if !self.sim.is_alive(a) {
                continue;
            }
            let Some(sieve) =
                self.sim.node(a).and_then(DropletNode::as_persist).map(|p| p.sieve.clone())
            else {
                continue;
            };
            for &b in &ids {
                if b != a && self.sim.is_alive(b) {
                    self.sim.inject(a, b, DropletMsg::RepairDigest { sieve: sieve.clone() });
                }
            }
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Soft-layer node ids.
    #[must_use]
    pub fn soft_ids(&self) -> &[NodeId] {
        &self.soft_ids
    }

    /// Persistent-layer node ids.
    #[must_use]
    pub fn persist_ids(&self) -> &[NodeId] {
        &self.persist_ids
    }

    /// Runs the simulation for `ticks` of virtual time, bracketed by
    /// failure-detector sweeps: the leading sweep notices reachability
    /// changes made directly between runs (partitions set or healed on
    /// [`Sim::net`]) so notices deliver *within* this window; the trailing
    /// sweep notices kill/revive events that processed during it, so
    /// detection latency is bounded by the caller's pump quantum.
    pub fn run_for(&mut self, ticks: u64) {
        self.sync_failure_detector();
        self.sim.run_for(Duration(ticks));
        self.sync_failure_detector();
    }

    /// Models each node's local failure detector: compares every
    /// observer's last-told belief about each watched peer against the
    /// simulation's ground truth (alive and connected) and self-injects a
    /// [`DropletMsg::PeerDown`] / [`DropletMsg::PeerUp`] notice on each
    /// change. Soft nodes watch their soft peers and the persist layer;
    /// persist nodes watch each other (their repair partners). Notices
    /// ride the simulated network from the node to itself, so they land a
    /// latency sample later — a detector, not an oracle.
    fn sync_failure_detector(&mut self) {
        // Reachability can only have changed if a node's liveness or the
        // partition map did; both bump an epoch counter. Same epochs since
        // the last sweep ⇒ the pair scan below would inject nothing.
        let epochs = (self.sim.liveness_epoch(), self.sim.net.topology_epoch());
        if self.fd_epochs == Some(epochs) {
            return;
        }
        self.fd_epochs = Some(epochs);
        let mut notices: Vec<(NodeId, DropletMsg)> = Vec::new();
        for (oi, &o) in self.soft_ids.iter().chain(self.persist_ids.iter()).enumerate() {
            if !self.sim.is_alive(o) {
                continue;
            }
            let soft_observer = oi < self.soft_ids.len();
            let watched: &[&[NodeId]] = if soft_observer {
                &[&self.soft_ids, &self.persist_ids]
            } else {
                &[&self.persist_ids]
            };
            for &p in watched.iter().copied().flatten() {
                if p == o {
                    continue;
                }
                let reach = self.sim.is_alive(p) && self.sim.net.connected(o, p);
                let believed = self.fd_view.get(&(o, p)).copied().unwrap_or(true);
                if reach != believed {
                    self.fd_view.insert((o, p), reach);
                    let msg = if reach { DropletMsg::PeerUp(p) } else { DropletMsg::PeerDown(p) };
                    notices.push((o, msg));
                }
            }
        }
        self.sim.metrics_mut().add("fd.notices", notices.len() as u64);
        for (o, msg) in notices {
            self.sim.inject(o, o, msg);
        }
    }

    /// Advances virtual time so in-flight client operations make
    /// progress — the verb of the pipelined harvest loop (submit via
    /// [`Client`], `pump`, then [`Client::poll`]/[`Client::drain`]).
    /// Identical to [`Cluster::run_for`]; the two names separate client
    /// loops from protocol settling in calling code.
    pub fn pump(&mut self, ticks: u64) {
        self.run_for(ticks);
    }

    /// Lets start-up timers and gossip settle. The quiescence horizon is
    /// derived from the network model and the repair cadence — one repair
    /// period plus a generous multiple of the worst-case message latency
    /// — so clusters configured with slow networks settle long enough
    /// instead of flaking on a hard-coded tick count.
    pub fn settle(&mut self) {
        let ticks = self.settle_horizon();
        self.run_for(ticks);
    }

    /// The quiescence horizon [`Cluster::settle`] runs for, in ticks.
    #[must_use]
    pub fn settle_horizon(&self) -> u64 {
        let latency_slack = 50 * self.sim.net.latency.max();
        self.config.repair_period.unwrap_or(1_000) + latency_slack
    }

    /// Opens a new client session. Each session pins its own RNG stream
    /// (split from the cluster seed and the session id, so concurrent
    /// sessions replay deterministically) and tracks its own outstanding
    /// operations — any number of sessions may be open at once.
    pub fn client(&mut self) -> Client {
        self.next_session += 1;
        let rng = SmallRng::seed_from_u64(mix(self.seed ^ 0x00C1_1E47, self.next_session));
        Client::new(self.next_session, rng)
    }

    pub(crate) fn fresh_req(&mut self) -> u64 {
        self.next_req += 1;
        self.next_req
    }

    /// Picks a live entry node with the session's RNG stream; `None` when
    /// the whole soft tier is down.
    pub(crate) fn entry_for(&self, rng: &mut SmallRng) -> Option<NodeId> {
        use rand::Rng;
        // Count-then-select instead of collecting the alive set: one
        // `gen_range(0..alive)` draw either way (replay-identical to the
        // old `choose` over a collected Vec), but no per-op allocation.
        let alive = self.soft_ids.iter().filter(|&&s| self.sim.is_alive(s)).count();
        if alive == 0 {
            return None;
        }
        let pick = rng.gen_range(0..alive);
        self.soft_ids.iter().copied().filter(|&s| self.sim.is_alive(s)).nth(pick)
    }

    /// Number of live persist nodes currently holding the latest version
    /// of `key` — the availability measure of E3/E6.
    #[must_use]
    pub fn replica_count(&self, key: &Key) -> usize {
        let kh = key.hash();
        let latest = self
            .persist_ids
            .iter()
            .filter_map(|&id| self.sim.node(id).and_then(DropletNode::as_persist))
            .filter_map(|p| p.store.get(&kh))
            .map(|t| t.version)
            .max();
        let Some(latest) = latest else { return 0 };
        self.persist_ids
            .iter()
            .filter(|&&id| self.sim.is_alive(id))
            .filter_map(|&id| self.sim.node(id).and_then(DropletNode::as_persist))
            .filter_map(|p| p.store.get(&kh))
            .filter(|t| t.version == latest)
            .count()
    }

    /// Scans the persistent layer for `(key_hash, version, holder)` triples
    /// — the reconstruction input of §II / experiment E12.
    #[must_use]
    pub fn scan_persist_state(&self) -> Vec<(u64, Version, NodeId)> {
        let mut out = Vec::new();
        for &id in &self.persist_ids {
            if let Some(p) = self.sim.node(id).and_then(DropletNode::as_persist) {
                for t in p.store.values() {
                    out.push((t.key_hash, t.version, id));
                }
            }
        }
        out
    }

    /// Simulates catastrophic soft-layer failure: wipes every soft node's
    /// state.
    pub fn wipe_soft_layer(&mut self) {
        for &id in &self.soft_ids.clone() {
            if let Some(DropletNode::Soft(s)) = self.sim.node_mut(id) {
                s.wipe();
            }
        }
        // A wiped node believes everyone reachable again; reset its
        // failure-detector ledger rows to match, so the next sync re-tells
        // it about peers that are still down.
        self.fd_view.retain(|&(o, _), _| !self.soft_ids.contains(&o));
        // The ledger changed without an epoch bump: force the next sweep.
        self.fd_epochs = None;
    }

    /// Rebuilds the soft layer's metadata from the persistent layer.
    pub fn rebuild_soft_layer(&mut self) {
        let scan = self.scan_persist_state();
        for &id in &self.soft_ids.clone() {
            if let Some(DropletNode::Soft(s)) = self.sim.node_mut(id) {
                s.reconstruct(scan.iter().copied());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Completion, OpError};
    use crate::tuple::TupleSpec;

    fn cluster(seed: u64) -> Cluster {
        let mut c = Cluster::new(ClusterConfig::small(), seed);
        c.settle();
        c
    }

    #[test]
    fn put_then_get_round_trips() {
        let mut c = cluster(1);
        let mut s = c.client();
        let w = s.put(&mut c, "user:1", b"alice".to_vec(), Some(30.0), None);
        let put = s.recv(&mut c, w).expect("put completes");
        assert_eq!(put.version, Version(1));
        c.run_for(2_000);
        let r = s.get(&mut c, "user:1");
        let got = s.recv(&mut c, r).expect("get completes").expect("key found");
        assert_eq!(got.value, b"alice".to_vec());
        assert_eq!(got.attr, Some(30.0));
    }

    #[test]
    fn writes_reach_the_replication_target() {
        let mut c = cluster(2);
        let mut s = c.client();
        let w = s.put(&mut c, "replicated", b"x".to_vec(), None, None);
        s.recv(&mut c, w).expect("put completes");
        c.run_for(5_000);
        let rc = c.replica_count(&Key::from("replicated"));
        assert!(rc >= 3, "replica count {rc}");
    }

    #[test]
    fn repair_sweep_pairs_every_live_node_and_respects_the_repair_gate() {
        // With repair configured, one sweep opens a digest exchange from
        // every live persist node to every live persist peer.
        let mut c = cluster(11);
        let before = c.sim.metrics().counter("repair.syncs");
        c.repair_sweep();
        c.run_for(500);
        let opened = c.sim.metrics().counter("repair.syncs") - before;
        let n = c.persist_ids().len() as u64;
        assert!(opened >= n * (n - 1), "sweep opened {opened} exchanges, want >= {}", n * (n - 1));

        // With repair disabled the sweep must stay a no-op: with
        // anti-entropy off, lingering divergence is a real audit answer.
        let mut quiet = Cluster::new(ClusterConfig::small().no_repair(), 11);
        quiet.settle();
        quiet.repair_sweep();
        quiet.run_for(500);
        assert_eq!(quiet.sim.metrics().counter("repair.syncs"), 0);
    }

    #[test]
    fn unknown_key_reads_ok_none() {
        let mut c = cluster(3);
        let mut s = c.client();
        let r = s.get(&mut c, "never-written");
        // Key absent is a *successful* read of nothing — not an error.
        assert_eq!(s.recv(&mut c, r), Ok(None));
    }

    #[test]
    fn delete_tombstones_the_key() {
        let mut c = cluster(4);
        let mut s = c.client();
        let w = s.put(&mut c, "temp", b"data".to_vec(), None, None);
        s.recv(&mut c, w).unwrap();
        c.run_for(2_000);
        let d = s.delete(&mut c, "temp");
        s.recv(&mut c, d).unwrap();
        c.run_for(2_000);
        let r = s.get(&mut c, "temp");
        assert_eq!(s.recv(&mut c, r), Ok(None), "deleted key reads as absent");
    }

    #[test]
    fn overwrites_read_latest_version() {
        let mut c = cluster(5);
        let mut s = c.client();
        let w1 = s.put(&mut c, "k", b"v1".to_vec(), None, None);
        s.recv(&mut c, w1).unwrap();
        c.run_for(1_000);
        let w2 = s.put(&mut c, "k", b"v2".to_vec(), None, None);
        let p2 = s.recv(&mut c, w2).unwrap();
        assert_eq!(p2.version, Version(2));
        c.run_for(2_000);
        let r = s.get(&mut c, "k");
        let got = s.recv(&mut c, r).unwrap().unwrap();
        assert_eq!(got.value, b"v2".to_vec());
        assert_eq!(got.version, Version(2));
    }

    #[test]
    fn scan_returns_attribute_range_sorted_and_deduplicated() {
        let mut c = cluster(6);
        let mut s = c.client();
        for i in 0..20 {
            let w = s.put(&mut c, format!("item:{i}"), vec![i as u8], Some(f64::from(i)), None);
            s.recv(&mut c, w).unwrap();
        }
        c.run_for(5_000);
        let scan = s.scan(&mut c, 5.0, 9.0);
        let items = s.recv(&mut c, scan).expect("scan completes");
        let attrs: Vec<f64> = items.iter().map(|t| t.attr.unwrap()).collect();
        assert_eq!(attrs, vec![5.0, 6.0, 7.0, 8.0, 9.0], "range, sorted, no duplicates");
    }

    #[test]
    fn aggregate_estimates_are_duplicate_tolerant() {
        let mut c = cluster(7);
        let mut s = c.client();
        let n = 40;
        for i in 0..n {
            let w = s.put(&mut c, format!("m:{i}"), vec![], Some(f64::from(i)), None);
            s.recv(&mut c, w).unwrap();
        }
        c.run_for(5_000);
        let a = s.aggregate(&mut c);
        let agg = s.recv(&mut c, a).expect("aggregate completes");
        assert_eq!(agg.min, 0.0);
        assert_eq!(agg.max, f64::from(n - 1));
        let est = agg.distinct_estimate();
        // Replication would triple a naive count; the sketch must not.
        assert!(
            (est - f64::from(n)).abs() / f64::from(n) < 0.2,
            "distinct estimate {est} for {n} tuples"
        );
    }

    #[test]
    fn repair_restores_replicas_after_transient_churn() {
        let mut c = cluster(8);
        let mut s = c.client();
        let w = s.put(&mut c, "churn-key", b"z".to_vec(), None, None);
        s.recv(&mut c, w).unwrap();
        c.run_for(3_000);
        let before = c.replica_count(&Key::from("churn-key"));
        assert!(before >= 3);
        // Knock out two of the replica holders transiently.
        let kh = Key::from("churn-key").hash();
        let holders: Vec<NodeId> = c
            .persist_ids()
            .iter()
            .copied()
            .filter(|&id| {
                c.sim
                    .node(id)
                    .and_then(DropletNode::as_persist)
                    .is_some_and(|p| p.store.contains_key(&kh))
            })
            .take(2)
            .collect();
        for &h in &holders {
            c.sim.kill(h);
        }
        c.run_for(1); // process the scheduled down events
        let during = c.replica_count(&Key::from("churn-key"));
        assert!(during < before, "kills reduce live replicas");
        for &h in &holders {
            c.sim.revive(h);
        }
        c.run_for(5_000);
        let after = c.replica_count(&Key::from("churn-key"));
        assert!(after >= before, "repair restores replication: {after} vs {before}");
    }

    #[test]
    fn ring_repair_restores_replicas_after_transient_churn() {
        // Same drill as above, with topology-aware peering: the far-pull
        // escape hatch must keep revival gaps converging even though most
        // rounds stay on the ring.
        let mut c = Cluster::new(ClusterConfig::small().ring_repair(), 8);
        c.settle();
        let mut s = c.client();
        let w = s.put(&mut c, "churn-key", b"z".to_vec(), None, None);
        s.recv(&mut c, w).unwrap();
        c.run_for(3_000);
        let before = c.replica_count(&Key::from("churn-key"));
        assert!(before >= 3);
        let kh = Key::from("churn-key").hash();
        let holders: Vec<NodeId> = c
            .persist_ids()
            .iter()
            .copied()
            .filter(|&id| {
                c.sim
                    .node(id)
                    .and_then(DropletNode::as_persist)
                    .is_some_and(|p| p.store.contains_key(&kh))
            })
            .take(2)
            .collect();
        for &h in &holders {
            c.sim.kill(h);
        }
        c.run_for(1);
        for &h in &holders {
            c.sim.revive(h);
        }
        c.run_for(5_000);
        let after = c.replica_count(&Key::from("churn-key"));
        assert!(after >= before, "ring-biased repair restores replication: {after} vs {before}");
    }

    #[test]
    fn reads_survive_soft_layer_catastrophe_after_rebuild() {
        let mut c = cluster(9);
        let mut s = c.client();
        for i in 0..10 {
            let w = s.put(&mut c, format!("p:{i}"), vec![i], Some(f64::from(i)), None);
            s.recv(&mut c, w).unwrap();
        }
        c.run_for(4_000);
        c.wipe_soft_layer();
        // Without metadata, reads of known keys return None (unknown key).
        let r = s.get(&mut c, "p:3");
        assert_eq!(s.recv(&mut c, r), Ok(None), "wiped soft layer has no metadata");
        // Rebuild from the persistent layer (§II) and read again.
        c.rebuild_soft_layer();
        let r2 = s.get(&mut c, "p:3");
        let got = s.recv(&mut c, r2).expect("completes").expect("found after rebuild");
        assert_eq!(got.value, vec![3u8]);
    }

    #[test]
    fn cache_serves_repeat_reads() {
        let mut c = cluster(10);
        let mut s = c.client();
        let w = s.put(&mut c, "hot", b"cached".to_vec(), None, None);
        s.recv(&mut c, w).unwrap();
        c.run_for(2_000);
        for _ in 0..5 {
            let r = s.get(&mut c, "hot");
            assert!(s.recv(&mut c, r).unwrap().is_some());
        }
        let hits: u64 = c.sim.metrics().counter("soft.cache_hits");
        assert!(hits >= 4, "cache hits {hits}");
    }

    #[test]
    fn uniform_sieve_cluster_also_round_trips() {
        let mut c =
            Cluster::new(ClusterConfig::small().placement(Placement::Uniform).replication(5), 11);
        c.settle();
        let mut s = c.client();
        let w = s.put(&mut c, "u", b"uniform".to_vec(), None, None);
        s.recv(&mut c, w).unwrap();
        c.run_for(3_000);
        let r = s.get(&mut c, "u");
        let got = s.recv(&mut c, r).expect("completes").expect("found");
        assert_eq!(got.value, b"uniform".to_vec());
    }

    #[test]
    fn pipelined_ops_overlap_in_one_session() {
        let mut c = cluster(12);
        let mut s = c.client();
        let pendings: Vec<_> =
            (0..32u8).map(|i| s.put(&mut c, format!("pipe:{i}"), vec![i], None, None)).collect();
        assert_eq!(s.in_flight(), 32, "all writes outstanding at once");
        for p in pendings {
            assert!(s.recv(&mut c, p).is_ok());
        }
        assert_eq!(s.in_flight(), 0, "every completion harvested");
        // Reads pipeline the same way, harvested in bulk via drain.
        c.run_for(3_000);
        for i in 0..32u8 {
            let _ = s.get(&mut c, format!("pipe:{i}"));
        }
        let mut got = 0;
        while s.in_flight() > 0 {
            c.pump(50);
            for (_req, completion) in s.drain(&mut c) {
                match completion {
                    Completion::Get(Ok(Some(_))) => got += 1,
                    other => panic!("unexpected completion {other:?}"),
                }
            }
        }
        assert_eq!(got, 32, "drain surfaces every pipelined read");
    }

    #[test]
    fn a_handle_swept_by_drain_reports_already_harvested() {
        let mut c = cluster(18);
        let mut s = c.client();
        let kept = s.put(&mut c, "kept", b"x".to_vec(), None, None);
        // A housekeeping drain loop harvests the completion first…
        while s.in_flight() > 0 {
            c.pump(50);
            let _ = s.drain(&mut c);
        }
        // …so the still-held typed handle yields a typed error, not a
        // panic — mixed drain + handle loops stay safe.
        assert_eq!(s.recv(&mut c, kept), Err(OpError::AlreadyHarvested));
        // Same for a handle from a different session.
        let mut other = c.client();
        let foreign = other.put(&mut c, "foreign", b"y".to_vec(), None, None);
        assert_eq!(s.poll(&mut c, &foreign), Some(Err(OpError::AlreadyHarvested)));
        assert!(other.recv(&mut c, foreign).is_ok(), "owning session still harvests it");
    }

    #[test]
    fn sessions_are_independent_streams() {
        let mut c = cluster(13);
        let mut a = c.client();
        let mut b = c.client();
        let wa = a.put(&mut c, "from:a", b"a".to_vec(), None, None);
        let wb = b.put(&mut c, "from:b", b"b".to_vec(), None, None);
        assert_ne!(wa.req(), wb.req(), "request ids are cluster-unique");
        assert!(a.recv(&mut c, wa).is_ok());
        assert!(b.recv(&mut c, wb).is_ok());
        assert_ne!(a.session(), b.session());
    }

    #[test]
    fn dead_coordinator_surfaces_as_timeout() {
        let mut c = cluster(14);
        let mut s = c.client();
        // Find a key whose soft coordinator is a specific victim node.
        let victim = c.soft_ids()[1];
        let ring = c.sim.node(victim).and_then(DropletNode::as_soft).unwrap().ring.clone();
        let key = (0..200u32)
            .map(|i| format!("orphan:{i}"))
            .find(|k| ring.primary(Key::from(k.as_str()).hash()) == Some(victim))
            .expect("some key maps to the victim");
        c.sim.kill(victim);
        c.run_for(10);
        let w = s.put(&mut c, key, b"lost".to_vec(), None, None);
        assert_eq!(
            s.recv(&mut c, w),
            Err(OpError::Timeout { waiting_on: None }),
            "dead coordinator = timeout"
        );
        assert_eq!(c.sim.metrics().counter("client.timeouts"), 1);
    }

    #[test]
    fn no_live_entry_is_an_error_not_a_panic() {
        let mut c = cluster(15);
        let mut s = c.client();
        for &id in &c.soft_ids().to_vec() {
            c.sim.kill(id);
        }
        c.run_for(10);
        let w = s.put(&mut c, "nowhere", b"x".to_vec(), None, None);
        assert_eq!(s.recv(&mut c, w), Err(OpError::NoLiveEntry));
    }

    #[test]
    fn abandoned_sessions_cannot_grow_soft_state_unboundedly() {
        use crate::soft::COMPLETION_RETENTION;
        // One soft node so every completion lands on the same log.
        let mut config = ClusterConfig::small();
        config.soft_n = 1;
        let mut c = Cluster::new(config, 16);
        c.settle();
        let mut abandoned = c.client();
        let total = COMPLETION_RETENTION as u64 + 200;
        for i in 0..total {
            let _ = abandoned.put(&mut c, format!("leak:{i}"), vec![], None, None);
            if i % 64 == 0 {
                c.pump(200);
            }
        }
        c.run_for(5_000);
        drop(abandoned); // never harvests
        let backlog = c
            .sim
            .node(c.soft_ids()[0])
            .and_then(DropletNode::as_soft)
            .map(SoftNode::completion_backlog)
            .unwrap();
        assert_eq!(backlog, COMPLETION_RETENTION, "un-harvested completions capped, not leaked");
        // The node still serves fresh sessions.
        let mut fresh = c.client();
        let w = fresh.put(&mut c, "alive", b"y".to_vec(), None, None);
        assert!(fresh.recv(&mut c, w).is_ok());
    }

    /// Writes `batches` social-feed batches of `batch` posts each over
    /// the raw multi-op plane and returns the distinct tags.
    fn write_feed_batches(c: &mut Cluster, seed: u64, batches: usize, batch: usize) -> Vec<String> {
        let mut w = crate::Workload::new(crate::WorkloadKind::SocialFeed { users: 4 }, seed);
        let mut s = c.client();
        let mut tags = Vec::new();
        for _ in 0..batches {
            let m = w.next_multi_put(batch);
            if let Some(tag) = m.tag {
                if !tags.contains(&tag) {
                    tags.push(tag);
                }
            }
            let pending = s.multi_put(c, m.items.into_iter().map(TupleSpec::from));
            let status = s.recv(c, pending).expect("batch orders fully");
            assert_eq!(status.items, batch);
        }
        c.run_for(5_000);
        tags
    }

    /// Reads every tag back with `multi_get` and returns, per tag, the
    /// sorted key set retrieved.
    fn read_feeds(c: &mut Cluster, tags: &[String]) -> Vec<Vec<String>> {
        let mut s = c.client();
        tags.iter()
            .map(|tag| {
                let pending = s.multi_get(c, tag);
                let tuples = s.recv(c, pending).expect("multi_get completes");
                let mut keys: Vec<String> =
                    tuples.into_iter().map(|t| t.key.as_str().to_owned()).collect();
                keys.sort();
                keys
            })
            .collect()
    }

    #[test]
    fn multi_put_then_multi_get_round_trips_under_tag_placement() {
        let mut c = Cluster::new(ClusterConfig::small().placement(Placement::TagCollocation), 21);
        c.settle();
        let tags = write_feed_batches(&mut c, 77, 6, 5);
        for (tag, keys) in tags.iter().zip(read_feeds(&mut c, &tags)) {
            assert!(!keys.is_empty(), "feed {tag} reads back");
            let user = tag.strip_prefix("feed:").unwrap();
            assert!(
                keys.iter().all(|k| k.starts_with(&format!("post:{user}:"))),
                "only the tag's posts come back for {tag}: {keys:?}"
            );
        }
        // Tuples written through the batch plane are ordinary tuples:
        // single-key reads see them too.
        let mut s = c.client();
        let some_key = {
            let req = s.multi_get(&mut c, &tags[0]);
            s.recv(&mut c, req).unwrap().first().unwrap().key.clone()
        };
        let r = s.get(&mut c, some_key);
        assert!(s.recv(&mut c, r).unwrap().is_some());
    }

    #[test]
    fn tag_placement_contacts_at_most_r_nodes_random_contacts_more() {
        let run = |config: ClusterConfig| {
            let mut c = Cluster::new(config, 33);
            c.settle();
            let tags = write_feed_batches(&mut c, 99, 6, 5);
            let feeds = read_feeds(&mut c, &tags);
            let contacts = c.sim.metrics().summary("multi_get.contacted_nodes");
            assert_eq!(contacts.n, tags.len(), "one observation per multi_get");
            (feeds, contacts.max)
        };
        // Replication 5 for both: a uniform sieve population misses a
        // tuple entirely with probability ~e^-r (the paper's coverage
        // trade-off, E3), so r = 3 would lose ~4% of writes and the
        // tuple-set comparison below would be about coverage, not routing.
        let config = ClusterConfig::small().replication(5);
        let (tagged_feeds, tagged_max) = run(config.clone().placement(Placement::TagCollocation));
        let (uniform_feeds, uniform_max) = run(config.clone().placement(Placement::Uniform));

        // Acceptance bound: tag routing touches at most r persist nodes
        // (well under the r + soft_n allowance that includes soft-layer
        // forwarding hops).
        assert!(
            tagged_max <= f64::from(config.replication),
            "tag routing contacted {tagged_max} nodes"
        );
        // Random placement must fan out to strictly more nodes for the
        // same workload…
        assert!(
            uniform_max > tagged_max,
            "uniform placement should contact more nodes: {uniform_max} vs {tagged_max}"
        );
        // …yet return the same tuple sets (fallback correctness).
        assert_eq!(tagged_feeds, uniform_feeds, "same feeds, placement-independent");
    }

    #[test]
    fn multi_get_survives_a_dead_slot_owner() {
        let mut c = Cluster::new(ClusterConfig::small().placement(Placement::TagCollocation), 66);
        c.settle();
        let mut s = c.client();
        let k = 5u8;
        let batch: Vec<TupleSpec> = (0..k)
            .map(|i| TupleSpec::new(format!("s:{i}"), vec![i], Some(f64::from(i)), Some("feed:s")))
            .collect();
        let w = s.multi_put(&mut c, batch);
        s.recv(&mut c, w).expect("ordered");
        c.run_for(5_000);
        // Kill one of the tag's r slot-owners; the remaining replicas
        // still hold the full feed.
        let th = dd_sim::rng::stable_hash(b"feed:s");
        let slots = dd_sieve::TagSieve::tag_slots(th, c.config().persist_n, c.config().replication);
        let victim = c.persist_ids()[slots[0] as usize];
        c.sim.kill(victim);
        c.run_for(10);
        let r = s.multi_get(&mut c, "feed:s");
        let feed = s.recv(&mut c, r).expect("completes despite the dead owner");
        assert_eq!(feed.len(), k as usize, "surviving owners serve the full feed");
        assert_eq!(c.sim.metrics().counter("soft.multi_get_partials"), 1);
    }

    #[test]
    fn multi_put_with_dead_key_coordinator_is_a_partial_result() {
        let mut c = Cluster::new(ClusterConfig::small().placement(Placement::TagCollocation), 88);
        c.settle();
        let mut s = c.client();
        // Split candidate keys by whether the victim soft node is their
        // key coordinator (the ring is identical on every soft node).
        let victim = c.soft_ids()[0];
        let ring_view = c.sim.node(victim).and_then(DropletNode::as_soft).unwrap().ring.clone();
        let (orphaned, healthy): (Vec<String>, Vec<String>) = (0..40u32)
            .map(|i| format!("mp:{i}"))
            .partition(|k| ring_view.primary(Key::from(k.clone()).hash()) == Some(victim));
        assert!(orphaned.len() >= 2 && healthy.len() >= 2, "both classes sampled");
        let batch: Vec<TupleSpec> = orphaned
            .iter()
            .take(3)
            .chain(healthy.iter().take(5))
            .map(|k| TupleSpec::new(k.clone(), b"v".to_vec(), None, Some("feed:mp")))
            .collect();
        c.sim.kill(victim);
        c.run_for(10);
        let req = s.multi_put(&mut c, batch);
        // The failure detector already struck the victim, so the batch
        // completes as soon as the live coordinators ack — typed as
        // partial: 5 of 8 items ordered, not conflated with full success.
        assert_eq!(
            s.recv(&mut c, req),
            Err(OpError::PartialResult { got: 5, want: 8 }),
            "only the live coordinators' items ordered"
        );
        assert!(c.sim.metrics().counter("soft.multi_put_partials") >= 1);
    }

    #[test]
    fn multi_get_survives_a_coordinator_reboot_mid_op() {
        let mut c = Cluster::new(ClusterConfig::small().placement(Placement::TagCollocation), 99);
        c.settle();
        let mut s = c.client();
        let batch: Vec<TupleSpec> = (0..4u8)
            .map(|i| {
                TupleSpec::new(format!("rb:{i}"), vec![i], Some(f64::from(i)), Some("feed:rb"))
            })
            .collect();
        let w = s.multi_put(&mut c, batch);
        s.recv(&mut c, w).expect("ordered");
        c.run_for(5_000);
        let th = dd_sim::rng::stable_hash(b"feed:rb");
        // One slot-owner is dead: the detector marks it and the read
        // completes from the surviving owners.
        let slots = dd_sieve::TagSieve::tag_slots(th, c.config().persist_n, c.config().replication);
        c.sim.kill(c.persist_ids()[slots[0] as usize]);
        c.run_for(10);
        let req = s.multi_get(&mut c, "feed:rb");
        c.run_for(100); // op reaches its soft coordinator and goes pending
                        // Bounce the tag's soft coordinator: state survives, timers don't.
        let sc = c
            .sim
            .node(c.soft_ids()[0])
            .and_then(DropletNode::as_soft)
            .unwrap()
            .coordinator_of(th)
            .expect("soft ring nonempty");
        c.sim.kill(sc);
        c.run_for(50);
        c.sim.revive(sc);
        let feed = s.recv(&mut c, req).expect("re-armed deadline completes the read");
        assert_eq!(feed.len(), 4, "surviving owners serve the full feed");
    }

    #[test]
    fn multi_get_of_unknown_tag_is_empty() {
        let mut c = Cluster::new(ClusterConfig::small().placement(Placement::TagCollocation), 44);
        c.settle();
        let mut s = c.client();
        let req = s.multi_get(&mut c, "feed:nobody");
        let feed = s.recv(&mut c, req).expect("completes");
        assert!(feed.is_empty() && feed.complete, "empty feed, complete union");
    }

    #[test]
    fn deleted_tuples_leave_the_feed() {
        let mut c = Cluster::new(ClusterConfig::small().placement(Placement::TagCollocation), 55);
        c.settle();
        let mut s = c.client();
        let batch: Vec<TupleSpec> = (0..4u8)
            .map(|i| TupleSpec::new(format!("p:{i}"), vec![i], Some(f64::from(i)), Some("feed:z")))
            .collect();
        let w = s.multi_put(&mut c, batch);
        s.recv(&mut c, w).expect("ordered");
        c.run_for(5_000);
        let d = s.delete(&mut c, "p:2");
        s.recv(&mut c, d).expect("delete ordered");
        c.run_for(5_000);
        let r = s.multi_get(&mut c, "feed:z");
        let feed = s.recv(&mut c, r).expect("completes");
        assert_eq!(feed.len(), 3);
        assert!(feed.iter().all(|t| t.key.as_str() != "p:2"));
    }

    #[test]
    fn settle_horizon_tracks_the_network_model() {
        use dd_sim::{LatencyModel, NetConfig};
        let fast = cluster(20);
        // Default LAN model: one repair period plus modest latency slack.
        assert_eq!(fast.settle_horizon(), 1_000 + 50 * 5);
        // A slow network stretches the horizon instead of flaking.
        let mut slow = Cluster::new(ClusterConfig::small(), 20);
        slow.sim.net = NetConfig::new().latency(LatencyModel::Constant(200));
        assert_eq!(slow.settle_horizon(), 1_000 + 50 * 200);
        let before = slow.sim.now();
        slow.settle();
        assert_eq!(slow.sim.now().since(before).0, 11_000, "settle runs the derived horizon");
    }

    #[test]
    fn same_seed_same_outcome() {
        let run = |seed| {
            let mut c = cluster(seed);
            let mut s = c.client();
            let w = s.put(&mut c, "det", b"x".to_vec(), None, None);
            s.recv(&mut c, w).unwrap();
            c.run_for(3_000);
            (c.replica_count(&Key::from("det")), c.sim.metrics().counter("net.sent"))
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn multi_get_with_a_dead_owner_completes_well_before_the_deadline() {
        use crate::soft::MULTI_OP_TIMEOUT;
        let mut c = Cluster::new(ClusterConfig::small().placement(Placement::TagCollocation), 23);
        c.settle();
        let mut s = c.client();
        let batch: Vec<TupleSpec> = (0..4u8)
            .map(|i| TupleSpec::new(format!("e:{i}"), vec![i], None, Some("feed:e")))
            .collect();
        let w = s.multi_put(&mut c, batch);
        s.recv(&mut c, w).expect("ordered");
        c.run_for(5_000);
        let th = dd_sim::rng::stable_hash(b"feed:e");
        let slots = dd_sieve::TagSieve::tag_slots(th, c.config().persist_n, c.config().replication);
        c.sim.kill(c.persist_ids()[slots[0] as usize]);
        c.run_for(10);
        // Regression (straggler sweep): the op used to sit out the full
        // MULTI_OP_TIMEOUT sweep waiting on the dead owner, pinning p95 at
        // ~2 000 ticks. The detector notice completes it eagerly.
        let start = c.sim.now().0;
        let r = s.multi_get(&mut c, "feed:e");
        let feed = s.recv(&mut c, r).expect("completes");
        let elapsed = c.sim.now().0 - start;
        assert_eq!(feed.len(), 4, "surviving owners serve the full feed");
        assert!(
            elapsed < MULTI_OP_TIMEOUT / 4,
            "eager completion took {elapsed} ticks (deadline is {MULTI_OP_TIMEOUT})"
        );
    }

    #[test]
    fn acked_writes_reach_partitioned_owners_after_heal() {
        let mut c = cluster(24);
        let mut s = c.client();
        // Cut every persist node away from the soft tier, then write: the
        // put is acknowledged at ordering time (soft-tier ack, §II), but
        // no owner is reachable to store it — the lost-write window.
        for &p in &c.persist_ids().to_vec() {
            c.sim.net.set_partition(p, 1);
        }
        c.run_for(100);
        let w = s.put(&mut c, "dark-write", b"survives".to_vec(), None, None);
        s.recv(&mut c, w).expect("acked while owners are dark");
        c.run_for(2_000);
        assert_eq!(c.replica_count(&Key::from("dark-write")), 0, "nothing crossed the partition");
        // Regression (lost write): healing used to leave the acked tuple
        // stranded in the soft tier forever. The coordinator's undelivered
        // buffer now re-delivers on the PeerUp notice.
        c.sim.net.heal_partitions();
        c.run_for(2_000);
        let rc = c.replica_count(&Key::from("dark-write"));
        assert!(
            rc >= c.config().replication as usize,
            "heal re-delivers the acked write: {rc} replicas"
        );
        let r = s.get(&mut c, "dark-write");
        let got = s.recv(&mut c, r).expect("completes").expect("found after heal");
        assert_eq!(got.value, b"survives".to_vec());
    }

    #[test]
    fn pending_reads_complete_when_the_partition_heals() {
        // A tiny cache forces the read to the persist layer.
        let mut config = ClusterConfig::small();
        config.cache_capacity = 1;
        let mut c = Cluster::new(config, 25);
        c.settle();
        let mut s = c.client();
        // Writes cache at their coordinator, so evict "parked" with a
        // second key that maps to the *same* coordinator.
        let ring = c.sim.node(c.soft_ids()[0]).and_then(DropletNode::as_soft).unwrap().ring.clone();
        let coord = ring.primary(Key::from("parked").hash());
        let evictor = (0..400u32)
            .map(|i| format!("ev:{i}"))
            .find(|k| ring.primary(Key::from(k.as_str()).hash()) == coord)
            .expect("some key shares the coordinator");
        let w = s.put(&mut c, "parked", b"p".to_vec(), None, None);
        s.recv(&mut c, w).unwrap();
        let w2 = s.put(&mut c, evictor, b"e".to_vec(), None, None);
        s.recv(&mut c, w2).unwrap();
        c.run_for(3_000);
        // Partition the whole persist layer away and issue the read: every
        // holder is unreachable, so the get parks instead of timing out.
        for &p in &c.persist_ids().to_vec() {
            c.sim.net.set_partition(p, 1);
        }
        c.run_for(100);
        let r = s.get(&mut c, "parked");
        c.pump(500);
        assert_eq!(s.poll(&mut c, &r), None, "read parks while owners are dark");
        // Regression (tag partition-heal timeouts): fetches used to fire
        // once and never retry, so a heal inside the client's patience
        // still timed out. PeerUp now re-issues the fetch.
        c.sim.net.heal_partitions();
        let got = s.recv(&mut c, r).expect("completes after heal").expect("found");
        assert_eq!(got.value, b"p".to_vec());
        assert_eq!(c.sim.metrics().counter("client.timeouts"), 0);
    }

    #[test]
    fn adaptive_fanout_tracks_the_live_persist_population() {
        let mut c = cluster(26);
        let fanout_of = |c: &Cluster| {
            c.sim.node(c.soft_ids()[0]).and_then(DropletNode::as_soft).unwrap().fanout
        };
        let initial = fanout_of(&c);
        // Kill all but one persist node: the extrema estimate collapses
        // and the epidemic fallback's fanout follows it down.
        let victims: Vec<NodeId> = c.persist_ids()[1..].to_vec();
        for &p in &victims {
            c.sim.kill(p);
        }
        // Two windows: the first processes the down events (the trailing
        // detector sweep notices them), the second delivers the notices.
        c.run_for(100);
        c.run_for(100);
        let shrunk = fanout_of(&c);
        assert!(shrunk < initial, "fanout adapts down: {shrunk} vs {initial}");
        for &p in &victims {
            c.sim.revive(p);
        }
        c.run_for(100);
        c.run_for(100);
        assert_eq!(fanout_of(&c), initial, "full membership restores the boot fanout");
    }
}
