//! The declarative scenario plane: one composable API for workloads,
//! faults and environment timelines.
//!
//! The paper's claims are *scenario* claims — the epidemic tuple store
//! stays dependable under massive churn, node loss and partitions while
//! tag collocation keeps request fan-out flat. A [`Scenario`] makes such
//! an experiment a seedable **value** instead of a bespoke driver loop:
//!
//! * a **workload program** — [`Phase`]s of typed op mixes
//!   ([`crate::OpMix`]) at chosen session counts, pipeline depths and
//!   target rates, executed over the PR-3 [`crate::Client`] sessions by
//!   the phase engine;
//! * a **fault schedule** — [`Fault`]s at virtual times: churn bursts
//!   (compiled from [`dd_sim::churn::ChurnSchedule`]), correlated
//!   crashes, node flaps, soft-layer wipes and rebuilds;
//! * an **environment timeline** — [`EnvChange`]s routed through the
//!   engine's scheduled network mutations ([`dd_sim::NetChange`]):
//!   latency shifts, loss spikes, partition and heal events.
//!
//! [`Cluster::run_scenario`] merges the three timelines, executes them
//! deterministically from the scenario seed, and returns a
//! [`ScenarioReport`]: per-phase availability, staleness, error taxonomy,
//! latency quantiles and message/contact accounting. Same scenario, same
//! seed — byte-identical report.
//!
//! ```
//! use dd_core::{Cluster, ClusterConfig, OpMix, Phase, Scenario, WorkloadKind};
//!
//! let mut cluster = Cluster::new(ClusterConfig::small(), 42);
//! cluster.settle();
//! let drill = Scenario::new("smoke", WorkloadKind::Uniform, 7)
//!     .phase(Phase::new("load", 2_000).mix(OpMix::puts()).ops(40))
//!     .phase(Phase::new("read", 2_000).mix(OpMix::gets()).ops(40));
//! let report = cluster.run_scenario(&drill);
//! assert_eq!(report.availability(), 1.0);
//! assert_eq!(report.phases[1].reads_found, 40);
//! ```

use crate::cluster::Cluster;
use crate::driver::{Engine, OpMix, PhaseStats};
use crate::workload::{Workload, WorkloadKind};
use dd_sim::churn::{ChurnEvent, ChurnModel, ChurnSchedule};
use dd_sim::metrics::{Reservoir, Window};
use dd_sim::rng::{mix, stream_rng};
use dd_sim::{Duration, LatencyModel, NetChange, NodeId, Time};
use rand::seq::SliceRandom;

/// Which layer of the deployment a fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The soft-state (coordinator) layer.
    Soft,
    /// The persistent-state (storage) layer.
    Persist,
}

/// One fault clause of a scenario's fault schedule. Scheduled at a
/// virtual time relative to the scenario start with [`Scenario::fault`].
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// A churn storm: a [`ChurnSchedule`] generated from `model` over
    /// `span` ticks, mapped onto the tier's nodes — transient downs/ups
    /// plus the model's fraction of permanent departures.
    ChurnBurst {
        /// Layer the storm hits.
        tier: Tier,
        /// Session-length model the schedule is drawn from.
        model: ChurnModel,
        /// Storm duration in ticks (events beyond it are cut off).
        span: u64,
    },
    /// Correlated crash: `count` distinct nodes (scenario-seed-chosen) go
    /// down at once and stay down until revived.
    Crash {
        /// Layer the crash hits.
        tier: Tier,
        /// Number of simultaneous victims.
        count: usize,
    },
    /// Transient flap: `count` nodes go down and come back `down_for`
    /// ticks later.
    Flap {
        /// Layer the flap hits.
        tier: Tier,
        /// Number of flapping nodes.
        count: usize,
        /// Downtime of each victim.
        down_for: u64,
    },
    /// Brings every currently-dead node of the tier back up.
    ReviveAll {
        /// Layer to revive.
        tier: Tier,
    },
    /// Catastrophic soft-state loss: wipes every soft node's metadata,
    /// cache and version authority ([`Cluster::wipe_soft_layer`]).
    WipeSoftLayer,
    /// Reconstructs soft-layer metadata from a persistent-layer scan
    /// ([`Cluster::rebuild_soft_layer`]).
    RebuildSoftLayer,
}

/// One clause of a scenario's environment timeline. Scheduled with
/// [`Scenario::env`]; applied by the simulation engine at its virtual
/// time via [`dd_sim::Sim::schedule_net`].
#[derive(Debug, Clone, PartialEq)]
pub enum EnvChange {
    /// Replace the latency model (e.g. a slow-network episode).
    Latency(LatencyModel),
    /// Set the message-loss probability (a loss spike, or recovery).
    DropProb(f64),
    /// Partition a contiguous `fraction` of the persistent layer away
    /// from everything else (the soft layer keeps the main colour).
    PartitionPersist {
        /// Fraction of persist nodes moved behind the partition.
        fraction: f64,
    },
    /// Heal all partitions.
    Heal,
}

/// One phase of a scenario's workload program. A full value type:
/// `Clone + Debug + PartialEq`, with builders for construction and
/// accessors for programmatic mutation (the dd-fuzz shrinker rewrites
/// phases without ever round-tripping through strings).
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    pub(crate) name: String,
    pub(crate) ticks: u64,
    pub(crate) sessions: usize,
    pub(crate) depth: usize,
    pub(crate) quantum: u64,
    pub(crate) mix: OpMix,
    pub(crate) rate: Option<f64>,
    pub(crate) ops: Option<u64>,
    pub(crate) workload: Option<WorkloadKind>,
}

impl Phase {
    /// A phase named `name` lasting `ticks` of virtual time. Defaults:
    /// idle mix (no traffic), 4 sessions, depth 8, quantum 25.
    ///
    /// Degenerate values (zero ticks, sessions, depth or quantum) are
    /// accepted here so programmatic mutation can pass through them; they
    /// are rejected by [`Scenario::validate`] before a run.
    #[must_use]
    pub fn new(name: impl Into<String>, ticks: u64) -> Self {
        Phase {
            name: name.into(),
            ticks,
            sessions: 4,
            depth: 8,
            quantum: 25,
            mix: OpMix::idle(),
            rate: None,
            ops: None,
            workload: None,
        }
    }

    /// Builder: the op mix this phase offers.
    #[must_use]
    pub fn mix(mut self, mix: OpMix) -> Self {
        self.mix = mix;
        self
    }

    /// Builder: concurrent client sessions.
    #[must_use]
    pub fn sessions(mut self, n: usize) -> Self {
        self.sessions = n;
        self
    }

    /// Builder: operations each session keeps in flight.
    #[must_use]
    pub fn depth(mut self, d: usize) -> Self {
        self.depth = d;
        self
    }

    /// Builder: virtual ticks pumped between harvest rounds.
    #[must_use]
    pub fn quantum(mut self, q: u64) -> Self {
        self.quantum = q;
        self
    }

    /// Builder: target offered rate in operations per tick (open-loop
    /// cap on top of the closed-loop depth bound).
    #[must_use]
    pub fn rate(mut self, ops_per_tick: f64) -> Self {
        self.rate = Some(ops_per_tick);
        self
    }

    /// Builder: total operation budget for the phase; once issued, the
    /// phase idles out its remaining ticks.
    #[must_use]
    pub fn ops(mut self, total: u64) -> Self {
        self.ops = Some(total);
        self
    }

    /// Builder: use a phase-local workload generator of this kind
    /// instead of the scenario-shared one (e.g. Zipf reads over a
    /// uniformly loaded population).
    #[must_use]
    pub fn workload(mut self, kind: WorkloadKind) -> Self {
        self.workload = Some(kind);
        self
    }

    /// Builder: replace the phase duration (the shrinker's
    /// shorten-a-phase move; `new` is the only other place ticks are
    /// set).
    #[must_use]
    pub fn with_ticks(mut self, ticks: u64) -> Self {
        self.ticks = ticks;
        self
    }

    /// The phase's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Scheduled duration in ticks.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Concurrent client sessions.
    #[must_use]
    pub fn session_count(&self) -> usize {
        self.sessions
    }

    /// Operations each session keeps in flight.
    #[must_use]
    pub fn pipeline_depth(&self) -> usize {
        self.depth
    }

    /// Virtual ticks pumped between harvest rounds.
    #[must_use]
    pub fn quantum_ticks(&self) -> u64 {
        self.quantum
    }

    /// The op mix this phase offers.
    #[must_use]
    pub fn op_mix(&self) -> &OpMix {
        &self.mix
    }

    /// The open-loop rate cap, if one is set.
    #[must_use]
    pub fn rate_cap(&self) -> Option<f64> {
        self.rate
    }

    /// The total operation budget, if one is set.
    #[must_use]
    pub fn op_budget(&self) -> Option<u64> {
        self.ops
    }

    /// The phase-local workload override, if one is set.
    #[must_use]
    pub fn local_workload(&self) -> Option<WorkloadKind> {
        self.workload
    }
}

/// A complete experiment, as a value: workload program, fault schedule
/// and environment timeline, all replayable from `seed`.
///
/// A full value type (`Clone + Debug + PartialEq`) with accessors and
/// setters for programmatic mutation, and a [`std::fmt::Display`] that
/// prints the scenario as a runnable Rust constructor snippet — the
/// repro artifact dd-fuzz emits for every shrunk finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    pub(crate) name: String,
    pub(crate) seed: u64,
    pub(crate) workload: WorkloadKind,
    pub(crate) phases: Vec<Phase>,
    pub(crate) faults: Vec<(u64, Fault)>,
    pub(crate) env: Vec<(u64, EnvChange)>,
    pub(crate) audited: bool,
    pub(crate) traced: bool,
    pub(crate) instrumented: bool,
}

impl Scenario {
    /// A scenario named `name`, generating traffic from `workload`, with
    /// all random choices (op picking, fault victims, churn draws)
    /// derived from `seed`.
    #[must_use]
    pub fn new(name: impl Into<String>, workload: WorkloadKind, seed: u64) -> Self {
        Scenario {
            name: name.into(),
            seed,
            workload,
            phases: Vec::new(),
            faults: Vec::new(),
            env: Vec::new(),
            audited: false,
            traced: false,
            instrumented: false,
        }
    }

    /// Turns on history capture and consistency checking for this
    /// scenario: the run records every operation into a
    /// [`dd_audit::History`], settles the cluster after the final drain
    /// until the live replicas stop changing, and attaches the checker
    /// suite's verdict as [`ScenarioReport::audit`]. Recording is passive
    /// — the executed run (and the rest of the report) is byte-identical
    /// to the unaudited one. Auditing assumes the scenario's writes are
    /// the cluster's only writes, so run it against a fresh cluster.
    #[must_use]
    pub fn audited(mut self) -> Self {
        self.audited = true;
        self
    }

    /// Whether this scenario runs with auditing on.
    #[must_use]
    pub fn is_audited(&self) -> bool {
        self.audited
    }

    /// Turns on causal tracing for this scenario: the run records every
    /// client operation as a span tree (client root → coordinator hops →
    /// per-replica waits → persist stores/serves) and attaches the
    /// critical-path analysis as [`ScenarioReport::trace`]. Recording is
    /// passive — the executed run (and the rest of the report) is
    /// byte-identical to the untraced one.
    #[must_use]
    pub fn traced(mut self) -> Self {
        self.traced = true;
        self
    }

    /// Whether this scenario runs with tracing on.
    #[must_use]
    pub fn is_traced(&self) -> bool {
        self.traced
    }

    /// Turns on continuous telemetry for this scenario: the run samples
    /// per-node gauges (queue depth, in-flight messages, pending ops,
    /// store occupancy, repair rates, …) every sampling period and
    /// attaches the detector verdicts and exportable series as
    /// [`ScenarioReport::telemetry`]. Sampling is passive — the executed
    /// run (and the rest of the report) is byte-identical to the
    /// uninstrumented one.
    #[must_use]
    pub fn instrumented(mut self) -> Self {
        self.instrumented = true;
        self
    }

    /// Whether this scenario runs with telemetry sampling on.
    #[must_use]
    pub fn is_instrumented(&self) -> bool {
        self.instrumented
    }

    /// Appends a workload phase (phases run back to back).
    #[must_use]
    pub fn phase(mut self, phase: Phase) -> Self {
        self.phases.push(phase);
        self
    }

    /// Schedules a fault `at` ticks after the scenario starts.
    #[must_use]
    pub fn fault(mut self, at: u64, fault: Fault) -> Self {
        self.faults.push((at, fault));
        self
    }

    /// Schedules an environment change `at` ticks after the scenario
    /// starts.
    #[must_use]
    pub fn env(mut self, at: u64, change: EnvChange) -> Self {
        self.env.push((at, change));
        self
    }

    /// The scenario's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total scheduled duration: the sum of the phase ticks.
    #[must_use]
    pub fn duration(&self) -> u64 {
        self.phases.iter().map(|p| p.ticks).sum()
    }

    /// The seed every random choice of the run derives from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scenario-shared workload shape.
    #[must_use]
    pub fn workload(&self) -> WorkloadKind {
        self.workload
    }

    /// The workload program, in phase order.
    #[must_use]
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// The fault schedule: `(at, fault)` clauses in declaration order.
    #[must_use]
    pub fn faults(&self) -> &[(u64, Fault)] {
        &self.faults
    }

    /// The environment timeline: `(at, change)` clauses in declaration
    /// order.
    #[must_use]
    pub fn env_timeline(&self) -> &[(u64, EnvChange)] {
        &self.env
    }

    /// Setter: replace the workload program (shrinker phase moves).
    pub fn set_phases(&mut self, phases: Vec<Phase>) {
        self.phases = phases;
    }

    /// Setter: replace the fault schedule (shrinker fault-drop moves).
    pub fn set_faults(&mut self, faults: Vec<(u64, Fault)>) {
        self.faults = faults;
    }

    /// Setter: replace the environment timeline (shrinker env-drop
    /// moves).
    pub fn set_env(&mut self, env: Vec<(u64, EnvChange)>) {
        self.env = env;
    }

    /// Setter: replace the scenario name (shrunk repros get suffixed
    /// names so artifacts stay distinguishable from their originals).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }
}

/// Why a [`Scenario`] failed validation. Produced by
/// [`Scenario::validate`]; a run entry point rejects the scenario with
/// these instead of panicking somewhere inside the engine — fuzz-generated
/// and shrinker-mutated scenarios routinely explore the degenerate corners
/// (zero-length phases, empty batches, out-of-range probabilities,
/// overlapping partitions) that hand-written drills never hit.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The scenario has no phases at all: nothing to run.
    NoPhases,
    /// A phase lasts zero ticks.
    EmptyPhase {
        /// Index of the offending phase.
        phase: usize,
    },
    /// A traffic-offering phase has zero sessions: its mix can never
    /// issue.
    NoSessions {
        /// Index of the offending phase.
        phase: usize,
    },
    /// A traffic-offering phase has zero pipeline depth: its mix can
    /// never issue.
    NoDepth {
        /// Index of the offending phase.
        phase: usize,
    },
    /// A phase pumps zero ticks between harvests.
    ZeroQuantum {
        /// Index of the offending phase.
        phase: usize,
    },
    /// A phase weights batched writes but batches zero items.
    EmptyBatch {
        /// Index of the offending phase.
        phase: usize,
    },
    /// A workload's parameters cannot generate (zero key/user
    /// populations, non-finite distribution parameters).
    BadWorkload {
        /// Offending phase-local override, or `None` for the
        /// scenario-shared workload.
        phase: Option<usize>,
        /// What is wrong with it.
        reason: &'static str,
    },
    /// A churn model's parameters cannot generate a schedule.
    BadChurnModel {
        /// The fault's scheduled time.
        at: u64,
        /// What is wrong with it.
        reason: &'static str,
    },
    /// A message-loss probability outside `[0, 1]`.
    BadDropProb {
        /// The change's scheduled time.
        at: u64,
        /// The offending probability.
        prob: f64,
    },
    /// A partition fraction outside `[0, 1]`.
    BadPartitionFraction {
        /// The change's scheduled time.
        at: u64,
        /// The offending fraction.
        fraction: f64,
    },
    /// A second persist-layer partition scheduled while an earlier one is
    /// still unhealed (re-colouring mid-partition silently rewires the
    /// first split — almost certainly not what the scenario meant).
    OverlappingPartition {
        /// When the first partition was scheduled.
        first: u64,
        /// When the overlapping one was scheduled.
        second: u64,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::NoPhases => write!(f, "scenario has no phases"),
            ScenarioError::EmptyPhase { phase } => write!(f, "phase {phase} lasts zero ticks"),
            ScenarioError::NoSessions { phase } => {
                write!(f, "phase {phase} offers traffic with zero sessions")
            }
            ScenarioError::NoDepth { phase } => {
                write!(f, "phase {phase} offers traffic with zero pipeline depth")
            }
            ScenarioError::ZeroQuantum { phase } => {
                write!(f, "phase {phase} pumps zero ticks between harvests")
            }
            ScenarioError::EmptyBatch { phase } => {
                write!(f, "phase {phase} weights batched writes of zero items")
            }
            ScenarioError::BadWorkload { phase: Some(p), reason } => {
                write!(f, "phase {p} workload: {reason}")
            }
            ScenarioError::BadWorkload { phase: None, reason } => {
                write!(f, "scenario workload: {reason}")
            }
            ScenarioError::BadChurnModel { at, reason } => {
                write!(f, "churn burst at {at}: {reason}")
            }
            ScenarioError::BadDropProb { at, prob } => {
                write!(f, "drop probability {prob} at {at} outside [0, 1]")
            }
            ScenarioError::BadPartitionFraction { at, fraction } => {
                write!(f, "partition fraction {fraction} at {at} outside [0, 1]")
            }
            ScenarioError::OverlappingPartition { first, second } => {
                write!(f, "partition at {second} overlaps unhealed partition at {first}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

impl Scenario {
    /// Checks that this scenario can run without tripping an internal
    /// panic: phases are non-degenerate, workload and churn parameters
    /// can generate, probabilities are probabilities, and partitions
    /// never overlap. Returns every problem found, in schedule order.
    ///
    /// Hand-written drills rarely need this (the builders make the sane
    /// thing easy), but fuzz-generated and shrinker-mutated scenarios are
    /// validated before every run, and [`Cluster::run_scenario`] rejects
    /// invalid scenarios up front.
    pub fn validate(&self) -> Result<(), Vec<ScenarioError>> {
        let mut errs = Vec::new();
        if self.phases.is_empty() {
            errs.push(ScenarioError::NoPhases);
        }
        for (i, p) in self.phases.iter().enumerate() {
            if p.ticks == 0 {
                errs.push(ScenarioError::EmptyPhase { phase: i });
            }
            if p.quantum == 0 {
                errs.push(ScenarioError::ZeroQuantum { phase: i });
            }
            if !p.mix.is_idle() {
                if p.sessions == 0 {
                    errs.push(ScenarioError::NoSessions { phase: i });
                }
                if p.depth == 0 {
                    errs.push(ScenarioError::NoDepth { phase: i });
                }
                if p.mix.weight_multi_put() > 0 && p.mix.batch_items() == 0 {
                    errs.push(ScenarioError::EmptyBatch { phase: i });
                }
            }
            if let Some(kind) = p.workload {
                if let Err(reason) = kind.validate() {
                    errs.push(ScenarioError::BadWorkload { phase: Some(i), reason });
                }
            }
        }
        if let Err(reason) = self.workload.validate() {
            errs.push(ScenarioError::BadWorkload { phase: None, reason });
        }
        for (at, fault) in &self.faults {
            if let Fault::ChurnBurst { model, .. } = fault {
                if !(model.failure_rate.is_finite() && model.failure_rate >= 0.0) {
                    errs.push(ScenarioError::BadChurnModel {
                        at: *at,
                        reason: "failure_rate must be finite and non-negative",
                    });
                } else if model.period == 0 && model.failure_rate > 0.0 {
                    errs.push(ScenarioError::BadChurnModel {
                        at: *at,
                        reason: "period must be positive",
                    });
                }
                if !(0.0..=1.0).contains(&model.permanent_prob) {
                    errs.push(ScenarioError::BadChurnModel {
                        at: *at,
                        reason: "permanent_prob must be in [0, 1]",
                    });
                }
            }
        }
        // Environment clauses are applied in time order regardless of
        // declaration order; audit partitions the same way.
        let mut timeline: Vec<(u64, usize)> =
            self.env.iter().enumerate().map(|(i, (at, _))| (*at, i)).collect();
        timeline.sort_unstable();
        let mut open_partition: Option<u64> = None;
        for (at, i) in timeline {
            match &self.env[i].1 {
                EnvChange::DropProb(p) => {
                    if !(0.0..=1.0).contains(p) {
                        errs.push(ScenarioError::BadDropProb { at, prob: *p });
                    }
                }
                EnvChange::PartitionPersist { fraction } => {
                    if !(0.0..=1.0).contains(fraction) {
                        errs.push(ScenarioError::BadPartitionFraction { at, fraction: *fraction });
                    }
                    if let Some(first) = open_partition {
                        errs.push(ScenarioError::OverlappingPartition { first, second: at });
                    }
                    open_partition = Some(at);
                }
                EnvChange::Heal => open_partition = None,
                EnvChange::Latency(_) => {}
            }
        }
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }
}

/// `Display` renders the tier as a pasteable Rust path
/// (`Tier::Persist`), the building block of scenario repro snippets.
impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tier::Soft => f.write_str("Tier::Soft"),
            Tier::Persist => f.write_str("Tier::Persist"),
        }
    }
}

/// `Display` renders the fault as a pasteable Rust constructor
/// expression (nested enums get their full paths — derived `Debug`
/// would drop them).
impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::ChurnBurst { tier, model, span } => {
                write!(f, "Fault::ChurnBurst {{ tier: {tier}, model: {model:?}, span: {span} }}")
            }
            Fault::Crash { tier, count } => {
                write!(f, "Fault::Crash {{ tier: {tier}, count: {count} }}")
            }
            Fault::Flap { tier, count, down_for } => {
                write!(f, "Fault::Flap {{ tier: {tier}, count: {count}, down_for: {down_for} }}")
            }
            Fault::ReviveAll { tier } => write!(f, "Fault::ReviveAll {{ tier: {tier} }}"),
            Fault::WipeSoftLayer => f.write_str("Fault::WipeSoftLayer"),
            Fault::RebuildSoftLayer => f.write_str("Fault::RebuildSoftLayer"),
        }
    }
}

/// `Display` renders the change as a pasteable Rust constructor
/// expression.
impl std::fmt::Display for EnvChange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnvChange::Latency(m) => write!(f, "EnvChange::Latency(LatencyModel::{m:?})"),
            EnvChange::DropProb(p) => write!(f, "EnvChange::DropProb({p:?})"),
            EnvChange::PartitionPersist { fraction } => {
                write!(f, "EnvChange::PartitionPersist {{ fraction: {fraction:?} }}")
            }
            EnvChange::Heal => f.write_str("EnvChange::Heal"),
        }
    }
}

/// `Display` renders the mix as the builder chain that reconstructs it:
/// `OpMix::idle()` plus one call per non-default knob.
impl std::fmt::Display for OpMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("OpMix::idle()")?;
        for (weight, method) in [
            (self.weight_put(), "put"),
            (self.weight_get(), "get"),
            (self.weight_delete(), "delete"),
            (self.weight_scan(), "scan"),
            (self.weight_multi_put(), "multi_put"),
            (self.weight_multi_get(), "multi_get"),
        ] {
            if weight > 0 {
                write!(f, ".{method}({weight})")?;
            }
        }
        let default_batch = OpMix::idle().batch_items();
        if self.batch_items() != default_batch {
            write!(f, ".batch({})", self.batch_items())?;
        }
        Ok(())
    }
}

/// `Display` renders the phase as the builder chain that reconstructs
/// it: `Phase::new(..)` plus one call per non-default knob.
impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Phase::new({:?}, {})", self.name, self.ticks)?;
        if !self.mix.is_idle() {
            write!(f, ".mix({})", self.mix)?;
        }
        let defaults = Phase::new("", 1);
        if self.sessions != defaults.sessions {
            write!(f, ".sessions({})", self.sessions)?;
        }
        if self.depth != defaults.depth {
            write!(f, ".depth({})", self.depth)?;
        }
        if self.quantum != defaults.quantum {
            write!(f, ".quantum({})", self.quantum)?;
        }
        if let Some(rate) = self.rate {
            write!(f, ".rate({rate:?})")?;
        }
        if let Some(ops) = self.ops {
            write!(f, ".ops({ops})")?;
        }
        if let Some(kind) = self.workload {
            write!(f, ".workload(WorkloadKind::{kind:?})")?;
        }
        Ok(())
    }
}

/// `Display` renders the whole scenario as a runnable Rust constructor
/// snippet — dd-fuzz's repro artifact: paste it into a test, run it
/// against a fresh cluster, and the finding replays byte-identically.
impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Scenario::new({:?}, WorkloadKind::{:?}, {})",
            self.name, self.workload, self.seed
        )?;
        for phase in &self.phases {
            write!(f, "\n    .phase({phase})")?;
        }
        for (at, fault) in &self.faults {
            write!(f, "\n    .fault({at}, {fault})")?;
        }
        for (at, change) in &self.env {
            write!(f, "\n    .env({at}, {change})")?;
        }
        if self.audited {
            f.write_str("\n    .audited()")?;
        }
        if self.traced {
            f.write_str("\n    .traced()")?;
        }
        if self.instrumented {
            f.write_str("\n    .instrumented()")?;
        }
        Ok(())
    }
}

/// Error taxonomy of resolved operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ErrorCounts {
    /// Operations that exceeded [`crate::OP_TIMEOUT`] unanswered.
    pub timeouts: u64,
    /// Batched writes that ordered only part of their items.
    pub partials: u64,
    /// Operations submitted while no soft node was alive.
    pub no_entry: u64,
}

impl ErrorCounts {
    /// Total failed operations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.timeouts + self.partials + self.no_entry
    }
}

/// What one phase achieved. Every operation is attributed to the phase
/// that *issued* it, even when it resolved later (or only in the
/// scenario's final drain).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Phase name.
    pub name: String,
    /// Scheduled phase duration in ticks.
    pub ticks: u64,
    /// Operations issued.
    pub issued: u64,
    /// Operations that completed successfully (`Ok(None)` reads count:
    /// "key absent" is an available answer).
    pub ok: u64,
    /// Failed operations, by kind.
    pub errors: ErrorCounts,
    /// Reads that found a tuple.
    pub reads_found: u64,
    /// Reads that found nothing.
    pub reads_absent: u64,
    /// Reads that returned a version older than one already acknowledged
    /// to this scenario's clients.
    pub stale_reads: u64,
    /// Tuples returned by scans and tag-scoped reads.
    pub tuples_read: u64,
    /// Median completion latency of successful ops, in ticks.
    pub latency_p50: f64,
    /// 95th-percentile completion latency, in ticks.
    pub latency_p95: f64,
    /// 99th-percentile completion latency, in ticks.
    pub latency_p99: f64,
    /// Messages sent cluster-wide in the phase window (the last phase's
    /// window extends through the scenario's final drain).
    pub msgs: u64,
    /// Mean persist nodes contacted per tag-scoped read in the window.
    pub contacts_mean: f64,
    /// Max persist nodes contacted per tag-scoped read in the window.
    pub contacts_max: f64,
}

impl PhaseReport {
    /// Fraction of resolved operations that succeeded (1.0 for an idle
    /// phase).
    #[must_use]
    pub fn availability(&self) -> f64 {
        let resolved = self.ok + self.errors.total();
        if resolved == 0 {
            1.0
        } else {
            self.ok as f64 / resolved as f64
        }
    }

    /// Fraction of found reads that were stale (0.0 when nothing was
    /// found).
    #[must_use]
    pub fn staleness(&self) -> f64 {
        if self.reads_found == 0 {
            0.0
        } else {
            self.stale_reads as f64 / self.reads_found as f64
        }
    }
}

/// What a whole scenario achieved: the per-phase reports plus run-wide
/// aggregates. `PartialEq` so a determinism check is one assertion.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Per-phase outcomes, in program order.
    pub phases: Vec<PhaseReport>,
    /// Virtual ticks the run consumed, including the final drain.
    pub ticks: u64,
    /// Messages sent cluster-wide over the whole run.
    pub msgs: u64,
    /// Median completion latency across all phases, in ticks.
    pub latency_p50: f64,
    /// 95th-percentile completion latency across all phases.
    pub latency_p95: f64,
    /// 99th-percentile completion latency across all phases.
    pub latency_p99: f64,
    /// The consistency-checker verdict, when the scenario ran
    /// [`Scenario::audited`]; `None` otherwise.
    pub audit: Option<dd_audit::AuditReport>,
    /// The critical-path latency attribution, when the scenario ran
    /// [`Scenario::traced`]; `None` otherwise.
    pub trace: Option<dd_trace::TraceReport>,
    /// The sampled time-series and detector verdicts, when the scenario
    /// ran [`Scenario::instrumented`]; `None` otherwise.
    pub telemetry: Option<dd_obs::TelemetryReport>,
}

impl ScenarioReport {
    /// Run-wide availability: successes over resolved operations.
    #[must_use]
    pub fn availability(&self) -> f64 {
        let ok: u64 = self.phases.iter().map(|p| p.ok).sum();
        let resolved: u64 = ok + self.errors().total();
        if resolved == 0 {
            1.0
        } else {
            ok as f64 / resolved as f64
        }
    }

    /// Run-wide staleness: stale reads over found reads.
    #[must_use]
    pub fn staleness(&self) -> f64 {
        let found: u64 = self.phases.iter().map(|p| p.reads_found).sum();
        let stale: u64 = self.phases.iter().map(|p| p.stale_reads).sum();
        if found == 0 {
            0.0
        } else {
            stale as f64 / found as f64
        }
    }

    /// Run-wide error taxonomy.
    #[must_use]
    pub fn errors(&self) -> ErrorCounts {
        let mut total = ErrorCounts::default();
        for p in &self.phases {
            total.timeouts += p.errors.timeouts;
            total.partials += p.errors.partials;
            total.no_entry += p.errors.no_entry;
        }
        total
    }

    /// Total operations issued.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.phases.iter().map(|p| p.issued).sum()
    }
}

impl std::fmt::Display for ScenarioReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scenario {:?}: {} ops over {} ticks, availability {:.2}%, \
             staleness {:.2}%, p50/p95/p99 {:.0}/{:.0}/{:.0} ticks, {} msgs",
            self.name,
            self.issued(),
            self.ticks,
            self.availability() * 100.0,
            self.staleness() * 100.0,
            self.latency_p50,
            self.latency_p95,
            self.latency_p99,
            self.msgs,
        )?;
        for p in &self.phases {
            write!(
                f,
                "\n  phase {:?}: {} issued, {} ok, {} failed, p99 {:.0}",
                p.name,
                p.issued,
                p.ok,
                p.errors.total(),
                p.latency_p99,
            )?;
        }
        if let Some(audit) = &self.audit {
            write!(f, "\n  audit: {}", if audit.is_clean() { "clean" } else { "VIOLATIONS" })?;
        }
        if let Some(telemetry) = &self.telemetry {
            write!(f, "\n  {}", telemetry.digest())?;
        }
        Ok(())
    }
}

/// A wipe/rebuild is harness-level (it reaches into node state), so it
/// cannot ride the simulator's event queue; the run loop applies these
/// between pump quanta, cut exactly at the event time.
#[derive(Debug, Clone, Copy)]
enum HarnessOp {
    Wipe,
    Rebuild,
}

impl Cluster {
    /// Executes `scenario` against this cluster: merges its workload
    /// program, fault schedule and environment timeline into one
    /// deterministic run and reports what happened. The run starts at
    /// the current virtual time (callers usually [`Cluster::settle`]
    /// first) and ends when every phase has elapsed and every issued
    /// operation has resolved.
    ///
    /// # Panics
    /// Panics if the scenario fails [`Scenario::validate`]; callers
    /// holding machine-generated scenarios should prefer
    /// [`Cluster::try_run_scenario`].
    pub fn run_scenario(&mut self, scenario: &Scenario) -> ScenarioReport {
        match self.try_run_scenario(scenario) {
            Ok(report) => report,
            Err(errs) => {
                let list: Vec<String> = errs.iter().map(ScenarioError::to_string).collect();
                panic!("invalid scenario {:?}: {}", scenario.name, list.join("; "));
            }
        }
    }

    /// [`Cluster::run_scenario`], but rejecting an invalid scenario as a
    /// [`ScenarioError`] list instead of panicking — the entry point for
    /// machine-generated scenarios (dd-fuzz validates every generated
    /// and shrunk candidate through this).
    pub fn try_run_scenario(
        &mut self,
        scenario: &Scenario,
    ) -> Result<ScenarioReport, Vec<ScenarioError>> {
        scenario.validate()?;
        Ok(self.run_scenario_unchecked(scenario))
    }

    fn run_scenario_unchecked(&mut self, scenario: &Scenario) -> ScenarioReport {
        let start = self.sim.now();
        let msgs_at_start = self.sim.metrics().counter("net.sent");
        if scenario.audited {
            self.begin_audit();
        }
        if scenario.traced {
            self.begin_trace();
        }
        if scenario.instrumented {
            self.begin_instrument();
        }
        let harness = self.schedule_faults(scenario, start);
        self.schedule_env(scenario, start);

        let mut engine = Engine::new(stream_rng(scenario.seed ^ 0x0E15_0E15, 0));
        let mut shared = Workload::new(scenario.workload, mix(scenario.seed, 0x3057));
        let mut stats: Vec<PhaseStats> =
            scenario.phases.iter().map(|_| PhaseStats::default()).collect();
        // Per-phase net.sent at phase start; the windows are cut after
        // the final drain so the last phase's accounting includes what
        // its stragglers sent. Contact accounting rides the metrics
        // sink's O(1) windows: taking the window at each phase boundary
        // yields the finished phase's exact count/sum/max without ever
        // slicing (or retaining) an unbounded series.
        let mut starts: Vec<u64> = Vec::with_capacity(scenario.phases.len());
        let mut contact_windows: Vec<Window> = Vec::with_capacity(scenario.phases.len());
        let mut next_harness = 0usize;

        for (pi, phase) in scenario.phases.iter().enumerate() {
            self.set_audit_phase(Some(pi as u32));
            let phase_start = self.sim.now();
            let phase_end = phase_start + Duration(phase.ticks);
            starts.push(self.sim.metrics().counter("net.sent"));
            // The take at phase 0 discards pre-scenario accumulation;
            // every later take closes out the previous phase's window.
            let w = self.sim.metrics_mut().take_window("multi_get.contacted_nodes");
            if pi > 0 {
                contact_windows.push(w);
            }
            if !phase.mix.is_idle() {
                engine.open_sessions(self, phase.sessions);
            }
            let mut local = phase
                .workload
                .map(|kind| Workload::new(kind, mix(scenario.seed, 0x9100 + pi as u64)));
            loop {
                while next_harness < harness.len() && harness[next_harness].0 <= self.sim.now() {
                    self.apply_harness(harness[next_harness].1);
                    next_harness += 1;
                }
                let now = self.sim.now();
                if now >= phase_end {
                    break;
                }
                let budget = phase_budget(phase, &stats[pi], now.since(phase_start).0);
                if budget > 0 {
                    let workload = local.as_mut().unwrap_or(&mut shared);
                    stats[pi].issued +=
                        engine.refill(self, workload, pi, &phase.mix, phase.depth, budget);
                }
                let mut stop = phase_end;
                if next_harness < harness.len() {
                    stop = stop.min(harness[next_harness].0);
                }
                let step = stop.since(now).0.min(phase.quantum).max(1);
                self.pump(step);
                engine.harvest(self, &mut stats);
            }
        }

        // Final drain: resolve every straggler (bounded — the client
        // retires anything older than OP_TIMEOUT) while still firing any
        // harness fault scheduled at or past the last phase boundary at
        // its declared tick, not early.
        self.set_audit_phase(None);
        while engine.in_flight() > 0 || next_harness < harness.len() {
            while next_harness < harness.len() && harness[next_harness].0 <= self.sim.now() {
                self.apply_harness(harness[next_harness].1);
                next_harness += 1;
            }
            if engine.in_flight() == 0 && next_harness >= harness.len() {
                break;
            }
            let mut step = 50;
            if next_harness < harness.len() {
                step = step.min(harness[next_harness].0.since(self.sim.now()).0);
            }
            self.pump(step.max(1));
            engine.harvest(self, &mut stats);
        }

        // Cut the per-phase message/contact windows: each phase ends
        // where the next begins; the last extends through the drain.
        // Everything the *report core* measures — ticks, messages,
        // contact windows — is captured here, before the audit's
        // convergence settling, so the core of an audited report equals
        // the unaudited one exactly.
        let msgs_end = self.sim.metrics().counter("net.sent");
        contact_windows.push(self.sim.metrics_mut().take_window("multi_get.contacted_nodes"));
        let run_ticks = self.sim.now().since(start).0;
        let run_msgs = msgs_end - msgs_at_start;
        // The trace closes with the drain (before the audit's settling)
        // so span trees cover exactly the operations the report counts.
        let trace = scenario.traced.then(|| {
            let set = self.end_trace().expect("traced run installed a recorder");
            dd_trace::TraceReport::build(set)
        });
        // Telemetry closes at the same boundary as the trace so its
        // series cover exactly the run the report counts, not the
        // audit's convergence settling.
        let telemetry = scenario.instrumented.then(|| {
            let data = self.end_instrument().expect("instrumented run installed a sampler");
            dd_obs::TelemetryReport::build(data)
        });
        let audit = scenario.audited.then(|| self.finish_audit());
        let mut phases = Vec::with_capacity(scenario.phases.len());
        let mut all_latencies = Reservoir::new();
        for (pi, (phase, st)) in scenario.phases.iter().zip(&stats).enumerate() {
            let msgs_start = starts[pi];
            let next_msgs = starts.get(pi + 1).copied().unwrap_or(msgs_end);
            let contacts = contact_windows[pi];
            let q = st.latencies.quantiles(&[0.5, 0.95, 0.99]);
            all_latencies.merge(&st.latencies);
            phases.push(PhaseReport {
                name: phase.name.clone(),
                ticks: phase.ticks,
                issued: st.issued,
                ok: st.ok,
                errors: ErrorCounts {
                    timeouts: st.timeouts,
                    partials: st.partials,
                    no_entry: st.no_entry,
                },
                reads_found: st.reads_found,
                reads_absent: st.reads_absent,
                stale_reads: st.stale_reads,
                tuples_read: st.tuples_read,
                latency_p50: q[0].unwrap_or(0.0),
                latency_p95: q[1].unwrap_or(0.0),
                latency_p99: q[2].unwrap_or(0.0),
                msgs: next_msgs - msgs_start,
                contacts_mean: contacts.mean(),
                contacts_max: contacts.max,
            });
        }
        let q = all_latencies.quantiles(&[0.5, 0.95, 0.99]);
        ScenarioReport {
            name: scenario.name.clone(),
            phases,
            ticks: run_ticks,
            msgs: run_msgs,
            latency_p50: q[0].unwrap_or(0.0),
            latency_p95: q[1].unwrap_or(0.0),
            latency_p99: q[2].unwrap_or(0.0),
            audit,
            trace,
            telemetry,
        }
    }

    /// Closes out an audited run: settles the cluster until the
    /// live-replica snapshot agrees per key (bounded at
    /// [`MAX_AUDIT_SETTLES`] rounds), then runs the checker suite.
    ///
    /// Each unconverged round drives a deterministic
    /// [`Cluster::repair_sweep`] before settling. Periodic repair picks
    /// one partner per round by lottery, and fuzzing showed that when
    /// exactly two replicas hold a diverged key (and no other node's
    /// sieve accepts it to relay), the pair can take far longer than any
    /// fixed settle bound to meet — the audit would then report
    /// transient lag as divergence. The sweep makes the measurement
    /// procedure deterministic: what remains after full pairwise
    /// anti-entropy is divergence the protocol itself cannot repair (and
    /// with repair disabled the sweep is a no-op, so lingering
    /// divergence still surfaces).
    fn finish_audit(&mut self) -> dd_audit::AuditReport {
        let history = self.end_audit().expect("audited run installed a recorder");
        let mut snapshot = self.audit_snapshot();
        for _ in 0..MAX_AUDIT_SETTLES {
            if dd_audit::snapshot_converged(&snapshot) {
                break;
            }
            self.repair_sweep();
            self.settle();
            snapshot = self.audit_snapshot();
        }
        dd_audit::check(&history, &snapshot)
    }

    fn tier_ids(&self, tier: Tier) -> Vec<NodeId> {
        match tier {
            Tier::Soft => self.soft_ids().to_vec(),
            Tier::Persist => self.persist_ids().to_vec(),
        }
    }

    /// Compiles the fault schedule: simulator-schedulable faults are
    /// queued on the engine up front; wipe/rebuild ops come back as a
    /// time-sorted harness list.
    fn schedule_faults(&mut self, scenario: &Scenario, start: Time) -> Vec<(Time, HarnessOp)> {
        let mut victims_rng = stream_rng(scenario.seed ^ 0xFA01_7FA0, 1);
        let mut harness: Vec<(Time, HarnessOp)> = Vec::new();
        for (idx, (at, fault)) in scenario.faults.iter().enumerate() {
            let t = start + Duration(*at);
            match fault {
                Fault::ChurnBurst { tier, model, span } => {
                    let ids = self.tier_ids(*tier);
                    let schedule = ChurnSchedule::generate(
                        model,
                        ids.len() as u64,
                        Time(*span),
                        mix(scenario.seed ^ 0xC4C4, idx as u64),
                    );
                    for ev in schedule.events() {
                        let id = ids[ev.node().0 as usize];
                        let when = t + Duration(ev.at().0);
                        match ev {
                            ChurnEvent::Down(..) | ChurnEvent::Leave(..) => {
                                self.sim.schedule_down(when, id);
                            }
                            ChurnEvent::Up(..) => self.sim.schedule_up(when, id),
                        }
                    }
                }
                Fault::Crash { tier, count } => {
                    for id in self.pick_victims(*tier, *count, &mut victims_rng) {
                        self.sim.schedule_down(t, id);
                    }
                }
                Fault::Flap { tier, count, down_for } => {
                    for id in self.pick_victims(*tier, *count, &mut victims_rng) {
                        self.sim.schedule_down(t, id);
                        self.sim.schedule_up(t + Duration(*down_for), id);
                    }
                }
                Fault::ReviveAll { tier } => {
                    for id in self.tier_ids(*tier) {
                        // Up events are no-ops on nodes already alive.
                        self.sim.schedule_up(t, id);
                    }
                }
                Fault::WipeSoftLayer => harness.push((t, HarnessOp::Wipe)),
                Fault::RebuildSoftLayer => harness.push((t, HarnessOp::Rebuild)),
            }
        }
        harness.sort_by_key(|&(t, _)| t);
        harness
    }

    fn pick_victims(
        &self,
        tier: Tier,
        count: usize,
        rng: &mut rand::rngs::SmallRng,
    ) -> Vec<NodeId> {
        let mut ids = self.tier_ids(tier);
        ids.shuffle(rng);
        ids.truncate(count);
        ids
    }

    fn schedule_env(&mut self, scenario: &Scenario, start: Time) {
        for (at, change) in &scenario.env {
            let t = start + Duration(*at);
            match change {
                EnvChange::Latency(latency) => {
                    self.sim.schedule_net(t, NetChange::Latency(*latency));
                }
                EnvChange::DropProb(p) => self.sim.schedule_net(t, NetChange::DropProb(*p)),
                EnvChange::PartitionPersist { fraction } => {
                    let ids = self.persist_ids().to_vec();
                    let dark = ((fraction.clamp(0.0, 1.0) * ids.len() as f64).round() as usize)
                        .min(ids.len());
                    for (i, id) in ids.into_iter().enumerate() {
                        let colour = u32::from(i < dark);
                        self.sim.schedule_net(t, NetChange::Partition(id, colour));
                    }
                }
                EnvChange::Heal => self.sim.schedule_net(t, NetChange::Heal),
            }
        }
    }

    fn apply_harness(&mut self, op: HarnessOp) {
        match op {
            HarnessOp::Wipe => self.wipe_soft_layer(),
            HarnessOp::Rebuild => self.rebuild_soft_layer(),
        }
    }
}

/// Upper bound on the settle rounds an audited run spends waiting for
/// the live replicas to agree before the convergence check. Each round is
/// one [`Cluster::settle`] horizon (at least a full repair period), and
/// anti-entropy pairs nodes randomly, so agreement normally lands within
/// a handful of rounds; the bound only stops a pathological run from
/// settling forever.
const MAX_AUDIT_SETTLES: u32 = 32;

/// How many more operations the phase may issue right now, given its op
/// budget and target rate.
fn phase_budget(phase: &Phase, stats: &PhaseStats, elapsed: u64) -> u64 {
    let mut budget = u64::MAX;
    if let Some(cap) = phase.ops {
        budget = budget.min(cap.saturating_sub(stats.issued));
    }
    if let Some(rate) = phase.rate {
        let allowed = (rate * (elapsed + 1) as f64).ceil() as u64;
        budget = budget.min(allowed.saturating_sub(stats.issued));
    }
    budget
}

/// The scenario library: the dependability drills the benches, tests and
/// examples share (and E15 sweeps against placements). All of them load
/// a social-feed dataset, serve mixed traffic while the fault/environment
/// timeline plays out, then read the dataset back.
pub mod library {
    use super::*;

    const LOAD: u64 = 6_000;
    const SERVE: u64 = 10_000;
    const REPAIR: u64 = 10_000;
    const READBACK: u64 = 8_000;

    fn load_phase() -> Phase {
        Phase::new("load", LOAD)
            .mix(OpMix::idle().put(3).multi_put(1).batch(4))
            .sessions(3)
            .depth(8)
            .ops(240)
    }

    fn serve_phase() -> Phase {
        Phase::new("serve", SERVE)
            .mix(OpMix::idle().put(1).get(5).multi_get(1))
            .sessions(4)
            .depth(8)
            .ops(420)
    }

    fn readback_phase() -> Phase {
        Phase::new("readback", READBACK)
            .mix(OpMix::idle().get(4).multi_get(1))
            .sessions(2)
            .depth(4)
            .ops(200)
    }

    /// No faults, no environment events: the baseline every drill is
    /// compared against.
    #[must_use]
    pub fn calm(seed: u64) -> Scenario {
        Scenario::new("calm", WorkloadKind::SocialFeed { users: 8 }, seed)
            .phase(load_phase())
            .phase(serve_phase())
            .phase(readback_phase())
    }

    /// A churn storm rages across the persistent layer for the whole
    /// serve window (§III-A: transient failures dominate, a few
    /// permanent), then a repair window, then read-back.
    #[must_use]
    pub fn churn_storm(seed: u64) -> Scenario {
        let model =
            ChurnModel::default().failure_rate(0.08).mean_downtime(4_000).permanent_prob(0.05);
        Scenario::new("churn-storm", WorkloadKind::SocialFeed { users: 8 }, seed)
            .phase(load_phase())
            .phase(serve_phase())
            .phase(Phase::new("repair", REPAIR))
            .phase(readback_phase())
            .fault(LOAD, Fault::ChurnBurst { tier: Tier::Persist, model, span: SERVE })
    }

    /// Half the persistent layer is partitioned away during the serve
    /// window, then the partition heals and repair catches up.
    #[must_use]
    pub fn partition_heal(seed: u64) -> Scenario {
        Scenario::new("partition-heal", WorkloadKind::SocialFeed { users: 8 }, seed)
            .phase(load_phase())
            .phase(serve_phase())
            .phase(Phase::new("repair", REPAIR))
            .phase(readback_phase())
            .env(LOAD, EnvChange::PartitionPersist { fraction: 0.5 })
            .env(LOAD + SERVE, EnvChange::Heal)
    }

    /// Three correlated crash waves roll through the persistent layer
    /// mid-serve; everything revives at the start of the repair window.
    #[must_use]
    pub fn cascading_crash(seed: u64) -> Scenario {
        Scenario::new("cascading-crash", WorkloadKind::SocialFeed { users: 8 }, seed)
            .phase(load_phase())
            .phase(serve_phase())
            .phase(Phase::new("repair", REPAIR))
            .phase(readback_phase())
            .fault(LOAD + 1_000, Fault::Crash { tier: Tier::Persist, count: 4 })
            .fault(LOAD + 3_000, Fault::Crash { tier: Tier::Persist, count: 4 })
            .fault(LOAD + 5_000, Fault::Crash { tier: Tier::Persist, count: 4 })
            .fault(LOAD + SERVE, Fault::ReviveAll { tier: Tier::Persist })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;

    fn settled(seed: u64) -> Cluster {
        let mut c = Cluster::new(ClusterConfig::small(), seed);
        c.settle();
        c
    }

    #[test]
    fn a_two_phase_scenario_loads_and_reads_back() {
        let mut c = settled(1);
        let sc = Scenario::new("roundtrip", WorkloadKind::Uniform, 5)
            .phase(Phase::new("load", 3_000).mix(OpMix::puts()).ops(50))
            .phase(Phase::new("settle", 2_000))
            .phase(Phase::new("read", 3_000).mix(OpMix::gets()).ops(50));
        let r = c.run_scenario(&sc);
        assert_eq!(r.phases.len(), 3);
        assert_eq!(r.phases[0].issued, 50);
        assert_eq!(r.phases[0].ok, 50, "all writes acknowledged");
        assert_eq!(r.phases[1].issued, 0, "idle phase offers nothing");
        assert_eq!(r.phases[2].reads_found, 50, "every read finds its key");
        assert_eq!(r.availability(), 1.0);
        assert_eq!(r.errors(), ErrorCounts::default());
        assert!(r.latency_p50 > 0.0 && r.latency_p95 >= r.latency_p50);
        assert!(r.msgs > 0 && r.ticks >= sc.duration());
    }

    #[test]
    fn rate_caps_spread_issuance_across_the_phase() {
        let mut c = settled(2);
        let sc = Scenario::new("paced", WorkloadKind::Uniform, 6)
            .phase(Phase::new("write", 10_000).mix(OpMix::puts()).sessions(1).rate(0.002));
        let r = c.run_scenario(&sc);
        // 0.002 ops/tick over 10k ticks = 20 ops, pipeline-independent.
        assert_eq!(r.phases[0].issued, 20);
        assert_eq!(r.phases[0].ok, 20);
    }

    #[test]
    fn crash_fault_drops_live_nodes_and_revive_restores_them() {
        let mut c = settled(3);
        let persist_n = c.persist_ids().len();
        let sc = Scenario::new("crashes", WorkloadKind::Uniform, 7)
            .phase(Phase::new("quiet", 2_000))
            .fault(100, Fault::Crash { tier: Tier::Persist, count: 5 })
            .fault(1_000, Fault::ReviveAll { tier: Tier::Persist });
        // Probe liveness mid-run by splitting the scenario at the fault
        // times: run it, then check the sim's churn accounting.
        let _ = c.run_scenario(&sc);
        assert_eq!(c.sim.metrics().counter("churn.down"), 5);
        assert_eq!(c.sim.metrics().counter("churn.up"), 5);
        assert_eq!(c.sim.alive_count(), persist_n + c.soft_ids().len());
    }

    #[test]
    fn wipe_without_rebuild_loses_reads_rebuild_restores_them() {
        let run = |rebuild: bool| {
            let mut c = settled(4);
            let mut sc = Scenario::new("wipe", WorkloadKind::Uniform, 9)
                .phase(Phase::new("load", 3_000).mix(OpMix::puts()).ops(30))
                .phase(Phase::new("settle", 3_000))
                .phase(Phase::new("read", 3_000).mix(OpMix::gets()).ops(30))
                .fault(6_000, Fault::WipeSoftLayer);
            if rebuild {
                sc = sc.fault(6_000, Fault::RebuildSoftLayer);
            }
            let r = c.run_scenario(&sc);
            (r.phases[2].reads_found, r.phases[2].reads_absent)
        };
        let (found_wiped, absent_wiped) = run(false);
        assert_eq!(found_wiped, 0, "wiped metadata answers nothing");
        assert_eq!(absent_wiped, 30);
        let (found_rebuilt, _) = run(true);
        assert_eq!(found_rebuilt, 30, "reconstruction recovers every key");
    }

    #[test]
    fn a_fault_past_the_last_phase_fires_at_its_declared_tick() {
        let mut c = settled(7);
        let sc = Scenario::new("late-wipe", WorkloadKind::Uniform, 15)
            .phase(Phase::new("load", 2_000).mix(OpMix::puts()).ops(20))
            .fault(5_000, Fault::WipeSoftLayer);
        let r = c.run_scenario(&sc);
        // The wipe must not fire early (at the 2_000-tick phase boundary):
        // every write's completion is harvested intact, and the run
        // extends to the fault's declared time.
        assert_eq!(r.phases[0].ok, 20, "completions survive until the declared wipe tick");
        assert!(r.ticks >= 5_000, "run extends to the late fault, got {} ticks", r.ticks);
        // And the wipe did apply: soft metadata is gone afterwards.
        let mut s = c.client();
        let g = s.get(&mut c, "key:1");
        assert_eq!(s.recv(&mut c, g), Ok(None), "wiped soft layer has no metadata");
    }

    #[test]
    fn library_scenarios_are_well_formed() {
        for sc in [
            library::calm(1),
            library::churn_storm(1),
            library::partition_heal(1),
            library::cascading_crash(1),
        ] {
            assert!(!sc.phases.is_empty());
            assert!(sc.duration() >= 20_000);
            assert!(sc.phases.iter().any(|p| !p.mix.is_idle()));
        }
    }

    #[test]
    fn validate_rejects_degenerate_scenarios() {
        // Every reject is a value the builders happily construct (the
        // fuzzer's shrinker mutates through these corners) but that
        // would previously have panicked somewhere inside the engine.
        let base = || Scenario::new("bad", WorkloadKind::Uniform, 1);
        let cases: Vec<(Scenario, ScenarioError)> = vec![
            (base(), ScenarioError::NoPhases),
            (base().phase(Phase::new("p", 0)), ScenarioError::EmptyPhase { phase: 0 }),
            (
                base().phase(Phase::new("p", 10).mix(OpMix::puts()).sessions(0)),
                ScenarioError::NoSessions { phase: 0 },
            ),
            (
                base().phase(Phase::new("p", 10).mix(OpMix::puts()).depth(0)),
                ScenarioError::NoDepth { phase: 0 },
            ),
            (base().phase(Phase::new("p", 10).quantum(0)), ScenarioError::ZeroQuantum { phase: 0 }),
            (
                base().phase(Phase::new("p", 10).mix(OpMix::multi_puts(0))),
                ScenarioError::EmptyBatch { phase: 0 },
            ),
            (
                base().phase(Phase::new("p", 10)).env(5, EnvChange::DropProb(1.5)),
                ScenarioError::BadDropProb { at: 5, prob: 1.5 },
            ),
            (
                base()
                    .phase(Phase::new("p", 10))
                    .env(5, EnvChange::PartitionPersist { fraction: -0.25 }),
                ScenarioError::BadPartitionFraction { at: 5, fraction: -0.25 },
            ),
            (
                base()
                    .phase(Phase::new("p", 100))
                    .env(10, EnvChange::PartitionPersist { fraction: 0.5 })
                    .env(20, EnvChange::PartitionPersist { fraction: 0.3 }),
                ScenarioError::OverlappingPartition { first: 10, second: 20 },
            ),
        ];
        for (sc, want) in cases {
            let errs = sc.validate().expect_err("scenario should be rejected");
            assert!(errs.contains(&want), "expected {want:?} in {errs:?}");
        }
        // Degenerate workload populations are rejected wherever declared.
        let sc = Scenario::new("bad", WorkloadKind::SocialFeed { users: 0 }, 1)
            .phase(Phase::new("p", 10));
        assert!(matches!(
            sc.validate().unwrap_err()[0],
            ScenarioError::BadWorkload { phase: None, .. }
        ));
        let sc = base()
            .phase(Phase::new("p", 10).workload(WorkloadKind::ZipfKeys { keys: 0, exponent: 1.0 }));
        assert!(matches!(
            sc.validate().unwrap_err()[0],
            ScenarioError::BadWorkload { phase: Some(0), .. }
        ));
        let sc = base().phase(Phase::new("p", 10)).fault(
            0,
            Fault::ChurnBurst {
                tier: Tier::Persist,
                model: ChurnModel { failure_rate: 0.1, period: 0, ..ChurnModel::default() },
                span: 10,
            },
        );
        assert!(matches!(sc.validate().unwrap_err()[0], ScenarioError::BadChurnModel { .. }));
    }

    #[test]
    fn try_run_rejects_and_run_scenario_panics_on_invalid() {
        let mut c = settled(11);
        let sc = Scenario::new("empty", WorkloadKind::Uniform, 1);
        let errs = c.try_run_scenario(&sc).expect_err("no phases is invalid");
        assert_eq!(errs, vec![ScenarioError::NoPhases]);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut c = settled(11);
            c.run_scenario(&sc)
        }));
        assert!(caught.is_err(), "run_scenario panics on invalid scenarios");
        // Healed partition sequences and partial heals stay valid.
        let ok = Scenario::new("ok", WorkloadKind::Uniform, 1)
            .phase(Phase::new("p", 100))
            .env(10, EnvChange::PartitionPersist { fraction: 0.5 })
            .env(20, EnvChange::Heal)
            .env(30, EnvChange::PartitionPersist { fraction: 0.5 });
        assert_eq!(ok.validate(), Ok(()));
    }

    #[test]
    fn scenario_types_are_value_types() {
        let make = || {
            library::churn_storm(3)
                .env(100, EnvChange::Latency(LatencyModel::Uniform { min: 2, max: 9 }))
        };
        assert_eq!(make(), make(), "structural equality over the whole timeline");
        let mut other = make();
        other.set_faults(vec![]);
        assert_ne!(make(), other);
        // Accessors expose what the builders set.
        let sc = make();
        assert_eq!(sc.seed(), 3);
        assert_eq!(sc.workload(), WorkloadKind::SocialFeed { users: 8 });
        assert_eq!(sc.phases().len(), 4);
        assert_eq!(sc.faults().len(), 1);
        assert_eq!(sc.env_timeline().len(), 1);
        let p = &sc.phases()[0];
        assert_eq!((p.name(), p.ticks()), ("load", 6_000));
        assert_eq!((p.session_count(), p.pipeline_depth()), (3, 8));
        assert_eq!(p.op_budget(), Some(240));
        assert_eq!(p.op_mix().weight_put(), 3);
        assert_eq!(p.clone().with_ticks(7).ticks(), 7);
    }

    #[test]
    fn display_prints_a_runnable_constructor_snippet() {
        let sc = Scenario::new("repro", WorkloadKind::SocialFeed { users: 4 }, 99)
            .phase(Phase::new("load", 2_000).mix(OpMix::idle().put(3).multi_put(1)).ops(40))
            .phase(Phase::new("read", 1_500).mix(OpMix::gets()).sessions(2).depth(4))
            .fault(500, Fault::Crash { tier: Tier::Persist, count: 2 })
            .env(800, EnvChange::DropProb(0.05))
            .audited()
            .traced();
        let snippet = sc.to_string();
        assert_eq!(
            snippet,
            "Scenario::new(\"repro\", WorkloadKind::SocialFeed { users: 4 }, 99)\n    \
             .phase(Phase::new(\"load\", 2000).mix(OpMix::idle().put(3).multi_put(1)).ops(40))\n    \
             .phase(Phase::new(\"read\", 1500).mix(OpMix::idle().get(1)).sessions(2).depth(4))\n    \
             .fault(500, Fault::Crash { tier: Tier::Persist, count: 2 })\n    \
             .env(800, EnvChange::DropProb(0.05))\n    \
             .audited()\n    \
             .traced()"
        );
        // The churn/latency forms carry their full constructor paths.
        let stormy = library::churn_storm(1)
            .env(7, EnvChange::Latency(LatencyModel::Constant(3)))
            .to_string();
        assert!(stormy.contains("Fault::ChurnBurst { tier: Tier::Persist, model: ChurnModel {"));
        assert!(stormy.contains("EnvChange::Latency(LatencyModel::Constant(3))"));
    }

    #[test]
    fn phase_report_math() {
        let p = PhaseReport {
            name: "x".into(),
            ticks: 10,
            issued: 10,
            ok: 8,
            errors: ErrorCounts { timeouts: 1, partials: 1, no_entry: 0 },
            reads_found: 4,
            reads_absent: 1,
            stale_reads: 1,
            tuples_read: 0,
            latency_p50: 1.0,
            latency_p95: 2.0,
            latency_p99: 3.0,
            msgs: 0,
            contacts_mean: 0.0,
            contacts_max: 0.0,
        };
        assert_eq!(p.availability(), 0.8);
        assert_eq!(p.staleness(), 0.25);
        assert_eq!(p.errors.total(), 2);
    }
}
