//! The declarative scenario plane: one composable API for workloads,
//! faults and environment timelines.
//!
//! The paper's claims are *scenario* claims — the epidemic tuple store
//! stays dependable under massive churn, node loss and partitions while
//! tag collocation keeps request fan-out flat. A [`Scenario`] makes such
//! an experiment a seedable **value** instead of a bespoke driver loop:
//!
//! * a **workload program** — [`Phase`]s of typed op mixes
//!   ([`crate::OpMix`]) at chosen session counts, pipeline depths and
//!   target rates, executed over the PR-3 [`crate::Client`] sessions by
//!   the phase engine;
//! * a **fault schedule** — [`Fault`]s at virtual times: churn bursts
//!   (compiled from [`dd_sim::churn::ChurnSchedule`]), correlated
//!   crashes, node flaps, soft-layer wipes and rebuilds;
//! * an **environment timeline** — [`EnvChange`]s routed through the
//!   engine's scheduled network mutations ([`dd_sim::NetChange`]):
//!   latency shifts, loss spikes, partition and heal events.
//!
//! [`Cluster::run_scenario`] merges the three timelines, executes them
//! deterministically from the scenario seed, and returns a
//! [`ScenarioReport`]: per-phase availability, staleness, error taxonomy,
//! latency quantiles and message/contact accounting. Same scenario, same
//! seed — byte-identical report.
//!
//! ```
//! use dd_core::{Cluster, ClusterConfig, OpMix, Phase, Scenario, WorkloadKind};
//!
//! let mut cluster = Cluster::new(ClusterConfig::small(), 42);
//! cluster.settle();
//! let drill = Scenario::new("smoke", WorkloadKind::Uniform, 7)
//!     .phase(Phase::new("load", 2_000).mix(OpMix::puts()).ops(40))
//!     .phase(Phase::new("read", 2_000).mix(OpMix::gets()).ops(40));
//! let report = cluster.run_scenario(&drill);
//! assert_eq!(report.availability(), 1.0);
//! assert_eq!(report.phases[1].reads_found, 40);
//! ```

use crate::cluster::Cluster;
use crate::driver::{Engine, OpMix, PhaseStats};
use crate::workload::{Workload, WorkloadKind};
use dd_sim::churn::{ChurnEvent, ChurnModel, ChurnSchedule};
use dd_sim::metrics::{Reservoir, Window};
use dd_sim::rng::{mix, stream_rng};
use dd_sim::{Duration, LatencyModel, NetChange, NodeId, Time};
use rand::seq::SliceRandom;

/// Which layer of the deployment a fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The soft-state (coordinator) layer.
    Soft,
    /// The persistent-state (storage) layer.
    Persist,
}

/// One fault clause of a scenario's fault schedule. Scheduled at a
/// virtual time relative to the scenario start with [`Scenario::fault`].
#[derive(Debug, Clone)]
pub enum Fault {
    /// A churn storm: a [`ChurnSchedule`] generated from `model` over
    /// `span` ticks, mapped onto the tier's nodes — transient downs/ups
    /// plus the model's fraction of permanent departures.
    ChurnBurst {
        /// Layer the storm hits.
        tier: Tier,
        /// Session-length model the schedule is drawn from.
        model: ChurnModel,
        /// Storm duration in ticks (events beyond it are cut off).
        span: u64,
    },
    /// Correlated crash: `count` distinct nodes (scenario-seed-chosen) go
    /// down at once and stay down until revived.
    Crash {
        /// Layer the crash hits.
        tier: Tier,
        /// Number of simultaneous victims.
        count: usize,
    },
    /// Transient flap: `count` nodes go down and come back `down_for`
    /// ticks later.
    Flap {
        /// Layer the flap hits.
        tier: Tier,
        /// Number of flapping nodes.
        count: usize,
        /// Downtime of each victim.
        down_for: u64,
    },
    /// Brings every currently-dead node of the tier back up.
    ReviveAll {
        /// Layer to revive.
        tier: Tier,
    },
    /// Catastrophic soft-state loss: wipes every soft node's metadata,
    /// cache and version authority ([`Cluster::wipe_soft_layer`]).
    WipeSoftLayer,
    /// Reconstructs soft-layer metadata from a persistent-layer scan
    /// ([`Cluster::rebuild_soft_layer`]).
    RebuildSoftLayer,
}

/// One clause of a scenario's environment timeline. Scheduled with
/// [`Scenario::env`]; applied by the simulation engine at its virtual
/// time via [`dd_sim::Sim::schedule_net`].
#[derive(Debug, Clone)]
pub enum EnvChange {
    /// Replace the latency model (e.g. a slow-network episode).
    Latency(LatencyModel),
    /// Set the message-loss probability (a loss spike, or recovery).
    DropProb(f64),
    /// Partition a contiguous `fraction` of the persistent layer away
    /// from everything else (the soft layer keeps the main colour).
    PartitionPersist {
        /// Fraction of persist nodes moved behind the partition.
        fraction: f64,
    },
    /// Heal all partitions.
    Heal,
}

/// One phase of a scenario's workload program.
#[derive(Debug, Clone)]
pub struct Phase {
    pub(crate) name: String,
    pub(crate) ticks: u64,
    pub(crate) sessions: usize,
    pub(crate) depth: usize,
    pub(crate) quantum: u64,
    pub(crate) mix: OpMix,
    pub(crate) rate: Option<f64>,
    pub(crate) ops: Option<u64>,
    pub(crate) workload: Option<WorkloadKind>,
}

impl Phase {
    /// A phase named `name` lasting `ticks` of virtual time. Defaults:
    /// idle mix (no traffic), 4 sessions, depth 8, quantum 25.
    ///
    /// # Panics
    /// Panics if `ticks` is zero.
    #[must_use]
    pub fn new(name: impl Into<String>, ticks: u64) -> Self {
        assert!(ticks > 0, "a phase must last at least one tick");
        Phase {
            name: name.into(),
            ticks,
            sessions: 4,
            depth: 8,
            quantum: 25,
            mix: OpMix::idle(),
            rate: None,
            ops: None,
            workload: None,
        }
    }

    /// Builder: the op mix this phase offers.
    #[must_use]
    pub fn mix(mut self, mix: OpMix) -> Self {
        self.mix = mix;
        self
    }

    /// Builder: concurrent client sessions.
    #[must_use]
    pub fn sessions(mut self, n: usize) -> Self {
        assert!(n > 0, "a phase needs at least one session");
        self.sessions = n;
        self
    }

    /// Builder: operations each session keeps in flight.
    #[must_use]
    pub fn depth(mut self, d: usize) -> Self {
        assert!(d > 0, "pipeline depth must be positive");
        self.depth = d;
        self
    }

    /// Builder: virtual ticks pumped between harvest rounds.
    #[must_use]
    pub fn quantum(mut self, q: u64) -> Self {
        assert!(q > 0, "quantum must be positive");
        self.quantum = q;
        self
    }

    /// Builder: target offered rate in operations per tick (open-loop
    /// cap on top of the closed-loop depth bound).
    #[must_use]
    pub fn rate(mut self, ops_per_tick: f64) -> Self {
        self.rate = Some(ops_per_tick);
        self
    }

    /// Builder: total operation budget for the phase; once issued, the
    /// phase idles out its remaining ticks.
    #[must_use]
    pub fn ops(mut self, total: u64) -> Self {
        self.ops = Some(total);
        self
    }

    /// Builder: use a phase-local workload generator of this kind
    /// instead of the scenario-shared one (e.g. Zipf reads over a
    /// uniformly loaded population).
    #[must_use]
    pub fn workload(mut self, kind: WorkloadKind) -> Self {
        self.workload = Some(kind);
        self
    }
}

/// A complete experiment, as a value: workload program, fault schedule
/// and environment timeline, all replayable from `seed`.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub(crate) name: String,
    pub(crate) seed: u64,
    pub(crate) workload: WorkloadKind,
    pub(crate) phases: Vec<Phase>,
    pub(crate) faults: Vec<(u64, Fault)>,
    pub(crate) env: Vec<(u64, EnvChange)>,
    pub(crate) audited: bool,
}

impl Scenario {
    /// A scenario named `name`, generating traffic from `workload`, with
    /// all random choices (op picking, fault victims, churn draws)
    /// derived from `seed`.
    #[must_use]
    pub fn new(name: impl Into<String>, workload: WorkloadKind, seed: u64) -> Self {
        Scenario {
            name: name.into(),
            seed,
            workload,
            phases: Vec::new(),
            faults: Vec::new(),
            env: Vec::new(),
            audited: false,
        }
    }

    /// Turns on history capture and consistency checking for this
    /// scenario: the run records every operation into a
    /// [`dd_audit::History`], settles the cluster after the final drain
    /// until the live replicas stop changing, and attaches the checker
    /// suite's verdict as [`ScenarioReport::audit`]. Recording is passive
    /// — the executed run (and the rest of the report) is byte-identical
    /// to the unaudited one. Auditing assumes the scenario's writes are
    /// the cluster's only writes, so run it against a fresh cluster.
    #[must_use]
    pub fn audited(mut self) -> Self {
        self.audited = true;
        self
    }

    /// Whether this scenario runs with auditing on.
    #[must_use]
    pub fn is_audited(&self) -> bool {
        self.audited
    }

    /// Appends a workload phase (phases run back to back).
    #[must_use]
    pub fn phase(mut self, phase: Phase) -> Self {
        self.phases.push(phase);
        self
    }

    /// Schedules a fault `at` ticks after the scenario starts.
    #[must_use]
    pub fn fault(mut self, at: u64, fault: Fault) -> Self {
        self.faults.push((at, fault));
        self
    }

    /// Schedules an environment change `at` ticks after the scenario
    /// starts.
    #[must_use]
    pub fn env(mut self, at: u64, change: EnvChange) -> Self {
        self.env.push((at, change));
        self
    }

    /// The scenario's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total scheduled duration: the sum of the phase ticks.
    #[must_use]
    pub fn duration(&self) -> u64 {
        self.phases.iter().map(|p| p.ticks).sum()
    }
}

/// Error taxonomy of resolved operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ErrorCounts {
    /// Operations that exceeded [`crate::OP_TIMEOUT`] unanswered.
    pub timeouts: u64,
    /// Batched writes that ordered only part of their items.
    pub partials: u64,
    /// Operations submitted while no soft node was alive.
    pub no_entry: u64,
}

impl ErrorCounts {
    /// Total failed operations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.timeouts + self.partials + self.no_entry
    }
}

/// What one phase achieved. Every operation is attributed to the phase
/// that *issued* it, even when it resolved later (or only in the
/// scenario's final drain).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Phase name.
    pub name: String,
    /// Scheduled phase duration in ticks.
    pub ticks: u64,
    /// Operations issued.
    pub issued: u64,
    /// Operations that completed successfully (`Ok(None)` reads count:
    /// "key absent" is an available answer).
    pub ok: u64,
    /// Failed operations, by kind.
    pub errors: ErrorCounts,
    /// Reads that found a tuple.
    pub reads_found: u64,
    /// Reads that found nothing.
    pub reads_absent: u64,
    /// Reads that returned a version older than one already acknowledged
    /// to this scenario's clients.
    pub stale_reads: u64,
    /// Tuples returned by scans and tag-scoped reads.
    pub tuples_read: u64,
    /// Median completion latency of successful ops, in ticks.
    pub latency_p50: f64,
    /// 95th-percentile completion latency, in ticks.
    pub latency_p95: f64,
    /// Messages sent cluster-wide in the phase window (the last phase's
    /// window extends through the scenario's final drain).
    pub msgs: u64,
    /// Mean persist nodes contacted per tag-scoped read in the window.
    pub contacts_mean: f64,
    /// Max persist nodes contacted per tag-scoped read in the window.
    pub contacts_max: f64,
}

impl PhaseReport {
    /// Fraction of resolved operations that succeeded (1.0 for an idle
    /// phase).
    #[must_use]
    pub fn availability(&self) -> f64 {
        let resolved = self.ok + self.errors.total();
        if resolved == 0 {
            1.0
        } else {
            self.ok as f64 / resolved as f64
        }
    }

    /// Fraction of found reads that were stale (0.0 when nothing was
    /// found).
    #[must_use]
    pub fn staleness(&self) -> f64 {
        if self.reads_found == 0 {
            0.0
        } else {
            self.stale_reads as f64 / self.reads_found as f64
        }
    }
}

/// What a whole scenario achieved: the per-phase reports plus run-wide
/// aggregates. `PartialEq` so a determinism check is one assertion.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Per-phase outcomes, in program order.
    pub phases: Vec<PhaseReport>,
    /// Virtual ticks the run consumed, including the final drain.
    pub ticks: u64,
    /// Messages sent cluster-wide over the whole run.
    pub msgs: u64,
    /// Median completion latency across all phases, in ticks.
    pub latency_p50: f64,
    /// 95th-percentile completion latency across all phases.
    pub latency_p95: f64,
    /// The consistency-checker verdict, when the scenario ran
    /// [`Scenario::audited`]; `None` otherwise.
    pub audit: Option<dd_audit::AuditReport>,
}

impl ScenarioReport {
    /// Run-wide availability: successes over resolved operations.
    #[must_use]
    pub fn availability(&self) -> f64 {
        let ok: u64 = self.phases.iter().map(|p| p.ok).sum();
        let resolved: u64 = ok + self.errors().total();
        if resolved == 0 {
            1.0
        } else {
            ok as f64 / resolved as f64
        }
    }

    /// Run-wide staleness: stale reads over found reads.
    #[must_use]
    pub fn staleness(&self) -> f64 {
        let found: u64 = self.phases.iter().map(|p| p.reads_found).sum();
        let stale: u64 = self.phases.iter().map(|p| p.stale_reads).sum();
        if found == 0 {
            0.0
        } else {
            stale as f64 / found as f64
        }
    }

    /// Run-wide error taxonomy.
    #[must_use]
    pub fn errors(&self) -> ErrorCounts {
        let mut total = ErrorCounts::default();
        for p in &self.phases {
            total.timeouts += p.errors.timeouts;
            total.partials += p.errors.partials;
            total.no_entry += p.errors.no_entry;
        }
        total
    }

    /// Total operations issued.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.phases.iter().map(|p| p.issued).sum()
    }
}

/// A wipe/rebuild is harness-level (it reaches into node state), so it
/// cannot ride the simulator's event queue; the run loop applies these
/// between pump quanta, cut exactly at the event time.
#[derive(Debug, Clone, Copy)]
enum HarnessOp {
    Wipe,
    Rebuild,
}

impl Cluster {
    /// Executes `scenario` against this cluster: merges its workload
    /// program, fault schedule and environment timeline into one
    /// deterministic run and reports what happened. The run starts at
    /// the current virtual time (callers usually [`Cluster::settle`]
    /// first) and ends when every phase has elapsed and every issued
    /// operation has resolved.
    pub fn run_scenario(&mut self, scenario: &Scenario) -> ScenarioReport {
        let start = self.sim.now();
        let msgs_at_start = self.sim.metrics().counter("net.sent");
        if scenario.audited {
            self.begin_audit();
        }
        let harness = self.schedule_faults(scenario, start);
        self.schedule_env(scenario, start);

        let mut engine = Engine::new(stream_rng(scenario.seed ^ 0x0E15_0E15, 0));
        let mut shared = Workload::new(scenario.workload, mix(scenario.seed, 0x3057));
        let mut stats: Vec<PhaseStats> =
            scenario.phases.iter().map(|_| PhaseStats::default()).collect();
        // Per-phase net.sent at phase start; the windows are cut after
        // the final drain so the last phase's accounting includes what
        // its stragglers sent. Contact accounting rides the metrics
        // sink's O(1) windows: taking the window at each phase boundary
        // yields the finished phase's exact count/sum/max without ever
        // slicing (or retaining) an unbounded series.
        let mut starts: Vec<u64> = Vec::with_capacity(scenario.phases.len());
        let mut contact_windows: Vec<Window> = Vec::with_capacity(scenario.phases.len());
        let mut next_harness = 0usize;

        for (pi, phase) in scenario.phases.iter().enumerate() {
            self.set_audit_phase(Some(pi as u32));
            let phase_start = self.sim.now();
            let phase_end = phase_start + Duration(phase.ticks);
            starts.push(self.sim.metrics().counter("net.sent"));
            // The take at phase 0 discards pre-scenario accumulation;
            // every later take closes out the previous phase's window.
            let w = self.sim.metrics_mut().take_window("multi_get.contacted_nodes");
            if pi > 0 {
                contact_windows.push(w);
            }
            if !phase.mix.is_idle() {
                engine.open_sessions(self, phase.sessions);
            }
            let mut local = phase
                .workload
                .map(|kind| Workload::new(kind, mix(scenario.seed, 0x9100 + pi as u64)));
            loop {
                while next_harness < harness.len() && harness[next_harness].0 <= self.sim.now() {
                    self.apply_harness(harness[next_harness].1);
                    next_harness += 1;
                }
                let now = self.sim.now();
                if now >= phase_end {
                    break;
                }
                let budget = phase_budget(phase, &stats[pi], now.since(phase_start).0);
                if budget > 0 {
                    let workload = local.as_mut().unwrap_or(&mut shared);
                    stats[pi].issued +=
                        engine.refill(self, workload, pi, &phase.mix, phase.depth, budget);
                }
                let mut stop = phase_end;
                if next_harness < harness.len() {
                    stop = stop.min(harness[next_harness].0);
                }
                let step = stop.since(now).0.min(phase.quantum).max(1);
                self.pump(step);
                engine.harvest(self, &mut stats);
            }
        }

        // Final drain: resolve every straggler (bounded — the client
        // retires anything older than OP_TIMEOUT) while still firing any
        // harness fault scheduled at or past the last phase boundary at
        // its declared tick, not early.
        self.set_audit_phase(None);
        while engine.in_flight() > 0 || next_harness < harness.len() {
            while next_harness < harness.len() && harness[next_harness].0 <= self.sim.now() {
                self.apply_harness(harness[next_harness].1);
                next_harness += 1;
            }
            if engine.in_flight() == 0 && next_harness >= harness.len() {
                break;
            }
            let mut step = 50;
            if next_harness < harness.len() {
                step = step.min(harness[next_harness].0.since(self.sim.now()).0);
            }
            self.pump(step.max(1));
            engine.harvest(self, &mut stats);
        }

        // Cut the per-phase message/contact windows: each phase ends
        // where the next begins; the last extends through the drain.
        // Everything the *report core* measures — ticks, messages,
        // contact windows — is captured here, before the audit's
        // convergence settling, so the core of an audited report equals
        // the unaudited one exactly.
        let msgs_end = self.sim.metrics().counter("net.sent");
        contact_windows.push(self.sim.metrics_mut().take_window("multi_get.contacted_nodes"));
        let run_ticks = self.sim.now().since(start).0;
        let run_msgs = msgs_end - msgs_at_start;
        let audit = scenario.audited.then(|| self.finish_audit());
        let mut phases = Vec::with_capacity(scenario.phases.len());
        let mut all_latencies = Reservoir::new();
        for (pi, (phase, st)) in scenario.phases.iter().zip(&stats).enumerate() {
            let msgs_start = starts[pi];
            let next_msgs = starts.get(pi + 1).copied().unwrap_or(msgs_end);
            let contacts = contact_windows[pi];
            let q = st.latencies.quantiles(&[0.5, 0.95]);
            all_latencies.merge(&st.latencies);
            phases.push(PhaseReport {
                name: phase.name.clone(),
                ticks: phase.ticks,
                issued: st.issued,
                ok: st.ok,
                errors: ErrorCounts {
                    timeouts: st.timeouts,
                    partials: st.partials,
                    no_entry: st.no_entry,
                },
                reads_found: st.reads_found,
                reads_absent: st.reads_absent,
                stale_reads: st.stale_reads,
                tuples_read: st.tuples_read,
                latency_p50: q[0].unwrap_or(0.0),
                latency_p95: q[1].unwrap_or(0.0),
                msgs: next_msgs - msgs_start,
                contacts_mean: contacts.mean(),
                contacts_max: contacts.max,
            });
        }
        let q = all_latencies.quantiles(&[0.5, 0.95]);
        ScenarioReport {
            name: scenario.name.clone(),
            phases,
            ticks: run_ticks,
            msgs: run_msgs,
            latency_p50: q[0].unwrap_or(0.0),
            latency_p95: q[1].unwrap_or(0.0),
            audit,
        }
    }

    /// Closes out an audited run: takes the recorded history, settles the
    /// cluster until the live-replica snapshot agrees per key (bounded at
    /// [`MAX_AUDIT_SETTLES`] rounds — repair is gossip, so convergence
    /// takes a few random pairings), and runs the checker suite.
    fn finish_audit(&mut self) -> dd_audit::AuditReport {
        let history = self.end_audit().expect("audited run installed a recorder");
        let mut snapshot = self.audit_snapshot();
        for _ in 0..MAX_AUDIT_SETTLES {
            if dd_audit::snapshot_converged(&snapshot) {
                break;
            }
            self.settle();
            snapshot = self.audit_snapshot();
        }
        dd_audit::check(&history, &snapshot)
    }

    fn tier_ids(&self, tier: Tier) -> Vec<NodeId> {
        match tier {
            Tier::Soft => self.soft_ids().to_vec(),
            Tier::Persist => self.persist_ids().to_vec(),
        }
    }

    /// Compiles the fault schedule: simulator-schedulable faults are
    /// queued on the engine up front; wipe/rebuild ops come back as a
    /// time-sorted harness list.
    fn schedule_faults(&mut self, scenario: &Scenario, start: Time) -> Vec<(Time, HarnessOp)> {
        let mut victims_rng = stream_rng(scenario.seed ^ 0xFA01_7FA0, 1);
        let mut harness: Vec<(Time, HarnessOp)> = Vec::new();
        for (idx, (at, fault)) in scenario.faults.iter().enumerate() {
            let t = start + Duration(*at);
            match fault {
                Fault::ChurnBurst { tier, model, span } => {
                    let ids = self.tier_ids(*tier);
                    let schedule = ChurnSchedule::generate(
                        model,
                        ids.len() as u64,
                        Time(*span),
                        mix(scenario.seed ^ 0xC4C4, idx as u64),
                    );
                    for ev in schedule.events() {
                        let id = ids[ev.node().0 as usize];
                        let when = t + Duration(ev.at().0);
                        match ev {
                            ChurnEvent::Down(..) | ChurnEvent::Leave(..) => {
                                self.sim.schedule_down(when, id);
                            }
                            ChurnEvent::Up(..) => self.sim.schedule_up(when, id),
                        }
                    }
                }
                Fault::Crash { tier, count } => {
                    for id in self.pick_victims(*tier, *count, &mut victims_rng) {
                        self.sim.schedule_down(t, id);
                    }
                }
                Fault::Flap { tier, count, down_for } => {
                    for id in self.pick_victims(*tier, *count, &mut victims_rng) {
                        self.sim.schedule_down(t, id);
                        self.sim.schedule_up(t + Duration(*down_for), id);
                    }
                }
                Fault::ReviveAll { tier } => {
                    for id in self.tier_ids(*tier) {
                        // Up events are no-ops on nodes already alive.
                        self.sim.schedule_up(t, id);
                    }
                }
                Fault::WipeSoftLayer => harness.push((t, HarnessOp::Wipe)),
                Fault::RebuildSoftLayer => harness.push((t, HarnessOp::Rebuild)),
            }
        }
        harness.sort_by_key(|&(t, _)| t);
        harness
    }

    fn pick_victims(
        &self,
        tier: Tier,
        count: usize,
        rng: &mut rand::rngs::SmallRng,
    ) -> Vec<NodeId> {
        let mut ids = self.tier_ids(tier);
        ids.shuffle(rng);
        ids.truncate(count);
        ids
    }

    fn schedule_env(&mut self, scenario: &Scenario, start: Time) {
        for (at, change) in &scenario.env {
            let t = start + Duration(*at);
            match change {
                EnvChange::Latency(latency) => {
                    self.sim.schedule_net(t, NetChange::Latency(*latency));
                }
                EnvChange::DropProb(p) => self.sim.schedule_net(t, NetChange::DropProb(*p)),
                EnvChange::PartitionPersist { fraction } => {
                    let ids = self.persist_ids().to_vec();
                    let dark = ((fraction.clamp(0.0, 1.0) * ids.len() as f64).round() as usize)
                        .min(ids.len());
                    for (i, id) in ids.into_iter().enumerate() {
                        let colour = u32::from(i < dark);
                        self.sim.schedule_net(t, NetChange::Partition(id, colour));
                    }
                }
                EnvChange::Heal => self.sim.schedule_net(t, NetChange::Heal),
            }
        }
    }

    fn apply_harness(&mut self, op: HarnessOp) {
        match op {
            HarnessOp::Wipe => self.wipe_soft_layer(),
            HarnessOp::Rebuild => self.rebuild_soft_layer(),
        }
    }
}

/// Upper bound on the settle rounds an audited run spends waiting for
/// the live replicas to agree before the convergence check. Each round is
/// one [`Cluster::settle`] horizon (at least a full repair period), and
/// anti-entropy pairs nodes randomly, so agreement normally lands within
/// a handful of rounds; the bound only stops a pathological run from
/// settling forever.
const MAX_AUDIT_SETTLES: u32 = 32;

/// How many more operations the phase may issue right now, given its op
/// budget and target rate.
fn phase_budget(phase: &Phase, stats: &PhaseStats, elapsed: u64) -> u64 {
    let mut budget = u64::MAX;
    if let Some(cap) = phase.ops {
        budget = budget.min(cap.saturating_sub(stats.issued));
    }
    if let Some(rate) = phase.rate {
        let allowed = (rate * (elapsed + 1) as f64).ceil() as u64;
        budget = budget.min(allowed.saturating_sub(stats.issued));
    }
    budget
}

/// The scenario library: the dependability drills the benches, tests and
/// examples share (and E15 sweeps against placements). All of them load
/// a social-feed dataset, serve mixed traffic while the fault/environment
/// timeline plays out, then read the dataset back.
pub mod library {
    use super::*;

    const LOAD: u64 = 6_000;
    const SERVE: u64 = 10_000;
    const REPAIR: u64 = 10_000;
    const READBACK: u64 = 8_000;

    fn load_phase() -> Phase {
        Phase::new("load", LOAD)
            .mix(OpMix::idle().put(3).multi_put(1).batch(4))
            .sessions(3)
            .depth(8)
            .ops(240)
    }

    fn serve_phase() -> Phase {
        Phase::new("serve", SERVE)
            .mix(OpMix::idle().put(1).get(5).multi_get(1))
            .sessions(4)
            .depth(8)
            .ops(420)
    }

    fn readback_phase() -> Phase {
        Phase::new("readback", READBACK)
            .mix(OpMix::idle().get(4).multi_get(1))
            .sessions(2)
            .depth(4)
            .ops(200)
    }

    /// No faults, no environment events: the baseline every drill is
    /// compared against.
    #[must_use]
    pub fn calm(seed: u64) -> Scenario {
        Scenario::new("calm", WorkloadKind::SocialFeed { users: 8 }, seed)
            .phase(load_phase())
            .phase(serve_phase())
            .phase(readback_phase())
    }

    /// A churn storm rages across the persistent layer for the whole
    /// serve window (§III-A: transient failures dominate, a few
    /// permanent), then a repair window, then read-back.
    #[must_use]
    pub fn churn_storm(seed: u64) -> Scenario {
        let model =
            ChurnModel::default().failure_rate(0.08).mean_downtime(4_000).permanent_prob(0.05);
        Scenario::new("churn-storm", WorkloadKind::SocialFeed { users: 8 }, seed)
            .phase(load_phase())
            .phase(serve_phase())
            .phase(Phase::new("repair", REPAIR))
            .phase(readback_phase())
            .fault(LOAD, Fault::ChurnBurst { tier: Tier::Persist, model, span: SERVE })
    }

    /// Half the persistent layer is partitioned away during the serve
    /// window, then the partition heals and repair catches up.
    #[must_use]
    pub fn partition_heal(seed: u64) -> Scenario {
        Scenario::new("partition-heal", WorkloadKind::SocialFeed { users: 8 }, seed)
            .phase(load_phase())
            .phase(serve_phase())
            .phase(Phase::new("repair", REPAIR))
            .phase(readback_phase())
            .env(LOAD, EnvChange::PartitionPersist { fraction: 0.5 })
            .env(LOAD + SERVE, EnvChange::Heal)
    }

    /// Three correlated crash waves roll through the persistent layer
    /// mid-serve; everything revives at the start of the repair window.
    #[must_use]
    pub fn cascading_crash(seed: u64) -> Scenario {
        Scenario::new("cascading-crash", WorkloadKind::SocialFeed { users: 8 }, seed)
            .phase(load_phase())
            .phase(serve_phase())
            .phase(Phase::new("repair", REPAIR))
            .phase(readback_phase())
            .fault(LOAD + 1_000, Fault::Crash { tier: Tier::Persist, count: 4 })
            .fault(LOAD + 3_000, Fault::Crash { tier: Tier::Persist, count: 4 })
            .fault(LOAD + 5_000, Fault::Crash { tier: Tier::Persist, count: 4 })
            .fault(LOAD + SERVE, Fault::ReviveAll { tier: Tier::Persist })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;

    fn settled(seed: u64) -> Cluster {
        let mut c = Cluster::new(ClusterConfig::small(), seed);
        c.settle();
        c
    }

    #[test]
    fn a_two_phase_scenario_loads_and_reads_back() {
        let mut c = settled(1);
        let sc = Scenario::new("roundtrip", WorkloadKind::Uniform, 5)
            .phase(Phase::new("load", 3_000).mix(OpMix::puts()).ops(50))
            .phase(Phase::new("settle", 2_000))
            .phase(Phase::new("read", 3_000).mix(OpMix::gets()).ops(50));
        let r = c.run_scenario(&sc);
        assert_eq!(r.phases.len(), 3);
        assert_eq!(r.phases[0].issued, 50);
        assert_eq!(r.phases[0].ok, 50, "all writes acknowledged");
        assert_eq!(r.phases[1].issued, 0, "idle phase offers nothing");
        assert_eq!(r.phases[2].reads_found, 50, "every read finds its key");
        assert_eq!(r.availability(), 1.0);
        assert_eq!(r.errors(), ErrorCounts::default());
        assert!(r.latency_p50 > 0.0 && r.latency_p95 >= r.latency_p50);
        assert!(r.msgs > 0 && r.ticks >= sc.duration());
    }

    #[test]
    fn rate_caps_spread_issuance_across_the_phase() {
        let mut c = settled(2);
        let sc = Scenario::new("paced", WorkloadKind::Uniform, 6)
            .phase(Phase::new("write", 10_000).mix(OpMix::puts()).sessions(1).rate(0.002));
        let r = c.run_scenario(&sc);
        // 0.002 ops/tick over 10k ticks = 20 ops, pipeline-independent.
        assert_eq!(r.phases[0].issued, 20);
        assert_eq!(r.phases[0].ok, 20);
    }

    #[test]
    fn crash_fault_drops_live_nodes_and_revive_restores_them() {
        let mut c = settled(3);
        let persist_n = c.persist_ids().len();
        let sc = Scenario::new("crashes", WorkloadKind::Uniform, 7)
            .phase(Phase::new("quiet", 2_000))
            .fault(100, Fault::Crash { tier: Tier::Persist, count: 5 })
            .fault(1_000, Fault::ReviveAll { tier: Tier::Persist });
        // Probe liveness mid-run by splitting the scenario at the fault
        // times: run it, then check the sim's churn accounting.
        let _ = c.run_scenario(&sc);
        assert_eq!(c.sim.metrics().counter("churn.down"), 5);
        assert_eq!(c.sim.metrics().counter("churn.up"), 5);
        assert_eq!(c.sim.alive_count(), persist_n + c.soft_ids().len());
    }

    #[test]
    fn wipe_without_rebuild_loses_reads_rebuild_restores_them() {
        let run = |rebuild: bool| {
            let mut c = settled(4);
            let mut sc = Scenario::new("wipe", WorkloadKind::Uniform, 9)
                .phase(Phase::new("load", 3_000).mix(OpMix::puts()).ops(30))
                .phase(Phase::new("settle", 3_000))
                .phase(Phase::new("read", 3_000).mix(OpMix::gets()).ops(30))
                .fault(6_000, Fault::WipeSoftLayer);
            if rebuild {
                sc = sc.fault(6_000, Fault::RebuildSoftLayer);
            }
            let r = c.run_scenario(&sc);
            (r.phases[2].reads_found, r.phases[2].reads_absent)
        };
        let (found_wiped, absent_wiped) = run(false);
        assert_eq!(found_wiped, 0, "wiped metadata answers nothing");
        assert_eq!(absent_wiped, 30);
        let (found_rebuilt, _) = run(true);
        assert_eq!(found_rebuilt, 30, "reconstruction recovers every key");
    }

    #[test]
    fn a_fault_past_the_last_phase_fires_at_its_declared_tick() {
        let mut c = settled(7);
        let sc = Scenario::new("late-wipe", WorkloadKind::Uniform, 15)
            .phase(Phase::new("load", 2_000).mix(OpMix::puts()).ops(20))
            .fault(5_000, Fault::WipeSoftLayer);
        let r = c.run_scenario(&sc);
        // The wipe must not fire early (at the 2_000-tick phase boundary):
        // every write's completion is harvested intact, and the run
        // extends to the fault's declared time.
        assert_eq!(r.phases[0].ok, 20, "completions survive until the declared wipe tick");
        assert!(r.ticks >= 5_000, "run extends to the late fault, got {} ticks", r.ticks);
        // And the wipe did apply: soft metadata is gone afterwards.
        let mut s = c.client();
        let g = s.get(&mut c, "key:1");
        assert_eq!(s.recv(&mut c, g), Ok(None), "wiped soft layer has no metadata");
    }

    #[test]
    fn library_scenarios_are_well_formed() {
        for sc in [
            library::calm(1),
            library::churn_storm(1),
            library::partition_heal(1),
            library::cascading_crash(1),
        ] {
            assert!(!sc.phases.is_empty());
            assert!(sc.duration() >= 20_000);
            assert!(sc.phases.iter().any(|p| !p.mix.is_idle()));
        }
    }

    #[test]
    fn phase_report_math() {
        let p = PhaseReport {
            name: "x".into(),
            ticks: 10,
            issued: 10,
            ok: 8,
            errors: ErrorCounts { timeouts: 1, partials: 1, no_entry: 0 },
            reads_found: 4,
            reads_absent: 1,
            stale_reads: 1,
            tuples_read: 0,
            latency_p50: 1.0,
            latency_p95: 2.0,
            msgs: 0,
            contacts_mean: 0.0,
            contacts_max: 0.0,
        };
        assert_eq!(p.availability(), 0.8);
        assert_eq!(p.staleness(), 0.25);
        assert_eq!(p.errors.total(), 2);
    }
}
