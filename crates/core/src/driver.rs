//! The phase engine: N pipelined sessions × depth-D, typed op mixes.
//!
//! This is the execution core of the scenario plane
//! ([`crate::scenario`]). A workload phase declares *what* traffic to
//! offer — an [`OpMix`] of typed operations, a session count, a pipeline
//! depth, optionally a target rate — and the engine turns that into
//! [`crate::Client`] calls: it keeps every session's pipeline full,
//! pumps virtual time, batch-harvests completions with
//! [`crate::Client::drain`], and attributes every outcome (success,
//! error taxonomy, staleness, latency) to the phase that issued it.
//! Depth 1 reproduces the old lock-step client; large depths overlap
//! round-trips — the ops/tick scaling experiment E14 sweeps.

use crate::client::{Client, Completion, OpError};
use crate::cluster::Cluster;
use crate::tuple::TupleSpec;
use crate::workload::Workload;
use dd_audit::VersionOracle;
use dd_sim::metrics::Reservoir;
use dd_sim::Time;
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::HashMap;

/// A weighted mix of typed operations — the *shape* of one workload
/// phase's traffic. Weights are relative; an all-zero mix is idle (the
/// phase just lets protocols run, e.g. a repair window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    put: u32,
    get: u32,
    delete: u32,
    scan: u32,
    multi_put: u32,
    multi_get: u32,
    batch: usize,
}

impl OpMix {
    /// The idle mix: no operations, the phase only advances time.
    #[must_use]
    pub fn idle() -> Self {
        OpMix { put: 0, get: 0, delete: 0, scan: 0, multi_put: 0, multi_get: 0, batch: 4 }
    }

    /// Pure single writes.
    #[must_use]
    pub fn puts() -> Self {
        Self::idle().put(1)
    }

    /// Pure single reads.
    #[must_use]
    pub fn gets() -> Self {
        Self::idle().get(1)
    }

    /// Pure batched writes of `batch` items each.
    #[must_use]
    pub fn multi_puts(batch: usize) -> Self {
        Self::idle().multi_put(1).batch(batch)
    }

    /// Pure tag-scoped reads.
    #[must_use]
    pub fn multi_gets() -> Self {
        Self::idle().multi_get(1)
    }

    /// Builder: weight of single writes.
    #[must_use]
    pub fn put(mut self, w: u32) -> Self {
        self.put = w;
        self
    }

    /// Builder: weight of single reads.
    #[must_use]
    pub fn get(mut self, w: u32) -> Self {
        self.get = w;
        self
    }

    /// Builder: weight of deletes.
    #[must_use]
    pub fn delete(mut self, w: u32) -> Self {
        self.delete = w;
        self
    }

    /// Builder: weight of attribute range scans.
    #[must_use]
    pub fn scan(mut self, w: u32) -> Self {
        self.scan = w;
        self
    }

    /// Builder: weight of batched writes.
    #[must_use]
    pub fn multi_put(mut self, w: u32) -> Self {
        self.multi_put = w;
        self
    }

    /// Builder: weight of tag-scoped reads.
    #[must_use]
    pub fn multi_get(mut self, w: u32) -> Self {
        self.multi_get = w;
        self
    }

    /// Builder: items per batched write.
    #[must_use]
    pub fn batch(mut self, items: usize) -> Self {
        self.batch = items;
        self
    }

    /// Whether this mix issues anything at all.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.total() == 0
    }

    /// The weight of single writes.
    #[must_use]
    pub fn weight_put(&self) -> u32 {
        self.put
    }

    /// The weight of single reads.
    #[must_use]
    pub fn weight_get(&self) -> u32 {
        self.get
    }

    /// The weight of deletes.
    #[must_use]
    pub fn weight_delete(&self) -> u32 {
        self.delete
    }

    /// The weight of attribute range scans.
    #[must_use]
    pub fn weight_scan(&self) -> u32 {
        self.scan
    }

    /// The weight of batched writes.
    #[must_use]
    pub fn weight_multi_put(&self) -> u32 {
        self.multi_put
    }

    /// The weight of tag-scoped reads.
    #[must_use]
    pub fn weight_multi_get(&self) -> u32 {
        self.multi_get
    }

    /// Items per batched write.
    #[must_use]
    pub fn batch_items(&self) -> usize {
        self.batch
    }

    fn total(&self) -> u64 {
        u64::from(self.put)
            + u64::from(self.get)
            + u64::from(self.delete)
            + u64::from(self.scan)
            + u64::from(self.multi_put)
            + u64::from(self.multi_get)
    }

    /// Draws the next op kind proportionally to the weights.
    fn pick(&self, rng: &mut SmallRng) -> Option<MixOp> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let mut roll = rng.gen_range(0..total);
        for (weight, op) in [
            (u64::from(self.put), MixOp::Put),
            (u64::from(self.get), MixOp::Get),
            (u64::from(self.delete), MixOp::Delete),
            (u64::from(self.scan), MixOp::Scan),
            (u64::from(self.multi_put), MixOp::MultiPut),
            (u64::from(self.multi_get), MixOp::MultiGet),
        ] {
            if roll < weight {
                return Some(op);
            }
            roll -= weight;
        }
        unreachable!("roll bounded by the weight total")
    }
}

#[derive(Debug, Clone, Copy)]
enum MixOp {
    Put,
    Get,
    Delete,
    Scan,
    MultiPut,
    MultiGet,
}

/// Raw per-phase accumulators, folded into a
/// [`crate::scenario::PhaseReport`] when the scenario ends.
#[derive(Debug, Clone, Default)]
pub(crate) struct PhaseStats {
    pub issued: u64,
    pub ok: u64,
    pub timeouts: u64,
    pub partials: u64,
    pub no_entry: u64,
    pub reads_found: u64,
    pub reads_absent: u64,
    pub stale_reads: u64,
    pub tuples_read: u64,
    /// Completion latency of successful ops, in virtual ticks — bounded
    /// streaming aggregates plus retained samples for the quantiles
    /// (exact until a phase outgrows the reservoir cap).
    pub latencies: Reservoir,
}

/// One outstanding operation, as the engine tracks it.
#[derive(Debug, Clone)]
struct Inflight {
    phase: usize,
    issued: Time,
    /// The key a put/delete acknowledges or a get resolves (staleness
    /// oracle); `None` for scans, aggregates and multi-ops.
    key: Option<String>,
}

/// The session pool plus the bookkeeping that turns completions into
/// phase-attributed statistics. Sessions opened for earlier phases keep
/// being drained, so an op always lands in the stats of the phase that
/// issued it even when it completes later.
pub(crate) struct Engine {
    sessions: Vec<Client>,
    /// Sessions the *current* phase issues into: `sessions[active..]`.
    active: usize,
    inflight: HashMap<u64, Inflight>,
    /// Latest acknowledged version per key — the staleness oracle, shared
    /// with the audit plane's convergence checker ([`dd_audit::VersionOracle`]).
    oracle: VersionOracle,
    rng: SmallRng,
}

impl Engine {
    pub(crate) fn new(rng: SmallRng) -> Self {
        Engine {
            sessions: Vec::new(),
            active: 0,
            inflight: HashMap::new(),
            oracle: VersionOracle::new(),
            rng,
        }
    }

    /// Opens `n` fresh sessions and makes them the active set.
    pub(crate) fn open_sessions(&mut self, cluster: &mut Cluster, n: usize) {
        self.active = self.sessions.len();
        for _ in 0..n {
            self.sessions.push(cluster.client());
        }
    }

    /// Operations submitted and not yet resolved, across all sessions.
    pub(crate) fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Tops up every active session's pipeline to `depth`, issuing at
    /// most `budget` operations drawn from `mix`. Returns how many were
    /// issued.
    pub(crate) fn refill(
        &mut self,
        cluster: &mut Cluster,
        workload: &mut Workload,
        phase: usize,
        mix: &OpMix,
        depth: usize,
        mut budget: u64,
    ) -> u64 {
        if mix.is_idle() {
            return 0;
        }
        let mut issued = 0;
        for idx in self.active..self.sessions.len() {
            while budget > 0 && self.sessions[idx].in_flight() < depth {
                let Some(op) = mix.pick(&mut self.rng) else { return issued };
                let now = cluster.sim.now();
                let session = &mut self.sessions[idx];
                let (req, key) = match op {
                    MixOp::Put => {
                        let put = workload.next_put();
                        let key = put.key.clone();
                        let p =
                            session.put(cluster, put.key, put.value, put.attr, put.tag.as_deref());
                        (p.req(), Some(key))
                    }
                    MixOp::Get => {
                        let key = workload.next_read_key();
                        let p = session.get(cluster, key.clone());
                        (p.req(), Some(key))
                    }
                    MixOp::Delete => {
                        let key = workload.next_read_key();
                        let p = session.delete(cluster, key.clone());
                        (p.req(), Some(key))
                    }
                    MixOp::Scan => {
                        let (lo, hi) = workload.next_scan_range();
                        (session.scan(cluster, lo, hi).req(), None)
                    }
                    MixOp::MultiPut => {
                        let m = workload.next_multi_put(mix.batch);
                        let items = m.items.into_iter().map(TupleSpec::from);
                        (session.multi_put(cluster, items).req(), None)
                    }
                    MixOp::MultiGet => {
                        let tag = workload.next_read_tag();
                        (session.multi_get(cluster, &tag).req(), None)
                    }
                };
                self.inflight.insert(req, Inflight { phase, issued: now, key });
                budget -= 1;
                issued += 1;
            }
        }
        issued
    }

    /// Drains every session and folds each resolved op into the stats of
    /// the phase that issued it.
    pub(crate) fn harvest(&mut self, cluster: &mut Cluster, stats: &mut [PhaseStats]) {
        let now = cluster.sim.now();
        for session in &mut self.sessions {
            for (req, completion) in session.drain(cluster) {
                let Some(op) = self.inflight.remove(&req) else { continue };
                let st = &mut stats[op.phase];
                if completion.is_ok() {
                    st.ok += 1;
                    st.latencies.observe(now.since(op.issued).0 as f64);
                } else {
                    match completion.err() {
                        Some(OpError::Timeout { .. }) => st.timeouts += 1,
                        Some(OpError::PartialResult { .. }) => st.partials += 1,
                        Some(OpError::NoLiveEntry) => st.no_entry += 1,
                        // Drain never yields AlreadyHarvested for its own
                        // session; count defensively as a timeout.
                        Some(OpError::AlreadyHarvested) | None => st.timeouts += 1,
                    }
                }
                match completion {
                    Completion::Put(Ok(status)) | Completion::Delete(Ok(status)) => {
                        if let Some(key) = op.key {
                            self.oracle.note_ack(&key, status.version);
                        }
                    }
                    Completion::Get(Ok(Some(tuple))) => {
                        st.reads_found += 1;
                        if op.key.is_some_and(|k| self.oracle.is_stale(&k, tuple.version)) {
                            st.stale_reads += 1;
                        }
                    }
                    Completion::Get(Ok(None)) => st.reads_absent += 1,
                    Completion::Scan(Ok(items)) => st.tuples_read += items.len() as u64,
                    Completion::MultiGet(Ok(feed)) => st.tuples_read += feed.items.len() as u64,
                    _ => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn idle_mix_picks_nothing() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(OpMix::idle().is_idle());
        assert_eq!(OpMix::idle().pick(&mut rng).map(|_| ()), None);
    }

    #[test]
    fn weighted_mix_tracks_its_weights() {
        let mix = OpMix::idle().put(1).get(3);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut gets = 0u32;
        let n = 4_000;
        for _ in 0..n {
            match mix.pick(&mut rng).expect("non-idle") {
                MixOp::Get => gets += 1,
                MixOp::Put => {}
                other => panic!("unweighted op drawn: {other:?}"),
            }
        }
        let frac = f64::from(gets) / f64::from(n);
        assert!((frac - 0.75).abs() < 0.03, "get fraction {frac}");
    }

    #[test]
    fn single_weight_mixes_are_pure() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            assert!(matches!(OpMix::puts().pick(&mut rng), Some(MixOp::Put)));
            assert!(matches!(OpMix::multi_gets().pick(&mut rng), Some(MixOp::MultiGet)));
        }
        assert_eq!(OpMix::multi_puts(7).batch, 7);
    }
}
