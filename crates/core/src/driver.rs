//! Closed-loop multi-client driver: N sessions × depth-D pipelines.
//!
//! The throughput harness behind experiment E14. Each of `sessions`
//! [`Client`]s keeps up to `depth` operations outstanding; the driver
//! alternates refilling the pipelines from a [`Workload`] with pumping
//! virtual time and batch-harvesting completions. Depth 1 is the old
//! lock-step client (one round-trip per operation per session); larger
//! depths overlap round-trips, which is where the ops/tick scaling the
//! paper's million-user workloads need comes from.

use crate::client::{Client, Completion};
use crate::cluster::Cluster;
use crate::workload::Workload;

/// Pipeline shape for one closed-loop run.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Concurrent client sessions.
    pub sessions: usize,
    /// Operations each session keeps in flight.
    pub depth: usize,
    /// Total operations to complete across all sessions.
    pub total_ops: u64,
    /// Virtual ticks pumped between harvest rounds.
    pub quantum: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig { sessions: 4, depth: 1, total_ops: 400, quantum: 5 }
    }
}

/// What a closed-loop run achieved.
#[derive(Debug, Clone, Copy)]
pub struct PipelineReport {
    /// Operations that completed successfully.
    pub completed: u64,
    /// Operations that failed (timeout, partial, no entry).
    pub errors: u64,
    /// Virtual ticks the run consumed.
    pub ticks: u64,
}

impl PipelineReport {
    /// Successful operations per virtual tick — the throughput measure
    /// E14 sweeps against pipeline depth.
    #[must_use]
    pub fn ops_per_tick(&self) -> f64 {
        if self.ticks == 0 {
            return 0.0;
        }
        self.completed as f64 / self.ticks as f64
    }
}

/// Runs the closed loop: writes from `workload` through `sessions`
/// pipelined [`Client`]s until `total_ops` operations have completed
/// (or failed), harvesting with [`Client::drain`] after every
/// [`PipelineConfig::quantum`] ticks of virtual time.
#[must_use]
pub fn drive_pipeline(
    cluster: &mut Cluster,
    workload: &mut Workload,
    config: PipelineConfig,
) -> PipelineReport {
    assert!(config.sessions > 0 && config.depth > 0, "pipeline needs sessions and depth");
    let mut sessions: Vec<Client> = (0..config.sessions).map(|_| cluster.client()).collect();
    let start = cluster.sim.now();
    let mut issued = 0u64;
    let mut completed = 0u64;
    let mut errors = 0u64;
    while completed + errors < config.total_ops {
        for session in &mut sessions {
            while session.in_flight() < config.depth && issued < config.total_ops {
                let op = workload.next_put();
                let _ = session.put(cluster, op.key, op.value, op.attr, op.tag.as_deref());
                issued += 1;
            }
        }
        cluster.pump(config.quantum);
        for session in &mut sessions {
            for (_req, completion) in session.drain(cluster) {
                match completion {
                    Completion::Put(Ok(_)) => completed += 1,
                    _ => errors += 1,
                }
            }
        }
    }
    PipelineReport { completed, errors, ticks: cluster.sim.now().since(start).0 }
}
