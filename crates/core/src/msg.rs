//! The composite DataDroplets protocol: one message enum spanning both
//! layers (the simulator hosts one process type per run).

use crate::sieve_spec::SieveSpec;
use crate::tuple::{Key, StoredTuple, TupleSpec};
use bytes::Bytes;
use dd_dht::Version;
use dd_epidemic::antientropy::Digest;
use dd_estimation::DistSketch;
use dd_sim::NodeId;

/// All DataDroplets messages.
#[derive(Debug, Clone)]
pub enum DropletMsg {
    // ------------------------------------------------------------------
    // Client operations (injected at any soft node; forwarded to the
    // key's coordinator).
    // ------------------------------------------------------------------
    /// Write request.
    ClientPut {
        /// Request id (cluster-unique; allocated at submission by the
        /// issuing client session, which harvests the completion).
        req: u64,
        /// Tuple key.
        key: Key,
        /// Payload.
        value: Bytes,
        /// Optional numeric attribute.
        attr: Option<f64>,
        /// Optional correlation tag.
        tag: Option<String>,
    },
    /// Read request.
    ClientGet {
        /// Request id.
        req: u64,
        /// Tuple key.
        key: Key,
    },
    /// Delete request (versioned tombstone).
    ClientDelete {
        /// Request id.
        req: u64,
        /// Tuple key.
        key: Key,
    },
    /// Range scan over the attribute domain `[lo, hi]`.
    ClientScan {
        /// Request id.
        req: u64,
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
    },
    /// Aggregate over all stored tuples.
    ClientAggregate {
        /// Request id.
        req: u64,
    },
    /// Batched write (the social-feed `mput`): the receiving soft node
    /// becomes the multi-op coordinator, splits the batch by key and
    /// routes each item to its key coordinator.
    ClientMultiPut {
        /// Request id.
        req: u64,
        /// The batch.
        items: Vec<TupleSpec>,
    },
    /// Tag-scoped read (the social-feed `mget`): fetch every live tuple
    /// carrying `tag`. Routed to the tag's soft coordinator, which
    /// contacts the tag's `r` slot-owners when tag sieves are active and
    /// falls back to full fan-out otherwise.
    ClientMultiGet {
        /// Request id.
        req: u64,
        /// Correlation tag (verbatim, as written).
        tag: String,
    },

    // ------------------------------------------------------------------
    // Multi-op plane: soft-layer routing and tag-scoped persistent reads.
    // ------------------------------------------------------------------
    /// Multi-op coordinator → key coordinator: order and disseminate one
    /// batch item on behalf of `origin`'s multi-put.
    SubPut {
        /// Multi-op request id.
        req: u64,
        /// The multi-op coordinator awaiting [`DropletMsg::SubPutAck`].
        origin: NodeId,
        /// The batch item.
        item: TupleSpec,
    },
    /// Key coordinator → multi-op coordinator: the item was ordered (a
    /// version is assigned and dissemination has started).
    SubPutAck {
        /// Multi-op request id.
        req: u64,
        /// Key hash of the ordered item.
        key_hash: u64,
        /// Version the item was ordered at.
        version: Version,
    },
    /// Coordinator → persist: report every live tuple carrying the tag
    /// (served from the secondary tag index).
    TagFetch {
        /// Request id.
        req: u64,
        /// Hash of the correlation tag.
        tag_hash: u64,
    },
    /// Persist → coordinator: local live tuples with the tag.
    TagFetchReply {
        /// Request id.
        req: u64,
        /// Matching live tuples.
        items: Vec<StoredTuple>,
    },

    // ------------------------------------------------------------------
    // Write path: epidemic dissemination into the persistent layer.
    // ------------------------------------------------------------------
    /// A write travelling epidemically; persist nodes relay it `fanout`
    /// ways on first reception and offer it to their sieve.
    Disseminate {
        /// Hops travelled.
        hops: u32,
        /// The tuple (carries its own rumor id).
        tuple: StoredTuple,
        /// Coordinator awaiting storage acks.
        coordinator: NodeId,
    },
    /// Persist → coordinator: "my sieve accepted this tuple".
    StoredAck {
        /// Key hash.
        key_hash: u64,
        /// Stored version.
        version: Version,
    },

    // ------------------------------------------------------------------
    // Read path.
    // ------------------------------------------------------------------
    /// Coordinator → persist: fetch a tuple at (at least) a version.
    Fetch {
        /// Request id.
        req: u64,
        /// Key hash.
        key_hash: u64,
        /// Version required (the metadata's latest).
        version: Version,
    },
    /// Persist → coordinator: fetch result.
    FetchReply {
        /// Request id.
        req: u64,
        /// The tuple, if held at a sufficient version.
        found: Option<StoredTuple>,
    },

    // ------------------------------------------------------------------
    // Scan / aggregate paths.
    // ------------------------------------------------------------------
    /// Coordinator → persist: report tuples with attr in `[lo, hi]`.
    ScanReq {
        /// Request id.
        req: u64,
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Persist → coordinator: local matches.
    ScanReply {
        /// Request id.
        req: u64,
        /// Matching live tuples.
        items: Vec<StoredTuple>,
    },
    /// Coordinator → persist: send your local aggregate contribution.
    AggReq {
        /// Request id.
        req: u64,
    },
    /// Persist → coordinator: duplicate-tolerant local summary.
    AggReply {
        /// Request id.
        req: u64,
        /// Bottom-k sketch of locally held (distinct) items.
        sketch: DistSketch,
        /// Local minimum attribute (idempotent under replication).
        min: f64,
        /// Local maximum attribute.
        max: f64,
    },

    // ------------------------------------------------------------------
    // Redundancy maintenance (same-class anti-entropy, §III-A).
    // ------------------------------------------------------------------
    /// "Here is my sieve and my digest" — any peer can answer with the
    /// tuples the sender's sieve covers but its digest lacks.
    RepairOffer {
        /// Sender's sieve (evaluable remotely; §III-A repair pairs nodes
        /// covering the same key-space portion).
        sieve: SieveSpec,
        /// Sender's digest.
        digest: Digest,
    },
    /// Same-class response with missing items and the responder digest.
    RepairSync {
        /// Responder digest (for the reciprocal leg).
        digest: Digest,
        /// Items the offerer was missing.
        items: Vec<StoredTuple>,
    },
    /// Reciprocal leg: items the responder was missing.
    RepairItems(
        /// The tuples.
        Vec<StoredTuple>,
    ),
}
