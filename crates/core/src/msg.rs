//! The composite DataDroplets protocol: one message enum spanning both
//! layers (the simulator hosts one process type per run).

use crate::sieve_spec::SieveSpec;
use crate::tuple::{Key, StoredTuple, Tag, TupleSpec};
use bytes::Bytes;
use dd_dht::Version;
use dd_epidemic::antientropy::Summary;
use dd_epidemic::push::RumorId;
use dd_estimation::DistSketch;
use dd_sim::{NodeId, TraceCtx};

/// All DataDroplets messages.
#[derive(Debug, Clone)]
pub enum DropletMsg {
    // ------------------------------------------------------------------
    // Client operations (injected at any soft node; forwarded to the
    // key's coordinator).
    // ------------------------------------------------------------------
    /// Write request.
    ClientPut {
        /// Request id (cluster-unique; allocated at submission by the
        /// issuing client session, which harvests the completion).
        req: u64,
        /// Tuple key.
        key: Key,
        /// Payload.
        value: Bytes,
        /// Optional numeric attribute.
        attr: Option<f64>,
        /// Optional correlation tag.
        tag: Option<Tag>,
        /// Causal trace context (traced runs only; `None` otherwise).
        trace: Option<TraceCtx>,
    },
    /// Read request.
    ClientGet {
        /// Request id.
        req: u64,
        /// Tuple key.
        key: Key,
        /// Causal trace context (traced runs only; `None` otherwise).
        trace: Option<TraceCtx>,
    },
    /// Delete request (versioned tombstone).
    ClientDelete {
        /// Request id.
        req: u64,
        /// Tuple key.
        key: Key,
        /// Causal trace context (traced runs only; `None` otherwise).
        trace: Option<TraceCtx>,
    },
    /// Range scan over the attribute domain `[lo, hi]`.
    ClientScan {
        /// Request id.
        req: u64,
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (inclusive).
        hi: f64,
        /// Causal trace context (traced runs only; `None` otherwise).
        trace: Option<TraceCtx>,
    },
    /// Aggregate over all stored tuples.
    ClientAggregate {
        /// Request id.
        req: u64,
        /// Causal trace context (traced runs only; `None` otherwise).
        trace: Option<TraceCtx>,
    },
    /// Batched write (the social-feed `mput`): the receiving soft node
    /// becomes the multi-op coordinator, splits the batch by key and
    /// routes each item to its key coordinator.
    ClientMultiPut {
        /// Request id.
        req: u64,
        /// The batch.
        items: Vec<TupleSpec>,
        /// Causal trace context (traced runs only; `None` otherwise).
        trace: Option<TraceCtx>,
    },
    /// Tag-scoped read (the social-feed `mget`): fetch every live tuple
    /// carrying `tag`. Routed to the tag's soft coordinator, which
    /// contacts the tag's `r` slot-owners when tag sieves are active and
    /// falls back to full fan-out otherwise.
    ClientMultiGet {
        /// Request id.
        req: u64,
        /// Correlation tag (verbatim, as written).
        tag: Tag,
        /// Causal trace context (traced runs only; `None` otherwise).
        trace: Option<TraceCtx>,
    },

    // ------------------------------------------------------------------
    // Multi-op plane: soft-layer routing and tag-scoped persistent reads.
    // ------------------------------------------------------------------
    /// Multi-op coordinator → key coordinator: order and disseminate one
    /// batch item on behalf of `origin`'s multi-put.
    SubPut {
        /// Multi-op request id.
        req: u64,
        /// The multi-op coordinator awaiting [`DropletMsg::SubPutAck`].
        origin: NodeId,
        /// The batch item.
        item: TupleSpec,
        /// Causal trace context (traced runs only; `None` otherwise).
        trace: Option<TraceCtx>,
    },
    /// Key coordinator → multi-op coordinator: the item was ordered (a
    /// version is assigned and dissemination has started).
    SubPutAck {
        /// Multi-op request id.
        req: u64,
        /// Key hash of the ordered item.
        key_hash: u64,
        /// Version the item was ordered at.
        version: Version,
    },
    /// Coordinator → persist: report every live tuple carrying the tag
    /// (served from the secondary tag index).
    TagFetch {
        /// Request id.
        req: u64,
        /// Hash of the correlation tag.
        tag_hash: u64,
        /// Causal trace context (traced runs only; `None` otherwise).
        trace: Option<TraceCtx>,
    },
    /// Persist → coordinator: local live tuples with the tag.
    TagFetchReply {
        /// Request id.
        req: u64,
        /// Matching live tuples.
        items: Vec<StoredTuple>,
    },

    // ------------------------------------------------------------------
    // Write path: epidemic dissemination into the persistent layer.
    // ------------------------------------------------------------------
    /// A write travelling epidemically; persist nodes relay it `fanout`
    /// ways on first reception and offer it to their sieve.
    Disseminate {
        /// Hops travelled.
        hops: u32,
        /// The tuple (carries its own rumor id).
        tuple: StoredTuple,
        /// Coordinator awaiting storage acks.
        coordinator: NodeId,
        /// Causal trace context (traced runs only; `None` otherwise).
        trace: Option<TraceCtx>,
    },
    /// Persist → coordinator: "my sieve accepted this tuple".
    StoredAck {
        /// Key hash.
        key_hash: u64,
        /// Stored version.
        version: Version,
    },
    /// Coordinator → persist: a batch of tuples delivered directly to the
    /// nodes whose sieves accept them (sieve acceptance is deterministic,
    /// so targeted delivery stores exactly the same set a full epidemic
    /// broadcast would, at ~`r` messages per tuple instead of
    /// `fanout × N`).
    DeliverBatch {
        /// The tuples (each carries its own rumor id).
        tuples: Vec<StoredTuple>,
        /// Coordinator awaiting storage acks.
        coordinator: NodeId,
        /// Per-tuple causal trace contexts, parallel to `tuples` (empty in
        /// untraced runs).
        traces: Vec<Option<TraceCtx>>,
    },
    /// Persist → coordinator: batched storage acks for a
    /// [`DropletMsg::DeliverBatch`], one `(key_hash, version)` per tuple
    /// the sieve accepted.
    StoredAckBatch {
        /// Accepted `(key_hash, version)` pairs.
        acked: Vec<(u64, Version)>,
    },

    // ------------------------------------------------------------------
    // Read path.
    // ------------------------------------------------------------------
    /// Coordinator → persist: fetch a tuple at (at least) a version.
    Fetch {
        /// Request id.
        req: u64,
        /// Key hash.
        key_hash: u64,
        /// Version required (the metadata's latest).
        version: Version,
        /// Causal trace context (traced runs only; `None` otherwise).
        trace: Option<TraceCtx>,
    },
    /// Persist → coordinator: fetch result.
    FetchReply {
        /// Request id.
        req: u64,
        /// The tuple, if held at a sufficient version.
        found: Option<StoredTuple>,
    },

    // ------------------------------------------------------------------
    // Scan / aggregate paths.
    // ------------------------------------------------------------------
    /// Coordinator → persist: report tuples with attr in `[lo, hi]`.
    ScanReq {
        /// Request id.
        req: u64,
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
        /// Causal trace context (traced runs only; `None` otherwise).
        trace: Option<TraceCtx>,
    },
    /// Persist → coordinator: local matches.
    ScanReply {
        /// Request id.
        req: u64,
        /// Matching live tuples.
        items: Vec<StoredTuple>,
    },
    /// Coordinator → persist: send your local aggregate contribution.
    AggReq {
        /// Request id.
        req: u64,
        /// Causal trace context (traced runs only; `None` otherwise).
        trace: Option<TraceCtx>,
    },
    /// Persist → coordinator: duplicate-tolerant local summary.
    AggReply {
        /// Request id.
        req: u64,
        /// Bottom-k sketch of locally held (distinct) items.
        sketch: DistSketch,
        /// Local minimum attribute (idempotent under replication).
        min: f64,
        /// Local maximum attribute.
        max: f64,
    },

    // ------------------------------------------------------------------
    // Redundancy maintenance (same-class anti-entropy, §III-A), digest
    // first: the steady-state round is two constant-size messages; items
    // only cross the wire for buckets whose fingerprints disagree.
    // ------------------------------------------------------------------
    /// Step 1, initiator → responder: "compare stores with me". Carries
    /// only the initiator's sieve (evaluable remotely; §III-A repair
    /// pairs nodes covering the same key-space portion).
    RepairDigest {
        /// Initiator's sieve.
        sieve: SieveSpec,
    },
    /// Step 2, responder → initiator: constant-size summary of the
    /// responder's store projected through the *initiator's* sieve (plus
    /// all tombstones). Both sides summarise the shared projection —
    /// everything the other's sieve wants — so equal summaries mean the
    /// pair is converged on their common key-space.
    RepairSummary {
        /// Responder's sieve (so the initiator can project symmetrically).
        sieve: SieveSpec,
        /// Summary over the responder's shared projection.
        summary: Summary,
    },
    /// Step 3, initiator → responder: summaries disagreed; here are the
    /// initiator's rumor ids in the differing buckets.
    RepairPull {
        /// Initiator's sieve (repeated — nodes keep no per-peer state).
        sieve: SieveSpec,
        /// Bucket indices whose fingerprints differed.
        buckets: Vec<u32>,
        /// The initiator's ids in those buckets (shared projection).
        ids: Vec<RumorId>,
    },
    /// Steps 4/5: delta items, plus the ids the sender itself lacks
    /// (`want` non-empty triggers one reciprocal `RepairItems` with the
    /// wanted tuples and an empty `want`).
    RepairItems {
        /// Tuples the receiver was missing.
        items: Vec<StoredTuple>,
        /// Ids the sender is missing and wants back.
        want: Vec<RumorId>,
    },

    // ------------------------------------------------------------------
    // Failure-detector notices, injected locally by the cluster harness
    // (self-sends modelling each node's own failure detector firing).
    // ------------------------------------------------------------------
    /// The local failure detector now considers `NodeId` unreachable.
    PeerDown(
        /// The peer.
        NodeId,
    ),
    /// The local failure detector now considers `NodeId` reachable again
    /// (heal or revival).
    PeerUp(
        /// The peer.
        NodeId,
    ),
}

impl DropletMsg {
    /// The variant's name, for per-kind accounting (the telemetry plane's
    /// in-flight-messages-by-kind series).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            DropletMsg::ClientPut { .. } => "ClientPut",
            DropletMsg::ClientGet { .. } => "ClientGet",
            DropletMsg::ClientDelete { .. } => "ClientDelete",
            DropletMsg::ClientScan { .. } => "ClientScan",
            DropletMsg::ClientAggregate { .. } => "ClientAggregate",
            DropletMsg::ClientMultiPut { .. } => "ClientMultiPut",
            DropletMsg::ClientMultiGet { .. } => "ClientMultiGet",
            DropletMsg::SubPut { .. } => "SubPut",
            DropletMsg::SubPutAck { .. } => "SubPutAck",
            DropletMsg::TagFetch { .. } => "TagFetch",
            DropletMsg::TagFetchReply { .. } => "TagFetchReply",
            DropletMsg::Disseminate { .. } => "Disseminate",
            DropletMsg::StoredAck { .. } => "StoredAck",
            DropletMsg::DeliverBatch { .. } => "DeliverBatch",
            DropletMsg::StoredAckBatch { .. } => "StoredAckBatch",
            DropletMsg::Fetch { .. } => "Fetch",
            DropletMsg::FetchReply { .. } => "FetchReply",
            DropletMsg::ScanReq { .. } => "ScanReq",
            DropletMsg::ScanReply { .. } => "ScanReply",
            DropletMsg::AggReq { .. } => "AggReq",
            DropletMsg::AggReply { .. } => "AggReply",
            DropletMsg::RepairDigest { .. } => "RepairDigest",
            DropletMsg::RepairSummary { .. } => "RepairSummary",
            DropletMsg::RepairPull { .. } => "RepairPull",
            DropletMsg::RepairItems { .. } => "RepairItems",
            DropletMsg::PeerDown(_) => "PeerDown",
            DropletMsg::PeerUp(_) => "PeerUp",
        }
    }
}
