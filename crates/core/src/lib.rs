//! # dd-core — DataDroplets
//!
//! The paper's system (Figure 1): a two-layer key-value (tuple) store.
//! Clients talk to the **soft-state layer** — a moderately sized,
//! DHT-organised tier that orders requests, assigns versions, caches tuples
//! and keeps location hints — which delegates storage to the
//! **persistent-state layer**, a large, churn-ridden population where
//! writes spread epidemically and each node's local *sieve* decides what it
//! retains (§II–III).
//!
//! ```
//! use dd_core::{Cluster, ClusterConfig};
//!
//! let mut cluster = Cluster::new(ClusterConfig::small(), 42);
//! cluster.settle();
//! let req = cluster.put("user:1", b"alice".to_vec(), Some(31.0), None);
//! let put = cluster.wait_put(req).expect("write acknowledged");
//! assert!(put.acks >= 1);
//! let read_req = cluster.get("user:1");
//! let got = cluster.wait_get(read_req).expect("read done");
//! assert_eq!(got.unwrap().value, b"alice".to_vec());
//! ```
//!
//! Modules: `tuple` (data model), [`sieve_spec`] (wire-format sieves),
//! [`msg`] (the composite protocol), [`soft`] and [`persist`] (the two
//! node roles), [`cluster`] (whole-system harness + public API),
//! [`workload`] (synthetic workloads for the experiments).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod msg;
pub mod persist;
pub mod sieve_spec;
pub mod soft;
pub mod tuple;
pub mod workload;

pub use cluster::{AggregateResult, Cluster, ClusterConfig, GetResult, PutResult};
pub use msg::DropletMsg;
pub use sieve_spec::SieveSpec;
pub use tuple::{Key, StoredTuple};
pub use workload::{Workload, WorkloadKind};
