//! # dd-core — DataDroplets
//!
//! The paper's system (Figure 1): a two-layer key-value (tuple) store.
//! Clients talk to the **soft-state layer** — a moderately sized,
//! DHT-organised tier that orders requests, assigns versions, caches tuples
//! and keeps location hints — which delegates storage to the
//! **persistent-state layer**, a large, churn-ridden population where
//! writes spread epidemically and each node's local *sieve* decides what it
//! retains (§II–III).
//!
//! Clients talk to the store through typed, pipelined sessions: every
//! operation returns a [`Pending`] handle immediately, completions are
//! `Result<T, OpError>` values harvested while [`Cluster::pump`] advances
//! virtual time — so one session can hold thousands of operations in
//! flight:
//!
//! ```
//! use dd_core::{Cluster, ClusterConfig};
//!
//! let mut cluster = Cluster::new(ClusterConfig::small(), 42);
//! cluster.settle();
//! let mut client = cluster.client();
//! let w = client.put(&mut cluster, "user:1", b"alice".to_vec(), Some(31.0), None);
//! let put = client.recv(&mut cluster, w).expect("write acknowledged");
//! assert!(put.acks >= 1);
//! let r = client.get(&mut cluster, "user:1");
//! let got = client.recv(&mut cluster, r).expect("read done");
//! assert_eq!(got.unwrap().value, b"alice".to_vec());
//! ```
//!
//! ## Multi-tuple operations
//!
//! Correlated tuples are written as one batch (`multi_put`) and read back
//! by tag (`multi_get`) — the social-feed `mput`/`mget` of the paper's
//! evaluation workload \[18\]. Under [`cluster::Placement::TagCollocation`]
//! the tag's tuples co-locate on `replication` slot-owners and a
//! `multi_get` contacts exactly those nodes; under uniform or range
//! placement it falls back to epidemic fan-out:
//!
//! ```
//! use dd_core::{Cluster, ClusterConfig, Placement, TupleSpec};
//!
//! let config = ClusterConfig::small().placement(Placement::TagCollocation);
//! let mut cluster = Cluster::new(config, 7);
//! cluster.settle();
//! let mut client = cluster.client();
//! let batch: Vec<TupleSpec> = (0..3u8)
//!     .map(|i| {
//!         TupleSpec::new(format!("post:{i}"), vec![i], Some(f64::from(i)), Some("feed:a"))
//!     })
//!     .collect();
//! let w = client.multi_put(&mut cluster, batch);
//! assert_eq!(client.recv(&mut cluster, w).expect("batch ordered").items, 3);
//! cluster.run_for(2_000);
//! let r = client.multi_get(&mut cluster, "feed:a");
//! let feed = client.recv(&mut cluster, r).expect("feed read");
//! assert_eq!(feed.len(), 3, "all posts of the tag come back");
//! // The tag's r owners answered — not the whole persistent layer.
//! let contacted = cluster.sim.metrics().summary("multi_get.contacted_nodes").max;
//! assert!(contacted <= f64::from(cluster.config().replication));
//! ```
//!
//! ## Scenarios
//!
//! Whole experiments — workload phases, fault schedules and environment
//! timelines — are declared as [`Scenario`] values and executed with
//! [`Cluster::run_scenario`], which returns a [`ScenarioReport`] of
//! per-phase availability, staleness, error taxonomy and latency
//! quantiles. See [`scenario`] for the vocabulary and
//! [`scenario::library`] for the stock dependability drills:
//!
//! ```
//! use dd_core::{Cluster, ClusterConfig, EnvChange, OpMix, Phase, Scenario, WorkloadKind};
//!
//! let mut cluster = Cluster::new(ClusterConfig::small(), 9);
//! cluster.settle();
//! let drill = Scenario::new("loss-spike", WorkloadKind::Uniform, 3)
//!     .phase(Phase::new("load", 2_000).mix(OpMix::puts()).ops(30))
//!     .phase(Phase::new("read", 2_000).mix(OpMix::gets()).ops(30))
//!     .env(2_000, EnvChange::DropProb(0.05))
//!     .env(3_000, EnvChange::DropProb(0.0));
//! let report = cluster.run_scenario(&drill);
//! assert!(report.availability() > 0.9);
//! ```
//!
//! Modules: `tuple` (data model), [`sieve_spec`] (wire-format sieves),
//! [`msg`] (the composite protocol), [`soft`] and [`persist`] (the two
//! node roles), [`cluster`] (whole-system harness), [`client`] (typed
//! pipelined sessions), [`driver`] (the phase engine: sessions × depth ×
//! op mixes), [`scenario`] (declarative workload/fault/environment
//! timelines), [`workload`] (synthetic workloads for the experiments).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod driver;
pub mod msg;
pub mod persist;
pub mod scenario;
pub mod sieve_spec;
pub mod soft;
pub mod tuple;
pub mod workload;

pub use client::{ops, Client, Completion, OpError, OpKind, Pending, OP_TIMEOUT};
pub use cluster::{
    AggregateResult, Cluster, ClusterConfig, GetResult, MultiGetResult, MultiPutResult, Placement,
    PutResult,
};
pub use dd_audit::{AuditReport, History, Violation, ViolationKind};
pub use dd_obs::{Detector, Finding, Telemetry, TelemetryReport};
pub use dd_trace::{PathStep, Recorder, Trace, TraceReport, TraceSet};
pub use driver::OpMix;
pub use msg::DropletMsg;
pub use persist::{PersistNode, RepairPeering};
pub use scenario::{
    EnvChange, ErrorCounts, Fault, Phase, PhaseReport, Scenario, ScenarioError, ScenarioReport,
    Tier,
};
pub use sieve_spec::SieveSpec;
pub use soft::MultiPutStatus;
pub use tuple::{Key, StoredTuple, Tag, TupleSpec};
pub use workload::{MultiPutOp, Workload, WorkloadKind};
