//! Equivalence of the two repair protocols: digest-first (summary →
//! pull → delta) anti-entropy must drive every replica to the *same*
//! byte-identical state the old blind digest exchange reached, for any
//! sieve population and any fault schedule (which deliveries were lost).
//! The wire cost differs by orders of magnitude; the fixpoint must not.

use dd_core::persist::{PersistNode, REPAIR_BUCKETS};
use dd_core::{Key, SieveSpec, StoredTuple};
use dd_dht::Version;
use dd_epidemic::antientropy::Summary;
use dd_epidemic::RumorId;
use proptest::prelude::*;

/// A generated write: key index, version, tombstone flag. Content is a
/// pure function of `(key, version)`, so byte-level comparison of final
/// stores is meaningful.
fn materialise(key_idx: usize, version: u64, deleted: bool) -> StoredTuple {
    let key = Key::from(format!("k:{key_idx}"));
    if deleted {
        StoredTuple::tombstone(key, Version(version))
    } else {
        let tag = format!("t:{}", key_idx % 3);
        StoredTuple::new(
            key,
            Version(version),
            format!("v:{key_idx}:{version}").into_bytes(),
            Some(key_idx as f64),
            Some(&tag),
        )
    }
}

/// One sieve per node, all from the same family (how real clusters are
/// configured; `family` picks range / uniform / tag).
fn sieve_population(family: u8, n: u64, r: u32) -> Vec<SieveSpec> {
    (0..n)
        .map(|i| match family % 3 {
            0 => SieveSpec::default_for(i, n, r),
            1 => SieveSpec::Uniform { salt: i ^ 0xABCD, r, n },
            _ => SieveSpec::Tag { slot: i, slots: n, r },
        })
        .collect()
}

/// One store entry, fingerprinted byte-for-byte:
/// `(key_hash, rumor_id, version, deleted, value)`.
type Entry = (u64, u64, u64, bool, Vec<u8>);

/// Byte-level fingerprint of a store: every field of every held tuple,
/// key-ordered.
fn state(n: &PersistNode) -> Vec<Entry> {
    let mut s: Vec<Entry> = n
        .store
        .values()
        .map(|t| (t.key_hash, t.rumor_id(), t.version.0, t.deleted, t.value.to_vec()))
        .collect();
    s.sort();
    s
}

fn states(nodes: &[PersistNode]) -> Vec<Vec<Entry>> {
    nodes.iter().map(state).collect()
}

/// The old protocol's full round: exchange whole digests, ship every
/// missing-and-wanted item, both directions. Every shipped item is
/// wanted by its receiver, so the new supersession/retire paths of
/// `apply_repair` are unreachable here — this is byte-for-byte the old
/// semantics.
fn blind_exchange(nodes: &mut [PersistNode], a: usize, b: usize) {
    let to_b = nodes[a].items_for_peer(&nodes[b].digest(), &nodes[b].sieve.clone());
    let to_a = nodes[b].items_for_peer(&nodes[a].digest(), &nodes[a].sieve.clone());
    nodes[b].apply_repair(to_b);
    nodes[a].apply_repair(to_a);
}

/// The digest-first round, mirroring the on_message handlers: summary
/// compare → pull → delta items → reciprocal want leg → supersession
/// evidence ping-pong until quiet.
fn digest_first_exchange(nodes: &mut [PersistNode], a: usize, b: usize) {
    let sieve_a = nodes[a].sieve.clone();
    let sieve_b = nodes[b].sieve.clone();
    let diff = nodes[a].shared_summary(&sieve_b).diff(&nodes[b].shared_summary(&sieve_a));
    if diff.is_empty() {
        return;
    }
    let ids_a = nodes[a].shared_ids_in(&sieve_b, &diff);
    let (items, want) = nodes[b].repair_delta(&sieve_a, &diff, &ids_a);
    let (_, mut batch) = nodes[a].apply_repair(items);
    if !want.is_empty() {
        batch.extend(nodes[a].tuples_for(&want));
        batch.sort_by_key(StoredTuple::rumor_id);
        batch.dedup_by_key(|t| t.rumor_id());
    }
    let (mut rx, mut tx) = (b, a);
    while !batch.is_empty() {
        let (_, evidence) = nodes[rx].apply_repair(batch);
        batch = evidence;
        std::mem::swap(&mut rx, &mut tx);
    }
}

/// Runs pairwise exchanges until no store changes (bounded; a complete
/// graph settles in a couple of sweeps).
fn run_to_fixpoint(nodes: &mut [PersistNode], exchange: fn(&mut [PersistNode], usize, usize)) {
    for _ in 0..8 {
        let before = states(nodes);
        for a in 0..nodes.len() {
            for b in (a + 1)..nodes.len() {
                exchange(nodes, a, b);
            }
        }
        if states(nodes) == before {
            return;
        }
    }
    panic!("exchanges did not reach a fixpoint in 8 sweeps");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any sieve family, replication degree and fault schedule, the
    /// digest-first protocol's fixpoint is byte-identical, per node, to
    /// the blind digest exchange's — and once there, every pair's shared
    /// summaries agree (the steady-state round is two constant-size
    /// messages).
    #[test]
    fn digest_first_reaches_the_blind_exchange_fixpoint(
        family in 0u8..3,
        n in 2u64..5,
        r in 1u32..4,
        // (key, version-count, tombstone mask) per key: versions of one
        // key are distinct, so apply() order can never matter.
        keys in prop::collection::vec((1u64..4, any::<u8>()), 1..12),
        // Fault schedule: bit k of each write's mask = "the initial
        // dissemination reached node k".
        delivery in prop::collection::vec(any::<u8>(), 1..12),
    ) {
        let sieves = sieve_population(family, n, r);
        let mut seed: Vec<PersistNode> = sieves
            .iter()
            .map(|s| PersistNode::new(s.clone(), 2, vec![], None))
            .collect();
        let mut w = 0usize;
        for (key_idx, &(versions, tombs)) in keys.iter().enumerate() {
            for v in 1..=versions {
                let t = materialise(key_idx, v, tombs & (1 << v) != 0);
                let mask = delivery[w % delivery.len()];
                w += 1;
                for (k, node) in seed.iter_mut().enumerate() {
                    if mask & (1 << (k % 8)) != 0 && node.wants(&t) {
                        node.apply(t.clone());
                    }
                }
            }
        }

        let mut blind = seed.clone();
        let mut first = seed;
        run_to_fixpoint(&mut blind, blind_exchange);
        run_to_fixpoint(&mut first, digest_first_exchange);

        // The blind protocol can never clean up a stale entry superseded
        // by a version its holder's sieve rejects (it only ever ships
        // receiver-wanted tuples); digest-first retires those via the
        // supersession-evidence leg. Modulo that strict improvement, the
        // fixpoints must be byte-identical: normalise the blind state by
        // dropping exactly the entries the evidence leg retires — those
        // strictly older than the newest version of their key anywhere,
        // where the holder does not want that newest version.
        let mut newest: std::collections::HashMap<u64, StoredTuple> = Default::default();
        for node in &blind {
            for t in node.store.values() {
                let slot = newest.entry(t.key_hash).or_insert_with(|| t.clone());
                if t.version > slot.version {
                    *slot = t.clone();
                }
            }
        }
        let normalised: Vec<_> = blind
            .iter()
            .map(|n| {
                let mut s: Vec<_> = n
                    .store
                    .values()
                    .filter(|t| {
                        let top = &newest[&t.key_hash];
                        top.version == t.version || n.wants(top)
                    })
                    .map(|t| (t.key_hash, t.rumor_id(), t.version.0, t.deleted, t.value.to_vec()))
                    .collect();
                s.sort();
                s
            })
            .collect();
        prop_assert_eq!(
            states(&first),
            normalised,
            "digest-first and blind exchange disagree on the fixpoint"
        );

        // At the fixpoint the steady-state exchange is summary-only: every
        // pair's shared projections carry equal summaries.
        for a in 0..first.len() {
            for b in (a + 1)..first.len() {
                let sa = first[a].shared_summary(&first[b].sieve.clone());
                let sb = first[b].shared_summary(&first[a].sieve.clone());
                prop_assert_eq!(sa.bucket_count(), REPAIR_BUCKETS);
                prop_assert!(sa.diff(&sb).is_empty(), "pair ({}, {}) not converged", a, b);
            }
        }
    }

    /// The summary's divergence localisation: the ids that cross the wire
    /// in a pull are exactly the shared-projection ids of the differing
    /// buckets — never the whole store.
    #[test]
    fn pull_ships_only_differing_buckets(
        extra in prop::collection::hash_set(1u64..1_000, 1..8),
        common in prop::collection::hash_set(1_000u64..2_000, 0..40),
    ) {
        let all = SieveSpec::Range { index: 0, of: 1, r: 1 };
        let mut a = PersistNode::new(all.clone(), 2, vec![], None);
        let mut b = PersistNode::new(all.clone(), 2, vec![], None);
        for &k in &common {
            a.apply(materialise(k as usize, 1, false));
            b.apply(materialise(k as usize, 1, false));
        }
        for &k in &extra {
            a.apply(materialise(k as usize, 1, false));
        }
        let diff = a.shared_summary(&all).diff(&b.shared_summary(&all));
        let shipped = a.shared_ids_in(&all, &diff);
        // Everything shipped folds into a differing bucket…
        for id in &shipped {
            let bucket = Summary::bucket_of(REPAIR_BUCKETS, *id) as u32;
            prop_assert!(diff.contains(&bucket));
        }
        // …and the extra ids are all among them (nothing is missed).
        let shipped_set: std::collections::HashSet<RumorId> = shipped.into_iter().collect();
        for &k in &extra {
            let id = RumorId(materialise(k as usize, 1, false).rumor_id());
            prop_assert!(shipped_set.contains(&id), "missing id for key {}", k);
        }
    }
}
