//! Frozen fuzz corpus: minimal witnessing scenarios found by `dd-fuzz`
//! campaigns, pinned as plain dd-core regression tests so the behaviours
//! they witness never silently change class.
//!
//! ## Freeze workflow
//!
//! 1. Run a campaign: `cargo run --release -p dd-fuzz -- --config smoke
//!    --seeds 400` (or let CI's smoke tier flag the seed).
//! 2. Take the finding's minimal repro snippet — printed by the binary
//!    for safety findings and recorded for every shrunk finding in
//!    `BENCH_fuzz.json` under `findings[].snippet` (it is
//!    `Case::snippet()`, self-contained dd-core code).
//! 3. Paste the snippet here as a `#[test]`, name it after the seed and
//!    the verdict, and pin the classification: which violation kinds the
//!    audit may report, and which it must not.
//! 4. Assert replay determinism (`run_scenario` twice, reports equal) so
//!    the frozen case also guards the engine's reproducibility contract.
//!
//! A frozen test failing means the witnessed behaviour changed class —
//! e.g. a durability warning became a safety violation (regression) or
//! disappeared entirely (the weakness was fixed; delete the test after
//! confirming with a fresh campaign over the same seed window).

use dd_core::{
    Cluster, ClusterConfig, EnvChange, Fault, OpMix, Phase, Placement, Scenario, ViolationKind,
    WorkloadKind,
};
use dd_sim::LatencyModel;

/// dd-fuzz smoke campaign, seed 0, shrunk 64 → 14: under `Uniform`
/// (probabilistic-sieve) placement on a 4-node persist layer, a short
/// social-feed burst of puts and batched puts can leave an acknowledged
/// write on no live replica — a durability warning (the paper's design
/// trades bounded durability), with *no* fault schedule at all. It must
/// never escalate to a safety violation.
#[test]
fn seed_0_uniform_placement_loses_a_write_without_any_fault() {
    let run = || {
        let config =
            ClusterConfig::small().persist_n(4).replication(3).placement(Placement::Uniform);
        let mut cluster = Cluster::new(config, 0);
        cluster.settle();
        let scenario = Scenario::new("fuzz-0-min", WorkloadKind::SocialFeed { users: 18 }, 0)
            .phase(
                Phase::new("load", 1499)
                    .mix(OpMix::idle().put(3).multi_put(1).batch(3))
                    .sessions(3)
                    .depth(2)
                    .ops(9),
            )
            .audited();
        cluster.run_scenario(&scenario)
    };
    let report = run();
    let audit = report.audit.as_ref().expect("scenario is audited");
    assert_eq!(audit.safety_count(), 0, "must stay a durability story: {audit}");
    assert!(audit.warning_count() >= 1, "the lost write this seed witnesses disappeared");
    assert!(audit.violations.iter().all(|v| v.kind() == ViolationKind::LostWrite));
    assert_eq!(report, run(), "frozen scenarios replay byte-identically");
}

/// dd-fuzz smoke campaign, seed 1, shrunk 116 → 28: the same weakness
/// through a different door — Zipf-keyed puts racing gets on a 5-node
/// uniform-sieve layer, no faults, one phase. Frozen because it is the
/// smallest two-op-kind witness the campaign produced.
#[test]
fn seed_1_zipf_put_get_race_stays_a_durability_warning() {
    let run =
        || {
            let config =
                ClusterConfig::small().persist_n(5).replication(2).placement(Placement::Uniform);
            let mut cluster = Cluster::new(config, 1);
            cluster.settle();
            let scenario = Scenario::new(
                "fuzz-1-min",
                WorkloadKind::ZipfKeys { keys: 401, exponent: 1.04 },
                1,
            )
            .phase(Phase::new("serve-1", 1983).mix(OpMix::idle().put(2).get(3)).sessions(2).ops(22))
            .audited();
            cluster.run_scenario(&scenario)
        };
    let report = run();
    let audit = report.audit.as_ref().expect("scenario is audited");
    assert_eq!(audit.safety_count(), 0, "must stay a durability story: {audit}");
    assert!(audit.warning_count() >= 1, "the lost write this seed witnesses disappeared");
    assert!(audit.violations.iter().all(|v| v.kind() == ViolationKind::LostWrite));
    assert_eq!(report, run(), "frozen scenarios replay byte-identically");
}

/// The divergence the first fuzz campaigns caught (smoke seeds 49 and
/// 53, both shrunk to `WipeSoftLayer` + deletes): wiping the soft layer
/// without rebuilding resets the version authority, a post-wipe delete
/// re-issues an already-used version, and before the deterministic
/// tie-break (`StoredTuple::supersedes`) replicas disagreed forever on
/// the tombstone flag at that version. Frozen at the shrunk seed-49
/// shape: the audit must report *no* divergence (and no other safety
/// violation) now that ties resolve tombstone-first everywhere.
#[test]
fn seed_49_soft_wipe_version_reuse_no_longer_diverges() {
    let run = || {
        let config =
            ClusterConfig::small().persist_n(6).replication(3).placement(Placement::Uniform);
        let mut cluster = Cluster::new(config, 49);
        cluster.settle();
        let scenario = Scenario::new("fuzz-49-min", WorkloadKind::SocialFeed { users: 48 }, 49)
            .phase(Phase::new("load", 2311).mix(OpMix::idle().put(3)).sessions(1).depth(1).ops(1))
            .phase(
                Phase::new("serve-0", 941)
                    .mix(OpMix::idle().put(1).get(3).delete(1))
                    .sessions(1)
                    .depth(6)
                    .ops(19),
            )
            .fault(1888, dd_core::Fault::WipeSoftLayer)
            .audited();
        cluster.run_scenario(&scenario)
    };
    let report = run();
    let audit = report.audit.as_ref().expect("scenario is audited");
    assert!(
        audit.violations.iter().all(|v| v.kind() != ViolationKind::Divergence),
        "version-reuse divergence is back: {audit}"
    );
    assert_eq!(audit.safety_count(), 0, "soft wipe must not break safety: {audit}");
    assert_eq!(report, run(), "frozen scenarios replay byte-identically");
}

/// dd-fuzz soak campaign, seed 10432, shrunk 320 → 142: a soft-layer
/// wipe mid-traffic with *no* rebuild (the shrinker dropped the
/// generator's paired `RebuildSoftLayer` clause — only the verdict is
/// preserved, not the schedule's shape). Losing the soft layer forfeits
/// the session guarantees until a rebuild lands: the version authority
/// and per-session floors die with it, so reads in the wipe window
/// violate read-your-writes. This is the documented limitation that
/// keeps `wipe_soft` at weight zero in the stock fuzz profiles; the
/// audit's session checkers are not epoch-aware, so the violation is
/// *expected* here. Frozen so the classification is pinned: if session
/// checkers ever learn about wipe epochs (or wipes stop forfeiting
/// sessions), this test fails and the profiles can re-enable the fault.
#[test]
fn seed_10432_soft_wipe_window_forfeits_read_your_writes() {
    let run = || {
        let config =
            ClusterConfig::small().persist_n(4).replication(3).placement(Placement::TagCollocation);
        let mut cluster = Cluster::new(config, 10432);
        cluster.settle();
        let scenario = Scenario::new(
            "fuzz-10432-min",
            WorkloadKind::ZipfKeys { keys: 134, exponent: 1.13 },
            10432,
        )
        .phase(
            Phase::new("load", 1658)
                .mix(OpMix::idle().put(3).multi_put(1).batch(2))
                .sessions(3)
                .depth(3)
                .ops(7),
        )
        .phase(
            Phase::new("serve-0", 4140)
                .mix(OpMix::idle().put(1).get(1).delete(1).scan(1).multi_get(1))
                .sessions(3)
                .depth(9)
                .ops(6)
                .workload(WorkloadKind::ZipfKeys { keys: 84, exponent: 1.19 }),
        )
        .phase(
            Phase::new("serve-1", 1897)
                .mix(OpMix::idle().put(1).get(1))
                .sessions(2)
                .depth(4)
                .ops(120),
        )
        .fault(6387, Fault::WipeSoftLayer)
        .env(5496, EnvChange::Latency(LatencyModel::Uniform { min: 8, max: 28 }))
        .audited();
        cluster.run_scenario(&scenario)
    };
    let report = run();
    let audit = report.audit.as_ref().expect("scenario is audited");
    assert!(
        audit.violations.iter().any(|v| v.kind() == ViolationKind::ReadYourWrites),
        "the wipe-window session hole this seed witnesses disappeared: {audit}"
    );
    assert!(
        audit.violations.iter().all(|v| v.kind() != ViolationKind::Divergence),
        "the persist layer must still converge under a soft wipe: {audit}"
    );
    assert_eq!(report, run(), "frozen scenarios replay byte-identically");
}
