//! Property-based tests for the DataDroplets data model and placement
//! invariants.

use dd_core::{Cluster, ClusterConfig, Key, SieveSpec, StoredTuple};
use dd_dht::Version;
use dd_sieve::ItemMeta;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any population of default (range) sieves covers any key exactly
    /// min(r, n) times — the paper's data-loss safety requirement holds
    /// for every (n, r, key).
    #[test]
    fn default_sieves_cover_every_key(
        n in 1u64..48,
        r in 1u32..6,
        key in "[a-z0-9:/_-]{1,32}",
    ) {
        let specs: Vec<SieveSpec> = (0..n).map(|i| SieveSpec::default_for(i, n, r)).collect();
        let item = ItemMeta::from_key(key.as_bytes());
        let owners = specs.iter().filter(|s| s.accepts(&item)).count() as u64;
        prop_assert_eq!(owners, u64::from(r).min(n));
    }

    /// Rumor ids are injective over (key, version) for realistic keys.
    #[test]
    fn rumor_ids_do_not_collide(
        keys in prop::collection::hash_set("[a-z]{1,12}", 2..20),
        versions in prop::collection::hash_set(1u64..1000, 2..10),
    ) {
        let mut seen = std::collections::HashSet::new();
        for k in &keys {
            for &v in &versions {
                let t = StoredTuple::new(Key::from(k.as_str()), Version(v), b"".to_vec(), None, None);
                prop_assert!(seen.insert(t.rumor_id()), "collision for {}@{}", k, v);
            }
        }
    }

    /// A tombstone always supersedes the value it deletes and projects the
    /// same key hash.
    #[test]
    fn tombstone_matches_key(key in "[a-z0-9]{1,20}", v in 1u64..100) {
        let live = StoredTuple::new(Key::from(key.as_str()), Version(v), b"x".to_vec(), Some(1.0), None);
        let dead = StoredTuple::tombstone(Key::from(key.as_str()), Version(v + 1));
        prop_assert_eq!(live.key_hash, dead.key_hash);
        prop_assert!(dead.version > live.version);
        prop_assert!(dead.deleted && !live.deleted);
    }

    /// Sieve specs are stable: accepting is a pure function of the spec and
    /// the item (same inputs, same answer through clones).
    #[test]
    fn spec_acceptance_is_pure(
        idx in 0u64..16,
        r in 1u32..4,
        key in any::<u64>(),
    ) {
        let spec = SieveSpec::Range { index: idx, of: 16, r };
        let item = ItemMeta::from_key_hash(key);
        let a = spec.accepts(&item);
        prop_assert_eq!(a, spec.accepts(&item));
        prop_assert_eq!(a, spec.clone().accepts(&item));
        // class id is likewise stable
        prop_assert_eq!(spec.class_id(), spec.clone().class_id());
    }

    /// Grain equals the measured acceptance fraction for range specs.
    #[test]
    fn grain_matches_acceptance_rate(n in 2u64..32, r in 1u32..4) {
        let spec = SieveSpec::Range { index: 0, of: n, r };
        let probes = 4_000u64;
        let accepted = (0..probes)
            .filter(|&i| {
                spec.accepts(&ItemMeta::from_key(format!("g{i}").as_bytes()))
            })
            .count() as f64;
        let rate = accepted / probes as f64;
        prop_assert!((rate - spec.grain()).abs() < 0.05,
            "rate {} vs grain {}", rate, spec.grain());
    }
}

proptest! {
    // Cluster simulations are comparatively expensive; a dozen cases at
    // two full cluster runs each still exercises the oracle thoroughly.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end oracle check: a settled cluster round-trips arbitrary
    /// put/get traffic exactly like a `HashMap`, and the whole exchange is
    /// a pure function of the seed — replaying the same operations on a
    /// second cluster with the same seed yields identical ack traces
    /// (version and ack count per write) and identical read results.
    #[test]
    fn cluster_roundtrips_against_hashmap_oracle(
        seed in 0u64..512,
        ops in prop::collection::vec(
            ("[a-z]{1,6}", prop::collection::vec(any::<u8>(), 0..12)),
            1..12,
        ),
    ) {
        let run = |ops: &[(String, Vec<u8>)]| {
            let mut cluster = Cluster::new(ClusterConfig::small(), seed);
            cluster.settle();
            let mut client = cluster.client();
            let mut oracle: HashMap<String, Vec<u8>> = HashMap::new();
            let mut acks = Vec::new();
            for (key, value) in ops {
                let w = client.put(&mut cluster, key.clone(), value.clone(), None, None);
                let status = client.recv(&mut cluster, w).unwrap_or_else(|e| {
                    panic!("write {key} failed: {e}")
                });
                acks.push((status.version, status.acks));
                oracle.insert(key.clone(), value.clone());
            }
            cluster.run_for(5_000);
            let mut reads = Vec::new();
            for (key, expected) in &oracle {
                let r = client.get(&mut cluster, key.clone());
                let tuple = client
                    .recv(&mut cluster, r)
                    .unwrap_or_else(|e| panic!("read {key} failed: {e}"))
                    .unwrap_or_else(|| panic!("oracle key {key} missing"));
                assert_eq!(&tuple.value.to_vec(), expected, "value mismatch for {key}");
                reads.push((key.clone(), tuple.version, tuple.value.to_vec()));
            }
            reads.sort();
            (acks, reads)
        };
        let first = run(&ops);
        let second = run(&ops);
        prop_assert_eq!(first, second, "same seed must replay identically");
    }

    /// Pipelining equivalence: N writes submitted concurrently through one
    /// session settle to the same per-key results (version and value on a
    /// fresh read) and the same persistent key population as the same
    /// writes issued lock-step, on a seed-replayed twin cluster. Pipelining
    /// changes *when* messages fly, not *what* the store converges to.
    #[test]
    fn pipelined_ops_match_sequential_outcome(
        seed in 0u64..256,
        values in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..8), 2..16),
    ) {
        // Distinct keys: concurrent writes to one key may order either way
        // (that ambiguity is inherent to concurrency, not to the client).
        let ops: Vec<(String, Vec<u8>)> = values
            .into_iter()
            .enumerate()
            .map(|(i, v)| (format!("pk:{i}"), v))
            .collect();
        let read_back = |cluster: &mut Cluster, ops: &[(String, Vec<u8>)]| {
            cluster.run_for(5_000);
            let mut client = cluster.client();
            let mut results = Vec::new();
            for (key, _) in ops {
                let r = client.get(&mut *cluster, key.clone());
                let t = client
                    .recv(&mut *cluster, r)
                    .expect("read completes")
                    .unwrap_or_else(|| panic!("key {key} missing"));
                results.push((key.clone(), t.version, t.value.to_vec()));
            }
            let mut stored: Vec<u64> =
                cluster.scan_persist_state().iter().map(|&(kh, _, _)| kh).collect();
            stored.sort_unstable();
            stored.dedup();
            (results, stored)
        };

        // Sequential: one round-trip at a time (the old lock-step plane).
        let mut seq = Cluster::new(ClusterConfig::small(), seed);
        seq.settle();
        let mut client = seq.client();
        for (key, value) in &ops {
            let w = client.put(&mut seq, key.clone(), value.clone(), None, None);
            client.recv(&mut seq, w).expect("sequential write ordered");
        }
        let sequential = read_back(&mut seq, &ops);

        // Pipelined: everything in flight at once, harvested by poll.
        let mut pip = Cluster::new(ClusterConfig::small(), seed);
        pip.settle();
        let mut client = pip.client();
        let pendings: Vec<_> = ops
            .iter()
            .map(|(key, value)| client.put(&mut pip, key.clone(), value.clone(), None, None))
            .collect();
        prop_assert_eq!(client.in_flight(), ops.len());
        for p in pendings {
            client.recv(&mut pip, p).expect("pipelined write ordered");
        }
        let pipelined = read_back(&mut pip, &ops);

        prop_assert_eq!(sequential, pipelined, "same final state and per-key results");
    }
}
