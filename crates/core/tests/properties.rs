//! Property-based tests for the DataDroplets data model and placement
//! invariants.

use dd_core::{Cluster, ClusterConfig, Key, SieveSpec, StoredTuple};
use dd_dht::Version;
use dd_sieve::ItemMeta;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any population of default (range) sieves covers any key exactly
    /// min(r, n) times — the paper's data-loss safety requirement holds
    /// for every (n, r, key).
    #[test]
    fn default_sieves_cover_every_key(
        n in 1u64..48,
        r in 1u32..6,
        key in "[a-z0-9:/_-]{1,32}",
    ) {
        let specs: Vec<SieveSpec> = (0..n).map(|i| SieveSpec::default_for(i, n, r)).collect();
        let item = ItemMeta::from_key(key.as_bytes());
        let owners = specs.iter().filter(|s| s.accepts(&item)).count() as u64;
        prop_assert_eq!(owners, u64::from(r).min(n));
    }

    /// Rumor ids are injective over (key, version) for realistic keys.
    #[test]
    fn rumor_ids_do_not_collide(
        keys in prop::collection::hash_set("[a-z]{1,12}", 2..20),
        versions in prop::collection::hash_set(1u64..1000, 2..10),
    ) {
        let mut seen = std::collections::HashSet::new();
        for k in &keys {
            for &v in &versions {
                let t = StoredTuple::new(Key::from(k.as_str()), Version(v), b"".to_vec(), None, None);
                prop_assert!(seen.insert(t.rumor_id()), "collision for {}@{}", k, v);
            }
        }
    }

    /// A tombstone always supersedes the value it deletes and projects the
    /// same key hash.
    #[test]
    fn tombstone_matches_key(key in "[a-z0-9]{1,20}", v in 1u64..100) {
        let live = StoredTuple::new(Key::from(key.as_str()), Version(v), b"x".to_vec(), Some(1.0), None);
        let dead = StoredTuple::tombstone(Key::from(key.as_str()), Version(v + 1));
        prop_assert_eq!(live.key_hash, dead.key_hash);
        prop_assert!(dead.version > live.version);
        prop_assert!(dead.deleted && !live.deleted);
    }

    /// Sieve specs are stable: accepting is a pure function of the spec and
    /// the item (same inputs, same answer through clones).
    #[test]
    fn spec_acceptance_is_pure(
        idx in 0u64..16,
        r in 1u32..4,
        key in any::<u64>(),
    ) {
        let spec = SieveSpec::Range { index: idx, of: 16, r };
        let item = ItemMeta::from_key_hash(key);
        let a = spec.accepts(&item);
        prop_assert_eq!(a, spec.accepts(&item));
        prop_assert_eq!(a, spec.clone().accepts(&item));
        // class id is likewise stable
        prop_assert_eq!(spec.class_id(), spec.clone().class_id());
    }

    /// Grain equals the measured acceptance fraction for range specs.
    #[test]
    fn grain_matches_acceptance_rate(n in 2u64..32, r in 1u32..4) {
        let spec = SieveSpec::Range { index: 0, of: n, r };
        let probes = 4_000u64;
        let accepted = (0..probes)
            .filter(|&i| {
                spec.accepts(&ItemMeta::from_key(format!("g{i}").as_bytes()))
            })
            .count() as f64;
        let rate = accepted / probes as f64;
        prop_assert!((rate - spec.grain()).abs() < 0.05,
            "rate {} vs grain {}", rate, spec.grain());
    }
}

proptest! {
    // Cluster simulations are comparatively expensive; a dozen cases at
    // two full cluster runs each still exercises the oracle thoroughly.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end oracle check: a settled cluster round-trips arbitrary
    /// put/get traffic exactly like a `HashMap`, and the whole exchange is
    /// a pure function of the seed — replaying the same operations on a
    /// second cluster with the same seed yields identical ack traces
    /// (version and ack count per write) and identical read results.
    #[test]
    fn cluster_roundtrips_against_hashmap_oracle(
        seed in 0u64..512,
        ops in prop::collection::vec(
            ("[a-z]{1,6}", prop::collection::vec(any::<u8>(), 0..12)),
            1..12,
        ),
    ) {
        let run = |ops: &[(String, Vec<u8>)]| {
            let mut cluster = Cluster::new(ClusterConfig::small(), seed);
            cluster.settle();
            let mut client = cluster.client();
            let mut oracle: HashMap<String, Vec<u8>> = HashMap::new();
            let mut acks = Vec::new();
            for (key, value) in ops {
                let w = client.put(&mut cluster, key.clone(), value.clone(), None, None);
                let status = client.recv(&mut cluster, w).unwrap_or_else(|e| {
                    panic!("write {key} failed: {e}")
                });
                acks.push((status.version, status.acks));
                oracle.insert(key.clone(), value.clone());
            }
            cluster.run_for(5_000);
            let mut reads = Vec::new();
            for (key, expected) in &oracle {
                let r = client.get(&mut cluster, key.clone());
                let tuple = client
                    .recv(&mut cluster, r)
                    .unwrap_or_else(|e| panic!("read {key} failed: {e}"))
                    .unwrap_or_else(|| panic!("oracle key {key} missing"));
                assert_eq!(&tuple.value.to_vec(), expected, "value mismatch for {key}");
                reads.push((key.clone(), tuple.version, tuple.value.to_vec()));
            }
            reads.sort();
            (acks, reads)
        };
        let first = run(&ops);
        let second = run(&ops);
        prop_assert_eq!(first, second, "same seed must replay identically");
    }

    /// Pipelining equivalence: N writes submitted concurrently through one
    /// session settle to the same per-key results (version and value on a
    /// fresh read) and the same persistent key population as the same
    /// writes issued lock-step, on a seed-replayed twin cluster. Pipelining
    /// changes *when* messages fly, not *what* the store converges to.
    #[test]
    fn pipelined_ops_match_sequential_outcome(
        seed in 0u64..256,
        values in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..8), 2..16),
    ) {
        // Distinct keys: concurrent writes to one key may order either way
        // (that ambiguity is inherent to concurrency, not to the client).
        let ops: Vec<(String, Vec<u8>)> = values
            .into_iter()
            .enumerate()
            .map(|(i, v)| (format!("pk:{i}"), v))
            .collect();
        let read_back = |cluster: &mut Cluster, ops: &[(String, Vec<u8>)]| {
            cluster.run_for(5_000);
            let mut client = cluster.client();
            let mut results = Vec::new();
            for (key, _) in ops {
                let r = client.get(&mut *cluster, key.clone());
                let t = client
                    .recv(&mut *cluster, r)
                    .expect("read completes")
                    .unwrap_or_else(|| panic!("key {key} missing"));
                results.push((key.clone(), t.version, t.value.to_vec()));
            }
            let mut stored: Vec<u64> =
                cluster.scan_persist_state().iter().map(|&(kh, _, _)| kh).collect();
            stored.sort_unstable();
            stored.dedup();
            (results, stored)
        };

        // Sequential: one round-trip at a time (the old lock-step plane).
        let mut seq = Cluster::new(ClusterConfig::small(), seed);
        seq.settle();
        let mut client = seq.client();
        for (key, value) in &ops {
            let w = client.put(&mut seq, key.clone(), value.clone(), None, None);
            client.recv(&mut seq, w).expect("sequential write ordered");
        }
        let sequential = read_back(&mut seq, &ops);

        // Pipelined: everything in flight at once, harvested by poll.
        let mut pip = Cluster::new(ClusterConfig::small(), seed);
        pip.settle();
        let mut client = pip.client();
        let pendings: Vec<_> = ops
            .iter()
            .map(|(key, value)| client.put(&mut pip, key.clone(), value.clone(), None, None))
            .collect();
        prop_assert_eq!(client.in_flight(), ops.len());
        for p in pendings {
            client.recv(&mut pip, p).expect("pipelined write ordered");
        }
        let pipelined = read_back(&mut pip, &ops);

        prop_assert_eq!(sequential, pipelined, "same final state and per-key results");
    }
}

/// PR 7 interning regression: an interned [`Key`]/[`Tag`] must be
/// observationally identical to the `String` it replaced — same
/// equality, ordering and `std::hash::Hash`, same sieve routing and the
/// same tag-slot placement (the cached hash *is* the stable hash the old
/// code recomputed per call). Seed-replayed whole-run equivalence is
/// covered by `tests/determinism_replay.rs`; these properties pin the
/// primitives for arbitrary text.
mod interning {
    use super::*;
    use dd_core::Tag;
    use dd_sieve::TagSieve;
    use dd_sim::rng::stable_hash;
    use std::collections::BTreeMap;
    use std::hash::{BuildHasher, RandomState};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Eq/Ord/Hash of interned keys and tags agree with the string
        /// semantics they replaced, including via clones (which share
        /// the interned text).
        #[test]
        fn key_and_tag_relations_match_strings(
            a in "[a-z0-9:/_-]{0,24}",
            b in "[a-z0-9:/_-]{0,24}",
        ) {
            let (ka, kb) = (Key::from(a.as_str()), Key::from(b.as_str()));
            prop_assert_eq!(ka == kb, a == b);
            prop_assert_eq!(ka.cmp(&kb), a.cmp(&b));
            prop_assert_eq!(ka.clone().cmp(&kb), a.cmp(&b));
            let s = RandomState::new();
            prop_assert_eq!(s.hash_one(&ka), s.hash_one(a.as_str()));
            let (ta, tb) = (Tag::from(a.as_str()), Tag::from(b.as_str()));
            prop_assert_eq!(ta == tb, a == b);
            prop_assert_eq!(ta.cmp(&tb), a.cmp(&b));
            prop_assert_eq!(s.hash_one(&ta), s.hash_one(a.as_str()));
        }

        /// A map keyed by interned keys sorts, deduplicates and looks up
        /// exactly like one keyed by the raw strings.
        #[test]
        fn keyed_maps_behave_like_string_maps(
            texts in prop::collection::vec("[a-z0-9]{0,12}", 1..24),
        ) {
            let by_key: BTreeMap<Key, usize> =
                texts.iter().enumerate().map(|(i, t)| (Key::from(t.as_str()), i)).collect();
            let by_str: BTreeMap<&str, usize> =
                texts.iter().enumerate().map(|(i, t)| (t.as_str(), i)).collect();
            prop_assert_eq!(by_key.len(), by_str.len());
            let keys: Vec<&str> = by_key.keys().map(Key::as_str).collect();
            let strs: Vec<&str> = by_str.keys().copied().collect();
            prop_assert_eq!(keys, strs, "same iteration order");
            for (t, i) in &by_str {
                prop_assert_eq!(by_key.get(&Key::from(*t)), Some(i));
            }
        }

        /// Sieve routing is unchanged: the tuple's cached key hash puts
        /// it in exactly the sieves that accepted the un-interned key.
        #[test]
        fn sieve_routing_is_preserved(
            n in 1u64..48,
            r in 1u32..6,
            key in "[a-z0-9:/_-]{1,32}",
        ) {
            let tuple = StoredTuple::new(
                Key::from(key.as_str()), Version(1), b"v".to_vec(), None, None);
            prop_assert_eq!(tuple.key_hash, stable_hash(key.as_bytes()));
            for i in 0..n {
                let spec = SieveSpec::default_for(i, n, r);
                prop_assert_eq!(
                    spec.accepts(&tuple.item_meta()),
                    spec.accepts(&ItemMeta::from_key(key.as_bytes())),
                    "sieve {} disagrees for {:?}", i, &key
                );
            }
        }

        /// Tag-slot placement is unchanged: the interned tag's cached
        /// hash lands a batch on the same slot owners the per-call hash
        /// of the text did.
        #[test]
        fn tag_slot_placement_is_preserved(
            tag in "[a-z0-9:/_-]{1,24}",
            slots in 1u64..64,
            r in 1u32..6,
        ) {
            let interned = Tag::from(tag.as_str());
            prop_assert_eq!(
                TagSieve::tag_slots(interned.hash(), slots, r),
                TagSieve::tag_slots(stable_hash(tag.as_bytes()), slots, r)
            );
        }
    }
}
