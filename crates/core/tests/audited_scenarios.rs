//! Property test: *arbitrary* small scenarios — random op mixes crossed
//! with random fault schedules, seeded — run audited end-to-end with zero
//! safety violations. The store-wide analogue of the PR-1
//! Cluster-vs-HashMap oracle: instead of one reference model, the whole
//! checker suite (read-your-writes, monotonic reads, tombstone safety,
//! multi-op atomicity, convergence) judges every randomly generated run.

use dd_core::scenario::library;
use dd_core::{
    Cluster, ClusterConfig, EnvChange, Fault, OpMix, Phase, Placement, Scenario, Tier, WorkloadKind,
};
use dd_sim::churn::ChurnModel;
use proptest::prelude::*;

const LOAD: u64 = 2_500;
const SERVE: u64 = 3_500;

/// One of the fault/environment timelines a generated scenario can draw.
fn schedule(pick: usize, scenario: Scenario) -> Scenario {
    let storm = ChurnModel::default().failure_rate(0.05).mean_downtime(1_200).permanent_prob(0.0);
    match pick {
        0 => scenario,
        1 => scenario
            .fault(LOAD + 300, Fault::Crash { tier: Tier::Persist, count: 3 })
            .fault(LOAD + SERVE, Fault::ReviveAll { tier: Tier::Persist }),
        2 => scenario
            .fault(LOAD + 300, Fault::Flap { tier: Tier::Persist, count: 4, down_for: 1_000 }),
        3 => scenario
            .fault(LOAD, Fault::ChurnBurst { tier: Tier::Persist, model: storm, span: SERVE }),
        4 => scenario
            .env(LOAD + 200, EnvChange::PartitionPersist { fraction: 0.4 })
            .env(LOAD + SERVE - 500, EnvChange::Heal),
        5 => scenario
            .fault(LOAD + 400, Fault::Flap { tier: Tier::Soft, count: 1, down_for: 800 })
            .env(LOAD + 200, EnvChange::DropProb(0.03))
            .env(LOAD + SERVE, EnvChange::DropProb(0.0)),
        _ => unreachable!("pick bounded by the strategy"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn arbitrary_audited_scenarios_have_no_safety_violations(
        seed in 1u64..100_000,
        sessions in 1usize..4,
        depth in 1usize..6,
        get_w in 1u32..5,
        del_w in 0u32..2,
        mget_w in 0u32..3,
        load_ops in 20u64..50,
        serve_ops in 20u64..60,
        fault_pick in 0usize..6,
        tag_placed in any::<bool>(),
        social in any::<bool>(),
    ) {
        let workload = if social {
            WorkloadKind::SocialFeed { users: 4 }
        } else {
            WorkloadKind::ZipfKeys { keys: 40, exponent: 1.1 }
        };
        let placement =
            if tag_placed { Placement::TagCollocation } else { Placement::RangePartition };
        let scenario = Scenario::new("generated", workload, seed)
            .phase(
                Phase::new("load", LOAD)
                    .mix(OpMix::idle().put(3).multi_put(1).batch(3))
                    .sessions(sessions)
                    .depth(depth)
                    .ops(load_ops),
            )
            .phase(
                Phase::new("serve", SERVE)
                    .mix(
                        OpMix::idle()
                            .put(1)
                            .get(get_w)
                            .delete(del_w)
                            .multi_get(mget_w),
                    )
                    .sessions(sessions)
                    .depth(depth)
                    .ops(serve_ops),
            )
            .phase(Phase::new("settle", 2_000))
            .audited();
        let scenario = schedule(fault_pick, scenario);

        let config = ClusterConfig::small().persist_n(14).placement(placement);
        let mut cluster = Cluster::new(config, seed ^ 0xA0D1);
        cluster.settle();
        let report = cluster.run_scenario(&scenario);
        let audit = report.audit.as_ref().expect("audited run");
        prop_assert!(
            audit.is_clean(),
            "seed {seed} fault {fault_pick}: {audit}"
        );
        prop_assert_eq!(audit.ops, report.issued(), "every op recorded");
    }
}

// The stock drills are also proptest-swept over seeds (fewer cases —
// they are long): the acceptance property holds beyond the fixed seeds
// the integration tests pin.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn library_drills_audit_clean_across_seeds(seed in 1u64..1_000) {
        let mut cluster =
            Cluster::new(ClusterConfig::small().persist_n(16), seed);
        cluster.settle();
        let report = cluster.run_scenario(&library::churn_storm(seed).audited());
        let audit = report.audit.as_ref().expect("audited run");
        prop_assert!(audit.is_clean(), "seed {seed}: {audit}");
    }
}
