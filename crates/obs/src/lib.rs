//! # dd-obs — the continuous telemetry plane
//!
//! The audit plane answers *was the run correct?* and the trace plane
//! answers *why was this op slow?*; this crate answers *what was the
//! system doing over time?* A [`Telemetry`] collector samples gauges
//! every K virtual ticks into bounded ring-buffer time series — event
//! queue depth, in-flight messages by kind, completion-log occupancy,
//! store and tombstone growth, repair-round outcomes, adaptive fanout,
//! failure-detector live sets — and [`TelemetryReport`] summarises each
//! series and runs three built-in detectors over the result:
//!
//! * **monotonic growth (leak)** — a series that never shrinks and is
//!   still climbing at the end of the run (a completion log nobody
//!   harvests, an unbounded backlog);
//! * **sustained backlog** — a series that ends far above its run-long
//!   median and stays there (an event queue that stopped draining);
//! * **repair divergence** — anti-entropy rounds staying dirty while
//!   recovering nothing (summaries that disagree forever).
//!
//! The collector is installed on the simulation through the kernel's
//! [`dd_sim::Sampler`] hook, so it is read-only by construction: an
//! instrumented run replays byte-identically, and when no sampler is
//! installed the hook costs one branch per event.
//!
//! Runs export two ways: [`Telemetry::to_prometheus`] renders the final
//! sample in Prometheus text-exposition format (promtool/Grafana), and
//! [`Telemetry::to_csv`] dumps every point of every series for
//! spreadsheets and plotting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dd_sim::json_escape;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Default virtual ticks between samples. At the stock drills' 24k–34k
/// tick horizons this yields ~100–140 points per series.
pub const DEFAULT_SAMPLE_PERIOD: u64 = 250;

/// Default ring-buffer capacity per series: past this many points the
/// oldest are dropped (and counted in [`Series::dropped`]).
pub const DEFAULT_SERIES_CAP: usize = 4096;

/// Well-known series names shared between the collector installed by
/// `dd-core` and the consumers (detectors, report digests, benches).
pub mod names {
    /// Engine event-queue depth (scheduled deliveries + timers).
    pub const QUEUE_DEPTH: &str = "sim.queue_depth";
    /// Total messages in flight, all kinds.
    pub const IN_FLIGHT: &str = "msg.in_flight";
    /// Cluster-wide un-harvested completion records (soft tier).
    pub const COMPLETION_BACKLOG: &str = "cluster.completion_backlog";
    /// Cluster-wide in-progress client operations (soft tier).
    pub const PENDING_OPS: &str = "cluster.pending_ops";
    /// Cluster-wide acked-but-undelivered writes (soft tier).
    pub const UNDELIVERED: &str = "cluster.undelivered";
    /// Cluster-wide stored entries, tombstones included (persist tier).
    pub const STORE_TUPLES: &str = "cluster.store_tuples";
    /// Cluster-wide stored payload bytes (persist tier).
    pub const STORE_BYTES: &str = "cluster.store_bytes";
    /// Cluster-wide tombstones retained (persist tier).
    pub const TOMBSTONES: &str = "cluster.tombstones";
    /// Soft-tier failure detectors' mean live-set size.
    pub const FD_LIVE: &str = "cluster.fd_live_mean";
    /// Mean adaptive fanout across soft coordinators.
    pub const FANOUT: &str = "cluster.fanout_mean";
    /// Anti-entropy rounds answered since the previous sample.
    pub const REPAIR_ROUNDS: &str = "rate.repair_rounds";
    /// Anti-entropy rounds that compared clean since the previous sample.
    pub const REPAIR_CLEAN: &str = "rate.repair_clean";
    /// Entries recovered by repair since the previous sample.
    pub const REPAIR_RECOVERED: &str = "rate.repair_recovered";
    /// Messages sent since the previous sample.
    pub const NET_SENT: &str = "rate.net_sent";
    /// Completion records retired by the cap since the previous sample.
    pub const COMPLETIONS_RETIRED: &str = "rate.completions_retired";
}

/// What a series is keyed by beyond its name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Label {
    /// A cluster- or engine-level series.
    None,
    /// A per-node series.
    Node(u64),
    /// A per-kind breakdown (e.g. in-flight messages by variant).
    Kind(&'static str),
}

impl Label {
    /// Renders the label as a Prometheus label set (`{node="3"}`), or
    /// `""` for [`Label::None`].
    fn prometheus(&self) -> String {
        match self {
            Label::None => String::new(),
            Label::Node(n) => format!("{{node=\"{n}\"}}"),
            Label::Kind(k) => format!("{{kind=\"{}\"}}", json_escape(k)),
        }
    }

    /// Renders the label for CSV (`node=3`, `kind=Fetch`, or empty).
    fn csv(&self) -> String {
        match self {
            Label::None => String::new(),
            Label::Node(n) => format!("node={n}"),
            Label::Kind(k) => format!("kind={k}"),
        }
    }
}

/// Identity of one time series: a static metric name plus a [`Label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesKey {
    /// Dotted metric name (`sim.queue_depth`).
    pub name: &'static str,
    /// Node/kind dimension, when the metric has one.
    pub label: Label,
}

impl fmt::Display for SeriesKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let l = self.label.csv();
        if l.is_empty() {
            write!(f, "{}", self.name)
        } else {
            write!(f, "{}[{l}]", self.name)
        }
    }
}

/// One bounded time series: `(tick, value)` points in sample order.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// The series identity.
    pub key: SeriesKey,
    points: VecDeque<(u64, f64)>,
    /// Points discarded from the front once the ring filled.
    pub dropped: u64,
}

impl Series {
    fn new(key: SeriesKey) -> Self {
        Series { key, points: VecDeque::new(), dropped: 0 }
    }

    fn push(&mut self, cap: usize, tick: u64, value: f64) {
        if self.points.len() == cap {
            self.points.pop_front();
            self.dropped += 1;
        }
        self.points.push_back((tick, value));
    }

    /// Number of retained points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no point has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The retained points, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.points.iter().copied()
    }

    /// The most recent `(tick, value)` point.
    #[must_use]
    pub fn last(&self) -> Option<(u64, f64)> {
        self.points.back().copied()
    }

    /// Largest recorded value.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest recorded value.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min)
    }

    /// Mean of the recorded values.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
    }

    /// Sum of the recorded values (the natural total for rate series).
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).sum()
    }

    /// Median of the recorded values.
    #[must_use]
    pub fn median(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let mut vs: Vec<f64> = self.points.iter().map(|&(_, v)| v).collect();
        vs.sort_by(f64::total_cmp);
        vs[vs.len() / 2]
    }

    fn values(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, v)| v).collect()
    }
}

/// The sampling collector: a set of bounded time series plus the
/// counter baselines used to turn cumulative counters into per-sample
/// rates.
#[derive(Debug, Clone, PartialEq)]
pub struct Telemetry {
    period: u64,
    cap: usize,
    series: BTreeMap<SeriesKey, Series>,
    prev_counters: BTreeMap<&'static str, u64>,
    samples: u64,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new(DEFAULT_SAMPLE_PERIOD)
    }
}

impl Telemetry {
    /// A collector sampling every `period` virtual ticks.
    #[must_use]
    pub fn new(period: u64) -> Self {
        Telemetry {
            period: period.max(1),
            cap: DEFAULT_SERIES_CAP,
            series: BTreeMap::new(),
            prev_counters: BTreeMap::new(),
            samples: 0,
        }
    }

    /// Builder: overrides the per-series ring capacity.
    #[must_use]
    pub fn with_series_cap(mut self, cap: usize) -> Self {
        self.cap = cap.max(1);
        self
    }

    /// Virtual ticks between samples.
    #[must_use]
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Number of sampling sweeps taken ([`Telemetry::mark_sample`] calls).
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Records one gauge observation at `tick`.
    pub fn gauge(&mut self, tick: u64, name: &'static str, label: Label, value: f64) {
        let key = SeriesKey { name, label };
        self.series.entry(key).or_insert_with(|| Series::new(key)).push(self.cap, tick, value);
    }

    /// Records a cumulative counter as a per-sample *rate*: the point
    /// stored is the delta since the previous call for `name`. The first
    /// observation records 0 and sets the baseline, so counter history
    /// from before instrumentation began (e.g. the settle window) is not
    /// attributed to the first interval.
    pub fn rate(&mut self, tick: u64, name: &'static str, current: u64) {
        let delta = match self.prev_counters.insert(name, current) {
            Some(prev) => current.saturating_sub(prev) as f64,
            None => 0.0,
        };
        self.gauge(tick, name, Label::None, delta);
    }

    /// Marks the end of one sampling sweep.
    pub fn mark_sample(&mut self) {
        self.samples += 1;
    }

    /// All series, ordered by key.
    pub fn series(&self) -> impl Iterator<Item = &Series> {
        self.series.values()
    }

    /// Looks up one series.
    #[must_use]
    pub fn get(&self, name: &str, label: Label) -> Option<&Series> {
        // Keys are &'static str but lookup only needs equality on content.
        self.series.iter().find(|(k, _)| k.name == name && k.label == label).map(|(_, s)| s)
    }

    /// Renders the *final* sample of every series in Prometheus text
    /// exposition format: one `# TYPE` line per metric name, one sample
    /// line per label combination, dots mapped to underscores and a
    /// `dd_` prefix (`cluster.store_bytes` → `dd_cluster_store_bytes`).
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name = "";
        for s in self.series.values() {
            let Some((_, value)) = s.last() else { continue };
            let sanitized = format!("dd_{}", s.key.name.replace('.', "_"));
            if s.key.name != last_name {
                out.push_str(&format!("# TYPE {sanitized} gauge\n"));
                last_name = s.key.name;
            }
            out.push_str(&format!("{sanitized}{} {value}\n", s.key.label.prometheus()));
        }
        out
    }

    /// Dumps every point of every series as CSV with the header
    /// `series,label,tick,value` — the full time-series export.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,label,tick,value\n");
        for s in self.series.values() {
            for (tick, value) in s.iter() {
                out.push_str(&format!("{},{},{tick},{value}\n", s.key.name, s.key.label.csv()));
            }
        }
        out
    }
}

/// Which detector produced a [`Finding`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detector {
    /// Monotonic growth that never stops: the leak signature.
    Leak,
    /// A series holding far above its run-long median at the end.
    Backlog,
    /// Repair rounds staying dirty while recovering nothing.
    RepairDivergence,
}

impl fmt::Display for Detector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Detector::Leak => write!(f, "leak"),
            Detector::Backlog => write!(f, "backlog"),
            Detector::RepairDivergence => write!(f, "repair-divergence"),
        }
    }
}

/// One detector verdict against one series.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// The detector that fired.
    pub detector: Detector,
    /// The offending series, rendered (`cluster.completion_backlog`).
    pub series: String,
    /// Human-readable evidence.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.detector, self.series, self.detail)
    }
}

/// Detector thresholds. The defaults are tuned for the stock drills'
/// scale; benches seeding deliberate regressions use them unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorConfig {
    /// Leak: minimum total growth (absolute) before a series qualifies.
    pub leak_min_growth: f64,
    /// Leak: the final quarter of samples must still have grown by at
    /// least this fraction of the total growth (and by at least 1.0).
    pub leak_tail_share: f64,
    /// Backlog: the trailing window must sit at or above this multiple
    /// of the run-long median.
    pub backlog_factor: f64,
    /// Backlog: absolute floor for the trailing window.
    pub backlog_min_depth: f64,
    /// Backlog: trailing samples that must all violate the bound.
    pub backlog_window: usize,
    /// Divergence: minimum mean dirty-round rate over the last half.
    pub divergence_min_rate: f64,
    /// Divergence: recovery rate at or below this is "recovering nothing".
    pub divergence_recovered_eps: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            leak_min_growth: 16.0,
            leak_tail_share: 0.05,
            backlog_factor: 4.0,
            backlog_min_depth: 64.0,
            backlog_window: 8,
            divergence_min_rate: 0.5,
            divergence_recovered_eps: 0.05,
        }
    }
}

/// Per-series digest in a [`TelemetryReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSummary {
    /// The series, rendered (`persist.store_tuples[node=12]`).
    pub series: String,
    /// Retained points.
    pub n: usize,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
    /// Mean value.
    pub mean: f64,
    /// Final value.
    pub last: f64,
}

/// The analysis layer over a finished [`Telemetry`] collection:
/// per-series summaries plus the detector verdicts.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryReport {
    /// Sampling sweeps taken.
    pub samples: u64,
    /// Virtual ticks between samples.
    pub period: u64,
    /// One digest per series, in key order.
    pub summaries: Vec<SeriesSummary>,
    /// Detector verdicts, in detector-then-series order.
    pub findings: Vec<Finding>,
    /// The full collected data (exporters live here).
    pub data: Telemetry,
}

impl TelemetryReport {
    /// Builds the report with default detector thresholds.
    #[must_use]
    pub fn build(data: Telemetry) -> Self {
        Self::build_with(data, &DetectorConfig::default())
    }

    /// Builds the report with explicit detector thresholds.
    #[must_use]
    pub fn build_with(data: Telemetry, cfg: &DetectorConfig) -> Self {
        let summaries = data
            .series()
            .filter(|s| !s.is_empty())
            .map(|s| SeriesSummary {
                series: s.key.to_string(),
                n: s.len(),
                min: s.min(),
                max: s.max(),
                mean: s.mean(),
                last: s.last().map_or(0.0, |(_, v)| v),
            })
            .collect();
        let mut findings = Vec::new();
        // Detectors scan the cluster/engine-level series only: per-node
        // series are exported raw, but a leak that matters shows in the
        // aggregate, and aggregate verdicts stay O(metrics) not O(nodes).
        for s in data.series().filter(|s| s.key.label == Label::None) {
            if let Some(f) = detect_leak(s, cfg) {
                findings.push(f);
            }
            if let Some(f) = detect_backlog(s, cfg) {
                findings.push(f);
            }
        }
        if let Some(f) = detect_divergence(&data, cfg) {
            findings.push(f);
        }
        TelemetryReport {
            samples: data.samples(),
            period: data.period(),
            summaries,
            findings,
            data,
        }
    }

    /// True when no detector fired.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings from one detector.
    pub fn findings_of(&self, d: Detector) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.detector == d)
    }

    /// The one-line digest the scenario report prints: peak queue depth,
    /// peak store bytes, total repair rounds.
    #[must_use]
    pub fn digest(&self) -> String {
        let peak = |name: &str| self.data.get(name, Label::None).map_or(0.0, Series::max);
        let rounds = self.data.get(names::REPAIR_ROUNDS, Label::None).map_or(0.0, Series::sum);
        format!(
            "telemetry: {} samples every {} ticks, peak queue depth {}, \
             peak store bytes {}, repair rounds {}, findings {}",
            self.samples,
            self.period,
            peak(names::QUEUE_DEPTH),
            peak(names::STORE_BYTES),
            rounds,
            self.findings.len(),
        )
    }

    /// A multi-line text block: the digest, the cluster-level series
    /// table, and every finding.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.digest());
        out.push('\n');
        out.push_str("cluster series (min/mean/max/last):\n");
        for s in self.summaries.iter().filter(|s| !s.series.contains('[')) {
            out.push_str(&format!(
                "  {:<28} {:>10.1} {:>10.1} {:>10.1} {:>10.1}\n",
                s.series, s.min, s.mean, s.max, s.last
            ));
        }
        if self.findings.is_empty() {
            out.push_str("detectors: clean\n");
        } else {
            for f in &self.findings {
                out.push_str(&format!("detector {f}\n"));
            }
        }
        out
    }
}

/// Leak: the series never decreases, its total growth is material, and
/// it is *still* growing across the final quarter of the run — which
/// separates a leak from load-then-plateau shapes like store size.
fn detect_leak(s: &Series, cfg: &DetectorConfig) -> Option<Finding> {
    let vs = s.values();
    let n = vs.len();
    if n < 8 {
        return None;
    }
    if vs.windows(2).any(|w| w[1] < w[0] - 1e-9) {
        return None;
    }
    let growth = vs[n - 1] - vs[0];
    if growth < cfg.leak_min_growth {
        return None;
    }
    let tail_start = n - (n / 4).max(2);
    let tail_growth = vs[n - 1] - vs[tail_start];
    if tail_growth < (growth * cfg.leak_tail_share).max(1.0) {
        return None;
    }
    Some(Finding {
        detector: Detector::Leak,
        series: s.key.to_string(),
        detail: format!(
            "monotonic growth {:.0} → {:.0} over {n} samples, still +{tail_growth:.0} \
             across the final quarter",
            vs[0],
            vs[n - 1],
        ),
    })
}

/// Backlog: the trailing window sits entirely at or above both the
/// absolute floor and `backlog_factor ×` the run-long median — the
/// series stopped draining.
fn detect_backlog(s: &Series, cfg: &DetectorConfig) -> Option<Finding> {
    let vs = s.values();
    let n = vs.len();
    if n < cfg.backlog_window.max(8) {
        return None;
    }
    let bound = (s.median() * cfg.backlog_factor).max(cfg.backlog_min_depth);
    let tail = &vs[n - cfg.backlog_window..];
    if tail.iter().any(|&v| v < bound) {
        return None;
    }
    Some(Finding {
        detector: Detector::Backlog,
        series: s.key.to_string(),
        detail: format!(
            "last {} samples all ≥ {bound:.0} (median {:.0}) — not draining",
            cfg.backlog_window,
            s.median(),
        ),
    })
}

/// Divergence: over the last half of the run, repair rounds keep
/// comparing dirty while recovering ~nothing — the summaries disagree
/// but no deltas flow, so they will disagree forever.
fn detect_divergence(data: &Telemetry, cfg: &DetectorConfig) -> Option<Finding> {
    let rounds = data.get(names::REPAIR_ROUNDS, Label::None)?;
    let clean = data.get(names::REPAIR_CLEAN, Label::None)?;
    let recovered = data.get(names::REPAIR_RECOVERED, Label::None)?;
    // Align the three series from the tail (they may have started on
    // different sweeps) and look at the last half.
    let n = rounds.len().min(clean.len()).min(recovered.len());
    if n < 8 {
        return None;
    }
    let half = n / 2;
    let tail_mean = |s: &Series| {
        let vs = s.values();
        let t = &vs[vs.len() - half..];
        t.iter().sum::<f64>() / half as f64
    };
    let dirty_rate = tail_mean(rounds) - tail_mean(clean);
    let recovery_rate = tail_mean(recovered);
    if dirty_rate < cfg.divergence_min_rate || recovery_rate > cfg.divergence_recovered_eps {
        return None;
    }
    Some(Finding {
        detector: Detector::RepairDivergence,
        series: names::REPAIR_ROUNDS.to_string(),
        detail: format!(
            "mean {dirty_rate:.2} dirty rounds/sample over the last half while \
             recovering {recovery_rate:.2} entries/sample — rounds climb, deltas flat",
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gauge_series(values: &[f64]) -> Telemetry {
        let mut t = Telemetry::new(10);
        for (i, &v) in values.iter().enumerate() {
            t.gauge(i as u64 * 10, "test.series", Label::None, v);
            t.mark_sample();
        }
        t
    }

    fn leak_findings(values: &[f64]) -> Vec<Finding> {
        let report = TelemetryReport::build(gauge_series(values));
        report.findings_of(Detector::Leak).cloned().collect()
    }

    #[test]
    fn ring_buffer_caps_and_counts_drops() {
        let mut t = Telemetry::new(1).with_series_cap(4);
        for i in 0..10u64 {
            t.gauge(i, "x", Label::None, i as f64);
        }
        let s = t.get("x", Label::None).unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.dropped, 6);
        assert_eq!(s.iter().next(), Some((6, 6.0)));
        assert_eq!(s.last(), Some((9, 9.0)));
    }

    #[test]
    fn rates_baseline_on_first_observation() {
        let mut t = Telemetry::new(1);
        t.rate(0, "rate.x", 400); // settle-era count: baseline, not a spike
        t.rate(10, "rate.x", 430);
        t.rate(20, "rate.x", 430);
        let s = t.get("rate.x", Label::None).unwrap();
        let pts: Vec<f64> = s.iter().map(|(_, v)| v).collect();
        assert_eq!(pts, vec![0.0, 30.0, 0.0]);
        assert_eq!(s.sum(), 30.0);
    }

    #[test]
    fn leak_detector_flags_unbroken_growth() {
        let values: Vec<f64> = (0..32).map(|i| (i * 8) as f64).collect();
        let fs = leak_findings(&values);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].series, "test.series");
    }

    #[test]
    fn leak_detector_ignores_load_then_plateau() {
        // Grows fast for the first quarter, then flat: store-size shape.
        let values: Vec<f64> =
            (0..32).map(|i| if i < 8 { (i * 50) as f64 } else { 350.0 }).collect();
        assert!(leak_findings(&values).is_empty());
    }

    #[test]
    fn leak_detector_ignores_fluctuating_series() {
        let values: Vec<f64> = (0..32).map(|i| if i % 2 == 0 { 100.0 } else { 40.0 }).collect();
        assert!(leak_findings(&values).is_empty());
    }

    #[test]
    fn leak_detector_ignores_tiny_growth() {
        let values: Vec<f64> = (0..32).map(|i| (i as f64) * 0.25).collect();
        assert!(leak_findings(&values).is_empty(), "total growth 7.75 < min 16");
    }

    #[test]
    fn backlog_detector_flags_a_queue_that_stopped_draining() {
        // Low for most of the run, then pinned high for the tail.
        let values: Vec<f64> = (0..40).map(|i| if i < 30 { 20.0 } else { 500.0 }).collect();
        let report = TelemetryReport::build(gauge_series(&values));
        let fs: Vec<_> = report.findings_of(Detector::Backlog).collect();
        assert_eq!(fs.len(), 1);
    }

    #[test]
    fn backlog_detector_ignores_a_drained_queue() {
        // Bursty mid-run, empty at the end — healthy drill shape.
        let values: Vec<f64> = (0..40).map(|i| if i < 30 { 300.0 } else { 2.0 }).collect();
        let report = TelemetryReport::build(gauge_series(&values));
        assert_eq!(report.findings_of(Detector::Backlog).count(), 0);
    }

    fn repair_telemetry(rounds: &[f64], clean: &[f64], recovered: &[f64]) -> Telemetry {
        let mut t = Telemetry::new(10);
        for i in 0..rounds.len() {
            t.gauge(i as u64, names::REPAIR_ROUNDS, Label::None, rounds[i]);
            t.gauge(i as u64, names::REPAIR_CLEAN, Label::None, clean[i]);
            t.gauge(i as u64, names::REPAIR_RECOVERED, Label::None, recovered[i]);
            t.mark_sample();
        }
        t
    }

    #[test]
    fn divergence_detector_flags_dirty_rounds_with_no_deltas() {
        let n = 16;
        let rounds = vec![4.0; n];
        let clean = vec![1.0; n]; // 3 dirty rounds per sample…
        let recovered = vec![0.0; n]; // …recovering nothing
        let report = TelemetryReport::build(repair_telemetry(&rounds, &clean, &recovered));
        assert_eq!(report.findings_of(Detector::RepairDivergence).count(), 1);
    }

    #[test]
    fn divergence_detector_ignores_dirty_rounds_that_recover() {
        let n = 16;
        let rounds = vec![4.0; n];
        let clean = vec![1.0; n];
        let recovered = vec![2.0; n]; // deltas are flowing: catching up
        let report = TelemetryReport::build(repair_telemetry(&rounds, &clean, &recovered));
        assert_eq!(report.findings_of(Detector::RepairDivergence).count(), 0);
    }

    #[test]
    fn divergence_detector_ignores_steady_state_clean_rounds() {
        let n = 16;
        let rounds = vec![4.0; n];
        let clean = vec![4.0; n];
        let recovered = vec![0.0; n];
        let report = TelemetryReport::build(repair_telemetry(&rounds, &clean, &recovered));
        assert_eq!(report.findings_of(Detector::RepairDivergence).count(), 0);
    }

    #[test]
    fn prometheus_export_renders_last_sample_with_labels() {
        let mut t = Telemetry::new(10);
        t.gauge(0, "sim.queue_depth", Label::None, 5.0);
        t.gauge(10, "sim.queue_depth", Label::None, 9.0);
        t.gauge(10, "persist.store_tuples", Label::Node(3), 120.0);
        t.gauge(10, "msg.in_flight", Label::Kind("Fetch"), 2.0);
        let text = t.to_prometheus();
        assert!(text.contains("# TYPE dd_sim_queue_depth gauge\n"));
        assert!(text.contains("dd_sim_queue_depth 9\n"), "last value wins:\n{text}");
        assert!(text.contains("dd_persist_store_tuples{node=\"3\"} 120\n"));
        assert!(text.contains("dd_msg_in_flight{kind=\"Fetch\"} 2\n"));
        // One TYPE line per metric name, not per label combination.
        assert_eq!(text.matches("# TYPE").count(), 3);
    }

    #[test]
    fn csv_export_dumps_every_point() {
        let mut t = Telemetry::new(10);
        t.gauge(0, "a.b", Label::None, 1.0);
        t.gauge(10, "a.b", Label::None, 2.0);
        t.gauge(10, "c.d", Label::Node(7), 3.5);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "series,label,tick,value");
        assert_eq!(lines[1], "a.b,,0,1");
        assert_eq!(lines[2], "a.b,,10,2");
        assert_eq!(lines[3], "c.d,node=7,10,3.5");
    }

    #[test]
    fn digest_reads_the_well_known_series() {
        let mut t = Telemetry::new(10);
        t.gauge(0, names::QUEUE_DEPTH, Label::None, 40.0);
        t.gauge(10, names::QUEUE_DEPTH, Label::None, 90.0);
        t.gauge(10, names::STORE_BYTES, Label::None, 4096.0);
        t.rate(0, names::REPAIR_ROUNDS, 10);
        t.rate(10, names::REPAIR_ROUNDS, 16);
        t.mark_sample();
        t.mark_sample();
        let report = TelemetryReport::build(t);
        let d = report.digest();
        assert!(d.contains("peak queue depth 90"), "{d}");
        assert!(d.contains("peak store bytes 4096"), "{d}");
        assert!(d.contains("repair rounds 6"), "{d}");
    }

    #[test]
    fn report_summary_lists_findings() {
        let values: Vec<f64> = (0..32).map(|i| (i * 8) as f64).collect();
        let report = TelemetryReport::build(gauge_series(&values));
        assert!(!report.is_clean());
        let s = report.summary();
        assert!(s.contains("[leak] test.series"), "{s}");
    }
}
