//! Correlation (tag) sieves — collocating related tuples.
//!
//! §III-B-1: *"The most straightforward approach to item co-location is by
//! using smarter sieve functions that, instead of blindly keeping items
//! based on a key, are able to take advantage of tuple correlation and thus
//! locally co-locate related items."*
//!
//! A [`TagSieve`] deterministically maps each *tag* (e.g. "user 42's
//! timeline") to `r` of `n` tag-slots and accepts an item iff the node owns
//! the item's tag slot. All items sharing a tag therefore land on the same
//! `r` nodes — collocation — while untagged items fall back to an inner
//! uniform sieve so the key space stays covered.

use crate::{ItemMeta, Sieve, UniformSieve};
use dd_sim::rng::mix;

/// Sieve that collocates equal-tag items on the same nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TagSieve {
    /// This node's slot index in `0..slots`.
    slot: u64,
    /// Number of tag slots (usually the population estimate).
    slots: u64,
    /// Replication degree: a tag maps to `r` consecutive slots.
    r: u32,
    /// Fallback for untagged items.
    fallback: UniformSieve,
}

impl TagSieve {
    /// Creates the sieve for slot `slot` of `slots`, with tag replication
    /// `r`; untagged items use an `r/slots` uniform fallback salted by the
    /// slot.
    ///
    /// # Panics
    /// Panics if `slots == 0`, `r == 0` or `slot >= slots`.
    #[must_use]
    pub fn new(slot: u64, slots: u64, r: u32) -> Self {
        assert!(slots > 0, "slot count must be positive");
        assert!(r > 0, "replication degree must be positive");
        assert!(slot < slots, "slot out of range");
        TagSieve { slot, slots, r, fallback: UniformSieve::replication(slot, r, slots) }
    }

    /// The slots a tag hashes to under a `(slots, r)` population — the
    /// *routing view* of the collocation invariant. A coordinator that
    /// knows the population parameters can name a tag's `r` owners without
    /// holding any sieve instance, which is what lets a tag-scoped read
    /// contact exactly those nodes instead of fanning out.
    ///
    /// # Panics
    /// Panics if `slots == 0`.
    #[must_use]
    pub fn tag_slots(tag_hash: u64, slots: u64, r: u32) -> Vec<u64> {
        assert!(slots > 0, "slot count must be positive");
        let home = mix(tag_hash, 0x7A6) % slots;
        (0..u64::from(r).min(slots)).map(|k| (home + k) % slots).collect()
    }

    /// The slots a tag hashes to (its `r` consecutive owners).
    #[must_use]
    pub fn slots_for_tag(&self, tag_hash: u64) -> Vec<u64> {
        Self::tag_slots(tag_hash, self.slots, self.r)
    }

    /// Whether this node owns `tag_hash`.
    #[must_use]
    pub fn owns_tag(&self, tag_hash: u64) -> bool {
        self.slots_for_tag(tag_hash).contains(&self.slot)
    }
}

impl Sieve for TagSieve {
    fn accepts(&self, item: &ItemMeta) -> bool {
        match item.tag_hash {
            Some(t) => self.owns_tag(t),
            None => self.fallback.accepts(item),
        }
    }

    fn grain(&self) -> f64 {
        (f64::from(self.r) / self.slots as f64).min(1.0)
    }

    fn class_id(&self) -> u64 {
        mix(mix(self.slot, self.slots), u64::from(self.r) ^ 0x7A65)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_tags_collocate_on_identical_nodes() {
        let n = 50u64;
        let r = 3u32;
        let sieves: Vec<TagSieve> = (0..n).map(|i| TagSieve::new(i, n, r)).collect();
        let a = ItemMeta::from_key(b"post-1").with_tag(b"feed:alice");
        let b = ItemMeta::from_key(b"post-2").with_tag(b"feed:alice");
        let owners_a: Vec<u64> = (0..n).filter(|&i| sieves[i as usize].accepts(&a)).collect();
        let owners_b: Vec<u64> = (0..n).filter(|&i| sieves[i as usize].accepts(&b)).collect();
        assert_eq!(owners_a, owners_b, "same tag ⇒ same nodes");
        assert_eq!(owners_a.len(), r as usize);
    }

    #[test]
    fn different_tags_usually_differ() {
        let n = 50u64;
        let sieves: Vec<TagSieve> = (0..n).map(|i| TagSieve::new(i, n, 2)).collect();
        let mut distinct = 0;
        for t in 0..50u32 {
            let x = ItemMeta::from_key(b"k").with_tag(format!("tag-{t}").as_bytes());
            let y = ItemMeta::from_key(b"k").with_tag(format!("tag-{}", t + 1).as_bytes());
            let ox: Vec<u64> = (0..n).filter(|&i| sieves[i as usize].accepts(&x)).collect();
            let oy: Vec<u64> = (0..n).filter(|&i| sieves[i as usize].accepts(&y)).collect();
            if ox != oy {
                distinct += 1;
            }
        }
        assert!(distinct >= 45, "tags should spread: only {distinct}/50 differ");
    }

    #[test]
    fn untagged_items_fall_back_to_uniform() {
        let n = 200u64;
        let r = 4u32;
        let sieves: Vec<TagSieve> = (0..n).map(|i| TagSieve::new(i, n, r)).collect();
        let samples = 2_000u64;
        let total: usize = (0..samples)
            .map(|i| {
                let item = ItemMeta::from_key(format!("plain-{i}").as_bytes());
                sieves.iter().filter(|s| s.accepts(&item)).count()
            })
            .sum();
        let mean = total as f64 / samples as f64;
        assert!((mean - f64::from(r)).abs() < 0.5, "untagged mean replicas {mean}");
    }

    #[test]
    fn tag_load_is_balanced_across_slots() {
        let n = 40u64;
        let sieves: Vec<TagSieve> = (0..n).map(|i| TagSieve::new(i, n, 1)).collect();
        let mut load = vec![0u32; n as usize];
        for t in 0..4_000u32 {
            let item = ItemMeta::from_key(b"x").with_tag(format!("g{t}").as_bytes());
            for (i, s) in sieves.iter().enumerate() {
                if s.accepts(&item) {
                    load[i] += 1;
                }
            }
        }
        let max = *load.iter().max().unwrap();
        let min = *load.iter().min().unwrap();
        assert!(max < 3 * min.max(1), "tag slots unbalanced: min {min} max {max}");
    }

    #[test]
    fn routing_view_matches_instance_view() {
        for tag in 0..200u64 {
            let s = TagSieve::new(3, 17, 4);
            assert_eq!(s.slots_for_tag(tag), TagSieve::tag_slots(tag, 17, 4));
        }
    }

    #[test]
    fn grain_is_r_over_slots() {
        let s = TagSieve::new(0, 100, 5);
        assert!((s.grain() - 0.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "slot out of range")]
    fn bad_slot_panics() {
        let _ = TagSieve::new(10, 10, 1);
    }
}
