//! Key-range sieves — the DHT-like partition the paper compares against.
//!
//! §III-A: *"This is in fact similar to what is done in structured DHT
//! approaches where each node is responsible for a given portion of the key
//! space."* A [`RangeSieve`] accepts keys whose hash falls in one of its
//! half-open ranges; [`RangeSieve::partition`] builds the canonical
//! `r`-fold successor-replicated partition used by E3 and by the structured
//! baseline.

use crate::{ItemMeta, Sieve};
use dd_sim::rng::{fnv1a, mix};

/// A sieve accepting hashed keys inside a set of half-open ranges
/// `[start, end)` of the `u64` key space. An empty `end` of 0 in the last
/// range is interpreted as wrap-around to `u64::MAX` inclusive via
/// splitting at construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeSieve {
    /// Sorted, non-overlapping half-open ranges.
    ranges: Vec<(u64, u64)>,
}

impl RangeSieve {
    /// Creates a sieve over the given `[start, end)` ranges.
    /// Ranges are normalised (sorted, merged); empty ranges are dropped.
    #[must_use]
    pub fn new(mut ranges: Vec<(u64, u64)>) -> Self {
        ranges.retain(|(s, e)| e > s);
        ranges.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
        for (s, e) in ranges {
            match merged.last_mut() {
                Some((_, le)) if s <= *le => *le = (*le).max(e),
                _ => merged.push((s, e)),
            }
        }
        RangeSieve { ranges: merged }
    }

    /// The `r`-fold replicated partition sieve for node `index` of `n`:
    /// the key space is split into `n` equal segments and node `i` covers
    /// segments `i, i+1, …, i+r−1 (mod n)` — successor-list replication in
    /// DHT terms.
    ///
    /// Every key is covered by exactly `min(r, n)` nodes, satisfying the
    /// paper's correctness requirement by construction.
    ///
    /// # Panics
    /// Panics if `n == 0`, `r == 0` or `index >= n`.
    #[must_use]
    pub fn partition(index: u64, n: u64, r: u32) -> Self {
        assert!(n > 0, "population must be positive");
        assert!(r > 0, "replication degree must be positive");
        assert!(index < n, "node index out of range");
        let seg = u64::MAX / n; // segment width (last segment absorbs slack)
        let r = u64::from(r).min(n);
        let mut ranges = Vec::with_capacity(r as usize);
        for k in 0..r {
            let s = (index + k) % n;
            let start = s * seg;
            let end = if s == n - 1 { u64::MAX } else { (s + 1) * seg };
            ranges.push((start, end));
        }
        RangeSieve::new(ranges)
    }

    /// The normalised ranges.
    #[must_use]
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }

    /// Whether a raw hash is accepted (half-open; `u64::MAX` itself is
    /// treated as belonging to a range ending at `u64::MAX`).
    #[must_use]
    pub fn contains_hash(&self, h: u64) -> bool {
        self.ranges.iter().any(|&(s, e)| h >= s && (h < e || (e == u64::MAX && h == u64::MAX)))
    }
}

impl Sieve for RangeSieve {
    fn accepts(&self, item: &ItemMeta) -> bool {
        self.contains_hash(item.key_hash)
    }

    fn grain(&self) -> f64 {
        let covered: f64 = self.ranges.iter().map(|&(s, e)| (e - s) as f64).sum();
        covered / u64::MAX as f64
    }

    fn class_id(&self) -> u64 {
        let mut acc = fnv1a(b"range-sieve");
        for &(s, e) in &self.ranges {
            acc = mix(acc, mix(s, e));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation_merges_and_sorts() {
        let s = RangeSieve::new(vec![(50, 60), (10, 20), (15, 30), (5, 5)]);
        assert_eq!(s.ranges(), &[(10, 30), (50, 60)]);
    }

    #[test]
    fn contains_hash_respects_half_open_bounds() {
        let s = RangeSieve::new(vec![(10, 20)]);
        assert!(!s.contains_hash(9));
        assert!(s.contains_hash(10));
        assert!(s.contains_hash(19));
        assert!(!s.contains_hash(20));
    }

    #[test]
    fn partition_covers_every_key_exactly_r_times() {
        let n = 16u64;
        let r = 3u32;
        let sieves: Vec<RangeSieve> = (0..n).map(|i| RangeSieve::partition(i, n, r)).collect();
        // Probe a grid of hashes plus the extremes.
        let mut probes: Vec<u64> =
            (0..10_000u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
        probes.push(0);
        probes.push(u64::MAX);
        for h in probes {
            let owners = sieves.iter().filter(|s| s.contains_hash(h)).count();
            assert_eq!(owners, r as usize, "hash {h} covered {owners} times");
        }
    }

    #[test]
    fn partition_r_capped_at_n() {
        let s = RangeSieve::partition(0, 2, 5);
        assert!((s.grain() - 1.0).abs() < 1e-9, "covering all segments covers everything");
    }

    #[test]
    fn grain_reflects_covered_fraction() {
        let n = 8u64;
        let s = RangeSieve::partition(3, n, 2);
        assert!((s.grain() - 0.25).abs() < 1e-3);
    }

    #[test]
    fn class_id_distinguishes_partitions() {
        let a = RangeSieve::partition(0, 8, 2);
        let b = RangeSieve::partition(1, 8, 2);
        let a2 = RangeSieve::partition(0, 8, 2);
        assert_eq!(a.class_id(), a2.class_id());
        assert_ne!(a.class_id(), b.class_id());
    }

    #[test]
    fn accepts_uses_key_hash() {
        let s = RangeSieve::new(vec![(0, u64::MAX)]);
        assert!(s.accepts(&ItemMeta::from_key(b"anything")));
        let none = RangeSieve::new(vec![]);
        assert!(!none.accepts(&ItemMeta::from_key(b"anything")));
        assert_eq!(none.grain(), 0.0);
    }

    #[test]
    #[should_panic(expected = "index")]
    fn out_of_range_index_panics() {
        let _ = RangeSieve::partition(8, 8, 1);
    }
}
