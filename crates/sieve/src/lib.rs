//! # dd-sieve — local sieve functions
//!
//! §III-A of the paper: *"Our idea is to address this by means of local
//! sieves that should retain only small fractions of data. Thus upon
//! reception of a new message, nodes locally decide if the message falls
//! into the sieve range … The sieve function can be computed locally in a
//! random fashion or take into account some similarity metric … The only
//! correctness requirement is that all the possibilities in the key space
//! are covered in order to avoid data-loss."*
//!
//! Sieve flavours implemented here, each cited to its motivating sentence:
//!
//! * [`UniformSieve`] — "a simple sieve function could simply store locally
//!   an item with probability given by 1/number of nodes"; the
//!   [`UniformSieve::replication`] constructor generalises to `r/N`.
//! * [`RangeSieve`] — "similar to what is done in structured DHT approaches
//!   where each node is responsible for a given portion of the key space".
//! * [`CapacitySieve`] — "flexibility to cope with nodes with disparate
//!   storage capabilities … adjusting the sieve grain".
//! * [`TagSieve`] — §III-B-1 "smarter sieve functions that … take advantage
//!   of tuple correlation and thus locally co-locate related items".
//! * [`HistogramSieve`] — §III-B-1 "if data follows a normal distribution,
//!   sieves located near the mean ± standard deviation need to be much
//!   finer than sieves outside that region".
//!
//! [`coverage`] provides the checker for the correctness requirement (full
//! key-space coverage ⇒ no data loss).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacity;
pub mod coverage;
pub mod histogram;
pub mod item;
pub mod range;
pub mod tag;
pub mod uniform;

pub use capacity::CapacitySieve;
pub use coverage::{check_coverage, CoverageReport};
pub use histogram::HistogramSieve;
pub use item::ItemMeta;
pub use range::RangeSieve;
pub use tag::TagSieve;
pub use uniform::UniformSieve;

/// A local storage-decision function (the paper's "sieve").
///
/// Implementations must be **deterministic**: the same sieve instance must
/// always give the same answer for the same item, because replicas are
/// located by re-evaluating sieves (never by consulting a directory).
pub trait Sieve {
    /// Whether this node should retain `item`.
    fn accepts(&self, item: &ItemMeta) -> bool;

    /// Expected fraction of a uniform key space this sieve retains — the
    /// paper's "sieve grain".
    fn grain(&self) -> f64;

    /// Stable identifier of the sieve's *class*: two nodes with equal
    /// `class_id` are responsible for the same portion of the key space.
    /// Random-walk redundancy estimation (§III-A) groups nodes by this id
    /// so that "many tuples may be checked at once".
    fn class_id(&self) -> u64;
}
