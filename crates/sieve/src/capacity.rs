//! Capacity-weighted sieves.
//!
//! §III-A: *"This gives also enough flexibility to cope with nodes with
//! disparate storage capabilities, as it is only a matter of adjusting the
//! sieve grain in order to impact the amount of stored data."*
//!
//! [`CapacitySieve`] scales a base acceptance probability by the node's
//! capacity weight, so a node with twice the disk stores twice the data in
//! expectation. E3 verifies stored volume tracks the weights.

use crate::{ItemMeta, Sieve, UniformSieve};
use dd_sim::rng::mix;

/// A uniform sieve whose grain is scaled by a capacity weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacitySieve {
    inner: UniformSieve,
    weight: f64,
}

impl CapacitySieve {
    /// Creates a capacity-aware replication sieve: base probability
    /// `r / n_estimate`, scaled by `weight` (1.0 = average node).
    ///
    /// With weights averaging 1 across the population, the expected number
    /// of replicas per item remains `r` while individual load follows the
    /// weights.
    ///
    /// # Panics
    /// Panics if `weight` is negative or `n_estimate` is zero.
    #[must_use]
    pub fn new(salt: u64, r: u32, n_estimate: u64, weight: f64) -> Self {
        assert!(weight >= 0.0, "capacity weight must be non-negative");
        assert!(n_estimate > 0, "population estimate must be positive");
        let p = (f64::from(r) * weight / n_estimate as f64).min(1.0);
        CapacitySieve { inner: UniformSieve::new(salt, p), weight }
    }

    /// The node's capacity weight.
    #[must_use]
    pub fn weight(&self) -> f64 {
        self.weight
    }
}

impl Sieve for CapacitySieve {
    fn accepts(&self, item: &ItemMeta) -> bool {
        self.inner.accepts(item)
    }

    fn grain(&self) -> f64 {
        self.inner.grain()
    }

    fn class_id(&self) -> u64 {
        mix(self.inner.class_id(), 0xCAFE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(n: u64) -> impl Iterator<Item = ItemMeta> {
        (0..n).map(|i| ItemMeta::from_key(format!("cap-{i}").as_bytes()))
    }

    #[test]
    fn stored_volume_tracks_weight() {
        let n = 100u64;
        let r = 4u32;
        let light = CapacitySieve::new(1, r, n, 0.5);
        let heavy = CapacitySieve::new(2, r, n, 2.0);
        let l = items(100_000).filter(|i| light.accepts(i)).count() as f64;
        let h = items(100_000).filter(|i| heavy.accepts(i)).count() as f64;
        let ratio = h / l;
        assert!((ratio - 4.0).abs() < 0.8, "heavy/light ratio {ratio}, expected ≈4");
    }

    #[test]
    fn mean_replication_preserved_with_unit_mean_weights() {
        let n = 300u64;
        let r = 3u32;
        // Alternate 0.5 / 1.5 weights: mean 1.0.
        let sieves: Vec<CapacitySieve> = (0..n)
            .map(|i| CapacitySieve::new(i, r, n, if i % 2 == 0 { 0.5 } else { 1.5 }))
            .collect();
        let samples = 3_000u64;
        let total: usize =
            items(samples).map(|it| sieves.iter().filter(|s| s.accepts(&it)).count()).sum();
        let mean = total as f64 / samples as f64;
        assert!((mean - f64::from(r)).abs() < 0.4, "mean replicas {mean}");
    }

    #[test]
    fn zero_weight_stores_nothing() {
        let s = CapacitySieve::new(3, 5, 100, 0.0);
        assert!(items(1_000).all(|i| !s.accepts(&i)));
        assert_eq!(s.grain(), 0.0);
        assert_eq!(s.weight(), 0.0);
    }

    #[test]
    fn probability_caps_at_one() {
        let s = CapacitySieve::new(3, 5, 10, 10.0);
        assert_eq!(s.grain(), 1.0);
        assert!(items(100).all(|i| s.accepts(&i)));
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn negative_weight_panics() {
        let _ = CapacitySieve::new(0, 1, 10, -0.1);
    }
}
