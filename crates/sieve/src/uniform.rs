//! Probabilistic uniform sieves (`1/N` and `r/N`).

use crate::{ItemMeta, Sieve};
use dd_sim::rng::mix;

/// Accepts each key independently with a fixed probability, derived
/// deterministically from `hash(key, node_salt)`.
///
/// §III-A: *"A simple sieve function could simply store locally an item
/// with probability given by 1/number of nodes … Using replication, the
/// sieve function could be simply extended to take into account the
/// replication degree, r, as r/number of nodes."*
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformSieve {
    salt: u64,
    probability: f64,
    threshold: u64,
}

impl UniformSieve {
    /// Sieve accepting with the given probability; `salt` should be unique
    /// per node (e.g. derived from its id) so acceptance sets are
    /// independent across nodes.
    ///
    /// # Panics
    /// Panics if `probability` is outside `[0, 1]`.
    #[must_use]
    pub fn new(salt: u64, probability: f64) -> Self {
        assert!((0.0..=1.0).contains(&probability), "probability must be in [0,1]");
        let threshold =
            if probability >= 1.0 { u64::MAX } else { (probability * (u64::MAX as f64)) as u64 };
        UniformSieve { salt, probability, threshold }
    }

    /// The paper's replicated uniform sieve: acceptance probability
    /// `r / n_estimate`, capped at 1. `n_estimate` typically comes from the
    /// epidemic size estimator (`dd-estimation`).
    ///
    /// # Panics
    /// Panics if `n_estimate` is zero.
    #[must_use]
    pub fn replication(salt: u64, r: u32, n_estimate: u64) -> Self {
        assert!(n_estimate > 0, "population estimate must be positive");
        let p = (f64::from(r) / n_estimate as f64).min(1.0);
        Self::new(salt, p)
    }

    /// The acceptance probability.
    #[must_use]
    pub fn probability(&self) -> f64 {
        self.probability
    }
}

impl Sieve for UniformSieve {
    fn accepts(&self, item: &ItemMeta) -> bool {
        if self.probability >= 1.0 {
            return true;
        }
        mix(item.key_hash, self.salt) <= self.threshold
    }

    fn grain(&self) -> f64 {
        self.probability
    }

    fn class_id(&self) -> u64 {
        // Uniform sieves are all in one logical class per salt: replicas of
        // a key live wherever the hash fell, so grouping is by salt.
        mix(0x5EED_u64, self.salt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(n: u64) -> impl Iterator<Item = ItemMeta> {
        (0..n).map(|i| ItemMeta::from_key(format!("key-{i}").as_bytes()))
    }

    #[test]
    fn acceptance_rate_tracks_probability() {
        for &p in &[0.01, 0.1, 0.5] {
            let sieve = UniformSieve::new(42, p);
            let accepted = items(200_000).filter(|i| sieve.accepts(i)).count();
            let rate = accepted as f64 / 200_000.0;
            assert!((rate - p).abs() < 0.01, "p={p} rate={rate}");
        }
    }

    #[test]
    fn acceptance_is_deterministic() {
        let sieve = UniformSieve::new(7, 0.3);
        let item = ItemMeta::from_key(b"stable");
        assert_eq!(sieve.accepts(&item), sieve.accepts(&item));
    }

    #[test]
    fn different_salts_accept_different_sets() {
        let a = UniformSieve::new(1, 0.2);
        let b = UniformSieve::new(2, 0.2);
        let overlap = items(50_000).filter(|i| a.accepts(i) && b.accepts(i)).count();
        let only_a = items(50_000).filter(|i| a.accepts(i)).count();
        // Independent sieves: overlap ≈ p² not p.
        assert!(overlap < only_a / 2, "overlap {overlap} vs a {only_a}");
    }

    #[test]
    fn replication_formula_matches_r_over_n() {
        let sieve = UniformSieve::replication(3, 5, 1_000);
        assert!((sieve.probability() - 0.005).abs() < 1e-12);
        let capped = UniformSieve::replication(3, 10, 4);
        assert_eq!(capped.probability(), 1.0);
    }

    #[test]
    fn expected_replicas_across_population_is_r() {
        // n nodes each with an independent r/n sieve: each item should be
        // kept by ≈ r nodes.
        let n = 400u64;
        let r = 5u32;
        let sieves: Vec<UniformSieve> =
            (0..n).map(|i| UniformSieve::replication(i, r, n)).collect();
        let mut total = 0usize;
        let samples = 2_000u64;
        for item in items(samples) {
            total += sieves.iter().filter(|s| s.accepts(&item)).count();
        }
        let mean = total as f64 / samples as f64;
        assert!((mean - f64::from(r)).abs() < 0.4, "mean replicas {mean}");
    }

    #[test]
    fn extreme_probabilities() {
        let never = UniformSieve::new(9, 0.0);
        let always = UniformSieve::new(9, 1.0);
        for item in items(100) {
            assert!(!never.accepts(&item));
            assert!(always.accepts(&item));
        }
        assert_eq!(never.grain(), 0.0);
        assert_eq!(always.grain(), 1.0);
    }

    #[test]
    fn class_id_groups_by_salt() {
        assert_eq!(UniformSieve::new(5, 0.1).class_id(), UniformSieve::new(5, 0.9).class_id());
        assert_ne!(UniformSieve::new(5, 0.1).class_id(), UniformSieve::new(6, 0.1).class_id());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let _ = UniformSieve::new(0, 1.5);
    }

    #[test]
    #[should_panic(expected = "estimate")]
    fn zero_population_panics() {
        let _ = UniformSieve::replication(0, 3, 0);
    }
}
