//! Key-space coverage checking.
//!
//! §III-A: *"The only correctness requirement is that all the possibilities
//! in the key space are covered in order to avoid data-loss."* The checker
//! samples the item space against a whole population of sieves and reports
//! the replica-count distribution, flagging uncovered regions.

use crate::{ItemMeta, Sieve};
use dd_sim::metrics::Summary;

/// Result of a coverage check over a population of sieves.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport {
    /// Items probed.
    pub probes: usize,
    /// Number of probed items accepted by zero sieves — any non-zero value
    /// is a data-loss hazard.
    pub uncovered: usize,
    /// Replica-count statistics over the probes.
    pub replicas: Summary,
}

impl CoverageReport {
    /// Whether every probe was covered at least once.
    #[must_use]
    pub fn is_fully_covered(&self) -> bool {
        self.uncovered == 0
    }

    /// Whether every probe reached at least `r` replicas.
    #[must_use]
    pub fn meets_replication(&self, r: u32) -> bool {
        self.replicas.min >= f64::from(r)
    }
}

/// Probes `items` against every sieve in `sieves` and reports coverage.
pub fn check_coverage<'a, S, I>(sieves: &[S], items: I) -> CoverageReport
where
    S: Sieve,
    I: IntoIterator<Item = &'a ItemMeta>,
{
    let mut counts: Vec<f64> = Vec::new();
    let mut uncovered = 0usize;
    for item in items {
        let c = sieves.iter().filter(|s| s.accepts(item)).count();
        if c == 0 {
            uncovered += 1;
        }
        counts.push(c as f64);
    }
    CoverageReport { probes: counts.len(), uncovered, replicas: Summary::of(&counts) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RangeSieve, UniformSieve};

    fn probe_items(n: u64) -> Vec<ItemMeta> {
        (0..n).map(|i| ItemMeta::from_key(format!("probe-{i}").as_bytes())).collect()
    }

    #[test]
    fn partition_sieves_are_fully_covered() {
        let n = 32u64;
        let r = 3u32;
        let sieves: Vec<RangeSieve> = (0..n).map(|i| RangeSieve::partition(i, n, r)).collect();
        let items = probe_items(5_000);
        let report = check_coverage(&sieves, &items);
        assert!(report.is_fully_covered());
        assert!(report.meets_replication(r));
        assert_eq!(report.replicas.mean, f64::from(r));
        assert_eq!(report.probes, 5_000);
    }

    #[test]
    fn uniform_sieves_cover_probabilistically() {
        // 200 nodes with r/N sieves at r=8: P(zero replicas) = (1-8/200)^200
        // ≈ e^-8 ≈ 0.03%; with 2 000 probes we expect ≈0–3 uncovered.
        let n = 200u64;
        let sieves: Vec<UniformSieve> =
            (0..n).map(|i| UniformSieve::replication(i, 8, n)).collect();
        let items = probe_items(2_000);
        let report = check_coverage(&sieves, &items);
        assert!(report.uncovered <= 5, "uncovered {}", report.uncovered);
        assert!((report.replicas.mean - 8.0).abs() < 0.6);
    }

    #[test]
    fn empty_population_covers_nothing() {
        let sieves: Vec<UniformSieve> = Vec::new();
        let items = probe_items(10);
        let report = check_coverage(&sieves, &items);
        assert_eq!(report.uncovered, 10);
        assert!(!report.is_fully_covered());
    }

    #[test]
    fn report_flags_under_replication() {
        let n = 16u64;
        let sieves: Vec<RangeSieve> = (0..n).map(|i| RangeSieve::partition(i, n, 1)).collect();
        let items = probe_items(1_000);
        let report = check_coverage(&sieves, &items);
        assert!(report.is_fully_covered());
        assert!(report.meets_replication(1));
        assert!(!report.meets_replication(2));
    }
}
