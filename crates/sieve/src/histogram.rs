//! Distribution-aware sieves over a value domain.
//!
//! §III-B-1: *"knowing that the stored data follows a given distribution
//! enables the construction of effective sieves that achieve both precise
//! item collocation and load balancing. For instance, if data follows a
//! normal distribution, sieves located near the mean ± standard deviation
//! need to be much finer than sieves outside that region due to the higher
//! item density."*
//!
//! A [`HistogramSieve`] owns `r` of `B` *equi-depth* buckets of the
//! attribute domain: bucket edges come from an estimated distribution (the
//! gossip estimator in `dd-estimation`), so every bucket holds ≈ the same
//! number of items regardless of skew — fine buckets where density is high,
//! coarse where it is low, exactly the paper's prescription. E8 compares
//! its load balance against attribute-range sieves with uniform edges.

use crate::{ItemMeta, Sieve, UniformSieve};
use dd_sim::rng::mix;

/// Sieve accepting items whose attribute falls into one of this node's
/// buckets of an equi-depth histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSieve {
    /// Interior bucket edges, ascending: bucket `i` is
    /// `[edges[i-1], edges[i])` with virtual −∞/+∞ at the ends. For `B`
    /// buckets there are `B − 1` edges.
    edges: Vec<f64>,
    /// Buckets owned by this node.
    buckets: Vec<usize>,
    /// Fallback for items with no attribute.
    fallback: UniformSieve,
}

impl HistogramSieve {
    /// Creates a sieve owning `r` consecutive buckets starting at
    /// `index` (mod `B`, where `B = edges.len() + 1`), mirroring the
    /// successor replication of [`crate::RangeSieve::partition`] but in the
    /// *value* domain. Items without the attribute use an `r/B` uniform
    /// fallback.
    ///
    /// # Panics
    /// Panics if `edges` is empty, not sorted, contains NaN, or
    /// `index >= B`, or `r == 0`.
    #[must_use]
    pub fn new(edges: Vec<f64>, index: usize, r: u32) -> Self {
        assert!(!edges.is_empty(), "need at least one bucket edge");
        assert!(edges.iter().all(|e| e.is_finite()), "edges must be finite");
        assert!(edges.windows(2).all(|w| w[0] <= w[1]), "edges must be sorted ascending");
        let b = edges.len() + 1;
        assert!(index < b, "bucket index out of range");
        assert!(r > 0, "replication degree must be positive");
        let buckets: Vec<usize> = (0..usize::try_from(r).expect("r fits usize").min(b))
            .map(|k| (index + k) % b)
            .collect();
        let fallback = UniformSieve::replication(index as u64 ^ 0x41B0, r, b as u64);
        HistogramSieve { edges, buckets, fallback }
    }

    /// Number of buckets `B`.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.edges.len() + 1
    }

    /// Buckets owned by this node.
    #[must_use]
    pub fn owned_buckets(&self) -> &[usize] {
        &self.buckets
    }

    /// The bucket an attribute value falls in (`0..B`).
    #[must_use]
    pub fn bucket_of(&self, attr: f64) -> usize {
        self.edges.partition_point(|&e| e <= attr)
    }
}

impl Sieve for HistogramSieve {
    fn accepts(&self, item: &ItemMeta) -> bool {
        match item.attr {
            Some(a) => self.buckets.contains(&self.bucket_of(a)),
            None => self.fallback.accepts(item),
        }
    }

    fn grain(&self) -> f64 {
        self.buckets.len() as f64 / self.bucket_count() as f64
    }

    fn class_id(&self) -> u64 {
        let mut acc = mix(0x41B0_u64, self.bucket_count() as u64);
        for &b in &self.buckets {
            acc = mix(acc, b as u64);
        }
        acc
    }
}

/// Builds equi-depth bucket edges (`B − 1` of them for `B` buckets) from a
/// sample of attribute values — the "estimated distribution" input the
/// paper expects from the epidemic estimation protocols.
///
/// # Panics
/// Panics if `buckets < 2` or the sample is empty.
#[must_use]
pub fn equi_depth_edges(sample: &[f64], buckets: usize) -> Vec<f64> {
    assert!(buckets >= 2, "need at least two buckets");
    assert!(!sample.is_empty(), "sample must be non-empty");
    let mut sorted: Vec<f64> = sample.iter().copied().filter(|v| v.is_finite()).collect();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    (1..buckets)
        .map(|k| {
            let idx = (k * n / buckets).min(n - 1);
            sorted[idx]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rand_distr::{Distribution, Normal};

    fn normal_sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let dist = Normal::new(100.0, 15.0).unwrap();
        (0..n).map(|_| dist.sample(&mut rng)).collect()
    }

    #[test]
    fn equi_depth_edges_are_finer_near_the_mean() {
        // The paper's own example: normal data ⇒ finer sieves near µ ± σ.
        let sample = normal_sample(50_000, 1);
        let edges = equi_depth_edges(&sample, 16);
        assert_eq!(edges.len(), 15);
        // Central bucket width (around the median edge) must be much
        // narrower than the outermost bucket widths.
        let central = edges[8] - edges[7];
        let tail = edges[1] - edges[0];
        assert!(central < tail, "central {central} vs tail {tail}");
    }

    #[test]
    fn edges_are_sorted() {
        let edges = equi_depth_edges(&normal_sample(10_000, 2), 32);
        assert!(edges.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn bucket_of_partitions_the_line() {
        let s = HistogramSieve::new(vec![10.0, 20.0, 30.0], 0, 1);
        assert_eq!(s.bucket_count(), 4);
        assert_eq!(s.bucket_of(5.0), 0);
        assert_eq!(s.bucket_of(10.0), 1, "edges belong to the right bucket");
        assert_eq!(s.bucket_of(15.0), 1);
        assert_eq!(s.bucket_of(25.0), 2);
        assert_eq!(s.bucket_of(35.0), 3);
    }

    #[test]
    fn equal_load_across_nodes_on_skewed_data() {
        // B nodes, one equi-depth bucket each (r = 1): every node should
        // hold ≈ the same number of items despite heavy skew.
        let sample = normal_sample(40_000, 3);
        let b = 20usize;
        let edges = equi_depth_edges(&sample, b);
        let sieves: Vec<HistogramSieve> =
            (0..b).map(|i| HistogramSieve::new(edges.clone(), i, 1)).collect();
        let fresh = normal_sample(20_000, 4);
        let mut load = vec![0u32; b];
        for v in &fresh {
            let item = ItemMeta::from_key(b"x").with_attr(*v);
            for (i, s) in sieves.iter().enumerate() {
                if s.accepts(&item) {
                    load[i] += 1;
                }
            }
        }
        let mean = load.iter().sum::<u32>() as f64 / b as f64;
        let max = f64::from(*load.iter().max().unwrap());
        assert!(max / mean < 1.35, "equi-depth load imbalance: max/mean {}", max / mean);
    }

    #[test]
    fn every_attr_value_is_covered_r_times() {
        let edges = equi_depth_edges(&normal_sample(10_000, 5), 10);
        let r = 3u32;
        let sieves: Vec<HistogramSieve> =
            (0..10).map(|i| HistogramSieve::new(edges.clone(), i, r)).collect();
        for v in [-1e9, 0.0, 85.0, 100.0, 115.0, 1e9] {
            let item = ItemMeta::from_key(b"probe").with_attr(v);
            let owners = sieves.iter().filter(|s| s.accepts(&item)).count();
            assert_eq!(owners, r as usize, "value {v}");
        }
    }

    #[test]
    fn attributeless_items_use_fallback() {
        let edges = vec![0.0, 1.0];
        let sieves: Vec<HistogramSieve> =
            (0..3).map(|i| HistogramSieve::new(edges.clone(), i, 1)).collect();
        let mut total = 0usize;
        let samples = 3_000;
        for i in 0..samples {
            let item = ItemMeta::from_key(format!("na-{i}").as_bytes());
            total += sieves.iter().filter(|s| s.accepts(&item)).count();
        }
        let mean = total as f64 / samples as f64;
        assert!((mean - 1.0).abs() < 0.3, "fallback mean replicas {mean}");
    }

    #[test]
    fn class_id_groups_equal_bucket_sets() {
        let e = vec![1.0, 2.0];
        assert_eq!(
            HistogramSieve::new(e.clone(), 1, 1).class_id(),
            HistogramSieve::new(e.clone(), 1, 1).class_id()
        );
        assert_ne!(
            HistogramSieve::new(e.clone(), 1, 1).class_id(),
            HistogramSieve::new(e, 2, 1).class_id()
        );
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_edges_panic() {
        let _ = HistogramSieve::new(vec![2.0, 1.0], 0, 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sample_panics() {
        let _ = equi_depth_edges(&[], 4);
    }
}
