//! The sieve-visible projection of a stored tuple.

use dd_sim::rng::stable_hash;

/// What a sieve can see of an item: its hashed key, an optional numeric
/// attribute (for value-domain sieves) and an optional correlation tag
/// (for collocation sieves).
///
/// The persistent layer projects every tuple to an `ItemMeta` before
/// offering it to the local sieve; sieves never see values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ItemMeta {
    /// 64-bit hash of the tuple key (uniform over the key space).
    pub key_hash: u64,
    /// Numeric attribute used by distribution-aware sieves and ordered
    /// overlays, when the tuple carries one.
    pub attr: Option<f64>,
    /// Hash of the correlation tag ("same feed", "same user" …), when the
    /// tuple carries one.
    pub tag_hash: Option<u64>,
}

impl ItemMeta {
    /// Item with only a key.
    #[must_use]
    pub fn from_key_hash(key_hash: u64) -> Self {
        ItemMeta { key_hash, attr: None, tag_hash: None }
    }

    /// Item from a raw key string/bytes.
    #[must_use]
    pub fn from_key(key: &[u8]) -> Self {
        Self::from_key_hash(stable_hash(key))
    }

    /// Builder: attaches a numeric attribute.
    #[must_use]
    pub fn with_attr(mut self, attr: f64) -> Self {
        self.attr = Some(attr);
        self
    }

    /// Builder: attaches a correlation tag.
    #[must_use]
    pub fn with_tag(mut self, tag: &[u8]) -> Self {
        self.tag_hash = Some(stable_hash(tag));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_key_hashes_deterministically() {
        let a = ItemMeta::from_key(b"user:42");
        let b = ItemMeta::from_key(b"user:42");
        assert_eq!(a, b);
        assert_ne!(a.key_hash, ItemMeta::from_key(b"user:43").key_hash);
    }

    #[test]
    fn builders_attach_metadata() {
        let m = ItemMeta::from_key(b"k").with_attr(3.5).with_tag(b"feed:7");
        assert_eq!(m.attr, Some(3.5));
        assert!(m.tag_hash.is_some());
        assert_eq!(m.tag_hash, ItemMeta::from_key(b"other").with_tag(b"feed:7").tag_hash);
    }

    #[test]
    fn default_fields_are_absent() {
        let m = ItemMeta::from_key_hash(9);
        assert_eq!(m.attr, None);
        assert_eq!(m.tag_hash, None);
    }
}
