//! Property-based tests for sieve invariants (paper §III-A correctness
//! requirement: full key-space coverage, deterministic acceptance).

use dd_sieve::{
    check_coverage, CapacitySieve, HistogramSieve, ItemMeta, RangeSieve, Sieve, TagSieve,
    UniformSieve,
};
use proptest::prelude::*;

proptest! {
    /// A partition sieve population covers every key hash exactly r times,
    /// for arbitrary population sizes, replication degrees and keys.
    #[test]
    fn partition_covers_exactly_r(
        n in 1u64..64,
        r in 1u32..8,
        hashes in prop::collection::vec(any::<u64>(), 1..50),
    ) {
        let sieves: Vec<RangeSieve> = (0..n).map(|i| RangeSieve::partition(i, n, r)).collect();
        let expect = u64::from(r).min(n) as usize;
        for h in hashes {
            let owners = sieves.iter().filter(|s| s.contains_hash(h)).count();
            prop_assert_eq!(owners, expect, "hash {} owners {}", h, owners);
        }
    }

    /// Uniform sieve acceptance is a pure function of (salt, probability,
    /// key): evaluating twice or through a clone never disagrees.
    #[test]
    fn uniform_acceptance_is_deterministic(
        salt in any::<u64>(),
        p in 0.0f64..=1.0,
        key in any::<u64>(),
    ) {
        let s = UniformSieve::new(salt, p);
        let item = ItemMeta::from_key_hash(key);
        let first = s.accepts(&item);
        prop_assert_eq!(first, s.accepts(&item));
        prop_assert_eq!(first, s.clone().accepts(&item));
    }

    /// Range normalisation yields sorted, disjoint, non-empty ranges, and
    /// membership is preserved for the range endpoints.
    #[test]
    fn range_normalisation_invariants(
        raw in prop::collection::vec((any::<u64>(), any::<u64>()), 0..12),
    ) {
        let sieve = RangeSieve::new(raw.clone());
        let rs = sieve.ranges();
        for w in rs.windows(2) {
            prop_assert!(w[0].1 < w[1].0, "ranges must be disjoint and sorted");
        }
        for &(s, e) in rs {
            prop_assert!(s < e, "ranges must be non-empty");
        }
        // Any point inside an original valid range must still be accepted.
        for (s, e) in raw {
            if s < e {
                prop_assert!(sieve.contains_hash(s));
                let mid = s + (e - s) / 2;
                prop_assert!(sieve.contains_hash(mid));
            }
        }
    }

    /// Histogram sieves with r-fold successor buckets cover every finite
    /// attribute value exactly min(r, B) times.
    #[test]
    fn histogram_covers_value_domain(
        mut edges in prop::collection::vec(-1000.0f64..1000.0, 1..10),
        r in 1u32..6,
        attr in -2000.0f64..2000.0,
    ) {
        edges.sort_by(f64::total_cmp);
        let b = edges.len() + 1;
        let sieves: Vec<HistogramSieve> =
            (0..b).map(|i| HistogramSieve::new(edges.clone(), i, r)).collect();
        let item = ItemMeta::from_key(b"probe").with_attr(attr);
        let owners = sieves.iter().filter(|s| s.accepts(&item)).count();
        prop_assert_eq!(owners, (r as usize).min(b));
    }

    /// Tag sieves assign every tag to exactly min(r, n) slots, and the
    /// assignment is independent of the item key.
    #[test]
    fn tag_ownership_is_key_independent(
        n in 1u64..40,
        r in 1u32..5,
        tag in any::<u64>(),
        key_a in any::<u64>(),
        key_b in any::<u64>(),
    ) {
        let sieves: Vec<TagSieve> = (0..n).map(|i| TagSieve::new(i, n, r)).collect();
        let a = ItemMeta { key_hash: key_a, attr: None, tag_hash: Some(tag) };
        let b = ItemMeta { key_hash: key_b, attr: None, tag_hash: Some(tag) };
        let oa: Vec<u64> = (0..n).filter(|&i| sieves[i as usize].accepts(&a)).collect();
        let ob: Vec<u64> = (0..n).filter(|&i| sieves[i as usize].accepts(&b)).collect();
        prop_assert_eq!(&oa, &ob);
        prop_assert_eq!(oa.len() as u64, u64::from(r).min(n));
    }

    /// The collocation invariant the multi-tuple read path relies on: for
    /// any tag and any population, exactly min(r, n) *distinct* slots
    /// accept items carrying that tag, every item sharing the tag is
    /// accepted by the same slots, and the stateless routing view
    /// ([`TagSieve::tag_slots`]) names exactly those slots — so a
    /// coordinator can reach a tag's full tuple set by contacting only
    /// the routed nodes.
    #[test]
    fn tag_collocation_matches_router_view(
        n in 1u64..48,
        r in 1u32..6,
        tag in any::<u64>(),
        keys in prop::collection::vec(any::<u64>(), 1..20),
    ) {
        let sieves: Vec<TagSieve> = (0..n).map(|i| TagSieve::new(i, n, r)).collect();
        let mut routed = TagSieve::tag_slots(tag, n, r);
        routed.sort_unstable();
        routed.dedup();
        prop_assert_eq!(routed.len() as u64, u64::from(r).min(n), "r distinct owners");
        for k in keys {
            let item = ItemMeta { key_hash: k, attr: None, tag_hash: Some(tag) };
            let owners: Vec<u64> =
                (0..n).filter(|&i| sieves[i as usize].accepts(&item)).collect();
            // `owners` is ascending by construction, `routed` is sorted:
            // equality means the same set for every key sharing the tag.
            prop_assert_eq!(&owners, &routed);
        }
    }

    /// Retention is filtering: whatever a sieve keeps from an offered
    /// batch is a subset of that batch, re-sieving the retained set keeps
    /// all of it (idempotence), and a clone retains the identical set —
    /// for uniform, range-partition and capacity sieves alike.
    #[test]
    fn retained_items_are_subset_and_stable(
        salt in any::<u64>(),
        p in 0.0f64..=1.0,
        idx in 0u64..16,
        r in 1u32..4,
        weight in 0.0f64..4.0,
        offered in prop::collection::vec(any::<u64>(), 0..80),
    ) {
        let items: Vec<ItemMeta> =
            offered.iter().map(|&h| ItemMeta::from_key_hash(h)).collect();
        let uniform = UniformSieve::new(salt, p);
        let range = RangeSieve::partition(idx, 16, r);
        let capacity = CapacitySieve::new(salt, r, 16, weight);

        fn retained<S: Sieve>(sieve: &S, offered: &[ItemMeta]) -> Vec<u64> {
            offered.iter().filter(|i| sieve.accepts(i)).map(|i| i.key_hash).collect()
        }

        macro_rules! check {
            ($sieve:expr) => {{
                let kept = retained(&$sieve, &items);
                prop_assert!(kept.len() <= items.len(), "retained more than offered");
                for h in &kept {
                    prop_assert!(offered.contains(h), "retained item never offered");
                }
                // Idempotent: sieving the retained set again keeps all of it.
                let kept_items: Vec<ItemMeta> =
                    kept.iter().map(|&h| ItemMeta::from_key_hash(h)).collect();
                prop_assert_eq!(&retained(&$sieve, &kept_items), &kept);
                // Clones answer identically.
                prop_assert_eq!(&retained(&$sieve.clone(), &items), &kept);
            }};
        }
        check!(uniform);
        check!(range);
        check!(capacity);
    }

    /// A capacity sieve's grain is the capacity-scaled replication
    /// probability, capped at one, and measured retention never
    /// meaningfully exceeds it: the capacity bound holds for any weight.
    #[test]
    fn capacity_bound_never_exceeded(
        salt in any::<u64>(),
        r in 1u32..6,
        n in 1u64..64,
        weight in 0.0f64..8.0,
    ) {
        let sieve = CapacitySieve::new(salt, r, n, weight);
        let expected = (f64::from(r) * weight / n as f64).min(1.0);
        prop_assert!((sieve.grain() - expected).abs() < 1e-12);
        prop_assert!(sieve.grain() <= 1.0);
        let probes = 4_000u64;
        let kept = (0..probes)
            .filter(|&i| sieve.accepts(&ItemMeta::from_key(format!("cap{i}").as_bytes())))
            .count() as f64;
        // Tail bound on retained count: 4σ of binomial slack, plus an
        // absolute floor of a few events so the tiny-p Poisson regime
        // (expected count ≪ 1, where a single acceptance dwarfs 4σ)
        // cannot produce a spurious failure.
        let mean_count = expected * probes as f64;
        let slack = 4.0 * (mean_count * (1.0 - expected)).sqrt();
        prop_assert!(
            kept <= mean_count + slack.max(6.0),
            "retained {} of {} exceeds capacity grain {}",
            kept,
            probes,
            expected
        );
        // Zero weight is an absolute bound: nothing may be stored.
        if weight == 0.0 {
            prop_assert_eq!(kept, 0.0);
        }
    }

    /// Capacity sieves with the same salt nest by weight: anything a
    /// lighter node stores, a heavier node with the same salt also
    /// stores — scaling capacity never drops previously-accepted items.
    #[test]
    fn capacity_acceptance_nests_by_weight(
        salt in any::<u64>(),
        r in 1u32..4,
        n in 4u64..64,
        w_lo in 0.0f64..2.0,
        w_extra in 0.0f64..2.0,
        hashes in prop::collection::vec(any::<u64>(), 1..60),
    ) {
        let light = CapacitySieve::new(salt, r, n, w_lo);
        let heavy = CapacitySieve::new(salt, r, n, w_lo + w_extra);
        for h in hashes {
            let item = ItemMeta::from_key_hash(h);
            if light.accepts(&item) {
                prop_assert!(heavy.accepts(&item), "heavier sieve dropped item {h}");
            }
        }
    }

    /// The coverage checker agrees with brute force on partition sieves.
    #[test]
    fn coverage_report_matches_bruteforce(
        n in 1u64..32,
        r in 1u32..4,
        keys in prop::collection::vec(any::<u64>(), 1..30),
    ) {
        let sieves: Vec<RangeSieve> = (0..n).map(|i| RangeSieve::partition(i, n, r)).collect();
        let items: Vec<ItemMeta> = keys.iter().map(|&k| ItemMeta::from_key_hash(k)).collect();
        let report = check_coverage(&sieves, &items);
        prop_assert!(report.is_fully_covered());
        prop_assert_eq!(report.probes, items.len());
        let expect = u64::from(r).min(n) as f64;
        prop_assert!((report.replicas.mean - expect).abs() < 1e-9);
    }
}
