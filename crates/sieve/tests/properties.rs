//! Property-based tests for sieve invariants (paper §III-A correctness
//! requirement: full key-space coverage, deterministic acceptance).

use dd_sieve::{
    check_coverage, HistogramSieve, ItemMeta, RangeSieve, Sieve, TagSieve, UniformSieve,
};
use proptest::prelude::*;

proptest! {
    /// A partition sieve population covers every key hash exactly r times,
    /// for arbitrary population sizes, replication degrees and keys.
    #[test]
    fn partition_covers_exactly_r(
        n in 1u64..64,
        r in 1u32..8,
        hashes in prop::collection::vec(any::<u64>(), 1..50),
    ) {
        let sieves: Vec<RangeSieve> = (0..n).map(|i| RangeSieve::partition(i, n, r)).collect();
        let expect = u64::from(r).min(n) as usize;
        for h in hashes {
            let owners = sieves.iter().filter(|s| s.contains_hash(h)).count();
            prop_assert_eq!(owners, expect, "hash {} owners {}", h, owners);
        }
    }

    /// Uniform sieve acceptance is a pure function of (salt, probability,
    /// key): evaluating twice or through a clone never disagrees.
    #[test]
    fn uniform_acceptance_is_deterministic(
        salt in any::<u64>(),
        p in 0.0f64..=1.0,
        key in any::<u64>(),
    ) {
        let s = UniformSieve::new(salt, p);
        let item = ItemMeta::from_key_hash(key);
        let first = s.accepts(&item);
        prop_assert_eq!(first, s.accepts(&item));
        prop_assert_eq!(first, s.clone().accepts(&item));
    }

    /// Range normalisation yields sorted, disjoint, non-empty ranges, and
    /// membership is preserved for the range endpoints.
    #[test]
    fn range_normalisation_invariants(
        raw in prop::collection::vec((any::<u64>(), any::<u64>()), 0..12),
    ) {
        let sieve = RangeSieve::new(raw.clone());
        let rs = sieve.ranges();
        for w in rs.windows(2) {
            prop_assert!(w[0].1 < w[1].0, "ranges must be disjoint and sorted");
        }
        for &(s, e) in rs {
            prop_assert!(s < e, "ranges must be non-empty");
        }
        // Any point inside an original valid range must still be accepted.
        for (s, e) in raw {
            if s < e {
                prop_assert!(sieve.contains_hash(s));
                let mid = s + (e - s) / 2;
                prop_assert!(sieve.contains_hash(mid));
            }
        }
    }

    /// Histogram sieves with r-fold successor buckets cover every finite
    /// attribute value exactly min(r, B) times.
    #[test]
    fn histogram_covers_value_domain(
        mut edges in prop::collection::vec(-1000.0f64..1000.0, 1..10),
        r in 1u32..6,
        attr in -2000.0f64..2000.0,
    ) {
        edges.sort_by(f64::total_cmp);
        let b = edges.len() + 1;
        let sieves: Vec<HistogramSieve> =
            (0..b).map(|i| HistogramSieve::new(edges.clone(), i, r)).collect();
        let item = ItemMeta::from_key(b"probe").with_attr(attr);
        let owners = sieves.iter().filter(|s| s.accepts(&item)).count();
        prop_assert_eq!(owners, (r as usize).min(b));
    }

    /// Tag sieves assign every tag to exactly min(r, n) slots, and the
    /// assignment is independent of the item key.
    #[test]
    fn tag_ownership_is_key_independent(
        n in 1u64..40,
        r in 1u32..5,
        tag in any::<u64>(),
        key_a in any::<u64>(),
        key_b in any::<u64>(),
    ) {
        let sieves: Vec<TagSieve> = (0..n).map(|i| TagSieve::new(i, n, r)).collect();
        let a = ItemMeta { key_hash: key_a, attr: None, tag_hash: Some(tag) };
        let b = ItemMeta { key_hash: key_b, attr: None, tag_hash: Some(tag) };
        let oa: Vec<u64> = (0..n).filter(|&i| sieves[i as usize].accepts(&a)).collect();
        let ob: Vec<u64> = (0..n).filter(|&i| sieves[i as usize].accepts(&b)).collect();
        prop_assert_eq!(&oa, &ob);
        prop_assert_eq!(oa.len() as u64, u64::from(r).min(n));
    }

    /// The coverage checker agrees with brute force on partition sieves.
    #[test]
    fn coverage_report_matches_bruteforce(
        n in 1u64..32,
        r in 1u32..4,
        keys in prop::collection::vec(any::<u64>(), 1..30),
    ) {
        let sieves: Vec<RangeSieve> = (0..n).map(|i| RangeSieve::partition(i, n, r)).collect();
        let items: Vec<ItemMeta> = keys.iter().map(|&k| ItemMeta::from_key_hash(k)).collect();
        let report = check_coverage(&sieves, &items);
        prop_assert!(report.is_fully_covered());
        prop_assert_eq!(report.probes, items.len());
        let expect = u64::from(r).min(n) as f64;
        prop_assert!((report.replicas.mean - expect).abs() < 1e-9);
    }
}
