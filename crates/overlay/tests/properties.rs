//! Property-based tests for ordered-overlay invariants.

use dd_overlay::ring::{convergence, successor_map};
use dd_overlay::tman::{TManConfig, TManState};
use dd_sim::{Duration, NodeId};
use proptest::prelude::*;
use std::collections::HashMap;

fn cfg(per_side: usize) -> TManConfig {
    TManConfig { per_side, period: Duration(100) }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The true successor map is a single cycle covering every node.
    #[test]
    fn successor_map_is_a_permutation_cycle(
        coords in prop::collection::vec(-1000.0f64..1000.0, 1..40),
    ) {
        let nodes: Vec<(NodeId, f64)> =
            coords.iter().enumerate().map(|(i, &c)| (NodeId(i as u64), c)).collect();
        let map = successor_map(&nodes);
        prop_assert_eq!(map.len(), nodes.len());
        // Follow the cycle: must return to start after exactly n steps.
        let start = nodes[0].0;
        let mut cur = start;
        for _ in 0..nodes.len() {
            cur = map[&cur];
        }
        prop_assert_eq!(cur, start, "successors form one cycle");
        // Every node appears exactly once as a successor.
        let mut seen = std::collections::HashSet::new();
        for &v in map.values() {
            prop_assert!(seen.insert(v));
        }
    }

    /// T-Man views never contain the owner, never contain duplicates, and
    /// never exceed 2×per_side, for arbitrary descriptor streams.
    #[test]
    fn tman_view_invariants(
        coord in -100.0f64..100.0,
        per_side in 1usize..6,
        descriptors in prop::collection::vec((0u64..64, -100.0f64..100.0), 0..200),
    ) {
        let mut s = TManState::new(NodeId(999), coord, cfg(per_side), &[]);
        for (id, c) in descriptors {
            s.consider((NodeId(id), c));
            let view = s.view();
            prop_assert!(view.len() <= 2 * per_side);
            prop_assert!(view.iter().all(|d| d.0 != NodeId(999)));
            let mut ids: Vec<NodeId> = view.iter().map(|d| d.0).collect();
            ids.sort();
            ids.dedup();
            prop_assert_eq!(ids.len(), view.len(), "duplicate in view");
        }
    }

    /// The successor is always the closest-from-above descriptor ever
    /// offered that survived eviction; in particular it is never below the
    /// node's own coordinate.
    #[test]
    fn successor_is_above_owner(
        coord in -50.0f64..50.0,
        descriptors in prop::collection::vec((0u64..64, -100.0f64..100.0), 1..100),
    ) {
        let mut s = TManState::new(NodeId(999), coord, cfg(3), &[]);
        for (id, c) in &descriptors {
            s.consider((NodeId(*id), *c));
        }
        if let Some((_, c)) = s.successor() {
            prop_assert!(c >= coord, "successor coord {} below owner {}", c, coord);
        }
        if let Some((_, c)) = s.predecessor() {
            prop_assert!(c <= coord, "predecessor coord {} above owner {}", c, coord);
        }
    }

    /// Convergence is 1.0 exactly when all (non-wrap) believed successors
    /// match the truth, and decreases when one is corrupted.
    #[test]
    fn convergence_detects_corruption(
        coords in prop::collection::hash_set(0u32..10_000, 3..30),
    ) {
        let nodes: Vec<(NodeId, f64)> = coords
            .iter()
            .enumerate()
            .map(|(i, &c)| (NodeId(i as u64), f64::from(c)))
            .collect();
        let truth = successor_map(&nodes);
        let max_node = nodes
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
            .unwrap()
            .0;
        let believed: HashMap<NodeId, Option<NodeId>> =
            nodes.iter().map(|&(n, _)| (n, Some(truth[&n]))).collect();
        prop_assert_eq!(convergence(&nodes, &believed), 1.0);
        // Corrupt one non-wrap node's belief.
        let victim = nodes.iter().map(|&(n, _)| n).find(|&n| n != max_node).unwrap();
        let mut bad = believed.clone();
        bad.insert(victim, Some(victim));
        prop_assert!(convergence(&nodes, &bad) < 1.0);
    }
}
