//! Convergence measurement for ordered overlays.

use dd_sim::NodeId;
use std::collections::HashMap;

/// The true successor of every node in the value-sorted ring over
/// `(node, coord)` pairs: ties broken by id, the maximum wraps to the
/// minimum.
#[must_use]
pub fn successor_map(nodes: &[(NodeId, f64)]) -> HashMap<NodeId, NodeId> {
    let mut sorted: Vec<(NodeId, f64)> = nodes.to_vec();
    sorted.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    let mut map = HashMap::with_capacity(sorted.len());
    for (i, &(n, _)) in sorted.iter().enumerate() {
        let succ = sorted[(i + 1) % sorted.len()].0;
        map.insert(n, succ);
    }
    map
}

/// Fraction of nodes whose believed successor matches the true sorted
/// order. `believed` maps node → its claimed successor (absent/`None`
/// entries count as wrong). The wrap-around node is excluded from the
/// denominator because a line-topology T-Man never learns the wrap edge.
#[must_use]
pub fn convergence(nodes: &[(NodeId, f64)], believed: &HashMap<NodeId, Option<NodeId>>) -> f64 {
    if nodes.len() <= 1 {
        return 1.0;
    }
    let truth = successor_map(nodes);
    let max_node =
        nodes.iter().max_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0))).expect("non-empty").0;
    let mut correct = 0usize;
    let mut counted = 0usize;
    for &(n, _) in nodes {
        if n == max_node {
            continue; // its true successor wraps around
        }
        counted += 1;
        if believed.get(&n).copied().flatten() == truth.get(&n).copied() {
            correct += 1;
        }
    }
    if counted == 0 {
        1.0
    } else {
        correct as f64 / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes() -> Vec<(NodeId, f64)> {
        vec![(NodeId(0), 10.0), (NodeId(1), 30.0), (NodeId(2), 20.0), (NodeId(3), 40.0)]
    }

    #[test]
    fn successor_map_follows_sorted_order() {
        let m = successor_map(&nodes());
        assert_eq!(m[&NodeId(0)], NodeId(2)); // 10 → 20
        assert_eq!(m[&NodeId(2)], NodeId(1)); // 20 → 30
        assert_eq!(m[&NodeId(1)], NodeId(3)); // 30 → 40
        assert_eq!(m[&NodeId(3)], NodeId(0)); // wrap
    }

    #[test]
    fn ties_break_by_id() {
        let m = successor_map(&[(NodeId(5), 1.0), (NodeId(2), 1.0), (NodeId(9), 1.0)]);
        assert_eq!(m[&NodeId(2)], NodeId(5));
        assert_eq!(m[&NodeId(5)], NodeId(9));
        assert_eq!(m[&NodeId(9)], NodeId(2));
    }

    #[test]
    fn perfect_belief_scores_one() {
        let ns = nodes();
        let truth = successor_map(&ns);
        let believed: HashMap<NodeId, Option<NodeId>> =
            ns.iter().map(|&(n, _)| (n, Some(truth[&n]))).collect();
        assert_eq!(convergence(&ns, &believed), 1.0);
    }

    #[test]
    fn wrong_or_missing_beliefs_reduce_score() {
        let ns = nodes();
        let mut believed: HashMap<NodeId, Option<NodeId>> = HashMap::new();
        believed.insert(NodeId(0), Some(NodeId(2))); // right
        believed.insert(NodeId(2), Some(NodeId(3))); // wrong
                                                     // NodeId(1) missing → wrong; NodeId(3) is the wrap node → excluded.
        let score = convergence(&ns, &believed);
        assert!((score - 1.0 / 3.0).abs() < 1e-9, "score {score}");
    }

    #[test]
    fn single_node_is_trivially_converged() {
        assert_eq!(convergence(&[(NodeId(0), 1.0)], &HashMap::new()), 1.0);
        assert_eq!(convergence(&[], &HashMap::new()), 1.0);
    }
}
