//! Distance functions for value-ordered topologies.

/// Absolute distance on the line — orders nodes by attribute value.
#[must_use]
pub fn line_distance(a: f64, b: f64) -> f64 {
    (a - b).abs()
}

/// Distance on a ring of circumference `span` (values are positions in
/// `[0, span)`): the shorter way around. Used when the value domain wraps
/// (e.g. hashed keys).
///
/// # Panics
/// Panics if `span` is not positive.
#[must_use]
pub fn ring_distance(a: f64, b: f64, span: f64) -> f64 {
    assert!(span > 0.0, "ring span must be positive");
    let d = (a - b).abs() % span;
    d.min(span - d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_distance_is_symmetric_and_zero_on_self() {
        assert_eq!(line_distance(3.0, 7.5), 4.5);
        assert_eq!(line_distance(7.5, 3.0), 4.5);
        assert_eq!(line_distance(2.0, 2.0), 0.0);
    }

    #[test]
    fn ring_distance_takes_shorter_way() {
        assert_eq!(ring_distance(0.0, 9.0, 10.0), 1.0);
        assert_eq!(ring_distance(9.0, 0.0, 10.0), 1.0);
        assert_eq!(ring_distance(2.0, 7.0, 10.0), 5.0);
        assert_eq!(ring_distance(1.0, 1.0, 10.0), 0.0);
    }

    #[test]
    fn ring_distance_handles_values_beyond_span() {
        assert_eq!(ring_distance(12.0, 1.0, 10.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "span")]
    fn non_positive_span_panics() {
        let _ = ring_distance(0.0, 1.0, 0.0);
    }
}
