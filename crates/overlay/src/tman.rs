//! The T-Man topology-construction protocol (Jelasity, Montresor,
//! Babaoglu — Computer Networks 2009), specialised to sorted-ring
//! construction over a node coordinate in the value domain.
//!
//! Each node keeps the `view_size` neighbours *closest by coordinate*
//! (balanced between both sides to form a ring rather than a blob). Every
//! period it picks its best current neighbour, sends its view (plus
//! itself), and merges the symmetric reply. Selection-by-rank makes the
//! overlay converge to the target topology exponentially fast.

use crate::rank::line_distance;
use dd_sim::{Ctx, Duration, NodeId, Process, TimerTag};
use rand::Rng;

/// Timer tag for T-Man rounds.
pub const TMAN_TIMER: TimerTag = TimerTag(0x73A1);

/// T-Man parameters.
#[derive(Debug, Clone, Copy)]
pub struct TManConfig {
    /// Neighbours kept per side (total view ≤ 2 × per_side).
    pub per_side: usize,
    /// Ticks between gossip rounds.
    pub period: Duration,
}

impl Default for TManConfig {
    fn default() -> Self {
        TManConfig { per_side: 4, period: Duration(1_000) }
    }
}

/// A `(node, coordinate)` pair exchanged between peers.
pub type Descriptor = (NodeId, f64);

/// Messages: a view push (expecting a reply) or the reply.
#[derive(Debug, Clone)]
pub enum TManMsg {
    /// Push of the sender's descriptors (including itself).
    Push(Vec<Descriptor>),
    /// Symmetric reply.
    Reply(Vec<Descriptor>),
}

/// Sans-IO T-Man state.
#[derive(Debug, Clone)]
pub struct TManState {
    owner: NodeId,
    coord: f64,
    config: TManConfig,
    below: Vec<Descriptor>,
    above: Vec<Descriptor>,
}

impl TManState {
    /// Creates state for `owner` at coordinate `coord` with bootstrap
    /// descriptors.
    #[must_use]
    pub fn new(owner: NodeId, coord: f64, config: TManConfig, bootstrap: &[Descriptor]) -> Self {
        let mut s = TManState { owner, coord, config, below: Vec::new(), above: Vec::new() };
        for &d in bootstrap {
            s.consider(d);
        }
        s
    }

    /// This node's coordinate.
    #[must_use]
    pub fn coord(&self) -> f64 {
        self.coord
    }

    /// Owner id.
    #[must_use]
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Offers a descriptor to the view; it is kept if it is among the
    /// `per_side` closest on its side. Self-descriptors are ignored, as is
    /// any node already present (first coordinate wins — coordinates are
    /// stable in this system, so a differing duplicate is stale gossip).
    pub fn consider(&mut self, d: Descriptor) {
        if d.0 == self.owner {
            return;
        }
        if self.below.iter().chain(self.above.iter()).any(|&(n, _)| n == d.0) {
            return;
        }
        let side = if d.1 < self.coord || (d.1 == self.coord && d.0 < self.owner) {
            &mut self.below
        } else {
            &mut self.above
        };
        side.push(d);
        let coord = self.coord;
        side.sort_by(|a, b| line_distance(a.1, coord).total_cmp(&line_distance(b.1, coord)));
        side.truncate(self.config.per_side);
    }

    /// Removes a node from the view (failure detector input).
    pub fn expel(&mut self, node: NodeId) {
        self.below.retain(|&(n, _)| n != node);
        self.above.retain(|&(n, _)| n != node);
    }

    /// The full view: below ∪ above.
    #[must_use]
    pub fn view(&self) -> Vec<Descriptor> {
        let mut v = self.below.clone();
        v.extend_from_slice(&self.above);
        v
    }

    /// The believed ring successor: nearest neighbour strictly above.
    #[must_use]
    pub fn successor(&self) -> Option<Descriptor> {
        self.above.first().copied()
    }

    /// The believed ring predecessor: nearest neighbour strictly below.
    #[must_use]
    pub fn predecessor(&self) -> Option<Descriptor> {
        self.below.first().copied()
    }

    /// What we send in an exchange: our view plus ourselves.
    #[must_use]
    pub fn exchange_payload(&self) -> Vec<Descriptor> {
        let mut v = self.view();
        v.push((self.owner, self.coord));
        v
    }

    /// Picks the exchange partner: the closest current neighbour, with an
    /// occasional random pick to escape local minima.
    pub fn pick_partner<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        let view = self.view();
        if view.is_empty() {
            return None;
        }
        if rng.gen_bool(0.2) {
            return Some(view[rng.gen_range(0..view.len())].0);
        }
        let coord = self.coord;
        view.iter()
            .min_by(|a, b| line_distance(a.1, coord).total_cmp(&line_distance(b.1, coord)))
            .map(|&(n, _)| n)
    }

    /// Merges a received descriptor batch.
    pub fn merge(&mut self, batch: &[Descriptor]) {
        for &d in batch {
            self.consider(d);
        }
    }
}

/// T-Man bound to the simulator.
#[derive(Debug, Clone)]
pub struct TManNode {
    /// Protocol state (public for measurement).
    pub state: TManState,
}

impl TManNode {
    /// Creates the process.
    #[must_use]
    pub fn new(state: TManState) -> Self {
        TManNode { state }
    }
}

impl Process for TManNode {
    type Msg = TManMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, TManMsg>) {
        let jitter = ctx.rng().gen_range(0..self.state.config.period.0.max(1));
        ctx.set_timer(Duration(jitter), TMAN_TIMER);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, TManMsg>, from: NodeId, msg: TManMsg) {
        match msg {
            TManMsg::Push(batch) => {
                let reply = self.state.exchange_payload();
                self.state.merge(&batch);
                ctx.send(from, TManMsg::Reply(reply));
                ctx.metrics().incr("tman.exchanges");
            }
            TManMsg::Reply(batch) => self.state.merge(&batch),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, TManMsg>, tag: TimerTag) {
        if tag != TMAN_TIMER {
            return;
        }
        if let Some(partner) = self.state.pick_partner(ctx.rng()) {
            ctx.send(partner, TManMsg::Push(self.state.exchange_payload()));
        }
        ctx.set_timer(self.state.config.period, TMAN_TIMER);
    }

    fn on_up(&mut self, ctx: &mut Ctx<'_, TManMsg>) {
        ctx.set_timer(self.state.config.period, TMAN_TIMER);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn cfg() -> TManConfig {
        TManConfig { per_side: 2, period: Duration(100) }
    }

    #[test]
    fn consider_keeps_closest_per_side() {
        let mut s = TManState::new(NodeId(0), 50.0, cfg(), &[]);
        for (n, c) in [(1u64, 10.0), (2, 40.0), (3, 45.0), (4, 60.0), (5, 55.0), (6, 90.0)] {
            s.consider((NodeId(n), c));
        }
        // below: closest two of {10,40,45} → 45, 40; above: 55, 60.
        let below: Vec<f64> = s.below.iter().map(|d| d.1).collect();
        let above: Vec<f64> = s.above.iter().map(|d| d.1).collect();
        assert_eq!(below, vec![45.0, 40.0]);
        assert_eq!(above, vec![55.0, 60.0]);
        assert_eq!(s.successor().unwrap().1, 55.0);
        assert_eq!(s.predecessor().unwrap().1, 45.0);
    }

    #[test]
    fn self_descriptor_is_ignored() {
        let mut s = TManState::new(NodeId(3), 1.0, cfg(), &[]);
        s.consider((NodeId(3), 5.0));
        assert!(s.view().is_empty());
    }

    #[test]
    fn duplicate_nodes_are_not_double_counted() {
        let mut s = TManState::new(NodeId(0), 0.0, cfg(), &[]);
        s.consider((NodeId(1), 2.0));
        s.consider((NodeId(1), 2.0));
        assert_eq!(s.view().len(), 1);
    }

    #[test]
    fn expel_removes_from_both_sides() {
        let mut s = TManState::new(NodeId(0), 5.0, cfg(), &[(NodeId(1), 2.0), (NodeId(2), 9.0)]);
        s.expel(NodeId(1));
        s.expel(NodeId(2));
        assert!(s.view().is_empty());
    }

    #[test]
    fn exchange_payload_includes_self() {
        let s = TManState::new(NodeId(7), 3.0, cfg(), &[(NodeId(1), 1.0)]);
        let p = s.exchange_payload();
        assert!(p.contains(&(NodeId(7), 3.0)));
        assert!(p.contains(&(NodeId(1), 1.0)));
    }

    #[test]
    fn pick_partner_prefers_closest() {
        let s = TManState::new(
            NodeId(0),
            10.0,
            cfg(),
            &[(NodeId(1), 50.0), (NodeId(2), 11.0), (NodeId(3), 30.0)],
        );
        let mut rng = SmallRng::seed_from_u64(1);
        let mut closest_picks = 0;
        for _ in 0..100 {
            if s.pick_partner(&mut rng) == Some(NodeId(2)) {
                closest_picks += 1;
            }
        }
        assert!(closest_picks > 60, "closest partner picked {closest_picks}/100");
    }

    #[test]
    fn empty_view_has_no_partner() {
        let s = TManState::new(NodeId(0), 0.0, cfg(), &[]);
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(s.pick_partner(&mut rng).is_none());
        assert!(s.successor().is_none());
        assert!(s.predecessor().is_none());
    }

    #[test]
    fn equal_coordinates_are_ordered_by_id() {
        // Two nodes at the same coordinate must deterministically sort by
        // id so the ring stays a total order.
        let mut a = TManState::new(NodeId(5), 1.0, cfg(), &[]);
        a.consider((NodeId(3), 1.0)); // lower id → below
        a.consider((NodeId(9), 1.0)); // higher id → above
        assert_eq!(a.predecessor().unwrap().0, NodeId(3));
        assert_eq!(a.successor().unwrap().0, NodeId(9));
    }
}
