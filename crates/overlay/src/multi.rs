//! Multi-attribute ordered organisations.
//!
//! §III-B-2: *"it is necessary to support several contending such
//! organizations in order to offer range scans and indexes on several
//! attributes. A first naive approach could be to maintain several
//! independent overlays … but this is not scalable as it imposes an high
//! overhead … Alternatively, recent work \[34\] has shown that it is possible
//! to support several independent such organizations in an efficient and
//! scalable fashion"* (\[34\] is the authors' STAN).
//!
//! [`MultiStrategy::Independent`] runs one gossip exchange per ring per
//! round (k messages); [`MultiStrategy::Shared`] piggybacks all rings'
//! descriptors in a single exchange per round (1 message), the STAN-style
//! amortisation. Experiment E9 compares message cost and convergence.

use crate::tman::{Descriptor, TManConfig, TManState};
use dd_sim::{Ctx, Duration, NodeId, Process, TimerTag};
use rand::Rng;

/// Timer tag for multi-overlay rounds.
pub const MULTI_TIMER: TimerTag = TimerTag(0x3017);

/// How exchanges for multiple rings are scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiStrategy {
    /// One message per ring per round — the naive approach.
    Independent,
    /// One message per round carrying every ring's payload — STAN-style.
    Shared,
}

/// Batch of per-ring descriptor payloads: `(ring index, descriptors)`.
pub type RingBatch = Vec<(usize, Vec<Descriptor>)>;

/// Multi-ring gossip messages.
#[derive(Debug, Clone)]
pub enum MultiMsg {
    /// Push of one or more rings' payloads.
    Push(RingBatch),
    /// Symmetric reply.
    Reply(RingBatch),
}

/// A node maintaining `k` value-ordered rings (one per indexed attribute).
#[derive(Debug, Clone)]
pub struct MultiOverlayNode {
    /// Per-ring T-Man state (public for convergence measurement).
    pub rings: Vec<TManState>,
    strategy: MultiStrategy,
    period: Duration,
    round: u64,
}

impl MultiOverlayNode {
    /// Creates a node with one T-Man state per attribute.
    ///
    /// # Panics
    /// Panics if `rings` is empty.
    #[must_use]
    pub fn new(rings: Vec<TManState>, strategy: MultiStrategy, period: Duration) -> Self {
        assert!(!rings.is_empty(), "need at least one ring");
        MultiOverlayNode { rings, strategy, period, round: 0 }
    }

    /// Number of rings.
    #[must_use]
    pub fn ring_count(&self) -> usize {
        self.rings.len()
    }

    fn payload(&self, ring: usize) -> (usize, Vec<Descriptor>) {
        (ring, self.rings[ring].exchange_payload())
    }

    fn full_batch(&self) -> RingBatch {
        (0..self.rings.len()).map(|r| self.payload(r)).collect()
    }

    fn merge_batch(&mut self, batch: &RingBatch) {
        for (ring, descs) in batch {
            if let Some(state) = self.rings.get_mut(*ring) {
                state.merge(descs);
            }
        }
    }
}

impl Process for MultiOverlayNode {
    type Msg = MultiMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, MultiMsg>) {
        let jitter = ctx.rng().gen_range(0..self.period.0.max(1));
        ctx.set_timer(Duration(jitter), MULTI_TIMER);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, MultiMsg>, from: NodeId, msg: MultiMsg) {
        match msg {
            MultiMsg::Push(batch) => {
                // Reply with our payload for the same rings.
                let reply: RingBatch = batch.iter().map(|(r, _)| self.payload(*r)).collect();
                self.merge_batch(&batch);
                ctx.metrics().incr("multi.exchanges");
                ctx.send(from, MultiMsg::Reply(reply));
            }
            MultiMsg::Reply(batch) => self.merge_batch(&batch),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, MultiMsg>, tag: TimerTag) {
        if tag != MULTI_TIMER {
            return;
        }
        self.round += 1;
        match self.strategy {
            MultiStrategy::Independent => {
                for r in 0..self.rings.len() {
                    if let Some(partner) = self.rings[r].pick_partner(ctx.rng()) {
                        ctx.metrics().incr("multi.msgs_out");
                        ctx.send(partner, MultiMsg::Push(vec![self.payload(r)]));
                    }
                }
            }
            MultiStrategy::Shared => {
                // Rotate the partner-selecting ring so every ring's
                // neighbourhood drives some exchanges.
                let k = self.rings.len();
                let lead = (self.round as usize) % k;
                let partner = (0..k)
                    .map(|off| (lead + off) % k)
                    .find_map(|r| self.rings[r].pick_partner(ctx.rng()));
                if let Some(partner) = partner {
                    ctx.metrics().incr("multi.msgs_out");
                    ctx.send(partner, MultiMsg::Push(self.full_batch()));
                }
            }
        }
        ctx.set_timer(self.period, MULTI_TIMER);
    }

    fn on_up(&mut self, ctx: &mut Ctx<'_, MultiMsg>) {
        ctx.set_timer(self.period, MULTI_TIMER);
    }
}

/// Harness for E9: runs `n` nodes × `k` rings for `rounds` and returns
/// `(mean convergence across rings, messages sent)`.
#[must_use]
pub fn run_multi(n: u64, k: usize, strategy: MultiStrategy, rounds: u64, seed: u64) -> (f64, u64) {
    use crate::ring::convergence;
    use dd_sim::rng::mix;
    use dd_sim::{Sim, SimConfig, Time};
    use std::collections::HashMap;

    let period = 100u64;
    let config = TManConfig { per_side: 3, period: Duration(period) };
    // Coordinates per ring: independent pseudo-random permutations.
    let coord = |ring: usize, node: u64| (mix(ring as u64 + 1, node) % 1_000_000) as f64;

    let mut sim: Sim<MultiOverlayNode> = Sim::new(SimConfig::default().seed(seed));
    for i in 0..n {
        let rings: Vec<TManState> = (0..k)
            .map(|r| {
                // Bootstrap: a couple of random acquaintances per ring.
                let boots: Vec<Descriptor> = (1..=3)
                    .map(|j| {
                        let peer = mix(seed ^ (r as u64) << 8, i * 31 + j) % n;
                        let peer = if peer == i { (peer + 1) % n } else { peer };
                        (NodeId(peer), coord(r, peer))
                    })
                    .collect();
                TManState::new(NodeId(i), coord(r, i), config, &boots)
            })
            .collect();
        sim.add_node(NodeId(i), MultiOverlayNode::new(rings, strategy, Duration(period)));
    }
    sim.run_until(Time(rounds * period));

    let mut conv_sum = 0.0;
    for r in 0..k {
        let nodes: Vec<(NodeId, f64)> = (0..n).map(|i| (NodeId(i), coord(r, i))).collect();
        let believed: HashMap<NodeId, Option<NodeId>> = (0..n)
            .map(|i| {
                let succ = sim.node(NodeId(i)).unwrap().rings[r].successor().map(|d| d.0);
                (NodeId(i), succ)
            })
            .collect();
        conv_sum += convergence(&nodes, &believed);
    }
    (conv_sum / k as f64, sim.metrics().counter("net.sent"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_strategies_converge_one_ring() {
        let (conv_i, _) = run_multi(64, 1, MultiStrategy::Independent, 40, 1);
        let (conv_s, _) = run_multi(64, 1, MultiStrategy::Shared, 40, 1);
        assert!(conv_i > 0.9, "independent convergence {conv_i}");
        assert!(conv_s > 0.9, "shared convergence {conv_s}");
    }

    #[test]
    fn shared_strategy_sends_far_fewer_messages() {
        let k = 4;
        let (_, msgs_i) = run_multi(48, k, MultiStrategy::Independent, 30, 2);
        let (_, msgs_s) = run_multi(48, k, MultiStrategy::Shared, 30, 2);
        // Independent sends k pushes per round (plus replies); shared sends
        // one. Expect roughly a k-fold gap, allow slack.
        assert!(msgs_i as f64 > 2.5 * msgs_s as f64, "independent {msgs_i} vs shared {msgs_s}");
    }

    #[test]
    fn shared_strategy_still_converges_multiple_rings() {
        let (conv, _) = run_multi(48, 3, MultiStrategy::Shared, 60, 3);
        assert!(conv > 0.8, "multi-ring shared convergence {conv}");
    }

    #[test]
    fn independent_converges_multiple_rings() {
        let (conv, _) = run_multi(48, 3, MultiStrategy::Independent, 40, 4);
        assert!(conv > 0.85, "multi-ring independent convergence {conv}");
    }

    #[test]
    #[should_panic(expected = "at least one ring")]
    fn empty_rings_panics() {
        let _ = MultiOverlayNode::new(vec![], MultiStrategy::Shared, Duration(100));
    }
}
