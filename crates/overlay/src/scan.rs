//! Range scans over a converged ordered overlay.
//!
//! §III-B-2: *"the natural approach is to order nodes such that each node
//! knows the next node from which data needs to be retrieved/processed"*.
//! A scan is routed greedily towards the range's lower bound, then walks
//! successor pointers collecting in-range items until it passes the upper
//! bound, and finally returns to its origin.

use dd_sim::{Ctx, NodeId, Process};
use std::collections::HashMap;

/// A range-scan request/result travelling through the overlay.
#[derive(Debug, Clone)]
pub struct RangeScan {
    /// Scan identifier (unique per origin).
    pub id: u64,
    /// Inclusive lower bound in the value domain.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
    /// Node that issued the scan.
    pub origin: NodeId,
    /// Hops travelled so far (routing + collection).
    pub hops: u32,
    /// Values collected so far.
    pub collected: Vec<f64>,
    /// Nodes visited during the collection phase.
    pub visited: Vec<NodeId>,
}

impl RangeScan {
    /// Creates a scan of `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either bound is NaN.
    #[must_use]
    pub fn new(id: u64, lo: f64, hi: f64, origin: NodeId) -> Self {
        assert!(lo <= hi, "scan bounds must satisfy lo <= hi");
        RangeScan { id, lo, hi, origin, hops: 0, collected: Vec::new(), visited: Vec::new() }
    }
}

/// Scan protocol messages.
#[derive(Debug, Clone)]
pub enum ScanMsg {
    /// Routing phase: looking for the first node ≥ `lo`.
    Route(RangeScan),
    /// Collection phase: walking successors through the range.
    Collect(RangeScan),
    /// Result returned to the origin.
    Done(RangeScan),
}

/// A node participating in range scans.
///
/// Routing state (`neighbors`, `successor`) is produced by the T-Man layer
/// once converged; items are whatever the store assigned to this node.
#[derive(Debug, Clone)]
pub struct ScanNode {
    /// This node's coordinate in the value domain.
    pub coord: f64,
    /// Long-range routing candidates `(node, coord)` (the T-Man view).
    pub neighbors: Vec<(NodeId, f64)>,
    /// Ring successor, if known.
    pub successor: Option<(NodeId, f64)>,
    /// Attribute values of locally stored items.
    pub items: Vec<f64>,
    /// Finished scans issued by this node: id → result.
    pub completed: HashMap<u64, RangeScan>,
}

impl ScanNode {
    /// Creates a scan node.
    #[must_use]
    pub fn new(
        coord: f64,
        neighbors: Vec<(NodeId, f64)>,
        successor: Option<(NodeId, f64)>,
        items: Vec<f64>,
    ) -> Self {
        ScanNode { coord, neighbors, successor, items, completed: HashMap::new() }
    }

    fn collect_local(&self, scan: &mut RangeScan, me: NodeId) {
        scan.visited.push(me);
        for &v in &self.items {
            if v >= scan.lo && v <= scan.hi {
                scan.collected.push(v);
            }
        }
    }

    /// Best routing hop towards coordinate `target`: the neighbour whose
    /// coordinate is closest to it and strictly closer than ours.
    fn route_towards(&self, target: f64) -> Option<NodeId> {
        let mine = (self.coord - target).abs();
        self.neighbors
            .iter()
            .map(|&(n, c)| (n, (c - target).abs()))
            .filter(|&(_, d)| d < mine)
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(n, _)| n)
    }
}

impl Process for ScanNode {
    type Msg = ScanMsg;

    fn on_message(&mut self, ctx: &mut Ctx<'_, ScanMsg>, _from: NodeId, msg: ScanMsg) {
        match msg {
            ScanMsg::Route(mut scan) => {
                scan.hops += 1;
                ctx.metrics().incr("scan.route_hops");
                match self.route_towards(scan.lo) {
                    Some(next) => ctx.send(next, ScanMsg::Route(scan)),
                    None => {
                        // We are the closest node to `lo`: start collecting.
                        let me = ctx.id();
                        self.collect_local(&mut scan, me);
                        match self.successor {
                            Some((succ, c)) if c <= scan.hi => {
                                ctx.send(succ, ScanMsg::Collect(scan));
                            }
                            _ => ctx.send(scan.origin, ScanMsg::Done(scan)),
                        }
                    }
                }
            }
            ScanMsg::Collect(mut scan) => {
                scan.hops += 1;
                ctx.metrics().incr("scan.collect_hops");
                let me = ctx.id();
                self.collect_local(&mut scan, me);
                match self.successor {
                    Some((succ, c)) if c <= scan.hi => {
                        ctx.send(succ, ScanMsg::Collect(scan));
                    }
                    _ => ctx.send(scan.origin, ScanMsg::Done(scan)),
                }
            }
            ScanMsg::Done(scan) => {
                ctx.metrics().incr("scan.done");
                self.completed.insert(scan.id, scan);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_sim::{Sim, SimConfig, Time};

    /// Builds a perfectly converged ring of `n` nodes at coordinates
    /// 0,10,20,… each holding items `[coord, coord+1, …, coord+9]`, with a
    /// handful of long-range neighbours for routing.
    fn build(n: u64, seed: u64) -> Sim<ScanNode> {
        let mut sim = Sim::new(SimConfig::default().seed(seed));
        for i in 0..n {
            let coord = i as f64 * 10.0;
            let succ = (i + 1 < n).then(|| (NodeId(i + 1), (i + 1) as f64 * 10.0));
            // neighbours: ±1, ±2, ±4, … (finger-like for O(log n) routing)
            let mut neigh = Vec::new();
            let mut step = 1u64;
            while step < n {
                if i >= step {
                    neigh.push((NodeId(i - step), (i - step) as f64 * 10.0));
                }
                if i + step < n {
                    neigh.push((NodeId(i + step), (i + step) as f64 * 10.0));
                }
                step *= 2;
            }
            let items: Vec<f64> = (0..10).map(|k| coord + f64::from(k)).collect();
            sim.add_node(NodeId(i), ScanNode::new(coord, neigh, succ, items));
        }
        sim
    }

    #[test]
    fn scan_collects_exactly_the_range() {
        let mut sim = build(32, 1);
        let scan = RangeScan::new(1, 95.0, 125.0, NodeId(0));
        sim.inject(NodeId(0), NodeId(0), ScanMsg::Route(scan));
        sim.run_until(Time(50_000));
        let done = &sim.node(NodeId(0)).unwrap().completed[&1];
        let mut got = done.collected.clone();
        got.sort_by(f64::total_cmp);
        let want: Vec<f64> = (95..=125).map(f64::from).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn scan_visits_only_range_owners_plus_routing() {
        let mut sim = build(64, 2);
        let scan = RangeScan::new(9, 300.0, 340.0, NodeId(0));
        sim.inject(NodeId(0), NodeId(0), ScanMsg::Route(scan));
        sim.run_until(Time(50_000));
        let done = &sim.node(NodeId(0)).unwrap().completed[&9];
        // Collection phase should visit nodes 30..=34 (coords 300..340).
        assert_eq!(done.visited, vec![NodeId(30), NodeId(31), NodeId(32), NodeId(33), NodeId(34)]);
        // Routing is logarithmic with finger-like neighbours.
        assert!(done.hops < 20, "hops {}", done.hops);
    }

    #[test]
    fn empty_range_returns_empty_result() {
        let mut sim = build(16, 3);
        let scan = RangeScan::new(4, 41.5, 41.7, NodeId(2));
        sim.inject(NodeId(2), NodeId(2), ScanMsg::Route(scan));
        sim.run_until(Time(50_000));
        let done = &sim.node(NodeId(2)).unwrap().completed[&4];
        assert!(done.collected.is_empty());
    }

    #[test]
    fn scan_to_the_end_of_the_ring_terminates() {
        let mut sim = build(8, 4);
        let scan = RangeScan::new(2, 60.0, 1_000.0, NodeId(0));
        sim.inject(NodeId(0), NodeId(0), ScanMsg::Route(scan));
        sim.run_until(Time(50_000));
        let done = &sim.node(NodeId(0)).unwrap().completed[&2];
        // Items 60..=79 exist (nodes 6 and 7).
        assert_eq!(done.collected.len(), 20);
    }

    #[test]
    fn wider_ranges_cost_proportionally_more_collect_hops() {
        let mut sim = build(64, 5);
        sim.inject(
            NodeId(0),
            NodeId(0),
            ScanMsg::Route(RangeScan::new(1, 100.0, 140.0, NodeId(0))),
        );
        sim.run_until(Time(50_000));
        let narrow_hops = sim.metrics().counter("scan.collect_hops");
        sim.inject(
            NodeId(0),
            NodeId(0),
            ScanMsg::Route(RangeScan::new(2, 100.0, 420.0, NodeId(0))),
        );
        sim.run_until(Time(100_000));
        let wide_hops = sim.metrics().counter("scan.collect_hops") - narrow_hops;
        assert!(wide_hops > 4 * narrow_hops, "wide {wide_hops} vs narrow {narrow_hops}");
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn inverted_bounds_panic() {
        let _ = RangeScan::new(0, 5.0, 1.0, NodeId(0));
    }
}
