//! # dd-overlay — value-ordered overlays and range scans
//!
//! §III-B-2 of the paper: item ordering *"would enable efficient range
//! scans of items and the construction of advanced abstractions such as
//! indexes"*. Because a rigid content-based organisation "may not be
//! suitable to an environment subject to churn", the paper proposes
//! gossip-based convergence: *"it is possible to establish a partial order
//! among nodes and have them converge to the proper neighbourhood using
//! well-known methods \[32\]"* — \[32\] is T-Man, implemented here.
//!
//! * [`rank`] — the distance functions ordering nodes in the value domain.
//! * [`tman`] — the T-Man gossip protocol: each node keeps the `k` best
//!   neighbours under the rank function and trades views with them; the
//!   topology converges to a sorted ring in O(log N) rounds.
//! * [`ring`] — convergence measurement against the true sorted order.
//! * [`scan`] — greedy routing and successor-walking range scans over the
//!   converged overlay.
//! * [`multi`] — the multi-attribute question the paper raises: `k`
//!   independent overlays ("not scalable as it imposes an high overhead")
//!   versus a shared-message organisation (\[34\], STAN-like), with message
//!   accounting so E9 can quantify the difference.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod multi;
pub mod rank;
pub mod ring;
pub mod scan;
pub mod tman;

pub use multi::{MultiMsg, MultiOverlayNode, MultiStrategy};
pub use rank::{line_distance, ring_distance};
pub use ring::{convergence, successor_map};
pub use scan::{RangeScan, ScanMsg, ScanNode};
pub use tman::{TManConfig, TManMsg, TManNode, TManState};
