//! Per-sieve redundancy estimation and the per-tuple vs per-sieve cost
//! model (experiment E5).

use crate::walk::WalkSample;
use std::collections::HashMap;

/// Estimates how many nodes carry each sieve class from uniform walk
/// samples: if a fraction `f` of samples advertise class `c`, then
/// ≈ `f · N` nodes do.
#[derive(Debug, Clone, Default)]
pub struct RedundancyEstimator {
    class_counts: HashMap<u64, u64>,
    total: u64,
}

impl RedundancyEstimator {
    /// Empty estimator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds walk samples in (deduplicating nothing: uniform-with-
    /// replacement sampling is what the estimator expects).
    pub fn absorb(&mut self, samples: &[WalkSample]) {
        for s in samples {
            *self.class_counts.entry(s.sieve_class).or_insert(0) += 1;
            self.total += 1;
        }
    }

    /// Number of samples folded in.
    #[must_use]
    pub fn sample_count(&self) -> u64 {
        self.total
    }

    /// Estimated number of nodes carrying `class`, given a population
    /// estimate (from `dd-estimation`'s extrema protocol).
    #[must_use]
    pub fn class_population(&self, class: u64, n_estimate: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let f = self.class_counts.get(&class).copied().unwrap_or(0) as f64 / self.total as f64;
        f * n_estimate
    }

    /// All classes observed, with their estimated populations.
    #[must_use]
    pub fn all_classes(&self, n_estimate: f64) -> Vec<(u64, f64)> {
        let mut v: Vec<(u64, f64)> =
            self.class_counts.keys().map(|&c| (c, self.class_population(c, n_estimate))).collect();
        v.sort_by_key(|&(c, _)| c);
        v
    }
}

/// Cost of a redundancy-checking scheme, in walk messages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkCost {
    /// Number of walks launched.
    pub walks: u64,
    /// Hops per walk.
    pub walk_length: u64,
    /// Total messages (`walks × walk_length`, plus one return hop each).
    pub total_messages: u64,
}

/// Cost of the naive scheme the paper rejects: one walk **per tuple**, each
/// long enough to estimate that tuple's replica count. Sampling theory: to
/// see an `r`-of-`N` subpopulation ≈ `samples_per_target · N / r` hops are
/// needed per tuple.
#[must_use]
pub fn per_tuple_cost(tuples: u64, n: u64, r: u32, samples_per_target: u64) -> WalkCost {
    let walk_length = samples_per_target * n / u64::from(r).max(1);
    WalkCost { walks: tuples, walk_length, total_messages: tuples * (walk_length + 1) }
}

/// Cost of the paper's scheme: one walk **per sieve class**; each class is
/// carried by `N/classes` nodes (uniform sieves), so a walk of
/// `samples_per_target · classes` hops sees enough class members, and all
/// tuples of the class are checked at once.
#[must_use]
pub fn per_sieve_cost(classes: u64, samples_per_target: u64) -> WalkCost {
    let walk_length = samples_per_target * classes;
    WalkCost { walks: classes, walk_length, total_messages: classes * (walk_length + 1) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::WalkSample;
    use dd_sim::NodeId;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn class_population_estimates_from_uniform_samples() {
        // Population 1000: class 0 on 100 nodes, class 1 on 900.
        let n = 1_000u64;
        let mut rng = SmallRng::seed_from_u64(1);
        let mut est = RedundancyEstimator::new();
        let samples: Vec<WalkSample> = (0..50_000)
            .map(|_| {
                let node = rng.gen_range(0..n);
                WalkSample {
                    node: NodeId(node),
                    sieve_class: u64::from(node >= 100),
                    item_count: 0,
                }
            })
            .collect();
        est.absorb(&samples);
        let c0 = est.class_population(0, n as f64);
        let c1 = est.class_population(1, n as f64);
        assert!((c0 - 100.0).abs() < 15.0, "class 0 ≈ 100, got {c0}");
        assert!((c1 - 900.0).abs() < 30.0, "class 1 ≈ 900, got {c1}");
        assert_eq!(est.sample_count(), 50_000);
    }

    #[test]
    fn unknown_class_estimates_zero() {
        let mut est = RedundancyEstimator::new();
        est.absorb(&[WalkSample { node: NodeId(0), sieve_class: 7, item_count: 0 }]);
        assert_eq!(est.class_population(9, 100.0), 0.0);
        assert_eq!(est.all_classes(100.0), vec![(7, 100.0)]);
    }

    #[test]
    fn empty_estimator_returns_zero() {
        let est = RedundancyEstimator::new();
        assert_eq!(est.class_population(0, 50.0), 0.0);
    }

    /// The paper's claim: per-sieve walks are drastically cheaper than
    /// per-tuple walks. With 100k tuples, N = 10k, r = 5, 64 classes and 30
    /// samples per target, the gap should exceed three orders of magnitude.
    #[test]
    fn per_sieve_is_drastically_cheaper_than_per_tuple() {
        let tuples = 100_000u64;
        let n = 10_000u64;
        let r = 5u32;
        let classes = 64u64;
        let spt = 30u64;
        let naive = per_tuple_cost(tuples, n, r, spt);
        let smart = per_sieve_cost(classes, spt);
        assert!(
            naive.total_messages > 1_000 * smart.total_messages,
            "naive {} vs sieve {}",
            naive.total_messages,
            smart.total_messages
        );
        assert_eq!(naive.walks, tuples);
        assert_eq!(smart.walks, classes);
        assert!(smart.walk_length < naive.walk_length);
    }

    #[test]
    fn costs_scale_linearly_in_their_drivers() {
        let a = per_tuple_cost(10, 1_000, 3, 10);
        let b = per_tuple_cost(20, 1_000, 3, 10);
        assert_eq!(b.total_messages, 2 * a.total_messages);
        let c = per_sieve_cost(8, 10);
        let d = per_sieve_cost(16, 10);
        assert!(d.total_messages > 2 * c.total_messages, "walk length also grows");
    }
}
