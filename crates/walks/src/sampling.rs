//! Uniformity statistics over walk samples.
//!
//! The paper's redundancy estimator relies on walks producing a *uniform*
//! sample of the population (\[24\], \[25\]). On a complete or well-mixed
//! random graph, hop targets are uniform; these helpers quantify that so
//! experiment E5 can report it.

use crate::walk::WalkSample;
use dd_sim::NodeId;
use std::collections::HashMap;

/// Per-node visit counts from a set of walk samples (origin samples
/// included).
#[must_use]
pub fn visits_histogram(samples: &[WalkSample]) -> HashMap<NodeId, u64> {
    let mut h = HashMap::new();
    for s in samples {
        *h.entry(s.node).or_insert(0) += 1;
    }
    h
}

/// Pearson chi-square statistic of visit counts against the uniform
/// distribution over `population` nodes. For a uniform sampler the
/// statistic is ≈ `population − 1` (its degrees of freedom); values far
/// above indicate bias.
///
/// # Panics
/// Panics if `population == 0`.
#[must_use]
pub fn chi_square_uniform(visits: &HashMap<NodeId, u64>, population: u64) -> f64 {
    assert!(population > 0, "population must be positive");
    let total: u64 = visits.values().sum();
    if total == 0 {
        return 0.0;
    }
    let expected = total as f64 / population as f64;
    let mut chi2 = 0.0;
    let mut seen = 0u64;
    for &count in visits.values() {
        let d = count as f64 - expected;
        chi2 += d * d / expected;
        seen += 1;
    }
    // Nodes never visited contribute (0 - e)² / e each.
    chi2 += (population - seen.min(population)) as f64 * expected;
    chi2
}

/// Normalised uniformity score: `chi² / (population − 1)`; ≈ 1 for a
/// uniform sampler, larger when biased. Returns 0 for a population of 1.
#[must_use]
pub fn uniformity_score(visits: &HashMap<NodeId, u64>, population: u64) -> f64 {
    if population <= 1 {
        return 0.0;
    }
    chi_square_uniform(visits, population) / (population - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn sample(node: u64) -> WalkSample {
        WalkSample { node: NodeId(node), sieve_class: 0, item_count: 0 }
    }

    #[test]
    fn histogram_counts_visits() {
        let samples = vec![sample(1), sample(2), sample(1)];
        let h = visits_histogram(&samples);
        assert_eq!(h[&NodeId(1)], 2);
        assert_eq!(h[&NodeId(2)], 1);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn uniform_draws_score_near_one() {
        let n = 100u64;
        let mut rng = SmallRng::seed_from_u64(1);
        let samples: Vec<WalkSample> = (0..20_000).map(|_| sample(rng.gen_range(0..n))).collect();
        let score = uniformity_score(&visits_histogram(&samples), n);
        assert!((0.6..1.6).contains(&score), "uniform score {score}");
    }

    #[test]
    fn biased_draws_score_far_above_one() {
        let n = 100u64;
        let mut rng = SmallRng::seed_from_u64(2);
        // 80 % of visits hit 10 % of the nodes.
        let samples: Vec<WalkSample> = (0..20_000)
            .map(|_| {
                if rng.gen_bool(0.8) {
                    sample(rng.gen_range(0..n / 10))
                } else {
                    sample(rng.gen_range(0..n))
                }
            })
            .collect();
        let score = uniformity_score(&visits_histogram(&samples), n);
        assert!(score > 10.0, "biased score {score}");
    }

    #[test]
    fn unvisited_nodes_penalise_the_statistic() {
        // All visits on one node out of 10.
        let samples: Vec<WalkSample> = (0..100).map(|_| sample(0)).collect();
        let chi2 = chi_square_uniform(&visits_histogram(&samples), 10);
        // Expected 10 per node; observed 100 on one, 0 on nine:
        // (90²/10) + 9×10 = 810 + 90 = 900.
        assert!((chi2 - 900.0).abs() < 1e-9, "chi2 {chi2}");
    }

    #[test]
    fn empty_visits_score_zero() {
        let h = HashMap::new();
        assert_eq!(chi_square_uniform(&h, 10), 0.0);
        assert_eq!(uniformity_score(&h, 1), 0.0);
    }
}
