//! Same-sieve anti-entropy repair.
//!
//! §III-A: *"it is further possible to have nodes responsible to the same
//! key space (discovered by the random walk procedure) check tuple
//! redundancy directly between them and restore redundancy as necessary."*
//!
//! A [`RepairNode`] periodically picks a random peer; if the peer is in the
//! same sieve class, the pair exchanges digests and each pulls the tuples
//! it is missing. Experiment E6 drives this under churn and measures how
//! replica counts recover.

use dd_epidemic::antientropy::{AntiEntropyStore, Digest};
use dd_epidemic::push::RumorId;
use dd_membership::PeerSampler;
use dd_sim::{Ctx, Duration, NodeId, Process, TimerTag};
use rand::Rng;

/// Timer tag for repair rounds.
pub const REPAIR_TIMER: TimerTag = TimerTag(0x4E9A);

/// Repair protocol messages.
#[derive(Debug, Clone)]
pub enum RepairMsg<T> {
    /// "I am class X; here is my digest" — sent to a candidate peer.
    Offer {
        /// Sender's sieve class.
        class: u64,
        /// Sender's digest.
        digest: Digest,
    },
    /// Same-class response: items the offerer was missing, plus the
    /// responder's digest so the offerer can reciprocate.
    Sync {
        /// Responder's digest.
        digest: Digest,
        /// Items missing from the offerer.
        items: Vec<(RumorId, T)>,
    },
    /// Final leg: items the responder was missing.
    Items(Vec<(RumorId, T)>),
}

/// A storage node running same-class repair.
#[derive(Debug, Clone)]
pub struct RepairNode<S, T> {
    /// Peer source (walk-discovered same-class peers in production; any
    /// sampler in tests — mismatching classes simply don't sync).
    pub peers: S,
    /// The node's sieve class.
    pub class: u64,
    /// Stored tuples.
    pub store: AntiEntropyStore<T>,
    period: Duration,
}

impl<S: PeerSampler, T: Clone + std::fmt::Debug> RepairNode<S, T> {
    /// Creates a repair node syncing every `period`.
    #[must_use]
    pub fn new(peers: S, class: u64, period: Duration) -> Self {
        RepairNode { peers, class, store: AntiEntropyStore::new(), period }
    }

    /// Inserts a tuple locally (the dissemination path does this on sieve
    /// acceptance).
    pub fn put(&mut self, id: RumorId, value: T) {
        self.store.insert(id, value);
    }

    /// Whether the node holds tuple `id`.
    #[must_use]
    pub fn has(&self, id: RumorId) -> bool {
        self.store.get(id).is_some()
    }
}

impl<S: PeerSampler, T: Clone + std::fmt::Debug> Process for RepairNode<S, T> {
    type Msg = RepairMsg<T>;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let jitter = ctx.rng().gen_range(0..self.period.0.max(1));
        ctx.set_timer(Duration(jitter), REPAIR_TIMER);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: NodeId, msg: Self::Msg) {
        match msg {
            RepairMsg::Offer { class, digest } => {
                if class != self.class {
                    ctx.metrics().incr("repair.class_mismatch");
                    return;
                }
                let items = self.store.items_missing_from(&digest);
                ctx.metrics().incr("repair.syncs");
                ctx.send(from, RepairMsg::Sync { digest: self.store.digest(), items });
            }
            RepairMsg::Sync { digest, items } => {
                let recovered = self.store.apply(items);
                ctx.metrics().add("repair.recovered", recovered as u64);
                let reciprocal = self.store.items_missing_from(&digest);
                if !reciprocal.is_empty() {
                    ctx.send(from, RepairMsg::Items(reciprocal));
                }
            }
            RepairMsg::Items(items) => {
                let recovered = self.store.apply(items);
                ctx.metrics().add("repair.recovered", recovered as u64);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg>, tag: TimerTag) {
        if tag != REPAIR_TIMER {
            return;
        }
        if let Some(peer) = self.peers.sample_one(ctx.rng()) {
            ctx.send(peer, RepairMsg::Offer { class: self.class, digest: self.store.digest() });
        }
        ctx.set_timer(self.period, REPAIR_TIMER);
    }

    fn on_up(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        ctx.set_timer(self.period, REPAIR_TIMER);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_membership::MembershipOracle;
    use dd_sim::{Sim, SimConfig, Time};

    type Node = RepairNode<MembershipOracle, u64>;

    fn build(n: u64, classes: u64, period: u64, seed: u64) -> Sim<Node> {
        let mut sim: Sim<Node> = Sim::new(SimConfig::default().seed(seed));
        for i in 0..n {
            let node = RepairNode::new(
                MembershipOracle::dense(NodeId(i), n),
                i % classes,
                Duration(period),
            );
            sim.add_node(NodeId(i), node);
        }
        sim
    }

    #[test]
    fn same_class_nodes_converge_to_identical_stores() {
        let mut sim = build(8, 2, 100, 1);
        // Seed distinct tuples on distinct class-0 nodes (ids 0,2,4,6).
        sim.node_mut(NodeId(0)).unwrap().put(RumorId(1), 10);
        sim.node_mut(NodeId(2)).unwrap().put(RumorId(2), 20);
        sim.node_mut(NodeId(4)).unwrap().put(RumorId(3), 30);
        sim.run_until(Time(40 * 100));
        for i in [0u64, 2, 4, 6] {
            let node = sim.node(NodeId(i)).unwrap();
            for id in [1u64, 2, 3] {
                assert!(node.has(RumorId(id)), "node {i} missing tuple {id}");
            }
        }
        // Class-1 nodes must not have absorbed class-0 tuples.
        for i in [1u64, 3, 5, 7] {
            let node = sim.node(NodeId(i)).unwrap();
            assert_eq!(node.store.len(), 0, "class mismatch leaked to node {i}");
        }
        assert!(sim.metrics().counter("repair.class_mismatch") > 0);
    }

    #[test]
    fn repair_restores_replicas_after_crash_recovery() {
        let mut sim = build(6, 1, 100, 2);
        for i in 0..6 {
            sim.node_mut(NodeId(i)).unwrap().put(RumorId(7), 77);
        }
        // Node 5 loses its store (permanent disk loss simulated by
        // replacing its state), then rejoins empty.
        sim.node_mut(NodeId(5)).unwrap().store = AntiEntropyStore::new();
        assert!(!sim.node(NodeId(5)).unwrap().has(RumorId(7)));
        sim.run_until(Time(20 * 100));
        assert!(sim.node(NodeId(5)).unwrap().has(RumorId(7)), "replica restored");
        assert!(sim.metrics().counter("repair.recovered") >= 1);
    }

    #[test]
    fn bidirectional_sync_exchanges_both_ways() {
        let mut sim = build(2, 1, 100, 3);
        sim.node_mut(NodeId(0)).unwrap().put(RumorId(1), 1);
        sim.node_mut(NodeId(1)).unwrap().put(RumorId(2), 2);
        sim.run_until(Time(10 * 100));
        for i in 0..2 {
            let node = sim.node(NodeId(i)).unwrap();
            assert!(node.has(RumorId(1)) && node.has(RumorId(2)), "node {i} incomplete");
        }
    }

    #[test]
    fn downtime_pauses_but_does_not_break_repair() {
        let mut sim = build(4, 1, 100, 4);
        sim.node_mut(NodeId(0)).unwrap().put(RumorId(9), 9);
        sim.schedule_down(Time(50), NodeId(3));
        sim.schedule_up(Time(2_000), NodeId(3));
        sim.run_until(Time(6_000));
        assert!(sim.node(NodeId(3)).unwrap().has(RumorId(9)), "recovered node caught up");
    }
}
