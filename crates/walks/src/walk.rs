//! TTL random walks over the overlay.

use dd_membership::PeerSampler;
use dd_sim::{Ctx, NodeId, Process};
use std::collections::HashMap;

/// One observation collected by a walk when visiting a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkSample {
    /// Visited node.
    pub node: NodeId,
    /// The node's sieve class (`dd_sieve::Sieve::class_id`).
    pub sieve_class: u64,
    /// Number of items the node currently stores.
    pub item_count: u64,
}

/// Random-walk messages.
#[derive(Debug, Clone)]
pub enum WalkMsg {
    /// A walk in progress.
    Step {
        /// Walk identifier (unique per origin).
        id: u64,
        /// Remaining hops.
        ttl: u32,
        /// Node that launched the walk (receives the result).
        origin: NodeId,
        /// Samples collected so far.
        samples: Vec<WalkSample>,
    },
    /// A finished walk returning to its origin.
    Done {
        /// Walk identifier.
        id: u64,
        /// All collected samples.
        samples: Vec<WalkSample>,
    },
}

/// A node participating in random walks.
///
/// Each node advertises a `sieve_class` and `item_count` (set by the store
/// layer); walks hop uniformly over `peers` until their TTL expires, then
/// return to the origin, which accumulates results in
/// [`WalkNode::completed`].
#[derive(Debug, Clone)]
pub struct WalkNode<S> {
    /// Peer source for the next hop.
    pub peers: S,
    /// This node's sieve class advertised to walks.
    pub sieve_class: u64,
    /// This node's item count advertised to walks.
    pub item_count: u64,
    /// Completed walks launched by this node: walk id → samples.
    pub completed: HashMap<u64, Vec<WalkSample>>,
    next_walk_id: u64,
}

impl<S: PeerSampler> WalkNode<S> {
    /// Creates a node with the given advertised state.
    #[must_use]
    pub fn new(peers: S, sieve_class: u64, item_count: u64) -> Self {
        WalkNode { peers, sieve_class, item_count, completed: HashMap::new(), next_walk_id: 0 }
    }

    fn sample(&self, id: NodeId) -> WalkSample {
        WalkSample { node: id, sieve_class: self.sieve_class, item_count: self.item_count }
    }

    /// Launches a walk of `ttl` hops; returns its id, or `None` when the
    /// node knows no peers.
    pub fn start_walk(&mut self, ctx: &mut Ctx<'_, WalkMsg>, ttl: u32) -> Option<u64> {
        let peer = self.peers.sample_one(ctx.rng())?;
        let id = self.next_walk_id;
        self.next_walk_id += 1;
        let origin = ctx.id();
        let samples = vec![self.sample(origin)];
        ctx.metrics().incr("walk.started");
        ctx.send(peer, WalkMsg::Step { id, ttl, origin, samples });
        Some(id)
    }

    /// All samples from every completed walk, flattened.
    #[must_use]
    pub fn all_samples(&self) -> Vec<WalkSample> {
        let mut v: Vec<WalkSample> = self.completed.values().flatten().copied().collect();
        v.sort_by_key(|s| s.node);
        v
    }
}

impl<S: PeerSampler> Process for WalkNode<S> {
    type Msg = WalkMsg;

    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, _from: NodeId, msg: Self::Msg) {
        match msg {
            WalkMsg::Step { id, ttl, origin, mut samples } => {
                samples.push(self.sample(ctx.id()));
                ctx.metrics().incr("walk.hops");
                if ttl <= 1 {
                    ctx.send(origin, WalkMsg::Done { id, samples });
                } else {
                    // Uniform next hop; falls back to returning early if the
                    // node is isolated.
                    match self.peers.sample_one(ctx.rng()) {
                        Some(next) => {
                            ctx.send(next, WalkMsg::Step { id, ttl: ttl - 1, origin, samples });
                        }
                        None => ctx.send(origin, WalkMsg::Done { id, samples }),
                    }
                }
            }
            WalkMsg::Done { id, samples } => {
                ctx.metrics().incr("walk.completed");
                self.completed.insert(id, samples);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_membership::MembershipOracle;
    use dd_sim::{Sim, SimConfig, Time};

    fn build(n: u64, seed: u64) -> Sim<WalkNode<MembershipOracle>> {
        let mut sim = Sim::new(SimConfig::default().seed(seed));
        for i in 0..n {
            let node = WalkNode::new(MembershipOracle::dense(NodeId(i), n), i % 4, i);
            sim.add_node(NodeId(i), node);
        }
        sim
    }

    /// Helper to launch a walk from node 0 once the sim is built.
    fn launch(sim: &mut Sim<WalkNode<MembershipOracle>>, ttl: u32) {
        // Drive on_start etc. first.
        sim.run_until(sim.now());
        // Use the engine's adhoc context through a synthetic message: launch
        // by calling start_walk on the node state via a crafted Step that
        // begins at node 0. Simpler: inject a Step from a phantom origin.
        sim.inject(
            NodeId(0),
            NodeId(0),
            WalkMsg::Step { id: 999, ttl, origin: NodeId(0), samples: vec![] },
        );
    }

    #[test]
    fn walk_completes_with_ttl_samples() {
        let mut sim = build(32, 1);
        launch(&mut sim, 10);
        sim.run_until(Time(10_000));
        let node0 = sim.node(NodeId(0)).unwrap();
        let samples = &node0.completed[&999];
        // Injected walk starts empty and collects one sample per hop
        // including the starting node's own.
        assert_eq!(samples.len(), 10);
        assert_eq!(sim.metrics().counter("walk.completed"), 1);
    }

    #[test]
    fn walk_samples_record_class_and_count() {
        let mut sim = build(16, 2);
        launch(&mut sim, 6);
        sim.run_until(Time(10_000));
        let samples = sim.node(NodeId(0)).unwrap().completed[&999].clone();
        for s in samples {
            assert_eq!(s.sieve_class, s.node.0 % 4);
            assert_eq!(s.item_count, s.node.0);
        }
    }

    #[test]
    fn ttl_one_returns_immediately() {
        let mut sim = build(8, 3);
        launch(&mut sim, 1);
        sim.run_until(Time(10_000));
        assert_eq!(sim.node(NodeId(0)).unwrap().completed[&999].len(), 1);
    }

    #[test]
    fn many_walks_visit_most_of_the_population() {
        let n = 64u64;
        let mut sim = build(n, 4);
        for w in 0..40u64 {
            sim.inject(
                NodeId(0),
                NodeId(0),
                WalkMsg::Step { id: w, ttl: 16, origin: NodeId(0), samples: vec![] },
            );
        }
        sim.run_until(Time(60_000));
        let node0 = sim.node(NodeId(0)).unwrap();
        assert_eq!(node0.completed.len(), 40);
        let distinct: std::collections::HashSet<NodeId> =
            node0.all_samples().iter().map(|s| s.node).collect();
        assert!(distinct.len() > 50, "only {} distinct nodes visited", distinct.len());
    }
}
