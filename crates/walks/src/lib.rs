//! # dd-walks — random-walk sampling and redundancy maintenance
//!
//! §III-A of the paper: maintaining redundancy *"due to scale and churn a
//! centralized deterministic approach is infeasible and thus we must rely
//! on probabilistic epidemic-based methods. Those methods, based on random
//! walks \[24\], \[25\], allow each node to obtain an uniform sample of the
//! data stored at other nodes and eventually determine how many copies of
//! the items it holds exist in the system."*
//!
//! And the paper's key cost observation, which experiment E5 quantifies:
//! *"Doing this on a tuple level is however clearly impractical, as it will
//! require a random walk per tuple … as tuples are retained at nodes
//! according to the sieve function, obtaining an estimate of how many nodes
//! have a given sieve … suffices. This drastically reduces random walk
//! length and the number of random walks needed as many tuples may be
//! checked at once."*
//!
//! * [`walk`] — TTL random walks collecting `(node, sieve_class,
//!   item_count)` samples.
//! * [`sampling`] — uniformity statistics over walk visits.
//! * [`redundancy`] — per-sieve-class population estimation from walk
//!   samples, plus the per-tuple vs per-sieve cost model.
//! * [`repair`] — same-class anti-entropy that restores missing replicas,
//!   the paper's "check tuple redundancy directly between them".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod redundancy;
pub mod repair;
pub mod sampling;
pub mod walk;

pub use redundancy::{per_sieve_cost, per_tuple_cost, RedundancyEstimator, WalkCost};
pub use repair::{RepairMsg, RepairNode};
pub use sampling::{chi_square_uniform, visits_histogram};
pub use walk::{WalkMsg, WalkNode, WalkSample};
